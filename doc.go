// Package sidq is a spatial IoT data quality library: a Go
// reproduction of "Spatial Data Quality in the IoT Era: Management and
// Exploitation" (SIGMOD 2022).
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - quality management (§2.2): refine, uncertain, outlier, faults,
//     integrate, reduce;
//   - exploitation of low-quality data (§2.3): uquery, analysis,
//     decide;
//   - the quality framework and middleware (§2.1, open issues): quality
//     and core;
//   - substrates: geo, stats, trajectory, index, roadnet, stream,
//     distrib, stid, and the synthetic workload generators in simulate;
//   - the experiment harness exp, driven by cmd/sidqbench and the
//     benchmarks in bench_test.go.
//
// Runnable entry points: cmd/sidqbench (experiment tables), cmd/sidqsim
// (dataset generator), cmd/sidqclean (CSV cleaning pipeline), and the
// five programs under examples/.
package sidq
