package sidq_test

// One benchmark per reproduced table/figure (see DESIGN.md's experiment
// index): each bench runs the corresponding experiment workload so the
// cost of regenerating every artifact is tracked, plus micro-benchmarks
// for the hot substrate paths the experiments lean on.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sidq/internal/core"
	"sidq/internal/exp"
	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/quality"
	"sidq/internal/reduce"
	"sidq/internal/refine"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
	"sidq/internal/uquery"
)

func BenchmarkT1_CharacteristicMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = quality.CharacteristicMatrix(int64(i))
	}
}

func benchExperiment(b *testing.B, run func(seed int64) exp.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb := run(int64(i) + 1)
		if len(tb.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1_LocationRefinement(b *testing.B) {
	b.Run("ensemble", func(b *testing.B) { benchExperiment(b, exp.E1Radio) })
	b.Run("motion", func(b *testing.B) { benchExperiment(b, exp.E1Motion) })
	b.Run("collaborative", func(b *testing.B) { benchExperiment(b, exp.E1Collab) })
}

func BenchmarkE2_TrajectoryUE(b *testing.B)      { benchExperiment(b, exp.E2) }
func BenchmarkE3_STIDInterpolation(b *testing.B) { benchExperiment(b, exp.E3) }
func BenchmarkE4_OutlierRemoval(b *testing.B)    { benchExperiment(b, exp.E4) }
func BenchmarkE4b_RepairVsDrop(b *testing.B)     { benchExperiment(b, exp.E4b) }
func BenchmarkE5_FaultCorrection(b *testing.B)   { benchExperiment(b, exp.E5) }
func BenchmarkE6_Integration(b *testing.B)       { benchExperiment(b, exp.E6) }

func BenchmarkE7_Reduction(b *testing.B) {
	b.Run("trajectory", func(b *testing.B) { benchExperiment(b, exp.E7) })
	b.Run("codecs", func(b *testing.B) { benchExperiment(b, exp.E7b) })
}

func BenchmarkE8_UncertainQueries(b *testing.B)  { benchExperiment(b, exp.E8) }
func BenchmarkE9_DynamicsQueries(b *testing.B)   { benchExperiment(b, exp.E9) }
func BenchmarkE9b_SkewPartitioning(b *testing.B) { benchExperiment(b, exp.E9b) }
func BenchmarkE10_Analysis(b *testing.B)         { benchExperiment(b, exp.E10) }
func BenchmarkE11_DecisionMaking(b *testing.B)   { benchExperiment(b, exp.E11) }
func BenchmarkE12_PipelineAblation(b *testing.B) { benchExperiment(b, exp.E12) }
func BenchmarkE13_PrivateQueries(b *testing.B)   { benchExperiment(b, exp.E13) }
func BenchmarkE14_Federated(b *testing.B)        { benchExperiment(b, exp.E14) }

// --- substrate micro-benchmarks ---

func BenchmarkGridKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := index.NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 25)
	for i := 0; i < 10000; i++ {
		g.Insert(index.PointEntry{ID: fmt.Sprintf("p%d", i), Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNN(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 10)
	}
}

func BenchmarkRTreeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rt := index.NewRTree()
	for i := 0; i < 10000; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rt.Insert(index.RectEntry{ID: fmt.Sprintf("r%d", i), Rect: geo.RectFromCenter(p, 2, 2)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Search(geo.RectFromCenter(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 50, 50))
	}
}

func BenchmarkShortestPath(b *testing.B) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 20, NY: 20, Spacing: 100, RemoveFrac: 0.2, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := roadnet.NodeID(rng.Intn(g.NumNodes()))
		c := roadnet.NodeID(rng.Intn(g.NumNodes()))
		_, _ = g.AStar(a, c)
	}
}

// BenchmarkCHQuery is the bench-compare-gated contraction-hierarchy
// row: warm point-to-point queries on a mid-size city grid (14.4k
// nodes), plus the preprocessing cost of the same graph (CSR + ALT +
// CH) for the tradeoff ledger. Pairs are a fixed cycle so every run
// measures the same query mix.
func BenchmarkCHQuery(b *testing.B) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 120, NY: 120, Spacing: 100, Jitter: 6, RemoveFrac: 0.2, Seed: 42})
	e := g.Engine()
	if !e.HasCH() {
		b.Fatal("mid-size grid built no contraction hierarchy")
	}
	pairs := benchNodePairs(g, 256, 7)
	b.Run("warm", func(b *testing.B) {
		chWarmup(b, e, pairs)
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := e.CHDist(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !g.BuildEngine().HasCH() {
				b.Fatal("rebuild lost the hierarchy")
			}
		}
	})
}

// benchContinental builds the continental-scale graph (144 cities of
// 60x60 intersections stitched by highways: 518,400 nodes, ~2M
// directed edges) and its engine exactly once per benchmark process.
// The many-smaller-cities shape matters: query cost is dominated by
// the local hierarchy climb inside the endpoint cities, so 60x60
// cities keep warm point queries under the 100µs target where 120x120
// cities at the same node count do not.
var benchContinental = struct {
	once sync.Once
	g    *roadnet.Graph
	e    *roadnet.Engine
}{}

func continentalGraph() (*roadnet.Graph, *roadnet.Engine) {
	benchContinental.once.Do(func() {
		benchContinental.g = roadnet.Continental(roadnet.ContinentalOptions{
			CitiesX: 12, CitiesY: 12,
			CityNX: 60, CityNY: 60,
			Jitter: 5, RemoveFrac: 0.15,
			Seed: 1,
		})
		benchContinental.e = benchContinental.g.Engine()
	})
	return benchContinental.g, benchContinental.e
}

// BenchmarkCHLarge records the preprocessing-time/query-time tradeoff
// at continental scale: the full engine build (ALT is skipped above
// altMaxNodes; CH carries the queries), warm sub-100µs CH point
// queries, and the A* contrast row that shows what every query costs
// without the hierarchy.
func BenchmarkCHLarge(b *testing.B) {
	g, e := continentalGraph()
	if !e.HasCH() {
		b.Fatal("continental graph built no contraction hierarchy")
	}
	pairs := benchNodePairs(g, 256, 9)
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !g.BuildEngine().HasCH() {
				b.Fatal("rebuild lost the hierarchy")
			}
		}
	})
	b.Run("query-warm", func(b *testing.B) {
		chWarmup(b, e, pairs)
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := e.CHDist(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-astar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := e.AStar(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// chWarmup primes the engine's CH scratch pool and runs every bench
// pair once before the timer starts, so the short gated runs measure
// steady-state queries rather than first-touch allocation.
func chWarmup(b *testing.B, e *roadnet.Engine, pairs [][2]roadnet.NodeID) {
	b.Helper()
	for _, p := range pairs {
		if _, err := e.CHDist(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
}

// benchNodePairs returns a deterministic cycle of random node pairs.
func benchNodePairs(g *roadnet.Graph, n int, seed int64) [][2]roadnet.NodeID {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]roadnet.NodeID, n)
	for i := range pairs {
		pairs[i] = [2]roadnet.NodeID{
			roadnet.NodeID(rng.Intn(g.NumNodes())),
			roadnet.NodeID(rng.Intn(g.NumNodes())),
		}
	}
	return pairs
}

func BenchmarkKalmanSmooth(b *testing.B) {
	truth := simulate.RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 1000, 2, 1, 5)
	noisy := simulate.AddGaussianNoise(truth, 8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refine.KalmanSmoothTrajectory(noisy, 1, 8)
	}
}

func BenchmarkDouglasPeucker(b *testing.B) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 12, NY: 12, Spacing: 120, Seed: 7})
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 20, Speed: 12, SampleInterval: 0.5, Seed: 7})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduce.DouglasPeuckerSED(trip, 10)
	}
}

func BenchmarkProbRange(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	objs := make([]uquery.UncertainObject, 2000)
	for i := range objs {
		objs[i] = uquery.GaussianObject{
			ID:    fmt.Sprintf("o%d", i),
			Mean:  geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Sigma: 10,
		}
	}
	rect := geo.RectFromCenter(geo.Pt(500, 500), 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uquery.ProbRange(objs, rect, 0.5)
	}
}

func BenchmarkBulkLoadRTree(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rects := make([]index.RectEntry, 10000)
	for i := range rects {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rects[i] = index.RectEntry{ID: fmt.Sprintf("r%d", i), Rect: geo.RectFromCenter(p, 2, 2)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.BulkLoadRTree(rects)
	}
}

// benchPipelineDataset is a dirty many-trajectory dataset sized so the
// parallel runner has real shards to hand out.
func benchPipelineDataset(n int) *core.Dataset {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              300,
	}
	for i := 0; i < n; i++ {
		truth := simulate.RandomWalk(fmt.Sprintf("v%d", i), region, 250, 2, 1, int64(i))
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 6, int64(i)+100)
		dirty = simulate.DuplicateSamples(dirty, 0.1, int64(i)+200)
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	return ds
}

// BenchmarkPipelineParallel runs the planned cleaning pipeline over a
// 32-trajectory dataset at several worker counts. Output is identical
// at every count; the interesting numbers are wall-clock (scales with
// physical cores) and allocs/op (drops via COW cloning).
func BenchmarkPipelineParallel(b *testing.B) {
	ds := benchPipelineDataset(32)
	stages := func() []core.Stage {
		return []core.Stage{
			core.DeduplicateStage{},
			core.OutlierRemovalStage{},
			core.SmoothingStage{},
			core.ImputeStage{},
		}
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _ := core.NewPipeline(stages()...).RunParallel(ds, w)
				if len(out.Trajectories) != 32 {
					b.Fatal("pipeline lost trajectories")
				}
			}
		})
	}
}

type benchNoopStage struct{ traited bool }

func (s benchNoopStage) Name() string    { return "bench-noop" }
func (s benchNoopStage) Task() core.Task { return core.FaultCorrection }
func (s benchNoopStage) Apply(ds *core.Dataset) {
	for i, tr := range ds.Trajectories {
		ds.Trajectories[i] = tr
	}
}
func (s benchNoopStage) Traits() core.StageTraits {
	if s.traited {
		return core.StageTraits{Shardable: true, ReplacesTrajectories: true}
	}
	return core.StageTraits{}
}

// BenchmarkRunnerCloneCOW isolates the per-attempt cloning cost the COW
// rewrite removes: raw deep Clone vs CloneCOW, and a no-op stage run
// through the runner with and without declared traits (deep-clone
// attempt vs COW attempt).
func BenchmarkRunnerCloneCOW(b *testing.B) {
	ds := benchPipelineDataset(32)
	b.Run("clone=deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ds.Clone() == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("clone=cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ds.CloneCOW() == nil {
				b.Fatal("nil clone")
			}
		}
	})
	for _, traited := range []bool{false, true} {
		name := "runner=deep"
		if traited {
			name = "runner=cow"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := core.NewPipeline(benchNoopStage{traited: traited})
			for i := 0; i < b.N; i++ {
				out, _ := p.Run(ds)
				if len(out.Trajectories) != 32 {
					b.Fatal("runner lost trajectories")
				}
			}
		})
	}
}

func BenchmarkBulkLoadRTreeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rects := make([]index.RectEntry, 30000)
	for i := range rects {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rects[i] = index.RectEntry{ID: fmt.Sprintf("r%d", i), Rect: geo.RectFromCenter(p, 2, 2)}
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				index.BulkLoadRTreeParallel(rects, w)
			}
		})
	}
}

func BenchmarkMapMatch(b *testing.B) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 12, NY: 12, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 17})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.Trips(g, simulate.TripOptions{NumObjects: 3, MinHops: 12, Speed: 12, SampleInterval: 1, Seed: 18})
	noisy := make([]*trajectory.Trajectory, len(trips))
	for i, tr := range trips {
		noisy[i] = simulate.AddGaussianNoise(tr, 10, int64(19+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range noisy {
			_, _ = uncertain.MapMatch(g, snapper, tr, uncertain.MatchOptions{EmissionSigma: 12})
		}
	}
}

func BenchmarkOnlineMapMatch(b *testing.B) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 120, Seed: 10})
	snapper := roadnet.NewSnapper(g, 100)
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 15, Speed: 12, SampleInterval: 1, Seed: 10})[0]
	noisy := simulate.AddGaussianNoise(trip, 10, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := uncertain.NewOnlineMatcher(g, snapper, uncertain.MatchOptions{EmissionSigma: 12}, 5)
		for _, p := range noisy.Points {
			m.Push(p)
		}
		m.Flush()
	}
}
