# Tier-1 verification plus the resilience gates.
#
#   make check       build + vet + full test suite (the tier-1 gate)
#   make race        vet + race-detector run over the whole module
#   make chaos       the chaos-injection harness under -race (runner,
#                    fault injectors, hardened server)
#   make bench       compile-and-run the benchmark suite briefly
#   make bench-json  run the benchmarks for real and write a dated
#                    BENCH_<date>.json baseline (ns/op, B/op, allocs/op)

GO ?= go
BENCHTIME ?= 2x

.PHONY: check vet test race chaos bench bench-json

check: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/core ./internal/server

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json
	@echo wrote BENCH_$$(date +%F).json
