# Tier-1 verification plus the resilience gates.
#
#   make check          build + vet + full test suite + race hammers +
#                       bench-compare (the tier-1 gate)
#   make ci             exactly what .github/workflows/ci.yml runs per
#                       matrix leg: fmt-check + build + vet + tests +
#                       -race + chaos
#   make fmt-check      fail if any file needs gofmt
#   make race           vet + race-detector run over the whole module
#   make race-hammer    race-detector over the concurrency-hammer
#                       packages only (uncertain, roadnet, index, obs,
#                       plus the columnar hammers in core/trajectory)
#   make chaos          the chaos-injection harness under -race (runner,
#                       fault injectors, hardened server, stream engine
#                       + streaming-session scenarios)
#   make crash          crash-recovery gate under -race: the WAL
#                       truncation/bit-flip/crash-image sweeps, the
#                       fault-injected durability wiring, and the
#                       kill-mid-chunk byte-identity scenarios
#   make bench          compile-and-run the benchmark suite briefly
#   make bench-json     run the benchmarks for real (best-of-BENCHCOUNT
#                       per row) and write a dated BENCH_<date>.json
#                       baseline (ns/op, B/op, allocs/op)
#   make bench-compare  rerun the gated E1/E2 experiment benchmarks
#                       plus the warm CH query row,
#                       write the fresh rows to bench-fresh.json (NOT
#                       BENCH_*.json — that glob is the committed
#                       baseline set), and diff against the latest
#                       committed BENCH_*.json; fails on a >20% ns/op
#                       or allocs/op regression (BENCHCOMPARE_ARGS
#                       passes extra flags, e.g. -advisory in CI)
#   make load-check     the SLO gate: spawn sidqserve, replay the
#                       deterministic CI load profile with sidqload,
#                       snapshot pprof at peak, and diff the fresh SLO
#                       document against the committed SLO_*.json
#                       baseline with slocompare; fails on a blocking
#                       latency/error/shed/drain regression
#   make load-json      run the CI load profile and write a dated
#                       SLO_<date>.json baseline (commit it to move
#                       the gate)

GO ?= go
BENCHTIME ?= 2x
BENCHCOUNT ?= 3
BENCHCOMPARE_ARGS ?=
SLOCOMPARE_ARGS ?=

.PHONY: check ci fmt-check vet test race race-hammer chaos crash bench bench-json bench-compare load-check load-json

check: vet test race-hammer crash bench-compare

ci: fmt-check vet test race chaos crash

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The packages whose tests hammer shared state from many goroutines —
# the ones -race exists for. Cheap enough to ride in every `make check`.
race-hammer:
	$(GO) test -race -count=1 ./internal/uncertain ./internal/roadnet ./internal/index ./internal/obs
	$(GO) test -race -count=1 -run 'Hammer' ./internal/core ./internal/trajectory

chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/core ./internal/server ./internal/stream

# Crash recovery must hold under the race detector too: the group
# commit, the replay path, and the snapshot writer all touch shared
# session state.
crash:
	$(GO) test -race -count=1 ./internal/store
	$(GO) test -race -count=1 -run 'TestDurable|TestHistory|TestChaosStore' ./internal/server ./internal/chaos

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Best-of-N baseline: -count $(BENCHCOUNT) repeats each benchmark and
# benchjson -fold keeps the minimum per metric, so the committed
# baseline records the machine's floor, not one noisy sample.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... \
		| $(GO) run ./cmd/benchjson -fold > BENCH_$$(date +%F).json
	@echo wrote BENCH_$$(date +%F).json

# Best-of-N: benchcompare folds the -count repeats to their minimum,
# so scheduler noise can't fail the gate (a real regression moves the
# floor, noise only moves the ceiling).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkE[12]_|BenchmarkCHQuery/warm' -benchmem -benchtime $(BENCHTIME) -count 3 . \
		| $(GO) run ./cmd/benchjson \
		| tee bench-fresh.json \
		| $(GO) run ./cmd/benchcompare $(BENCHCOMPARE_ARGS)

# The SLO gate. sidqload spawns the freshly-built sidqserve on a free
# port with a temp durable data dir, replays the fixed-seed CI profile
# for 30s, verifies graceful SIGTERM drain, and writes slo-fresh.json
# (NOT SLO_*.json — that glob is the committed baseline set);
# slocompare then diffs it against the latest committed SLO_*.json.
# SIDQ_TEST_DELAY=50ms make load-check demonstrates the gate catching
# an injected latency regression.
load-check:
	$(GO) build -o bin/sidqserve ./cmd/sidqserve
	$(GO) run ./cmd/sidqload -spawn bin/sidqserve -profile ci \
		-pprof-dir pprof-load -out slo-fresh.json
	$(GO) run ./cmd/slocompare -fresh slo-fresh.json $(SLOCOMPARE_ARGS)

# Regenerate the committed baseline (same profile as load-check).
load-json:
	$(GO) build -o bin/sidqserve ./cmd/sidqserve
	$(GO) run ./cmd/sidqload -spawn bin/sidqserve -profile ci \
		-out SLO_$$(date +%F).json
	@echo wrote SLO_$$(date +%F).json
