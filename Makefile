# Tier-1 verification plus the resilience gates.
#
#   make check          build + vet + full test suite + bench-compare
#                       (the tier-1 gate)
#   make race           vet + race-detector run over the whole module
#   make chaos          the chaos-injection harness under -race (runner,
#                       fault injectors, hardened server)
#   make bench          compile-and-run the benchmark suite briefly
#   make bench-json     run the benchmarks for real and write a dated
#                       BENCH_<date>.json baseline (ns/op, B/op,
#                       allocs/op)
#   make bench-compare  rerun the gated E1/E2 experiment benchmarks and
#                       diff against the latest committed BENCH_*.json;
#                       fails on a >20% ns/op or allocs/op regression

GO ?= go
BENCHTIME ?= 2x

.PHONY: check vet test race chaos bench bench-json bench-compare

check: vet test bench-compare

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

chaos:
	$(GO) test -race -count=1 ./internal/chaos ./internal/core ./internal/server

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json
	@echo wrote BENCH_$$(date +%F).json

# Best-of-N: benchcompare folds the -count repeats to their minimum,
# so scheduler noise can't fail the gate (a real regression moves the
# floor, noise only moves the ceiling).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkE[12]_' -benchmem -benchtime $(BENCHTIME) -count 3 . \
		| $(GO) run ./cmd/benchjson \
		| $(GO) run ./cmd/benchcompare
