module sidq

go 1.22
