// Command slocompare diffs a fresh load-harness run (a cmd/sidqload
// SLO document) against the committed SLO_<date>.json baseline and
// fails when a route's service levels regressed beyond the tolerance
// bands — the latency/error/shed analogue of cmd/benchcompare.
//
// Usage:
//
//	sidqload -spawn bin/sidqserve -profile ci -out slo-fresh.json
//	slocompare -fresh slo-fresh.json
//
// With no -baseline flag the lexicographically-latest SLO_*.json in
// the working directory is used, so dated baselines supersede each
// other naturally (regenerate with `make load-json`).
//
// The bands are deliberately asymmetric by metric:
//
//   - p99/p999 latency blocks only on a large regression (more than
//     double AND more than 25ms absolute) so power-of-two histogram
//     bucketing and scheduler noise cannot flap the gate; smaller
//     drifts (>35% and >2ms) are advisory. -strict-latency promotes
//     advisories to failures once a baseline has settled on quiet
//     hardware. Routes with fewer samples than -min-samples in either
//     document skip latency checks entirely.
//   - p50 is advisory-only at the same bands: median drift is a tuning
//     signal, tail latency is the contract.
//   - error rate and 429 shed rate always block beyond a small
//     absolute slack (+0.01 and +0.05): correctness of the mix, not a
//     performance statistic.
//   - a route present in the baseline but missing (or empty) in the
//     fresh run blocks: silence is the worst regression.
//   - a fresh document with drain_ok=false blocks: the graceful-drain
//     contract is part of the SLO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// RouteSLO and Document mirror cmd/sidqload's output schema.
type RouteSLO struct {
	Route         string  `json:"route"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	Shed          uint64  `json:"shed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	ErrorRate     float64 `json:"error_rate"`
	ShedRate      float64 `json:"shed_rate"`
}

type Document struct {
	Date      string     `json:"date"`
	Profile   string     `json:"profile,omitempty"`
	Seed      int64      `json:"seed"`
	DurationS float64    `json:"duration_s"`
	Sessions  int        `json:"sessions"`
	Clean     int        `json:"clean_workers"`
	History   int        `json:"history_workers"`
	DrainOK   *bool      `json:"drain_ok,omitempty"`
	Routes    []RouteSLO `json:"routes"`
}

// Options are the tolerance bands; see the package comment for why
// each band is shaped the way it is.
type Options struct {
	MinSamples    uint64  // skip latency checks below this request count
	FailRel       float64 // blocking latency band: rel AND abs must both trip
	FailAbsMs     float64
	WarnRel       float64 // advisory latency band
	WarnAbsMs     float64
	ErrorSlack    float64 // absolute error-rate slack, always blocking
	ShedSlack     float64 // absolute shed-rate slack, always blocking
	StrictLatency bool    // promote latency advisories to failures
}

func defaultOptions() Options {
	return Options{
		MinSamples: 50,
		FailRel:    1.00, FailAbsMs: 25,
		WarnRel: 0.35, WarnAbsMs: 2,
		ErrorSlack: 0.01,
		ShedSlack:  0.05,
	}
}

// Report is the outcome of one comparison: per-route detail lines,
// non-failing advisories, and blocking failures.
type Report struct {
	Lines      []string
	Advisories []string
	Failures   []string
}

// latencyBand classifies one quantile's drift against the bands.
// Returns "fail", "warn", or "".
func latencyBand(opts Options, baseMs, freshMs float64) string {
	if baseMs <= 0 {
		return ""
	}
	abs := freshMs - baseMs
	rel := abs / baseMs
	switch {
	case rel > opts.FailRel && abs > opts.FailAbsMs:
		return "fail"
	case rel > opts.WarnRel && abs > opts.WarnAbsMs:
		return "warn"
	}
	return ""
}

// compare diffs fresh against base under the given bands. Pure so the
// gate's behaviour is unit-testable against fixture documents.
func compare(base, fresh Document, opts Options) Report {
	var rep Report
	freshBy := make(map[string]RouteSLO, len(fresh.Routes))
	for _, r := range fresh.Routes {
		freshBy[r.Route] = r
	}
	baseSeen := make(map[string]bool, len(base.Routes))

	if fresh.DrainOK != nil && !*fresh.DrainOK {
		rep.Failures = append(rep.Failures, "drain_ok=false: graceful SIGTERM drain check failed in the fresh run")
	}

	for _, b := range base.Routes {
		baseSeen[b.Route] = true
		f, ok := freshBy[b.Route]
		if !ok || f.Requests == 0 {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s: route missing or empty in fresh run (baseline had %d requests)", b.Route, b.Requests))
			continue
		}
		marker := " "
		// Latency bands: p99/p999 can block, p50 is advisory-only.
		// Skip entirely when either side is too thin to estimate a tail.
		if b.Requests >= opts.MinSamples && f.Requests >= opts.MinSamples {
			for _, q := range []struct {
				name          string
				baseMs, newMs float64
				blockEligible bool
			}{
				{"p50", b.P50Ms, f.P50Ms, false},
				{"p99", b.P99Ms, f.P99Ms, true},
				{"p999", b.P999Ms, f.P999Ms, true},
			} {
				band := latencyBand(opts, q.baseMs, q.newMs)
				if band == "" {
					continue
				}
				msg := fmt.Sprintf("%s %s %.2fms -> %.2fms (%+.0f%%)",
					b.Route, q.name, q.baseMs, q.newMs, (q.newMs-q.baseMs)/q.baseMs*100)
				blocking := band == "fail" && q.blockEligible
				if band == "warn" && q.blockEligible && opts.StrictLatency {
					blocking = true
				}
				if blocking {
					marker = "!"
					rep.Failures = append(rep.Failures, msg)
				} else {
					if marker == " " {
						marker = "~"
					}
					rep.Advisories = append(rep.Advisories, msg)
				}
			}
		}
		if f.ErrorRate > b.ErrorRate+opts.ErrorSlack {
			marker = "!"
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s error_rate %.3f -> %.3f (slack %.3f)", b.Route, b.ErrorRate, f.ErrorRate, opts.ErrorSlack))
		}
		if f.ShedRate > b.ShedRate+opts.ShedSlack {
			marker = "!"
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s shed_rate %.3f -> %.3f (slack %.3f)", b.Route, b.ShedRate, f.ShedRate, opts.ShedSlack))
		}
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"%s %-16s req %6d -> %6d   p50 %8.2f -> %8.2fms   p99 %8.2f -> %8.2fms   p999 %8.2f -> %8.2fms   err %.3f -> %.3f   shed %.3f -> %.3f",
			marker, b.Route, b.Requests, f.Requests, b.P50Ms, f.P50Ms, b.P99Ms, f.P99Ms, b.P999Ms, f.P999Ms,
			b.ErrorRate, f.ErrorRate, b.ShedRate, f.ShedRate))
	}
	for _, f := range fresh.Routes {
		if !baseSeen[f.Route] {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  %-16s new route (no baseline row, %d requests)", f.Route, f.Requests))
		}
	}
	return rep
}

func latestBaseline() (string, error) {
	matches, err := filepath.Glob("SLO_*.json")
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		wd, _ := os.Getwd()
		return "", fmt.Errorf("no SLO_*.json baseline in %s", wd)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func loadDoc(path string) (Document, error) {
	var d Document
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	return d, json.Unmarshal(b, &d)
}

func main() {
	baseline := flag.String("baseline", "", "baseline SLO_*.json (default: lexicographically latest in cwd)")
	freshPath := flag.String("fresh", "-", "fresh sidqload document ('-' = stdin)")
	minSamples := flag.Uint64("min-samples", 50, "skip latency checks for routes below this request count")
	strict := flag.Bool("strict-latency", false, "promote p99/p999 advisory drifts to failures")
	flag.Parse()

	path := *baseline
	var err error
	if path == "" {
		path, err = latestBaseline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "slocompare: %v\n", err)
			os.Exit(2)
		}
	}
	base, err := loadDoc(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocompare: baseline %s: %v\n", path, err)
		os.Exit(2)
	}
	var fresh Document
	if *freshPath == "-" {
		err = json.NewDecoder(os.Stdin).Decode(&fresh)
	} else {
		fresh, err = loadDoc(*freshPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocompare: fresh document: %v\n", err)
		os.Exit(2)
	}
	if len(base.Routes) == 0 {
		fmt.Fprintf(os.Stderr, "slocompare: baseline %s has no routes\n", path)
		os.Exit(2)
	}

	opts := defaultOptions()
	opts.MinSamples = *minSamples
	opts.StrictLatency = *strict
	rep := compare(base, fresh, opts)

	fmt.Printf("baseline: %s (%s, profile %q, seed %d)\n", path, base.Date, base.Profile, base.Seed)
	for _, l := range rep.Lines {
		fmt.Println(l)
	}
	if len(rep.Advisories) > 0 {
		fmt.Printf("\nslocompare: %d advisory latency drift(s) (not failing; -strict-latency promotes):\n", len(rep.Advisories))
		for _, a := range rep.Advisories {
			fmt.Printf("  ~ %s\n", a)
		}
	}
	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nslocompare: %d blocking SLO regression(s):\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "  ! %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("slocompare: %d routes compared, no blocking regressions\n", len(rep.Lines))
}
