package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) Document {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return d
}

func hasMatch(lines []string, sub string) bool {
	for _, l := range lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := loadFixture(t, "baseline.json")
	rep := compare(base, loadFixture(t, "fresh_pass.json"), defaultOptions())
	if len(rep.Failures) != 0 {
		t.Fatalf("clean run produced failures: %v", rep.Failures)
	}
	if len(rep.Advisories) != 0 {
		t.Fatalf("clean run produced advisories: %v", rep.Advisories)
	}
	if len(rep.Lines) != len(base.Routes) {
		t.Fatalf("reported %d route lines, want %d", len(rep.Lines), len(base.Routes))
	}
}

func TestCompareBucketJitterDoesNotFlap(t *testing.T) {
	// fresh_pass has every latency up to ~30% over baseline — the drift
	// one power-of-two histogram bucket of noise can produce. The gate
	// must stay silent, or two consecutive clean runs would flap.
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_pass.json"), defaultOptions())
	if len(rep.Failures)+len(rep.Advisories) != 0 {
		t.Fatalf("bucket-sized jitter tripped the gate: failures=%v advisories=%v",
			rep.Failures, rep.Advisories)
	}
}

func TestCompareAdvisoryDrift(t *testing.T) {
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_advisory.json"), defaultOptions())
	if len(rep.Failures) != 0 {
		t.Fatalf("advisory drift must not block: %v", rep.Failures)
	}
	if !hasMatch(rep.Advisories, "clean p99") {
		t.Fatalf("want a clean p99 advisory, got %v", rep.Advisories)
	}
	// The drifted route's line is marked "~" in the report.
	if !hasMatch(rep.Lines, "~ clean") {
		t.Fatalf("advisory route not marked in lines: %v", rep.Lines)
	}
}

func TestCompareStrictLatencyPromotes(t *testing.T) {
	opts := defaultOptions()
	opts.StrictLatency = true
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_advisory.json"), opts)
	if !hasMatch(rep.Failures, "clean p99") {
		t.Fatalf("-strict-latency must promote the p99 drift: %v", rep.Failures)
	}
}

func TestCompareBlockingLatencyRegression(t *testing.T) {
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_blocking.json"), defaultOptions())
	if !hasMatch(rep.Failures, "stream/ingest p99") {
		t.Fatalf("2x+25ms p99 regression must block: failures=%v", rep.Failures)
	}
	// p50 regressed just as hard but is advisory-only by design.
	if hasMatch(rep.Failures, "p50") {
		t.Fatalf("p50 must never block: %v", rep.Failures)
	}
	if !hasMatch(rep.Advisories, "stream/ingest p50") {
		t.Fatalf("p50 regression should still be advisory: %v", rep.Advisories)
	}
}

func TestCompareErrorAndShedRatesBlock(t *testing.T) {
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_blocking.json"), defaultOptions())
	if !hasMatch(rep.Failures, "clean error_rate") {
		t.Fatalf("error-rate jump beyond slack must block: %v", rep.Failures)
	}
	if !hasMatch(rep.Failures, "stream/ingest shed_rate") {
		t.Fatalf("shed-rate jump beyond slack must block: %v", rep.Failures)
	}
}

func TestCompareMissingRouteBlocks(t *testing.T) {
	rep := compare(loadFixture(t, "baseline.json"), loadFixture(t, "fresh_missing.json"), defaultOptions())
	if !hasMatch(rep.Failures, "history/range: route missing or empty") {
		t.Fatalf("missing route must block: %v", rep.Failures)
	}
	// clean is present but has zero requests — also a missing-row failure.
	if !hasMatch(rep.Failures, "clean: route missing or empty") {
		t.Fatalf("empty route must block: %v", rep.Failures)
	}
}

func TestCompareDrainFailureBlocks(t *testing.T) {
	base := loadFixture(t, "baseline.json")
	fresh := loadFixture(t, "fresh_pass.json")
	no := false
	fresh.DrainOK = &no
	rep := compare(base, fresh, defaultOptions())
	if !hasMatch(rep.Failures, "drain_ok=false") {
		t.Fatalf("drain_ok=false must block: %v", rep.Failures)
	}
}

func TestCompareMinSamplesSkipsThinRoutes(t *testing.T) {
	base := loadFixture(t, "baseline.json")
	fresh := loadFixture(t, "fresh_blocking.json")
	// stream/open in the fixtures has 16 requests (< 50) and a huge
	// latency swing: it must never trip latency bands.
	for _, f := range append(compare(base, fresh, defaultOptions()).Failures,
		compare(base, fresh, defaultOptions()).Advisories...) {
		if strings.Contains(f, "stream/open p") {
			t.Fatalf("thin route tripped a latency band: %s", f)
		}
	}
}
