// Command sidqload is the production load harness: a closed-loop
// generator that drives a configurable mix of traffic against a live
// sidqserve and emits a machine-readable SLO document, the way
// cmd/benchjson emits BENCH_*.json rows for cmd/benchcompare.
//
// The mix is the serving layer's real workload shape:
//
//   - N concurrent streaming sessions replaying the deterministic
//     simulate.Replay feed through /v1/stream/open → ingest → results,
//     with persist-before-ack ?seq= retries on shed or failed chunks;
//   - batch POST /v1/clean workers posting corrupted trajectory CSV;
//   - GET /v1/history/range readers sweeping seeded random windows
//     over the feed's spatio-temporal extent.
//
// Every request is timed client-side into internal/obs sharded
// histograms; the emitted document records per-route p50/p99/p999
// latency (interpolated quantile estimates), achieved throughput, and
// error and 429-shed rates. cmd/slocompare diffs a fresh document
// against the committed SLO_<date>.json baseline with per-metric
// tolerance bands.
//
// Usage:
//
//	sidqload -addr http://127.0.0.1:8080            # target a running server
//	sidqload -spawn bin/sidqserve -profile ci       # spawn one, run the CI profile
//
// -spawn launches the given sidqserve binary on a free port with a
// temporary durable data directory (-data, -pprof, -quiet), waits for
// readiness, and tears it down afterwards. With -drain-check (the
// default when spawning) the run ends by verifying graceful drain:
// an in-flight ingest ack must complete during SIGTERM drain and
// post-drain requests must receive an orderly 503, not a connection
// reset; the result lands in the document's drain_ok field, which
// slocompare gates on. -pprof-dir snapshots the server's goroutine
// and heap profiles at peak load for artifact upload.
//
// -profile ci pins the deterministic fixed-seed, fixed-duration
// profile the CI latency gate replays (see `make load-check`);
// explicit flags override individual profile values.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"sidq/internal/simulate"
)

// config is the resolved harness configuration.
type config struct {
	addr           string
	spawn          string
	profile        string
	duration       time.Duration
	sessions       int
	sources        int
	chunk          int
	drainEvery     int
	cleanWorkers   int
	cleanTraj      int
	historyWorkers int
	seed           int64
	out            string
	pprofDir       string
	drainCheck     bool
	retain         time.Duration
	segmentBytes   int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sidqload: ")
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running sidqserve (e.g. http://127.0.0.1:8080)")
	flag.StringVar(&cfg.spawn, "spawn", "", "path to a sidqserve binary to spawn on a free port with a temp durable data dir")
	flag.StringVar(&cfg.profile, "profile", "", "named load profile: ci (fixed seed and duration for the CI gate)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load window")
	flag.IntVar(&cfg.sessions, "sessions", 8, "concurrent streaming sessions")
	flag.IntVar(&cfg.sources, "sources", 4, "sources per streaming session")
	flag.IntVar(&cfg.chunk, "chunk", 64, "points per ingest chunk")
	flag.IntVar(&cfg.drainEvery, "drain-every", 8, "drain /results every N ingested chunks")
	flag.IntVar(&cfg.cleanWorkers, "clean-workers", 2, "concurrent batch /v1/clean workers")
	flag.IntVar(&cfg.cleanTraj, "clean-traj", 4, "trajectories per batch clean body")
	flag.IntVar(&cfg.historyWorkers, "history-workers", 2, "concurrent /v1/history/range readers")
	flag.Int64Var(&cfg.seed, "seed", 1, "feed seed (the whole workload is a pure function of it)")
	flag.StringVar(&cfg.out, "out", "-", "SLO JSON output path ('-' = stdout)")
	flag.StringVar(&cfg.pprofDir, "pprof-dir", "", "snapshot server goroutine/heap profiles into this directory at peak load")
	flag.BoolVar(&cfg.drainCheck, "drain-check", true, "verify graceful SIGTERM drain after the run (spawn mode only)")
	flag.DurationVar(&cfg.retain, "spawn-retain", 0, "spawn mode: run sidqserve with -retain and assert sidq_store_disk_bytes plateaus (0 disables)")
	flag.Int64Var(&cfg.segmentBytes, "spawn-segment-bytes", 0, "spawn mode: sidqserve -segment-bytes (0 = server default)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if cfg.profile == "ci" {
		// The CI profile is the committed-baseline contract: fixed seed,
		// fixed duration, fixed mix. Explicit flags still win so a local
		// run can shrink the window.
		for name, apply := range map[string]func(){
			"duration":      func() { cfg.duration = 30 * time.Second },
			"sessions":      func() { cfg.sessions = 16 },
			"seed":          func() { cfg.seed = 41 },
			"clean-workers": func() { cfg.cleanWorkers = 4 },
			"clean-traj":    func() { cfg.cleanTraj = 6 },
			// Retention under load is part of the CI contract: the spawn
			// runs with a short -retain and small segments, and the run
			// fails unless the disk footprint plateaus while segments are
			// actually being removed.
			"spawn-retain":        func() { cfg.retain = 5 * time.Second },
			"spawn-segment-bytes": func() { cfg.segmentBytes = 1 << 20 },
		} {
			if !explicit[name] {
				apply()
			}
		}
	} else if cfg.profile != "" {
		log.Fatalf("unknown -profile %q (want: ci)", cfg.profile)
	}
	if (cfg.addr == "") == (cfg.spawn == "") {
		log.Fatal("exactly one of -addr or -spawn is required")
	}

	base := cfg.addr
	var sp *spawned
	if cfg.spawn != "" {
		var err error
		sp, err = spawnServe(cfg)
		if err != nil {
			log.Fatalf("spawn %s: %v", cfg.spawn, err)
		}
		defer sp.cleanup()
		base = sp.base
		log.Printf("spawned %s on %s (data %s)", cfg.spawn, sp.base, sp.dataDir)
	}

	log.Printf("profile=%q seed=%d duration=%s sessions=%d clean=%d history=%d chunk=%d",
		cfg.profile, cfg.seed, cfg.duration, cfg.sessions, cfg.cleanWorkers, cfg.historyWorkers, cfg.chunk)
	feed := simulate.NewReplay(simulate.ReplayOptions{Seed: cfg.seed, Sources: cfg.sources})
	var disk *diskSampler
	if sp != nil && cfg.retain > 0 {
		disk = startDiskSampler(sp.base, cfg.segmentBytes)
	}
	col, elapsed := runWorkload(cfg, base, feed)

	var diskBounded *bool
	var diskPeak, segsRemoved float64
	if disk != nil {
		disk.stop()
		var ok bool
		var detail string
		ok, diskPeak, segsRemoved, detail = disk.verdict()
		diskBounded = &ok
		log.Printf("disk check: bounded=%v (%s)", ok, detail)
	}
	var drainOK *bool
	if sp != nil {
		if cfg.drainCheck {
			ok, detail := sp.drainCheck(cfg, feed)
			drainOK = &ok
			log.Printf("drain check: ok=%v (%s)", ok, detail)
		}
		sp.stop()
	}

	doc := buildDoc(cfg, col, elapsed, drainOK)
	doc.DiskBounded = diskBounded
	doc.DiskPeakBytes = diskPeak
	doc.SegmentsRemoved = segsRemoved
	for _, r := range doc.Routes {
		log.Printf("%-16s req=%-7d rps=%8.1f p50=%8.2fms p99=%8.2fms p999=%8.2fms err=%.3f shed=%.3f",
			r.Route, r.Requests, r.ThroughputRPS, r.P50Ms, r.P99Ms, r.P999Ms, r.ErrorRate, r.ShedRate)
	}
	if err := writeDoc(cfg.out, doc); err != nil {
		log.Fatalf("write %s: %v", cfg.out, err)
	}
	if cfg.out != "-" {
		log.Printf("wrote %s", cfg.out)
	}
	if drainOK != nil && !*drainOK {
		os.Exit(1)
	}
	if diskBounded != nil && !*diskBounded {
		os.Exit(1)
	}
}
