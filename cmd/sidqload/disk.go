package main

// Disk-bound verification for retention-configured spawns: while the
// workload runs, a sampler scrapes the server's /v1/metrics for
// sidq_store_disk_bytes and sidq_store_segments_removed_total. A
// server with -retain set must actually truncate (segments removed)
// and its disk footprint must plateau — the second half of the run may
// not peak meaningfully above the first half, where "meaningfully"
// allows the closed loop's throughput wobble plus a couple of segments
// of truncation granularity. The verdict lands in the SLO document's
// disk_bounded field and fails the run like a failed drain check.

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

type diskSample struct {
	at      time.Time
	bytes   float64
	removed float64
}

type diskSampler struct {
	base    string
	slack   float64 // absolute headroom in bytes (truncation granularity)
	stopCh  chan struct{}
	doneCh  chan struct{}
	mu      sync.Mutex
	samples []diskSample
	errs    int
}

// startDiskSampler begins scraping base/v1/metrics every 250ms.
func startDiskSampler(base string, segmentBytes int64) *diskSampler {
	if segmentBytes <= 0 {
		segmentBytes = 64 << 20
	}
	ds := &diskSampler{
		base:   base,
		slack:  float64(2 * segmentBytes),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	go ds.run()
	return ds
}

func (ds *diskSampler) run() {
	defer close(ds.doneCh)
	client := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ds.stopCh:
			return
		case <-t.C:
			bytes, removed, err := scrapeStoreGauges(client, ds.base)
			ds.mu.Lock()
			if err != nil {
				ds.errs++
			} else {
				ds.samples = append(ds.samples, diskSample{at: time.Now(), bytes: bytes, removed: removed})
			}
			ds.mu.Unlock()
		}
	}
}

func (ds *diskSampler) stop() {
	close(ds.stopCh)
	<-ds.doneCh
}

// verdict decides whether the disk footprint stayed bounded. Returns
// (bounded, peakBytes, segmentsRemoved, detail); ok=false with an
// explanatory detail when too few samples arrived to judge.
func (ds *diskSampler) verdict() (bounded bool, peak, removed float64, detail string) {
	ds.mu.Lock()
	samples := ds.samples
	errs := ds.errs
	ds.mu.Unlock()
	if len(samples) < 8 {
		return false, 0, 0, fmt.Sprintf("only %d metric samples (%d scrape errors): cannot judge", len(samples), errs)
	}
	half := len(samples) / 2
	var firstPeak, secondPeak float64
	for i, s := range samples {
		if s.bytes > peak {
			peak = s.bytes
		}
		if i < half {
			if s.bytes > firstPeak {
				firstPeak = s.bytes
			}
		} else if s.bytes > secondPeak {
			secondPeak = s.bytes
		}
	}
	removed = samples[len(samples)-1].removed
	if removed <= 0 {
		return false, peak, removed, "retention never removed a segment"
	}
	limit := firstPeak*1.5 + ds.slack
	if secondPeak > limit {
		return false, peak, removed,
			fmt.Sprintf("disk grew: first-half peak %.0f B, second-half peak %.0f B exceeds limit %.0f B", firstPeak, secondPeak, limit)
	}
	return true, peak, removed,
		fmt.Sprintf("plateaued: peak %.0f B, %.0f segments removed", peak, removed)
}

// scrapeStoreGauges pulls the two unlabeled store series the disk
// check needs from one Prometheus text scrape.
func scrapeStoreGauges(client *http.Client, base string) (diskBytes, removed float64, err error) {
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var target *float64
		switch {
		case strings.HasPrefix(line, "sidq_store_disk_bytes "):
			target = &diskBytes
		case strings.HasPrefix(line, "sidq_store_segments_removed_total "):
			target = &removed
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, perr := strconv.ParseFloat(fields[1], 64); perr == nil {
			*target = v
		}
	}
	return diskBytes, removed, sc.Err()
}
