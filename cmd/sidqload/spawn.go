package main

// Spawn mode: launch a sidqserve binary on a free port with a
// temporary durable data directory, wait for readiness, and at the end
// of the run verify the graceful-drain contract the hardened server
// promises: in-flight ingest acks complete during SIGTERM drain, and
// requests arriving while the drain window is open receive an orderly
// 503 — never a connection reset.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"time"

	"sidq/internal/simulate"
)

// spawned is a sidqserve child process under harness control.
type spawned struct {
	cmd     *exec.Cmd
	base    string
	dataDir string
	done    chan error // closed-over cmd.Wait result
	stopped bool
}

// spawnServe launches the binary and blocks until /v1/healthz answers.
func spawnServe(cfg config) (*spawned, error) {
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	dataDir, err := os.MkdirTemp("", "sidqload-data-")
	if err != nil {
		return nil, err
	}
	addr := "127.0.0.1:" + strconv.Itoa(port)
	args := []string{
		"-addr", addr,
		"-data", dataDir,
		"-quiet",
		"-pprof",
		"-max-inflight", "256",
		"-stream-max-sessions", strconv.Itoa(cfg.sessions + 8),
		"-grace", "10s",
		"-drain-linger", "750ms",
	}
	if cfg.retain > 0 {
		// Retention under load: short window, small segments, so the
		// disk sampler can watch segments being dropped within the run.
		args = append(args, "-retain", cfg.retain.String())
	}
	if cfg.segmentBytes > 0 {
		args = append(args, "-segment-bytes", strconv.FormatInt(cfg.segmentBytes, 10))
	}
	cmd := exec.Command(cfg.spawn, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dataDir)
		return nil, err
	}
	sp := &spawned{
		cmd:     cmd,
		base:    "http://" + addr,
		dataDir: dataDir,
		done:    make(chan error, 1),
	}
	go func() { sp.done <- cmd.Wait() }()

	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(sp.base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return sp, nil
			}
		}
		select {
		case werr := <-sp.done:
			os.RemoveAll(dataDir)
			return nil, fmt.Errorf("server exited before ready: %v", werr)
		default:
		}
		if time.Now().After(deadline) {
			sp.stop()
			return nil, errors.New("server not ready after 15s")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// drainCheck exercises the SIGTERM drain: it opens a dedicated
// session, fires a large ingest chunk, signals the server while that
// chunk is in flight, and then probes with new requests. Passing
// means the in-flight ack completed (2xx) AND at least one post-drain
// request received an orderly 503 AND no probe saw a connection
// reset. The server is left exiting; stop() reaps it.
func (sp *spawned) drainCheck(cfg config, feed *simulate.Replay) (bool, string) {
	client := &http.Client{Timeout: 30 * time.Second}
	status, body := postForm(client, sp.base+"/v1/stream/open")
	if status != http.StatusCreated {
		return false, fmt.Sprintf("open session: status %d", status)
	}
	id := sessionFrom(body)
	if id == "" {
		return false, "open session: no id in ack"
	}

	// Hold an ingest request in flight deterministically: stream the
	// chunk body through a pipe, send SIGTERM while the server is
	// mid-body-read, then finish the body. The ack must still be 2xx —
	// in-flight work completes during drain. (The stream index far
	// outside the worker range keeps its source ids disjoint from the
	// measured feed's.)
	chunk := feed.AppendChunk(nil, 1<<20, 0, 2000)
	half := len(chunk) / 2
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := client.Post(sp.base+"/v1/stream/ingest?session="+id+"&seq=1", "text/csv", pr)
		if err != nil {
			inflight <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()
	if _, err := pw.Write(chunk[:half]); err != nil {
		return false, fmt.Sprintf("write body: %v", err)
	}
	// Let the server reach the body read before signaling. The spawned
	// child inherits SIDQ_TEST_DELAY, whose injected sleep runs before
	// the service sees the request — lead the SIGTERM by that much too,
	// or the delayed request would arrive at the service after the
	// drain flag and be 503d despite predating the signal.
	lead := 20 * time.Millisecond
	if d, err := time.ParseDuration(os.Getenv("SIDQ_TEST_DELAY")); err == nil && d > 0 {
		lead += d
	}
	time.Sleep(lead)
	if err := sp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return false, fmt.Sprintf("signal: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // SIGTERM lands while we are mid-body
	if _, err := pw.Write(chunk[half:]); err != nil {
		return false, fmt.Sprintf("write body: %v", err)
	}
	pw.Close()
	r := <-inflight
	if r.err != nil || r.status < 200 || r.status >= 300 {
		return false, fmt.Sprintf("in-flight ingest during drain: status %d err %v", r.status, r.err)
	}

	// The drain window is open: new work must 503, never reset.
	saw503 := false
	probe := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := probe.Post(sp.base+"/v1/stream/open", "", nil)
		if err != nil {
			if errors.Is(err, syscall.ECONNREFUSED) {
				break // listener closed after the linger: drain is over
			}
			return false, fmt.Sprintf("post-drain probe: %v (want 503, got a broken connection)", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saw503 {
		return false, "no post-drain request observed a 503 before the listener closed"
	}
	return true, "in-flight ack completed; post-drain requests got 503"
}

// stop terminates the child (idempotent) and removes its data dir.
func (sp *spawned) stop() {
	if sp.stopped {
		return
	}
	sp.stopped = true
	sp.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-sp.done:
	case <-time.After(15 * time.Second):
		sp.cmd.Process.Kill()
		<-sp.done
	}
}

// cleanup is the deferred teardown: reap the child and drop its data.
func (sp *spawned) cleanup() {
	sp.stop()
	os.RemoveAll(sp.dataDir)
}

func postForm(client *http.Client, url string) (int, []byte) {
	resp, err := client.Post(url, "", nil)
	if err != nil {
		return 0, nil
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, b
}

func sessionFrom(body []byte) string {
	var ack struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return ""
	}
	return ack.Session
}

// freePort reserves an ephemeral TCP port and releases it for the
// child to bind. The classic tiny race is acceptable for a harness.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}
