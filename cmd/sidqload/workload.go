package main

// The closed-loop workload: every worker issues its next request only
// after the previous one completes, so offered load adapts to the
// server instead of queueing unboundedly — achieved throughput and
// latency are then honest joint measurements. Latencies are recorded
// into internal/obs sharded histograms (lock-free Observe, merged
// snapshot at the end), the same primitive the server uses for its own
// request latency families.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sidq/internal/obs"
	"sidq/internal/simulate"
)

// Route keys: the client-side label set of the SLO document.
const (
	routeOpen    = "stream/open"
	routeIngest  = "stream/ingest"
	routeResults = "stream/results"
	routeClose   = "stream/close"
	routeClean   = "clean"
	routeHistory = "history/range"
)

var allRoutes = []string{routeOpen, routeIngest, routeResults, routeClose, routeClean, routeHistory}

// recorder accumulates one route's client-side observations.
type recorder struct {
	hist     obs.Histogram
	requests atomic.Uint64
	errors   atomic.Uint64 // transport failures + non-2xx other than 429
	shed     atomic.Uint64 // 429 responses
}

// collector is the fixed route→recorder table; immutable after
// newCollector, so workers index it without locks.
type collector struct {
	rec map[string]*recorder
}

func newCollector() *collector {
	c := &collector{rec: map[string]*recorder{}}
	for _, r := range allRoutes {
		c.rec[r] = &recorder{}
	}
	return c
}

// loadClient issues and records requests for one harness run.
type loadClient struct {
	base string
	http *http.Client
	col  *collector
}

// call issues one request and records its latency and outcome. The
// response body is returned fully read (and the connection released).
// A transport error counts as an error with status 0.
func (lc *loadClient) call(route, method, url string, body []byte) (int, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		panic(fmt.Sprintf("sidqload: build %s %s: %v", method, url, err))
	}
	if body != nil {
		req.Header.Set("Content-Type", "text/csv")
	}
	rec := lc.col.rec[route]
	start := time.Now()
	resp, err := lc.http.Do(req)
	rec.hist.Observe(time.Since(start).Nanoseconds())
	rec.requests.Add(1)
	if err != nil {
		rec.errors.Add(1)
		return 0, nil
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		rec.shed.Add(1)
	case resp.StatusCode >= 400:
		rec.errors.Add(1)
	}
	return resp.StatusCode, b
}

// sessionWorker runs one streaming session's closed loop: open,
// ingest chunks with persist-before-ack ?seq= retries (a shed or
// failed chunk is retried under the same seq, exercising the server's
// retry dedup), periodic result drains, then a final flush and close.
func (lc *loadClient) sessionWorker(ctx context.Context, cfg config, feed *simulate.Replay, stream int) {
	sessionID := ""
	for ctx.Err() == nil {
		status, body := lc.call(routeOpen, http.MethodPost, lc.base+"/v1/stream/open?maxspeed=30", nil)
		if status == http.StatusCreated {
			var ack struct {
				Session string `json:"session"`
			}
			if json.Unmarshal(body, &ack) == nil && ack.Session != "" {
				sessionID = ack.Session
			}
			break
		}
		sleepCtx(ctx, 20*time.Millisecond)
	}
	if sessionID == "" {
		return
	}
	var buf []byte
	seq := uint64(0)
	for chunk := 0; ctx.Err() == nil; chunk++ {
		buf = feed.AppendChunk(buf[:0], stream, chunk, cfg.chunk)
		seq++
		for ctx.Err() == nil {
			status, _ := lc.call(routeIngest, http.MethodPost,
				fmt.Sprintf("%s/v1/stream/ingest?session=%s&seq=%d", lc.base, sessionID, seq), buf)
			if status >= 200 && status < 300 {
				break
			}
			if status == http.StatusNotFound {
				return // session evicted out from under us; nothing to tear down
			}
			sleepCtx(ctx, 5*time.Millisecond)
		}
		if (chunk+1)%cfg.drainEvery == 0 {
			lc.call(routeResults, http.MethodGet, lc.base+"/v1/stream/"+sessionID+"/results", nil)
		}
	}
	// Teardown runs after the measured window closes; it is recorded
	// like any other traffic (the tail is part of the workload).
	lc.call(routeResults, http.MethodGet, lc.base+"/v1/stream/"+sessionID+"/results?flush=1", nil)
	lc.call(routeClose, http.MethodDelete, lc.base+"/v1/stream/"+sessionID, nil)
}

// cleanWorker posts the same corrupted batch body in a closed loop.
func (lc *loadClient) cleanWorker(ctx context.Context, body []byte) {
	for ctx.Err() == nil {
		lc.call(routeClean, http.MethodPost, lc.base+"/v1/clean?maxspeed=30", body)
	}
}

// historyWorker sweeps seeded random spatio-temporal windows over the
// feed's extent through /v1/history/range.
func (lc *loadClient) historyWorker(ctx context.Context, cfg config, feed *simulate.Replay, worker int) {
	rng := rand.New(rand.NewSource(cfg.seed + 1000 + int64(worker)))
	ext := feed.Extent()
	span := feed.Span()
	for ctx.Err() == nil {
		w, h := ext.Width()/4, ext.Height()/4
		x0 := ext.Min.X + rng.Float64()*(ext.Width()-w)
		y0 := ext.Min.Y + rng.Float64()*(ext.Height()-h)
		t0 := rng.Float64() * span * 4
		q := url.Values{}
		q.Set("minx", fmt.Sprintf("%.1f", x0))
		q.Set("maxx", fmt.Sprintf("%.1f", x0+w))
		q.Set("miny", fmt.Sprintf("%.1f", y0))
		q.Set("maxy", fmt.Sprintf("%.1f", y0+h))
		q.Set("mint", fmt.Sprintf("%.1f", t0))
		q.Set("maxt", fmt.Sprintf("%.1f", t0+span))
		lc.call(routeHistory, http.MethodGet, lc.base+"/v1/history/range?"+q.Encode(), nil)
	}
}

// runWorkload drives the full mix for cfg.duration and returns the
// collector plus the elapsed wall time (measured through worker join,
// so teardown requests are inside the throughput denominator).
func runWorkload(cfg config, base string, feed *simulate.Replay) (*collector, time.Duration) {
	col := newCollector()
	lc := &loadClient{
		base: base,
		col:  col,
		http: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.sessions + cfg.cleanWorkers + cfg.historyWorkers + 8,
				MaxIdleConnsPerHost: cfg.sessions + cfg.cleanWorkers + cfg.historyWorkers + 8,
			},
		},
	}
	cleanBody := feed.BatchCSV(cfg.cleanTraj)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			lc.sessionWorker(ctx, cfg, feed, stream)
		}(i)
	}
	for i := 0; i < cfg.cleanWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc.cleanWorker(ctx, cleanBody)
		}()
	}
	for i := 0; i < cfg.historyWorkers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			lc.historyWorker(ctx, cfg, feed, worker)
		}(i)
	}
	if cfg.pprofDir != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			capturePprof(ctx, base, cfg.pprofDir, cfg.duration*3/5)
		}()
	}
	wg.Wait()
	return col, time.Since(start)
}

// capturePprof snapshots the server's goroutine and heap profiles at
// peak load (after the given delay into the run). Failures are logged,
// not fatal: an external -addr target may not expose /debug/pprof/.
func capturePprof(ctx context.Context, base, dir string, after time.Duration) {
	select {
	case <-time.After(after):
	case <-ctx.Done():
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "sidqload: pprof dir: %v\n", err)
		return
	}
	client := &http.Client{Timeout: 20 * time.Second}
	for path, name := range map[string]string{
		"/debug/pprof/goroutine?debug=1": "goroutine.txt",
		"/debug/pprof/heap":              "heap.pb.gz",
	} {
		resp, err := client.Get(base + path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidqload: pprof %s: %v\n", path, err)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "sidqload: pprof %s: status %d\n", path, resp.StatusCode)
			continue
		}
		if err := os.WriteFile(dir+"/"+name, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sidqload: pprof write %s: %v\n", name, err)
		}
	}
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// RouteSLO is one route's measured service levels. Mirrored by
// cmd/slocompare the way cmd/benchcompare mirrors benchjson's Result.
type RouteSLO struct {
	Route         string  `json:"route"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	Shed          uint64  `json:"shed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	ErrorRate     float64 `json:"error_rate"`
	ShedRate      float64 `json:"shed_rate"`
}

// Document is one load-harness run: the SLO_<date>.json schema.
// DiskBounded mirrors DrainOK: set only when the run verified the
// retention contract (spawn mode with -spawn-retain); older baselines
// simply lack the field.
type Document struct {
	Date            string     `json:"date"`
	Profile         string     `json:"profile,omitempty"`
	Seed            int64      `json:"seed"`
	DurationS       float64    `json:"duration_s"`
	Sessions        int        `json:"sessions"`
	Clean           int        `json:"clean_workers"`
	History         int        `json:"history_workers"`
	DrainOK         *bool      `json:"drain_ok,omitempty"`
	DiskBounded     *bool      `json:"disk_bounded,omitempty"`
	DiskPeakBytes   float64    `json:"disk_peak_bytes,omitempty"`
	SegmentsRemoved float64    `json:"segments_removed,omitempty"`
	Routes          []RouteSLO `json:"routes"`
}

func buildDoc(cfg config, col *collector, elapsed time.Duration, drainOK *bool) Document {
	doc := Document{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Profile:   cfg.profile,
		Seed:      cfg.seed,
		DurationS: elapsed.Seconds(),
		Sessions:  cfg.sessions,
		Clean:     cfg.cleanWorkers,
		History:   cfg.historyWorkers,
		DrainOK:   drainOK,
	}
	for _, route := range allRoutes {
		rec := col.rec[route]
		n := rec.requests.Load()
		snap := rec.hist.Snapshot()
		r := RouteSLO{
			Route:         route,
			Requests:      n,
			Errors:        rec.errors.Load(),
			Shed:          rec.shed.Load(),
			ThroughputRPS: float64(n) / elapsed.Seconds(),
			P50Ms:         snap.QuantileEst(0.50) / 1e6,
			P99Ms:         snap.QuantileEst(0.99) / 1e6,
			P999Ms:        snap.QuantileEst(0.999) / 1e6,
		}
		if n > 0 {
			r.ErrorRate = float64(r.Errors) / float64(n)
			r.ShedRate = float64(r.Shed) / float64(n)
		}
		doc.Routes = append(doc.Routes, r)
	}
	return doc
}

func writeDoc(path string, doc Document) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
