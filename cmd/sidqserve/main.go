// Command sidqserve runs the sidq quality-management middleware as an
// HTTP service (see internal/server for the endpoint contract):
//
//	sidqserve -addr :8080
//	curl -s localhost:8080/v1/taxonomy
//	sidqsim -n 5 | curl -s --data-binary @- localhost:8080/v1/assess
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"sidq/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("sidqserve: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("sidqserve: %v", err)
	}
}
