// Command sidqserve runs the sidq quality-management middleware as an
// HTTP service (see internal/server for the endpoint contract):
//
//	sidqserve -addr :8080
//	curl -s localhost:8080/v1/taxonomy
//	sidqsim -n 5 | curl -s --data-binary @- localhost:8080/v1/assess
//
// Resilience flags: -max-body caps request bodies, -max-inflight
// bounds concurrent requests (excess load is shed with 503), and
// -request-timeout bounds per-request handling. A SIGINT/SIGTERM
// shutdown drains in order: /v1/readyz flips to 503 and new work is
// rejected with 503 "draining" while in-flight requests (ingest acks
// included) run to completion, the 503 window is held open for
// -drain-linger so late clients see an orderly rejection instead of a
// connection reset, and only then does the listener close; the whole
// sequence shares the -grace budget.
//
// Observability: GET /v1/metrics serves the Prometheus text
// exposition (always on; it bypasses the limiter and timeout), and
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// Streaming ingestion (POST /v1/stream/open → ingest → results) is
// bounded by -stream-max-sessions and evicted after -stream-idle-ttl;
// -stream-lateness sets the default reorder watermark. -network loads
// a road network (roadnet CSV: node,x,y / edge,from,to,speedcap rows)
// and turns on online map matching for streamed points.
//
// Durability: -data <dir> turns on the write-ahead log — every
// accepted ingest chunk is persisted before it is acknowledged,
// session state is snapshotted every -snapshot-every chunks, and a
// restart (including kill -9) recovers every acknowledged row and
// serves GET /v1/history/range from the on-disk segments. -fsync
// picks the durability point: always (fsync before every ack), batch
// (background fsync, the default), or off (benchmarks only). Verify a
// data directory offline with "sidqstore verify <dir>".
//
// Retention: -retain bounds the WAL on disk. A background loop drops
// segments whose records are older than the window once no live
// session still needs them for recovery — lagging sessions are
// checkpointed (compacted) first so they cannot pin old segments —
// and trims the history index to match. /v1/history/range reports the
// retained floor in the X-Sidq-History-Min-Seq header. -segment-bytes
// tunes the truncation granularity.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sidq/internal/roadnet"
	"sidq/internal/server"
	"sidq/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxBody     = flag.Int64("max-body", 32<<20, "request body cap in bytes")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		grace       = flag.Duration("grace", 10*time.Second, "graceful shutdown drain period")
		drainLinger = flag.Duration("drain-linger", 500*time.Millisecond, "after in-flight requests drain, keep answering new requests with 503 for this long before closing the listener")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in)")
		quiet       = flag.Bool("quiet", false, "discard the per-request access log (load-harness runs)")

		networkPath    = flag.String("network", "", "road network CSV; enables online map matching for streamed points")
		maxSessions    = flag.Int("stream-max-sessions", 32, "open streaming sessions before shedding with 429")
		streamIdleTTL  = flag.Duration("stream-idle-ttl", 5*time.Minute, "idle streaming sessions are evicted after this")
		streamLateness = flag.Float64("stream-lateness", 5, "default event-time lateness bound (seconds) for stream reordering")

		dataDir     = flag.String("data", "", "durable data directory; empty runs memory-only")
		fsyncFlag   = flag.String("fsync", "batch", "WAL durability point: always, batch, or off")
		snapEvery   = flag.Int("snapshot-every", 16, "checkpoint session state into the WAL every N chunks")
		retain      = flag.Duration("retain", 0, "drop WAL data older than this once no live session needs it for recovery (0 keeps everything)")
		retainEvery = flag.Duration("retain-every", 0, "retention pass period (default retain/4, clamped to 1s..30s)")
		segBytes    = flag.Int64("segment-bytes", 0, "WAL segment roll size in bytes (default 64 MiB; retention drops whole segments, so smaller segments bound disk tighter)")
	)
	flag.Parse()

	streamCfg := server.StreamConfig{
		MaxSessions: *maxSessions,
		IdleTTL:     *streamIdleTTL,
		Lateness:    *streamLateness,
	}
	if *networkPath != "" {
		f, err := os.Open(*networkPath)
		if err != nil {
			log.Fatalf("sidqserve: open network: %v", err)
		}
		g, err := roadnet.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("sidqserve: load network %s: %v", *networkPath, err)
		}
		streamCfg.Network = g
		log.Printf("sidqserve: loaded road network %s (%d nodes, %d edges)",
			*networkPath, g.NumNodes(), g.NumEdges())
	}

	cfg := server.Config{
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Stream:         streamCfg,
	}
	if *quiet {
		cfg.Logger = server.DiscardLogger()
	}
	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncFlag)
		if err != nil {
			log.Fatalf("sidqserve: -fsync: %v", err)
		}
		cfg.Durability = server.DurabilityConfig{
			Dir:           *dataDir,
			Fsync:         mode,
			SnapshotEvery: *snapEvery,
			SegmentBytes:  *segBytes,
			Retain:        *retain,
			RetainEvery:   *retainEvery,
		}
	}
	svc, err := server.OpenService(cfg)
	if err != nil {
		log.Fatalf("sidqserve: open %s: %v", *dataDir, err)
	}
	defer svc.Close()
	if *dataDir != "" {
		log.Printf("sidqserve: durable data in %s (fsync=%s, snapshot-every=%d, retain=%s)",
			*dataDir, *fsyncFlag, *snapEvery, *retain)
	}
	handler := http.Handler(svc)
	// SIDQ_TEST_DELAY injects a fixed per-request latency so the SLO
	// gate (make load-check) can prove it catches a regression. It is a
	// test hook, never a production knob — hence an env var, not a flag,
	// and a loud warning.
	if d := os.Getenv("SIDQ_TEST_DELAY"); d != "" {
		delay, err := time.ParseDuration(d)
		if err != nil {
			log.Fatalf("sidqserve: SIDQ_TEST_DELAY: %v", err)
		}
		log.Printf("sidqserve: WARNING: SIDQ_TEST_DELAY=%s injects artificial latency into every request (SLO-gate testing only)", delay)
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			inner.ServeHTTP(w, r)
		})
	}
	if *pprofOn {
		// Profiling endpoints mount outside the service's middleware
		// stack so the limiter and timeout cannot starve a profile of a
		// wedged process — the moment profiling is for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("sidqserve: listening on %s (max-body=%d max-inflight=%d request-timeout=%s)",
		*addr, *maxBody, *maxInFlight, *reqTimeout)

	select {
	case err := <-errCh:
		log.Fatalf("sidqserve: %v", err)
	case <-ctx.Done():
	}

	// Drain, in order: (1) StartDrain fails readiness and rejects new
	// work with 503 while the listener stays open — late clients see an
	// orderly rejection, not a connection reset; (2) AwaitIdle lets
	// every in-flight request (ingest acks included) run to completion;
	// (3) a short linger keeps the 503 window open so load balancers
	// and retrying clients observe the drain; (4) only then does
	// Shutdown close the listener. Everything shares the -grace budget.
	log.Printf("sidqserve: shutdown signal received, draining for up to %s", *grace)
	deadline := time.Now().Add(*grace)
	svc.StartDrain()
	idleCtx, cancelIdle := context.WithDeadline(context.Background(), deadline)
	idle := svc.AwaitIdle(idleCtx)
	cancelIdle()
	if !idle {
		log.Printf("sidqserve: drain grace expired with requests still in flight")
	}
	if lg := *drainLinger; lg > 0 {
		if until := time.Until(deadline); until < lg {
			lg = until
		}
		if lg > 0 {
			time.Sleep(lg)
		}
	}
	shutdownCtx, cancel := context.WithDeadline(context.Background(), deadline.Add(time.Second))
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("sidqserve: forced shutdown: %v", err)
		_ = srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("sidqserve: %v", err)
	}
	log.Printf("sidqserve: stopped")
}
