// Command sidqsim generates synthetic spatial IoT datasets: clean and
// corrupted vehicle trajectories over a synthetic road network (CSV on
// stdout or to files), so downstream tools and notebooks can exercise
// the cleaning stack on reproducible data.
//
// Usage:
//
//	sidqsim -n 10 -noise 8 -drop 0.2 -out trips.csv -truth truth.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func main() {
	var (
		n       = flag.Int("n", 10, "number of vehicles")
		noise   = flag.Float64("noise", 5, "GPS noise stddev (m)")
		outRate = flag.Float64("outliers", 0.02, "outlier injection rate")
		drop    = flag.Float64("drop", 0.1, "sample drop rate")
		seed    = flag.Int64("seed", 1, "seed")
		size    = flag.Int("grid", 10, "city grid size (NxN intersections)")
		out     = flag.String("out", "-", "corrupted output file ('-' = stdout)")
		truth   = flag.String("truth", "", "optional ground-truth output file")
	)
	flag.Parse()

	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: *size, NY: *size, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: *seed,
	})
	trips := simulate.Trips(g, simulate.TripOptions{
		NumObjects: *n, MinHops: 8, Speed: 12, SampleInterval: 1, Seed: *seed + 1,
	})
	corrupted := make([]*trajectory.Trajectory, len(trips))
	for i, tr := range trips {
		c := simulate.Corruption{
			NoiseSigma:  *noise,
			OutlierRate: *outRate,
			OutlierMag:  20 * *noise,
			DropRate:    *drop,
			Seed:        *seed + int64(i),
		}
		corrupted[i], _ = c.Apply(tr)
	}
	if err := writeCSV(*out, corrupted); err != nil {
		log.Fatalf("sidqsim: %v", err)
	}
	if *truth != "" {
		if err := writeCSV(*truth, trips); err != nil {
			log.Fatalf("sidqsim: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "sidqsim: wrote %d trajectories (noise=%.1f m, outliers=%.0f%%, drop=%.0f%%)\n",
		len(corrupted), *noise, *outRate*100, *drop*100)
}

func writeCSV(path string, trs []*trajectory.Trajectory) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trajectory.WriteCSV(w, trs)
}
