// Command sidqclean runs the quality-aware cleaning pipeline over a
// trajectory CSV (as produced by sidqsim): it assesses the data, plans
// the stages needed to meet the default quality targets, executes them,
// and writes the cleaned CSV plus a quality report to stderr.
//
// Usage:
//
//	sidqsim -out dirty.csv
//	sidqclean -in dirty.csv -out clean.csv -maxspeed 20
//	sidqclean -readings -in sensors.csv -out clean.csv
//
// With -readings the input is a sensor-reading CSV
// ("sensor,t,x,y,value"); the pipeline then runs reading-side stages
// (deduplication + thematic repair) instead of trajectory stages.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sidq/internal/core"
	"sidq/internal/obs"
	"sidq/internal/quality"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func main() {
	var (
		in       = flag.String("in", "-", "input CSV ('-' = stdin)")
		out      = flag.String("out", "-", "output CSV ('-' = stdout)")
		maxSpeed = flag.Float64("maxspeed", 20, "physical speed bound (m/s) for consistency checks")
		interval = flag.Float64("interval", 1, "nominal sampling interval (s)")
		readings = flag.Bool("readings", false, "input is a sensor-reading CSV (sensor,t,x,y,value)")
		metrics  = flag.Bool("metrics", false, "dump the Prometheus metrics exposition to stderr after cleaning")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		core.InitRunnerMetrics(reg)
	}
	defer dumpMetrics(reg)

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("sidqclean: %v", err)
		}
		defer f.Close()
		r = f
	}
	if *readings {
		cleanReadings(r, *out, reg)
		return
	}
	trs, err := trajectory.ReadCSVColumns(r)
	if err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
	ds := &core.Dataset{
		Trajectories:     trs,
		ExpectedInterval: *interval,
		MaxSpeed:         *maxSpeed,
	}
	before := ds.Assess()
	cleaned, stages, reports, err := core.PlanAndRunIterativeWith(context.Background(), cleaningRunner(reg), ds, core.DefaultTargets(), 3)
	if err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sidqclean: %d trajectories, planned %d stages\n", len(trs), len(stages))
	for _, s := range stages {
		fmt.Fprintf(os.Stderr, "  - %s (%s)\n", s.Name(), s.Task())
	}
	fmt.Fprintln(os.Stderr, "quality movement (+ improved / - regressed / = unchanged):")
	fmt.Fprint(os.Stderr, indent(quality.Diff(before, cleaned.Assess())))
	_ = reports

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("sidqclean: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trajectory.WriteCSV(w, cleaned.Trajectories); err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
}

func cleanReadings(r io.Reader, outPath string, reg *obs.Registry) {
	rs, err := stid.ReadCSV(r)
	if err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
	ds := &core.Dataset{Readings: rs}
	p := core.NewPipeline(core.DeduplicateStage{CellSize: 1, TimeBucket: 1}, core.ThematicRepairStage{})
	cleaned, _, err := p.RunContext(context.Background(), cleaningRunner(reg), ds)
	if err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
	_, before := ds.AssessParts()
	_, after := cleaned.AssessParts()
	fmt.Fprintf(os.Stderr, "sidqclean: %d readings -> %d after dedup + thematic repair\n", len(rs), len(cleaned.Readings))
	fmt.Fprintln(os.Stderr, "quality movement (+ improved / - regressed / = unchanged):")
	fmt.Fprint(os.Stderr, indent(quality.Diff(before, after)))
	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatalf("sidqclean: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := stid.WriteCSV(w, cleaned.Readings); err != nil {
		log.Fatalf("sidqclean: %v", err)
	}
}

// cleaningRunner builds the pipeline runner, attaching the registry
// when -metrics is set (reg may be nil).
func cleaningRunner(reg *obs.Registry) *core.Runner {
	return &core.Runner{Policy: core.SkipStage, Obs: reg}
}

func dumpMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "=== metrics ===")
	_ = reg.WritePrometheus(os.Stderr)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "  " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
