// Command benchcompare diffs a fresh benchmark run (benchjson output
// on stdin) against a committed BENCH_<date>.json baseline and fails
// when a gated benchmark regressed beyond the threshold.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkE[12]_' -benchmem . \
//	    | go run ./cmd/benchjson \
//	    | go run ./cmd/benchcompare
//
// With no -baseline flag the lexicographically-latest BENCH_*.json in
// the working directory is used, so dated baselines supersede each
// other naturally (see `make bench-json`). Every row shared between
// the two documents is reported; only rows matching -gate (default:
// the E1/E2 experiment rows and the warm CH query row) can fail the run, and only when ns/op or
// allocs/op regressed by more than -threshold (default 20%).
//
// b_per_op is compared too, but advisorily: a gated row whose bytes/op
// regressed beyond the threshold while ns/op and allocs/op stayed flat
// is reported as a warning without failing the run. Layout regressions
// usually show up in bytes first (bigger transient buffers at the same
// allocation count), so the warning surfaces them in the bench job
// before they grow into time; promote with -strict-bytes once a
// baseline has settled.
//
// -advisory downgrades gated failures to an explicit "ADVISORY
// REGRESSION" summary line with exit 0, for shared CI runners whose
// timing noise makes a hard gate flap — the bench job greps for the
// line and annotates the build instead of silently swallowing a
// non-zero exit with continue-on-error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// Result mirrors cmd/benchjson's per-benchmark row.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document mirrors cmd/benchjson's output document.
type Document struct {
	Date       string   `json:"date"`
	Benchmarks []Result `json:"benchmarks"`
}

func latestBaseline() (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline in %s", mustGetwd())
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

func loadDoc(path string) (Document, error) {
	var d Document
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	return d, json.Unmarshal(b, &d)
}

func foldBest(rows []Result) []Result {
	idx := make(map[string]int, len(rows))
	var out []Result
	for _, r := range rows {
		i, seen := idx[r.Name]
		if !seen {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		if r.AllocsPerOp < out[i].AllocsPerOp {
			out[i].AllocsPerOp = r.AllocsPerOp
		}
		if r.BPerOp < out[i].BPerOp {
			out[i].BPerOp = r.BPerOp
		}
		out[i].Runs += r.Runs
	}
	return out
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	baseline := flag.String("baseline", "", "baseline BENCH_*.json (default: lexicographically latest in cwd)")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression in ns/op and allocs/op (and b/op when gated)")
	gate := flag.String("gate", `^BenchmarkE[12]_|^BenchmarkCHQuery/warm`, "regexp of benchmark names that can fail the comparison")
	strictBytes := flag.Bool("strict-bytes", false, "promote b_per_op regressions from advisory warnings to failures")
	advisory := flag.Bool("advisory", false, "report gated regressions as an explicit ADVISORY REGRESSION summary and exit 0 (shared-runner bench jobs)")
	flag.Parse()

	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: bad -gate: %v\n", err)
		os.Exit(2)
	}
	path := *baseline
	if path == "" {
		path, err = latestBaseline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
	}
	old, err := loadDoc(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: baseline %s: %v\n", path, err)
		os.Exit(2)
	}
	var fresh Document
	if err := json.NewDecoder(os.Stdin).Decode(&fresh); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: stdin is not a benchjson document: %v\n", err)
		os.Exit(2)
	}

	base := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		base[r.Name] = r
	}
	// Fold repeated rows (a `go test -count=N` run) to their best
	// observation: min ns/op and min allocs/op. Comparing best-of-N
	// against the baseline filters scheduler noise one-sidedly, which
	// is what a regression gate wants — a real regression shifts the
	// floor, noise only shifts the ceiling.
	fresh.Benchmarks = foldBest(fresh.Benchmarks)
	fmt.Printf("baseline: %s (%s)\n", path, old.Date)
	var failures, advisories []string
	compared := 0
	for _, r := range fresh.Benchmarks {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("  %-50s  new benchmark (no baseline row)\n", r.Name)
			continue
		}
		compared++
		nsDelta := pctDelta(b.NsPerOp, r.NsPerOp)
		allocDelta := pctDelta(float64(b.AllocsPerOp), float64(r.AllocsPerOp))
		bDelta := pctDelta(float64(b.BPerOp), float64(r.BPerOp))
		gated := gateRe.MatchString(r.Name)
		marker := " "
		nsBad := b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+*threshold)
		allocBad := b.AllocsPerOp > 0 && float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+*threshold)
		bBad := b.BPerOp > 0 && float64(r.BPerOp) > float64(b.BPerOp)*(1+*threshold)
		switch {
		case gated && (nsBad || allocBad || (bBad && *strictBytes)):
			marker = "!"
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (%+.1f%%), allocs/op %d -> %d (%+.1f%%), B/op %d -> %d (%+.1f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, nsDelta, b.AllocsPerOp, r.AllocsPerOp, allocDelta, b.BPerOp, r.BPerOp, bDelta))
		case gated && bBad:
			marker = "~"
			advisories = append(advisories, fmt.Sprintf(
				"%s: B/op %d -> %d (%+.1f%%)", r.Name, b.BPerOp, r.BPerOp, bDelta))
		}
		fmt.Printf("%s %-50s  ns/op %12.0f -> %12.0f (%+7.1f%%)   allocs/op %8d -> %8d (%+7.1f%%)   B/op %10d -> %10d (%+7.1f%%)\n",
			marker, r.Name, b.NsPerOp, r.NsPerOp, nsDelta, b.AllocsPerOp, r.AllocsPerOp, allocDelta, b.BPerOp, r.BPerOp, bDelta)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no overlapping benchmark rows with the baseline")
		os.Exit(2)
	}
	if len(advisories) > 0 {
		fmt.Printf("\nbenchcompare: %d advisory b_per_op regression(s) beyond %.0f%% (not failing; -strict-bytes promotes):\n",
			len(advisories), *threshold*100)
		for _, a := range advisories {
			fmt.Printf("  ~ %s\n", a)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcompare: %d gated regression(s) beyond %.0f%%:\n", len(failures), *threshold*100)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		if *advisory {
			// Shared CI runners are too noisy for a hard timing gate, but a
			// silent continue-on-error buries real regressions. -advisory
			// makes the outcome explicit and greppable: the bench job scans
			// for this line and annotates the build instead of failing it.
			fmt.Printf("ADVISORY REGRESSION: %d gated regression(s) beyond %.0f%% (advisory mode, not failing the job)\n",
				len(failures), *threshold*100)
			return
		}
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d rows compared, no gated regressions beyond %.0f%%\n", compared, *threshold*100)
}
