// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a machine-readable JSON document on stdout, so benchmark
// baselines can be committed (BENCH_<date>.json) and diffed across
// changes instead of eyeballed.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_$(date +%F).json
//
// Lines that are not benchmark results (goos/goarch/cpu/pkg headers)
// are folded into the document metadata; anything else is ignored.
//
// With -fold, repeated rows from a `-count N` run collapse to one row
// per benchmark holding the best (minimum) observation of each metric,
// with runs summed — the same one-sided noise filter benchcompare
// applies to fresh runs, so a committed baseline taken with -count 3
// records the machine's floor rather than one arbitrary sample.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the full report.
type Document struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo/bar=4-8   120   9123456 ns/op   2048 B/op   12 allocs/op
//
// The trailing -N (GOMAXPROCS suffix) is stripped from the name so runs
// from different machines compare by benchmark identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// foldBest collapses repeated rows per name to the minimum observation
// of each metric, summing runs. Mirrors cmd/benchcompare's fold.
func foldBest(rows []Result) []Result {
	idx := make(map[string]int, len(rows))
	var out []Result
	for _, r := range rows {
		i, seen := idx[r.Name]
		if !seen {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		if r.AllocsPerOp < out[i].AllocsPerOp {
			out[i].AllocsPerOp = r.AllocsPerOp
		}
		if r.BPerOp < out[i].BPerOp {
			out[i].BPerOp = r.BPerOp
		}
		out[i].Runs += r.Runs
	}
	return out
}

func main() {
	fold := flag.Bool("fold", false, "collapse repeated rows (a -count N run) to best-of-N per benchmark")
	flag.Parse()
	doc := Document{Date: time.Now().UTC().Format(time.RFC3339)}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			runs, _ := strconv.Atoi(m[2])
			ns, _ := strconv.ParseFloat(m[3], 64)
			r := Result{Name: m[1], Pkg: pkg, Runs: runs, NsPerOp: ns}
			if m[4] != "" {
				r.BPerOp, _ = strconv.ParseInt(m[4], 10, 64)
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if *fold {
		doc.Benchmarks = foldBest(doc.Benchmarks)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did you pass -bench?)")
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}
