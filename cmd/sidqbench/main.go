// Command sidqbench regenerates the experiment tables documented in
// DESIGN.md and EXPERIMENTS.md: the empirical Table 1 (T1), the
// Figure-2 taxonomy coverage matrix (F2), and the taxonomy experiments
// E1-E14.
//
// Usage:
//
//	sidqbench                 # run everything, serially
//	sidqbench -exp E4,E7      # run selected experiments
//	sidqbench -seed 7         # change the workload seed
//	sidqbench -workers 4      # experiments + pipelines on 4 workers
//	sidqbench -parallel       # shorthand for -workers <NumCPU>
//	sidqbench -metrics        # dump Prometheus metrics to stderr afterwards
//
// Tables are bit-identical for every worker count; parallelism changes
// only wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sidq/internal/core"
	"sidq/internal/exp"
	"sidq/internal/obs"
	"sidq/internal/roadnet"
	"sidq/internal/stream"
)

func main() {
	var (
		which    = flag.String("exp", "all", "comma-separated experiment ids (T1, F2, E1a..E14) or 'all'")
		seed     = flag.Int64("seed", 42, "workload seed")
		workers  = flag.Int("workers", 1, "worker count for experiments and pipeline stages (0 or negative: NumCPU)")
		parallel = flag.Bool("parallel", false, "run on all CPUs (same as -workers 0)")
		metrics  = flag.Bool("metrics", false, "dump the Prometheus metrics exposition to stderr after the run")
	)
	flag.Parse()

	w := *workers
	if *parallel || w <= 0 {
		w = runtime.NumCPU()
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		core.InitRunnerMetrics(reg)
		roadnet.InstrumentTo(reg)
		stream.InstrumentTo(reg)
		exp.SetObsRegistry(reg)
	}

	want := map[string]bool{}
	all := *which == "all"
	if !all {
		for _, id := range strings.Split(*which, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	if all || want["T1"] {
		fmt.Println("=== T1: Table 1 — SID characteristics and measured quality issues ===")
		fmt.Println(exp.T1(*seed))
		ran++
	}
	if all || want["F2"] {
		fmt.Println("=== F2: Figure 2 — DQ technology taxonomy coverage ===")
		fmt.Println(exp.F2())
		ran++
	}
	ids := want
	if all {
		ids = nil
	}
	for _, r := range exp.RunSelected(*seed, w, ids) {
		fmt.Println(r.Text)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sidqbench: no experiment matched %q\n", *which)
		os.Exit(2)
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "=== metrics ===")
		_ = reg.WritePrometheus(os.Stderr)
	}
}
