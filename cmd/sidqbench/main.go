// Command sidqbench regenerates the experiment tables documented in
// DESIGN.md and EXPERIMENTS.md: the empirical Table 1 (T1), the
// Figure-2 taxonomy coverage matrix (F2), and the taxonomy experiments
// E1-E12.
//
// Usage:
//
//	sidqbench                 # run everything
//	sidqbench -exp E4,E7      # run selected experiments
//	sidqbench -seed 7         # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sidq/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "comma-separated experiment ids (T1, F2, E1a..E12) or 'all'")
		seed  = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	want := map[string]bool{}
	all := *which == "all"
	if !all {
		for _, id := range strings.Split(*which, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	if all || want["T1"] {
		fmt.Println("=== T1: Table 1 — SID characteristics and measured quality issues ===")
		fmt.Println(exp.T1(*seed))
		ran++
	}
	if all || want["F2"] {
		fmt.Println("=== F2: Figure 2 — DQ technology taxonomy coverage ===")
		fmt.Println(exp.F2())
		ran++
	}
	for _, e := range exp.All() {
		if all || want[strings.ToUpper(e.ID)] {
			tb := e.Run(*seed)
			fmt.Println(tb.Render())
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sidqbench: no experiment matched %q\n", *which)
		os.Exit(2)
	}
}
