// Command sidqstore inspects a sidq durable data directory (the
// segmented WAL written by sidqserve -data, see internal/store):
//
//	sidqstore verify /var/lib/sidq
//
// verify walks every segment read-only — it is safe to run against a
// live server or a freshly crashed directory. Sealed segments are
// checked record-by-record against their checksums and the manifest's
// seq ranges; the unlisted tail is scanned exactly the way recovery
// would scan it. The report ends with the last durable sequence
// number and its "segment:offset" position. Exit status 0 means the
// directory is intact up to (at most) a recoverable torn tail;
// anything recovery would have to discard or that violates the
// manifest exits 1.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sidq/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sidqstore <command> [arguments]

commands:
  verify [-v] <dir>   check segment checksums and manifest integrity,
                      report the last durable offset
`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sidqstore: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "verify":
		runVerify(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "sidqstore: unknown command %q\n", os.Args[1])
		usage()
	}
}

func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print per-segment detail even for clean segments")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	dir := fs.Arg(0)

	rep, err := store.Verify(dir, nil)
	if err != nil {
		log.Fatalf("verify %s: %v", dir, err)
	}
	for _, s := range rep.Segments {
		if !*verbose && s.Problem == "" {
			continue
		}
		role := "tail"
		if s.Sealed {
			role = "sealed"
		}
		line := fmt.Sprintf("%s  %-6s %6d records  %8d bytes", s.Name, role, s.Records, s.Bytes)
		if s.Torn {
			line += fmt.Sprintf("  torn at %d", s.Good)
		}
		if s.Problem != "" {
			line += "  PROBLEM: " + s.Problem
		}
		fmt.Println(line)
	}
	if rep.TornBytes > 0 {
		fmt.Printf("torn tail: %d bytes (next recovery truncates them)\n", rep.TornBytes)
	}
	if rep.LastSeq == 0 {
		fmt.Println("durable records: none")
	} else {
		fmt.Printf("last durable seq: %d at %s\n", rep.LastSeq, rep.DurableOff)
	}
	if !rep.OK() {
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "sidqstore: %s\n", p)
		}
		fmt.Printf("%s: %d problems\n", dir, len(rep.Problems))
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d segments)\n", dir, len(rep.Segments))
}
