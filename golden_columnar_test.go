package sidq_test

// Golden byte-equivalence fixtures for the columnar (struct-of-arrays)
// core. The hashes in testdata/golden_columnar.json were generated from
// the array-of-structs implementations BEFORE the columnar refactor;
// every columnar batch kernel must reproduce those outputs bit for bit
// (trajectories are serialized with WriteCSV's shortest-round-trip
// float format, so a byte-equal hash means bit-equal float64s).
//
// Regenerate only when an output change is intended:
//
//	go test -run TestGoldenColumnar -update-golden .

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sidq/internal/core"
	"sidq/internal/exp"
	"sidq/internal/geo"
	"sidq/internal/outlier"
	"sidq/internal/reduce"
	"sidq/internal/refine"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_columnar.json from the current implementation")

const goldenPath = "testdata/golden_columnar.json"

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func hashFlags(flags []bool) string {
	b := make([]byte, len(flags))
	for i, f := range flags {
		if f {
			b[i] = 1
		}
	}
	return hashBytes(b)
}

func hashTrajectories(t *testing.T, trs ...*trajectory.Trajectory) string {
	t.Helper()
	var sb strings.Builder
	if err := trajectory.WriteCSV(&sb, trs); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return hashBytes([]byte(sb.String()))
}

// goldenInput builds the standard dirty track every kernel is pinned
// on: a seeded random walk with Gaussian GPS noise.
func goldenInput(seed int64) *trajectory.Trajectory {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(600, 600)}
	truth := simulate.RandomWalk(fmt.Sprintf("g%d", seed), region, 300, 2.5, 1, seed)
	return simulate.AddGaussianNoise(truth, 8, seed+100)
}

// goldenDataset builds a small multi-trajectory dataset for the
// worker-count sweeps (mirrors the bench pipeline dataset).
func goldenDataset(n int, seed int64) *core.Dataset {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              300,
	}
	for i := 0; i < n; i++ {
		truth := simulate.RandomWalk(fmt.Sprintf("v%d", i), region, 200, 2, 1, seed+int64(i))
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 6, seed+int64(i)+100)
		dirty = simulate.DuplicateSamples(dirty, 0.1, seed+int64(i)+200)
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	return ds
}

// computeGoldens evaluates every pinned kernel and returns name->hash.
// Worker-count sweep entries share one name per worker count so the
// cross-worker identity is visible in the fixture itself.
func computeGoldens(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}

	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(600, 600)}
	for seed := int64(1); seed <= 4; seed++ {
		noisy := goldenInput(seed)
		key := func(k string) string { return fmt.Sprintf("%s/seed=%d", k, seed) }

		// Speed-gate pass (constraint-based outlier detector).
		out[key("speedgate")] = hashFlags(outlier.SpeedConstraint(noisy, 10))
		// Distance/zscore outlier scan (statistics-based detector).
		out[key("statscan")] = hashFlags(outlier.Statistical(noisy, outlier.StatisticalOptions{}))
		// Simplification.
		out[key("simplify/dp")] = hashTrajectories(t, reduce.DouglasPeuckerSED(noisy, 10))
		out[key("simplify/sw")] = hashTrajectories(t, reduce.SlidingWindow(noisy, 10))
		// Motion refinement kernels (the E1 motion inner loops).
		out[key("refine/kalman")] = hashTrajectories(t, refine.KalmanFilterTrajectory(noisy, 1, 8))
		out[key("refine/rts")] = hashTrajectories(t, refine.KalmanSmoothTrajectory(noisy, 1, 8))
		out[key("refine/particle")] = hashTrajectories(t, refine.ParticleFilterTrajectory(noisy, 400, 1, 8, seed+20))
		out[key("refine/hmm")] = hashTrajectories(t, refine.HMMGridTrajectory(noisy, region.Expand(50), 12, 3, 8))
	}

	// The E1 motion experiment end to end (rendered table, so every
	// filter's RMSE is pinned at full experiment scale).
	for seed := int64(1); seed <= 2; seed++ {
		tb := exp.E1Motion(seed)
		out[fmt.Sprintf("e1motion/seed=%d", seed)] = hashBytes([]byte(tb.Render()))
	}

	// The cleaning pipeline across worker counts: the columnar-native
	// stages must stay byte-identical to the serial AoS output under
	// the parallel runner's sharding at every count.
	ds := goldenDataset(12, 1)
	stages := func() []core.Stage {
		return []core.Stage{
			core.DeduplicateStage{},
			core.OutlierRemovalStage{},
			core.SmoothingStage{},
		}
	}
	for _, w := range []int{1, 2, 4, 8} {
		cleaned, _ := core.NewPipeline(stages()...).RunParallel(ds, w)
		out[fmt.Sprintf("pipeline/workers=%d", w)] = hashTrajectories(t, cleaned.Trajectories...)
	}
	return out
}

func TestGoldenColumnar(t *testing.T) {
	got := computeGoldens(t)

	// Cross-worker identity holds regardless of fixture state.
	base := got["pipeline/workers=1"]
	for _, w := range []int{2, 4, 8} {
		k := fmt.Sprintf("pipeline/workers=%d", w)
		if got[k] != base {
			t.Errorf("pipeline output at workers=%d differs from workers=1", w)
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to generate): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("bad golden fixture: %v", err)
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden case %s no longer computed", name)
			continue
		}
		if g != want[name] {
			t.Errorf("golden mismatch for %s: output changed from the pre-columnar baseline", name)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("new golden case %s not in fixture (run -update-golden)", name)
		}
	}
}
