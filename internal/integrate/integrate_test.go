package integrate

import (
	"math"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// visitTrajectory builds a trajectory that dwells at each given POI for
// dwell seconds, moving between them at speed.
func visitTrajectory(pois []POI, order []int, dwell, speed float64) (*trajectory.Trajectory, map[float64]string) {
	var pts []trajectory.Point
	visits := map[float64]string{}
	t := 0.0
	var cur geo.Point
	for k, idx := range order {
		target := pois[idx].Pos
		if k > 0 {
			dist := cur.Dist(target)
			steps := int(dist/(speed*5)) + 1
			for s := 1; s <= steps; s++ {
				t += 5
				pts = append(pts, trajectory.Point{T: t, Pos: cur.Lerp(target, float64(s)/float64(steps))})
			}
		}
		cur = target
		// Dwell with small wobble.
		start := t
		for dt := 0.0; dt <= dwell; dt += 10 {
			t += 10
			wob := geo.Pt(math.Sin(t)*2, math.Cos(t)*2)
			pts = append(pts, trajectory.Point{T: t, Pos: cur.Add(wob)})
		}
		visits[start+dwell/2] = pois[idx].ID
	}
	return trajectory.New("u", pts), visits
}

func testPOIs() []POI {
	return []POI{
		{ID: "home", Pos: geo.Pt(0, 0), Category: "home"},
		{ID: "work", Pos: geo.Pt(500, 0), Category: "work"},
		{ID: "cafe", Pos: geo.Pt(500, 400), Category: "food"},
	}
}

func TestEpisodesSegmentsAndAnnotates(t *testing.T) {
	pois := testPOIs()
	tr, visits := visitTrajectory(pois, []int{0, 1, 2}, 120, 10)
	eps := Episodes(tr, pois, 15, 60, 30)
	var stays, moves int
	for _, ep := range eps {
		if ep.Kind == Stay {
			stays++
			if ep.POI == "" {
				t.Fatalf("unannotated stay at %v", ep.Center)
			}
		} else {
			moves++
		}
		if ep.End < ep.Start {
			t.Fatal("episode times inverted")
		}
	}
	if stays != 3 {
		t.Fatalf("stays = %d, want 3", stays)
	}
	if moves < 2 {
		t.Fatalf("moves = %d", moves)
	}
	if acc := AnnotationAccuracy(eps, visits); acc != 1 {
		t.Fatalf("annotation accuracy = %v", acc)
	}
}

func TestEpisodesNoPOIsNearby(t *testing.T) {
	pois := []POI{{ID: "far", Pos: geo.Pt(1e6, 1e6)}}
	tr, _ := visitTrajectory(testPOIs(), []int{0, 1}, 120, 10)
	eps := Episodes(tr, pois, 15, 60, 30)
	for _, ep := range eps {
		if ep.POI != "" {
			t.Fatal("annotation should require proximity")
		}
	}
	if got := Episodes(&trajectory.Trajectory{}, pois, 15, 60, 30); got != nil {
		t.Fatal("empty trajectory episodes")
	}
}

func TestAnnotationAccuracyEmpty(t *testing.T) {
	if AnnotationAccuracy(nil, nil) != 1 {
		t.Fatal("empty visits should be perfect")
	}
	if AnnotationAccuracy(nil, map[float64]string{1: "x"}) != 0 {
		t.Fatal("missing episodes should miss visits")
	}
}

func TestLinkEntities(t *testing.T) {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	// System A observes 5 objects; system B observes the same objects
	// with noise and different ids.
	var a, b []*trajectory.Trajectory
	for i := 0; i < 5; i++ {
		truth := simulate.RandomWalk("A"+string(rune('0'+i)), region, 200, 2, 1, int64(i+1))
		a = append(a, truth)
		obs := simulate.AddGaussianNoise(truth, 3, int64(100+i))
		obs.ID = "B" + string(rune('0'+i))
		b = append(b, obs)
	}
	// Shuffle b's order so matching is non-trivial.
	b[0], b[3] = b[3], b[0]
	b[1], b[4] = b[4], b[1]
	links := LinkEntities(a, b, 30, 50)
	if len(links) != 5 {
		t.Fatalf("links = %d", len(links))
	}
	for _, l := range links {
		if l.A[1] != l.B[1] { // digit must match
			t.Fatalf("wrong link %v <-> %v (cost %v)", l.A, l.B, l.Cost)
		}
	}
	// maxCost rejects links for disjoint objects.
	far := simulate.RandomWalk("C", geo.Rect{Min: geo.Pt(5e5, 5e5), Max: geo.Pt(6e5, 6e5)}, 200, 2, 1, 99)
	links = LinkEntities([]*trajectory.Trajectory{far}, b, 30, 50)
	if len(links) != 0 {
		t.Fatalf("implausible link accepted: %+v", links)
	}
}

func TestAlignScales(t *testing.T) {
	mk := func(id string, t0, t1, dt float64) *trajectory.Trajectory {
		var pts []trajectory.Point
		for tm := t0; tm <= t1; tm += dt {
			pts = append(pts, trajectory.Point{T: tm, Pos: geo.Pt(tm, 0)})
		}
		return trajectory.New(id, pts)
	}
	a := mk("a", 0, 100, 1)  // 1 Hz
	b := mk("b", 20, 150, 7) // sparse
	ar, br := AlignScales(a, b, 5)
	if ar == nil || br == nil {
		t.Fatal("align failed")
	}
	if ar.MeanSampleInterval() != 5 || br.MeanSampleInterval() > 5.01 {
		t.Fatalf("intervals: %v %v", ar.MeanSampleInterval(), br.MeanSampleInterval())
	}
	a0, _, _ := ar.TimeBounds()
	b0, _, _ := br.TimeBounds()
	if a0 != 20 || b0 != 20 {
		t.Fatalf("overlap start: %v %v", a0, b0)
	}
	// Disjoint spans fail.
	c := mk("c", 1000, 1100, 1)
	if x, y := AlignScales(a, c, 5); x != nil || y != nil {
		t.Fatal("disjoint align should fail")
	}
	if x, _ := AlignScales(a, b, 0); x != nil {
		t.Fatal("bad dt should fail")
	}
}

func TestAttachReadings(t *testing.T) {
	f := simulate.NewField(simulate.FieldOptions{Seed: 7})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 50, Interval: 300, Duration: 3600, NoiseSigma: 0.5, Seed: 8,
	})
	tr := simulate.RandomWalk("v", geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(900, 900)}, 100, 3, 30, 9)
	attached := AttachReadings(tr, readings, 150, 900)
	if len(attached) != tr.Len() {
		t.Fatal("attachment length")
	}
	var errSum float64
	var n int
	for _, ap := range attached {
		if !ap.OK {
			continue
		}
		errSum += math.Abs(ap.Value - f.Value(ap.Pos, ap.T))
		n++
	}
	if n < tr.Len()/2 {
		t.Fatalf("too few attachments: %d", n)
	}
	if errSum/float64(n) > 8 {
		t.Fatalf("attachment MAE = %v", errSum/float64(n))
	}
}

func TestDeduplicate(t *testing.T) {
	rs := []stid.Reading{
		{SensorID: "a", Pos: geo.Pt(1, 1), T: 10, Value: 10},
		{SensorID: "b", Pos: geo.Pt(1.2, 1.1), T: 12, Value: 20}, // same cell+bucket
		{SensorID: "c", Pos: geo.Pt(100, 100), T: 10, Value: 30}, // different cell
		{SensorID: "d", Pos: geo.Pt(1, 1), T: 500, Value: 40},    // different bucket
	}
	out := Deduplicate(rs, 10, 60)
	if len(out) != 3 {
		t.Fatalf("dedup len = %d", len(out))
	}
	if out[0].Value != 15 {
		t.Fatalf("merged value = %v", out[0].Value)
	}
	if out[1].SensorID != "c" || out[2].SensorID != "d" {
		t.Fatalf("order not first-seen: %+v", out)
	}
	if got := Deduplicate(nil, 10, 60); len(got) != 0 {
		t.Fatal("empty dedup")
	}
	// Bad params default instead of panicking.
	if got := Deduplicate(rs, 0, 0); len(got) == 0 {
		t.Fatal("default params")
	}
}
