package integrate

import (
	"math"
	"sort"

	"sidq/internal/stid"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

// Link is one cross-system identity match.
type Link struct {
	A, B string  // trajectory ids from the two systems
	Cost float64 // mean synchronized distance of the match
}

// LinkEntities matches trajectories from two ID systems observing the
// same objects (trajectory+trajectory DI): candidate pairs are scored
// by synchronized Euclidean distance and matched greedily
// lowest-cost-first, one-to-one. maxCost rejects implausible links.
func LinkEntities(a, b []*trajectory.Trajectory, samples int, maxCost float64) []Link {
	if samples <= 0 {
		samples = 20
	}
	if maxCost <= 0 {
		maxCost = math.Inf(1)
	}
	type cand struct {
		i, j int
		cost float64
	}
	var cands []cand
	for i, ta := range a {
		for j, tb := range b {
			c := trajectory.SyncDistance(ta, tb, samples)
			if c <= maxCost {
				cands = append(cands, cand{i, j, c})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].cost < cands[y].cost })
	usedA := make([]bool, len(a))
	usedB := make([]bool, len(b))
	var out []Link
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		out = append(out, Link{A: a[c.i].ID, B: b[c.j].ID, Cost: c.cost})
	}
	return out
}

// AlignScales resamples both trajectories to a common interval dt over
// their overlapping time span, unifying data collected at different
// temporal scales. It returns nil, nil when the spans do not overlap
// enough to resample.
func AlignScales(a, b *trajectory.Trajectory, dt float64) (*trajectory.Trajectory, *trajectory.Trajectory) {
	a0, a1, okA := a.TimeBounds()
	b0, b1, okB := b.TimeBounds()
	if !okA || !okB || dt <= 0 {
		return nil, nil
	}
	lo, hi := math.Max(a0, b0), math.Min(a1, b1)
	if hi-lo < dt {
		return nil, nil
	}
	as := a.Slice(lo, hi)
	bs := b.Slice(lo, hi)
	ar, errA := as.Resample(dt)
	br, errB := bs.Resample(dt)
	if errA != nil || errB != nil {
		return nil, nil
	}
	return ar, br
}

// AttachedPoint is a trajectory point enriched with an interpolated
// thematic measurement (trajectory+STID DI).
type AttachedPoint struct {
	trajectory.Point
	Value float64
	OK    bool
}

// AttachReadings joins a trajectory with a set of STID readings: each
// point receives the Gaussian-kernel spatiotemporal estimate of the
// thematic variable at its position and time (e.g. "the PM2.5 this
// vehicle was exposed to along its route").
func AttachReadings(tr *trajectory.Trajectory, readings []stid.Reading, spaceSigma, timeSigma float64) []AttachedPoint {
	kernel := uncertain.GaussianKernel{
		Readings:   readings,
		SpaceSigma: spaceSigma,
		TimeSigma:  timeSigma,
	}
	out := make([]AttachedPoint, tr.Len())
	for i, p := range tr.Points {
		v, ok := kernel.Estimate(p.Pos, p.T)
		out[i] = AttachedPoint{Point: p, Value: v, OK: ok}
	}
	return out
}

// Deduplicate collapses redundant STID readings: readings falling in
// the same spatial cell (cellSize meters) and time bucket
// (timeBucket seconds) are merged into one averaged reading. This is
// the conflict-elimination half of STID+STID integration; cross-source
// bias-corrected fusion is uncertain.FuseSources.
func Deduplicate(readings []stid.Reading, cellSize, timeBucket float64) []stid.Reading {
	if cellSize <= 0 {
		cellSize = 1
	}
	if timeBucket <= 0 {
		timeBucket = 1
	}
	type key struct {
		cx, cy, ct int64
	}
	type acc struct {
		sum   float64
		n     int
		first stid.Reading
		order int
	}
	groups := map[key]*acc{}
	orderCount := 0
	for _, r := range readings {
		k := key{
			cx: int64(math.Floor(r.Pos.X / cellSize)),
			cy: int64(math.Floor(r.Pos.Y / cellSize)),
			ct: int64(math.Floor(r.T / timeBucket)),
		}
		g, ok := groups[k]
		if !ok {
			g = &acc{first: r, order: orderCount}
			orderCount++
			groups[k] = g
		}
		g.sum += r.Value
		g.n++
	}
	// Deterministic order: first-seen.
	merged := make([]*acc, 0, len(groups))
	for _, g := range groups {
		merged = append(merged, g)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].order < merged[j].order })
	out := make([]stid.Reading, 0, len(merged))
	for _, g := range merged {
		r := g.first
		r.Value = g.sum / float64(g.n)
		out = append(out, r)
	}
	return out
}
