// Package integrate implements the paper's §2.2.5 Data Integration
// task family.
//
// Semantic DI enriches raw SID with meaning: stay/move episode
// segmentation and POI annotation of trajectories. Non-semantic DI
// unifies representations: trajectory-trajectory entity linking and
// scale alignment, trajectory+STID attachment, and STID deduplication
// (STID+STID fusion with bias correction lives in package uncertain,
// which integration composes).
package integrate

import (
	"math"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// POI is a semantic place used for annotation.
type POI struct {
	ID       string
	Pos      geo.Point
	Category string
}

// EpisodeKind distinguishes stays from moves.
type EpisodeKind int

// Episode kinds.
const (
	Move EpisodeKind = iota
	Stay
)

// String implements fmt.Stringer.
func (k EpisodeKind) String() string {
	if k == Stay {
		return "stay"
	}
	return "move"
}

// Episode is one semantic segment of a trajectory: a dwell at a place
// or the movement between dwells.
type Episode struct {
	Kind       EpisodeKind
	Start, End float64
	Center     geo.Point // stay centroid (stays only)
	POI        string    // annotated place id ("" if none)
	Category   string    // annotated place category
}

// Episodes segments a trajectory into alternating move/stay episodes
// using stay-point detection (radius meters, minDuration seconds), then
// annotates each stay with the nearest POI within annotateRadius. This
// is the mobility-semantics translation of the semantic-DI literature:
// raw fixes become "stayed at poi7 (food) 12:10-12:40, moved, ...".
func Episodes(tr *trajectory.Trajectory, pois []POI, radius, minDuration, annotateRadius float64) []Episode {
	if tr.Len() == 0 {
		return nil
	}
	stays := tr.StayPoints(radius, minDuration)
	t0, t1, _ := tr.TimeBounds()
	var out []Episode
	cursor := t0
	for _, s := range stays {
		if s.Start > cursor {
			out = append(out, Episode{Kind: Move, Start: cursor, End: s.Start})
		}
		ep := Episode{Kind: Stay, Start: s.Start, End: s.End, Center: s.Center}
		if poi, ok := nearestPOI(pois, s.Center, annotateRadius); ok {
			ep.POI = poi.ID
			ep.Category = poi.Category
		}
		out = append(out, ep)
		cursor = s.End
	}
	if cursor < t1 {
		out = append(out, Episode{Kind: Move, Start: cursor, End: t1})
	}
	return out
}

func nearestPOI(pois []POI, p geo.Point, radius float64) (POI, bool) {
	best, bestD := POI{}, math.Inf(1)
	for _, poi := range pois {
		if d := poi.Pos.Dist(p); d < bestD {
			best, bestD = poi, d
		}
	}
	if bestD <= radius {
		return best, true
	}
	return POI{}, false
}

// AnnotationAccuracy scores annotated stays against ground-truth visit
// labels: visits maps a time instant inside each true stay to the true
// POI id; a visit counts as correct when some stay episode covers its
// time and carries its POI.
func AnnotationAccuracy(episodes []Episode, visits map[float64]string) float64 {
	if len(visits) == 0 {
		return 1
	}
	ok := 0
	for t, want := range visits {
		for _, ep := range episodes {
			if ep.Kind == Stay && t >= ep.Start && t <= ep.End && ep.POI == want {
				ok++
				break
			}
		}
	}
	return float64(ok) / float64(len(visits))
}
