package stid

import (
	"bytes"
	"testing"

	"sidq/internal/geo"
)

func TestCSVRoundTrip(t *testing.T) {
	in := []Reading{
		{SensorID: "s1", Pos: geo.Pt(1.5, -2.25), T: 100, Value: 42.125},
		{SensorID: "s2", Pos: geo.Pt(0, 0), T: 0, Value: -1},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("row %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("bad,header,x,y,z\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("sensor,t,x,y,value\ns1,oops,0,0,0\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input accepted")
	}
}
