// Package stid defines the spatiotemporal IoT data (STID) model shared
// by the quality-management and exploitation packages: a Reading is one
// thematic measurement (e.g. PM2.5, temperature) taken by a sensor at a
// location and time; a Series is a time-ordered sequence of readings
// from one sensor.
package stid

import (
	"sort"

	"sidq/internal/geo"
)

// Reading is a single spatiotemporal measurement.
type Reading struct {
	SensorID string
	Pos      geo.Point
	T        float64 // seconds since epoch
	Value    float64 // thematic value
}

// Series is a time-ordered sequence of readings from one sensor.
type Series struct {
	SensorID string
	Pos      geo.Point
	Readings []Reading
}

// NewSeries groups readings by sensor id into time-sorted series,
// ordered by sensor id for determinism.
func NewSeries(readings []Reading) []Series {
	byID := map[string][]Reading{}
	for _, r := range readings {
		byID[r.SensorID] = append(byID[r.SensorID], r)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Series, 0, len(ids))
	for _, id := range ids {
		rs := byID[id]
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].T < rs[j].T })
		s := Series{SensorID: id, Readings: rs}
		if len(rs) > 0 {
			s.Pos = rs[0].Pos
		}
		out = append(out, s)
	}
	return out
}

// Values returns the thematic values of the series in time order.
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Readings))
	for i, r := range s.Readings {
		out[i] = r.Value
	}
	return out
}

// Times returns the timestamps of the series in order.
func (s Series) Times() []float64 {
	out := make([]float64, len(s.Readings))
	for i, r := range s.Readings {
		out[i] = r.T
	}
	return out
}

// At returns the reading nearest in time to t. ok is false for an
// empty series.
func (s Series) At(t float64) (Reading, bool) {
	if len(s.Readings) == 0 {
		return Reading{}, false
	}
	i := sort.Search(len(s.Readings), func(i int) bool { return s.Readings[i].T >= t })
	if i == 0 {
		return s.Readings[0], true
	}
	if i == len(s.Readings) {
		return s.Readings[len(s.Readings)-1], true
	}
	if t-s.Readings[i-1].T <= s.Readings[i].T-t {
		return s.Readings[i-1], true
	}
	return s.Readings[i], true
}

// TimeBounds returns the first and last timestamps; ok is false for an
// empty slice of readings.
func TimeBounds(readings []Reading) (t0, t1 float64, ok bool) {
	if len(readings) == 0 {
		return 0, 0, false
	}
	t0, t1 = readings[0].T, readings[0].T
	for _, r := range readings[1:] {
		if r.T < t0 {
			t0 = r.T
		}
		if r.T > t1 {
			t1 = r.T
		}
	}
	return t0, t1, true
}

// Bounds returns the spatial bounding rectangle of the readings.
func Bounds(readings []Reading) geo.Rect {
	r := geo.EmptyRect()
	for _, rd := range readings {
		r = r.ExtendPoint(rd.Pos)
	}
	return r
}
