package stid

import (
	"testing"

	"sidq/internal/geo"
)

func sample() []Reading {
	return []Reading{
		{SensorID: "b", Pos: geo.Pt(10, 0), T: 2, Value: 20},
		{SensorID: "a", Pos: geo.Pt(0, 0), T: 1, Value: 10},
		{SensorID: "a", Pos: geo.Pt(0, 0), T: 0, Value: 5},
		{SensorID: "b", Pos: geo.Pt(10, 0), T: 5, Value: 25},
	}
}

func TestNewSeriesGroupsAndSorts(t *testing.T) {
	series := NewSeries(sample())
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].SensorID != "a" || series[1].SensorID != "b" {
		t.Fatalf("order: %v %v", series[0].SensorID, series[1].SensorID)
	}
	a := series[0]
	if a.Readings[0].T != 0 || a.Readings[1].T != 1 {
		t.Fatal("series not time sorted")
	}
	if a.Pos != geo.Pt(0, 0) {
		t.Fatalf("series pos = %v", a.Pos)
	}
	vals := a.Values()
	if len(vals) != 2 || vals[0] != 5 || vals[1] != 10 {
		t.Fatalf("values = %v", vals)
	}
	times := a.Times()
	if times[0] != 0 || times[1] != 1 {
		t.Fatalf("times = %v", times)
	}
}

func TestSeriesAt(t *testing.T) {
	series := NewSeries(sample())
	b := series[1] // readings at t=2 and t=5
	r, ok := b.At(3)
	if !ok || r.T != 2 {
		t.Fatalf("At(3) = %+v", r)
	}
	r, _ = b.At(4.1)
	if r.T != 5 {
		t.Fatalf("At(4.1) = %+v", r)
	}
	r, _ = b.At(-10)
	if r.T != 2 {
		t.Fatalf("At(-10) = %+v", r)
	}
	r, _ = b.At(100)
	if r.T != 5 {
		t.Fatalf("At(100) = %+v", r)
	}
	if _, ok := (Series{}).At(0); ok {
		t.Fatal("empty series At should be !ok")
	}
}

func TestTimeBoundsAndBounds(t *testing.T) {
	t0, t1, ok := TimeBounds(sample())
	if !ok || t0 != 0 || t1 != 5 {
		t.Fatalf("bounds %v %v %v", t0, t1, ok)
	}
	if _, _, ok := TimeBounds(nil); ok {
		t.Fatal("empty bounds should be !ok")
	}
	r := Bounds(sample())
	if r.Min != geo.Pt(0, 0) || r.Max != geo.Pt(10, 0) {
		t.Fatalf("rect = %v", r)
	}
	if !Bounds(nil).IsEmpty() {
		t.Fatal("empty spatial bounds")
	}
}
