package stid

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sidq/internal/geo"
)

// WriteCSV encodes readings as CSV rows "sensor,t,x,y,value" with a
// header, in input order.
func WriteCSV(w io.Writer, readings []Reading) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sensor", "t", "x", "y", "value"}); err != nil {
		return fmt.Errorf("stid: write csv header: %w", err)
	}
	for _, r := range readings {
		rec := []string{
			r.SensorID,
			strconv.FormatFloat(r.T, 'g', -1, 64),
			strconv.FormatFloat(r.Pos.X, 'g', -1, 64),
			strconv.FormatFloat(r.Pos.Y, 'g', -1, 64),
			strconv.FormatFloat(r.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("stid: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes readings written by WriteCSV, preserving order.
func ReadCSV(r io.Reader) ([]Reading, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("stid: read csv header: %w", err)
	}
	if header[0] != "sensor" {
		return nil, fmt.Errorf("stid: unexpected csv header %v", header)
	}
	var out []Reading
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stid: read csv row: %w", err)
		}
		vals := make([]float64, 4)
		for i, s := range rec[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("stid: bad field %q: %w", s, err)
			}
			vals[i] = v
		}
		out = append(out, Reading{
			SensorID: rec[0],
			T:        vals[0],
			Pos:      geo.Pt(vals[1], vals[2]),
			Value:    vals[3],
		})
	}
	return out, nil
}
