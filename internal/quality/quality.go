// Package quality implements the paper's §2.1 SID quality framework:
// the data-quality dimensions as measurable metrics over trajectories
// and spatiotemporal readings, assessment reports, and the empirical
// reproduction of Table 1 (SID characteristics and the quality issues
// they cause).
//
// Conventions: every dimension is normalized so that the metric is
// directly comparable across datasets. "Score-like" dimensions
// (Accuracy, Consistency, Completeness, SpaceCoverage) are better when
// higher; "burden-like" dimensions (PrecisionError, TimeSparsity,
// Redundancy, Latency, Staleness, DataVolume) are better when lower.
package quality

import (
	"fmt"
	"math"
	"strings"

	"sidq/internal/geo"
	"sidq/internal/stats"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// Dimension identifies one data-quality dimension from §2.1.
type Dimension int

// The DQ dimensions covered by the tutorial.
const (
	// Accuracy is closeness to the true state: 1/(1+meanError). Needs
	// ground truth; reported as NaN without it.
	Accuracy Dimension = iota
	// PrecisionError is the repeatability noise level in meters (or
	// value units), estimated without ground truth from local
	// roughness. Lower is better.
	PrecisionError
	// Consistency is the fraction of observations that satisfy
	// integrity constraints (monotone time, speed bounds, cross-source
	// agreement). Higher is better.
	Consistency
	// TimeSparsity is the mean gap between consecutive samples in
	// seconds. Lower is denser.
	TimeSparsity
	// SpaceCoverage is the fraction of region cells observed. Higher is
	// better.
	SpaceCoverage
	// Completeness is observed count / expected count in [0, 1].
	Completeness
	// Redundancy is the fraction of observations that duplicate an
	// earlier observation. Lower is better.
	Redundancy
	// Latency is the mean delay between measurement and availability in
	// seconds. Lower is better.
	Latency
	// Staleness is the age of the newest observation relative to the
	// assessment time, in seconds. Lower is fresher.
	Staleness
	// DataVolume is the raw observation count.
	DataVolume
	// TruthVolume is the number of ground-truth-labeled observations
	// available for validation.
	TruthVolume
	// Resolution is the finest spatial granularity of the data in
	// meters (grid pitch / quantization step). Lower is finer.
	Resolution
	// Interpretability is the fraction of observations carrying
	// semantic annotations. Higher is better.
	Interpretability
)

var dimensionNames = map[Dimension]string{
	Accuracy:         "accuracy",
	PrecisionError:   "precision_error",
	Consistency:      "consistency",
	TimeSparsity:     "time_sparsity",
	SpaceCoverage:    "space_coverage",
	Completeness:     "completeness",
	Redundancy:       "redundancy",
	Latency:          "latency",
	Staleness:        "staleness",
	DataVolume:       "data_volume",
	TruthVolume:      "truth_volume",
	Resolution:       "resolution",
	Interpretability: "interpretability",
}

// String implements fmt.Stringer.
func (d Dimension) String() string {
	if s, ok := dimensionNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dimension(%d)", int(d))
}

// HigherIsBetter reports the polarity of the dimension.
func (d Dimension) HigherIsBetter() bool {
	switch d {
	case Accuracy, Consistency, SpaceCoverage, Completeness, TruthVolume, Interpretability:
		return true
	default:
		return false
	}
}

// AllDimensions lists every dimension in declaration order.
func AllDimensions() []Dimension {
	return []Dimension{
		Accuracy, PrecisionError, Consistency, TimeSparsity, SpaceCoverage,
		Completeness, Redundancy, Latency, Staleness, DataVolume,
		TruthVolume, Resolution, Interpretability,
	}
}

// Assessment is a measured quality report: dimension -> value. Missing
// dimensions were not measurable for the dataset.
type Assessment map[Dimension]float64

// Get returns the value and whether the dimension was measured.
func (a Assessment) Get(d Dimension) (float64, bool) {
	v, ok := a[d]
	return v, ok
}

// String renders the assessment as an aligned table, dimensions in
// declaration order.
func (a Assessment) String() string {
	var b strings.Builder
	for _, d := range AllDimensions() {
		if v, ok := a[d]; ok {
			fmt.Fprintf(&b, "%-18s %12.4f\n", d.String(), v)
		}
	}
	return b.String()
}

// WorseThan reports the dimensions on which a is materially worse than
// b, using the given relative tolerance (e.g. 0.05 = 5%).
func (a Assessment) WorseThan(b Assessment, relTol float64) []Dimension {
	var out []Dimension
	for _, d := range AllDimensions() {
		av, okA := a[d]
		bv, okB := b[d]
		if !okA || !okB {
			continue
		}
		scale := math.Max(math.Abs(av), math.Abs(bv))
		if scale == 0 {
			continue
		}
		diff := (av - bv) / scale
		if d.HigherIsBetter() {
			diff = -diff
		}
		if diff > relTol {
			out = append(out, d)
		}
	}
	return out
}

// TrajectoryContext supplies the side information needed to assess a
// trajectory. Zero fields disable the corresponding dimensions.
type TrajectoryContext struct {
	Truth            *trajectory.Trajectory // ground truth (enables Accuracy, TruthVolume)
	ExpectedInterval float64                // nominal sampling period (enables Completeness)
	MaxSpeed         float64                // physical speed bound (enables Consistency speed checks)
	Region           geo.Rect               // assessed region (enables SpaceCoverage)
	CellSize         float64                // coverage cell size, default 50 m
	Now              float64                // assessment time (enables Staleness)
	Delays           []float64              // per-point report delays (enables Latency)
	Annotated        int                    // count of semantically annotated points (enables Interpretability)
}

// AssessTrajectory measures every applicable DQ dimension of obs.
func AssessTrajectory(obs *trajectory.Trajectory, ctx TrajectoryContext) Assessment {
	a := Assessment{}
	n := obs.Len()
	a[DataVolume] = float64(n)
	if n == 0 {
		return a
	}

	// Accuracy and TruthVolume need ground truth.
	if ctx.Truth != nil && ctx.Truth.Len() > 0 {
		a[Accuracy] = 1 / (1 + trajectory.MeanErrorAgainst(obs, ctx.Truth))
		a[TruthVolume] = float64(ctx.Truth.Len())
	}

	a[PrecisionError] = roughness(obs)

	// Consistency: monotone timestamps and speed-bound compliance.
	a[Consistency] = consistencyScore(obs, ctx.MaxSpeed)

	if n >= 2 {
		a[TimeSparsity] = obs.MeanSampleInterval()
	}

	if ctx.ExpectedInterval > 0 && n >= 2 {
		expected := obs.Duration()/ctx.ExpectedInterval + 1
		a[Completeness] = math.Min(1, float64(n)/expected)
	}

	if !ctx.Region.IsEmpty() && ctx.Region.Area() > 0 {
		cell := ctx.CellSize
		if cell <= 0 {
			cell = 50
		}
		a[SpaceCoverage] = coverage(obs.Polyline(), ctx.Region, cell)
		a[Resolution] = cell
	}

	a[Redundancy] = duplicateFraction(obs)

	if len(ctx.Delays) > 0 {
		a[Latency] = stats.Mean(ctx.Delays)
	}

	if ctx.Now != 0 {
		_, t1, _ := obs.TimeBounds()
		a[Staleness] = math.Max(0, ctx.Now-t1)
	}

	if ctx.Annotated > 0 {
		a[Interpretability] = math.Min(1, float64(ctx.Annotated)/float64(n))
	}
	return a
}

// roughness estimates the positional noise level without ground truth:
// the RMS deviation of each interior point from the chord between its
// neighbors (SED), scaled by 1/sqrt(1.5) because for i.i.d. Gaussian
// noise the midpoint deviation has variance 1.5*sigma^2.
func roughness(tr *trajectory.Trajectory) float64 {
	if tr.Len() < 3 {
		return 0
	}
	var sum float64
	var n int
	for i := 1; i < tr.Len()-1; i++ {
		d := trajectory.SED(tr.Points[i-1], tr.Points[i+1], tr.Points[i])
		sum += d * d
		n++
	}
	return math.Sqrt(sum/float64(n)) / math.Sqrt(1.5)
}

// consistencyScore returns the fraction of segments satisfying time
// monotonicity and, if maxSpeed > 0, the speed bound.
func consistencyScore(tr *trajectory.Trajectory, maxSpeed float64) float64 {
	if tr.Len() < 2 {
		return 1
	}
	speeds := tr.Speeds()
	ok := 0
	for _, s := range speeds {
		if math.IsInf(s, 1) {
			continue // non-increasing timestamp
		}
		if maxSpeed > 0 && s > maxSpeed {
			continue
		}
		ok++
	}
	return float64(ok) / float64(len(speeds))
}

// coverage rasterizes the polyline onto a grid over region and returns
// the visited-cell fraction.
func coverage(pl geo.Polyline, region geo.Rect, cell float64) float64 {
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 || ny < 1 {
		return 0
	}
	visited := map[int]bool{}
	mark := func(p geo.Point) {
		if !region.Contains(p) {
			return
		}
		cx := int((p.X - region.Min.X) / cell)
		cy := int((p.Y - region.Min.Y) / cell)
		if cx >= nx {
			cx = nx - 1
		}
		if cy >= ny {
			cy = ny - 1
		}
		visited[cy*nx+cx] = true
	}
	for i, p := range pl {
		mark(p)
		if i == 0 {
			continue
		}
		// Walk the segment at sub-cell steps so thin diagonals count.
		seg := geo.Segment{A: pl[i-1], B: pl[i]}
		steps := int(seg.Length()/(cell/2)) + 1
		for s := 1; s < steps; s++ {
			mark(seg.Interpolate(float64(s) / float64(steps)))
		}
	}
	return float64(len(visited)) / float64(nx*ny)
}

// duplicateFraction returns the fraction of points that exactly repeat
// an earlier point (same timestamp and position).
func duplicateFraction(tr *trajectory.Trajectory) float64 {
	if tr.Len() == 0 {
		return 0
	}
	seen := make(map[trajectory.Point]bool, tr.Len())
	dup := 0
	for _, p := range tr.Points {
		if seen[p] {
			dup++
		}
		seen[p] = true
	}
	return float64(dup) / float64(tr.Len())
}

// ReadingsContext supplies side information for assessing STID
// readings. Zero fields disable the corresponding dimensions.
type ReadingsContext struct {
	Truth            func(geo.Point, float64) float64 // ground-truth field
	Region           geo.Rect
	CellSize         float64
	ExpectedInterval float64 // per-sensor nominal period
	NumSensors       int     // deployed sensors (enables Completeness)
	Duration         float64 // observation span for the expected count
	Now              float64
	Delays           []float64
	Annotated        int
}

// AssessReadings measures every applicable DQ dimension of a set of
// STID readings.
func AssessReadings(readings []stid.Reading, ctx ReadingsContext) Assessment {
	a := Assessment{}
	a[DataVolume] = float64(len(readings))
	if len(readings) == 0 {
		return a
	}

	if ctx.Truth != nil {
		var sum float64
		for _, r := range readings {
			sum += math.Abs(r.Value - ctx.Truth(r.Pos, r.T))
		}
		a[Accuracy] = 1 / (1 + sum/float64(len(readings)))
		a[TruthVolume] = float64(len(readings))
	}

	// Precision: per-sensor local roughness of the value series.
	series := stid.NewSeries(readings)
	var rough []float64
	for _, s := range series {
		if r, ok := seriesRoughness(s); ok {
			rough = append(rough, r)
		}
	}
	if len(rough) > 0 {
		a[PrecisionError] = stats.Mean(rough)
	}

	// Consistency: cross-sensor agreement — fraction of readings within
	// 3 robust sigmas of the co-temporal neighborhood consensus.
	a[Consistency] = crossConsistency(readings)

	// Time sparsity: mean per-sensor sampling gap.
	var gaps []float64
	for _, s := range series {
		ts := s.Times()
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i]-ts[i-1])
		}
	}
	if len(gaps) > 0 {
		a[TimeSparsity] = stats.Mean(gaps)
	}

	if ctx.ExpectedInterval > 0 && ctx.NumSensors > 0 && ctx.Duration > 0 {
		expected := (ctx.Duration/ctx.ExpectedInterval + 1) * float64(ctx.NumSensors)
		a[Completeness] = math.Min(1, float64(len(readings))/expected)
	}

	if !ctx.Region.IsEmpty() && ctx.Region.Area() > 0 {
		cell := ctx.CellSize
		if cell <= 0 {
			cell = ctx.Region.Width() / 10
		}
		pts := make(geo.Polyline, 0, len(series))
		for _, s := range series {
			pts = append(pts, s.Pos)
		}
		a[SpaceCoverage] = pointCoverage(pts, ctx.Region, cell)
		a[Resolution] = cell
	}

	a[Redundancy] = readingDuplicateFraction(readings)

	if len(ctx.Delays) > 0 {
		a[Latency] = stats.Mean(ctx.Delays)
	}
	if ctx.Now != 0 {
		_, t1, _ := stid.TimeBounds(readings)
		a[Staleness] = math.Max(0, ctx.Now-t1)
	}
	if ctx.Annotated > 0 {
		a[Interpretability] = math.Min(1, float64(ctx.Annotated)/float64(len(readings)))
	}
	return a
}

func seriesRoughness(s stid.Series) (float64, bool) {
	if len(s.Readings) < 3 {
		return 0, false
	}
	var sum float64
	var n int
	for i := 1; i < len(s.Readings)-1; i++ {
		mid := (s.Readings[i-1].Value + s.Readings[i+1].Value) / 2
		d := s.Readings[i].Value - mid
		sum += d * d
		n++
	}
	return math.Sqrt(sum/float64(n)) / math.Sqrt(1.5), true
}

// crossConsistency groups readings into coarse time buckets and flags
// values deviating more than 3 robust sigmas from the bucket median.
func crossConsistency(readings []stid.Reading) float64 {
	t0, t1, _ := stid.TimeBounds(readings)
	span := t1 - t0
	bucket := span / 20
	if bucket <= 0 {
		bucket = 1
	}
	groups := map[int][]float64{}
	for _, r := range readings {
		k := int((r.T - t0) / bucket)
		groups[k] = append(groups[k], r.Value)
	}
	okCount, total := 0, 0
	for _, vals := range groups {
		if len(vals) < 4 {
			okCount += len(vals)
			total += len(vals)
			continue
		}
		med, _ := stats.Median(vals)
		mad, _ := stats.MAD(vals)
		if mad == 0 {
			mad = 1e-9
		}
		for _, v := range vals {
			total++
			// Spatial variation legitimately spreads values; use a wide
			// 5-sigma gate so only conflicts/outliers fail.
			if math.Abs(v-med) <= 5*mad {
				okCount++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(okCount) / float64(total)
}

func pointCoverage(pts geo.Polyline, region geo.Rect, cell float64) float64 {
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 || ny < 1 {
		return 0
	}
	visited := map[int]bool{}
	for _, p := range pts {
		if !region.Contains(p) {
			continue
		}
		cx := int((p.X - region.Min.X) / cell)
		cy := int((p.Y - region.Min.Y) / cell)
		if cx >= nx {
			cx = nx - 1
		}
		if cy >= ny {
			cy = ny - 1
		}
		visited[cy*nx+cx] = true
	}
	return float64(len(visited)) / float64(nx*ny)
}

func readingDuplicateFraction(readings []stid.Reading) float64 {
	if len(readings) == 0 {
		return 0
	}
	type key struct {
		id string
		t  float64
	}
	seen := make(map[key]bool, len(readings))
	dup := 0
	for _, r := range readings {
		k := key{r.SensorID, r.T}
		if seen[k] {
			dup++
		}
		seen[k] = true
	}
	return float64(dup) / float64(len(readings))
}

// Diff renders the dimension-by-dimension movement from before to
// after as an aligned table with direction markers: "+" marks an
// improvement under the dimension's polarity, "-" a regression, "="
// no material change (0.1% relative).
func Diff(before, after Assessment) string {
	var b strings.Builder
	for _, d := range AllDimensions() {
		bv, okB := before[d]
		av, okA := after[d]
		if !okB && !okA {
			continue
		}
		mark := "="
		scale := math.Max(math.Abs(bv), math.Abs(av))
		if okB && okA && scale > 0 && math.Abs(av-bv)/scale > 0.001 {
			improved := av > bv
			if !d.HigherIsBetter() {
				improved = av < bv
			}
			if improved {
				mark = "+"
			} else {
				mark = "-"
			}
		}
		fmt.Fprintf(&b, "%s %-18s %12.4f -> %12.4f\n", mark, d.String(), bv, av)
	}
	return b.String()
}
