package quality

import (
	"math"
	"strings"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func region() geo.Rect { return geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)} }

func cleanWalk(seed int64) *trajectory.Trajectory {
	return simulate.RandomWalk("w", region(), 800, 2, 1, seed)
}

func TestDimensionStringsAndPolarity(t *testing.T) {
	for _, d := range AllDimensions() {
		if strings.Contains(d.String(), "dimension(") {
			t.Fatalf("missing name for %d", int(d))
		}
	}
	if !Accuracy.HigherIsBetter() || PrecisionError.HigherIsBetter() {
		t.Fatal("polarity wrong")
	}
	if Dimension(99).String() == "" {
		t.Fatal("unknown dimension should still render")
	}
}

func TestAssessCleanTrajectory(t *testing.T) {
	truth := cleanWalk(1)
	ctx := TrajectoryContext{
		Truth: truth, ExpectedInterval: 1, MaxSpeed: 10,
		Region: region(), CellSize: 50, Now: 800,
	}
	a := AssessTrajectory(truth, ctx)
	if v := a[Accuracy]; v != 1 {
		t.Fatalf("self accuracy = %v", v)
	}
	if v := a[Consistency]; v != 1 {
		t.Fatalf("clean consistency = %v", v)
	}
	if v := a[Completeness]; v < 0.99 {
		t.Fatalf("clean completeness = %v", v)
	}
	if v := a[Redundancy]; v != 0 {
		t.Fatalf("clean redundancy = %v", v)
	}
	if v := a[PrecisionError]; v > 0.6 {
		t.Fatalf("smooth walk roughness = %v", v)
	}
	if a[DataVolume] != 800 {
		t.Fatalf("volume = %v", a[DataVolume])
	}
	if a[TimeSparsity] != 1 {
		t.Fatalf("sparsity = %v", a[TimeSparsity])
	}
	if a[Staleness] != 1 { // last sample at t=799, now=800
		t.Fatalf("staleness = %v", a[Staleness])
	}
}

func TestAssessNoisyTrajectoryDegrades(t *testing.T) {
	truth := cleanWalk(2)
	noisy := simulate.AddGaussianNoise(truth, 10, 3)
	ctx := TrajectoryContext{Truth: truth, ExpectedInterval: 1, MaxSpeed: 10, Region: region(), Now: 800}
	base := AssessTrajectory(truth, ctx)
	deg := AssessTrajectory(noisy, ctx)
	if deg[Accuracy] >= base[Accuracy] {
		t.Fatal("noise did not reduce accuracy")
	}
	if deg[PrecisionError] <= base[PrecisionError] {
		t.Fatal("noise did not raise precision error")
	}
	// Roughness should estimate sigma=10 within a factor.
	if deg[PrecisionError] < 5 || deg[PrecisionError] > 20 {
		t.Fatalf("precision error = %v, want ~10", deg[PrecisionError])
	}
	worse := deg.WorseThan(base, 0.05)
	found := map[Dimension]bool{}
	for _, d := range worse {
		found[d] = true
	}
	if !found[Accuracy] || !found[PrecisionError] {
		t.Fatalf("WorseThan missed degradations: %v", worse)
	}
}

func TestConsistencyFlagsSpeedViolations(t *testing.T) {
	truth := cleanWalk(4)
	corrupted, _ := simulate.InjectOutliers(truth, 0.05, 200, 5)
	ctx := TrajectoryContext{MaxSpeed: 10}
	a := AssessTrajectory(corrupted, ctx)
	if a[Consistency] >= 0.99 {
		t.Fatalf("outliers not flagged: consistency = %v", a[Consistency])
	}
	// Non-monotone timestamps also violate.
	bad := truth.Clone()
	bad.Points[10].T = bad.Points[9].T // duplicate timestamp -> Inf speed
	if got := AssessTrajectory(bad, ctx)[Consistency]; got >= 1 {
		t.Fatalf("bad timestamps not flagged: %v", got)
	}
}

func TestCompletenessAndSparsityAfterThinning(t *testing.T) {
	truth := cleanWalk(6)
	thin := truth.Thin(10)
	ctx := TrajectoryContext{ExpectedInterval: 1}
	base := AssessTrajectory(truth, ctx)
	deg := AssessTrajectory(thin, ctx)
	if deg[Completeness] >= base[Completeness] {
		t.Fatal("thinning did not reduce completeness")
	}
	if deg[Completeness] > 0.15 {
		t.Fatalf("completeness after 10x thin = %v", deg[Completeness])
	}
	if deg[TimeSparsity] <= base[TimeSparsity] {
		t.Fatal("thinning did not raise sparsity")
	}
}

func TestRedundancyCountsDuplicates(t *testing.T) {
	truth := cleanWalk(7)
	dup := simulate.DuplicateSamples(truth, 0.5, 8)
	a := AssessTrajectory(dup, TrajectoryContext{})
	if a[Redundancy] < 0.2 {
		t.Fatalf("redundancy = %v", a[Redundancy])
	}
}

func TestSpaceCoverage(t *testing.T) {
	// A trajectory confined to one corner covers few cells.
	truth := simulate.RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}, 500, 2, 1, 9)
	ctx := TrajectoryContext{Region: region(), CellSize: 50}
	a := AssessTrajectory(truth, ctx)
	if a[SpaceCoverage] > 0.05 {
		t.Fatalf("corner coverage = %v", a[SpaceCoverage])
	}
	// A long diagonal covers more.
	diag := trajectory.New("d", []trajectory.Point{
		{T: 0, Pos: geo.Pt(0, 0)}, {T: 100, Pos: geo.Pt(1000, 1000)},
	})
	b := AssessTrajectory(diag, ctx)
	if b[SpaceCoverage] <= a[SpaceCoverage] {
		t.Fatal("diagonal should cover more cells")
	}
}

func TestAssessEmptyTrajectory(t *testing.T) {
	a := AssessTrajectory(&trajectory.Trajectory{}, TrajectoryContext{Truth: cleanWalk(10)})
	if a[DataVolume] != 0 {
		t.Fatal("empty volume")
	}
	if _, ok := a[Accuracy]; ok {
		t.Fatal("empty trajectory should not report accuracy")
	}
}

func TestLatencyAndInterpretability(t *testing.T) {
	truth := cleanWalk(11)
	delayed, delays := simulate.DelayReports(truth, 4, 12)
	a := AssessTrajectory(delayed, TrajectoryContext{Delays: delays, Annotated: 100})
	if a[Latency] < 3 || a[Latency] > 5 {
		t.Fatalf("latency = %v", a[Latency])
	}
	want := 100.0 / float64(truth.Len())
	if math.Abs(a[Interpretability]-want) > 1e-9 {
		t.Fatalf("interpretability = %v", a[Interpretability])
	}
}

func TestAssessReadings(t *testing.T) {
	f := simulate.NewField(simulate.FieldOptions{Seed: 13})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 25, Interval: 300, Duration: 6000, NoiseSigma: 2, Seed: 14,
	})
	ctx := ReadingsContext{
		Truth:            f.Value,
		Region:           region(),
		CellSize:         100,
		ExpectedInterval: 300,
		NumSensors:       25,
		Duration:         6000,
		Now:              6000,
	}
	a := AssessReadings(readings, ctx)
	if a[Completeness] < 0.99 {
		t.Fatalf("completeness = %v", a[Completeness])
	}
	if a[Accuracy] <= 0 || a[Accuracy] > 1 {
		t.Fatalf("accuracy = %v", a[Accuracy])
	}
	if a[PrecisionError] <= 0 {
		t.Fatal("precision error should be positive with noise")
	}
	if a[Consistency] < 0.9 {
		t.Fatalf("clean-ish consistency = %v", a[Consistency])
	}
	if a[TimeSparsity] != 300 {
		t.Fatalf("sparsity = %v", a[TimeSparsity])
	}
	// Outliers drop consistency.
	corrupted, _ := simulate.InjectValueOutliers(readings, 0.1, 200, 15)
	b := AssessReadings(corrupted, ctx)
	if b[Consistency] >= a[Consistency] {
		t.Fatalf("outliers did not reduce consistency: %v vs %v", b[Consistency], a[Consistency])
	}
	if b[Accuracy] >= a[Accuracy] {
		t.Fatal("outliers did not reduce accuracy")
	}
}

func TestAssessReadingsEmpty(t *testing.T) {
	a := AssessReadings(nil, ReadingsContext{})
	if a[DataVolume] != 0 {
		t.Fatal("empty readings volume")
	}
}

func TestReadingDuplicates(t *testing.T) {
	r := stid.Reading{SensorID: "s", Pos: geo.Pt(1, 1), T: 5, Value: 2}
	a := AssessReadings([]stid.Reading{r, r, r}, ReadingsContext{})
	if a[Redundancy] < 0.6 {
		t.Fatalf("redundancy = %v", a[Redundancy])
	}
}

func TestAssessmentStringRendering(t *testing.T) {
	a := Assessment{Accuracy: 0.9, DataVolume: 100}
	s := a.String()
	if !strings.Contains(s, "accuracy") || !strings.Contains(s, "data_volume") {
		t.Fatalf("render: %q", s)
	}
}

func TestCharacteristicMatrixMatchesPaper(t *testing.T) {
	rows := CharacteristicMatrix(42)
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	structurals := 0
	for _, r := range rows {
		if r.Structural {
			structurals++
			if len(PaperIssues(r.Char)) != 0 {
				t.Fatalf("%v should not be structural", r.Char)
			}
			continue
		}
		expect := PaperIssues(r.Char)
		if len(expect) == 0 {
			t.Fatalf("%v missing paper issues", r.Char)
		}
		// Every paper-listed dimension we measured must have degraded.
		degraded := map[Dimension]bool{}
		for _, e := range r.Effects {
			if e.Degraded {
				degraded[e.Dim] = true
			}
		}
		for _, d := range expect {
			measured := false
			for _, e := range r.Effects {
				if e.Dim == d {
					measured = true
				}
			}
			if measured && !degraded[d] {
				t.Errorf("%v: paper expects %v to degrade, measurement disagrees", r.Char, d)
			}
		}
		if len(degraded) == 0 {
			t.Errorf("%v: no degradation measured at all", r.Char)
		}
	}
	if structurals != 4 {
		t.Fatalf("structural rows = %d, want 4", structurals)
	}
	table := RenderTable1(rows)
	if !strings.Contains(table, "Noisy and erroneous") || !strings.Contains(table, "| -") {
		t.Fatalf("table render:\n%s", table)
	}
}

func TestCharacteristicMatrixDeterministic(t *testing.T) {
	a := RenderTable1(CharacteristicMatrix(7))
	b := RenderTable1(CharacteristicMatrix(7))
	if a != b {
		t.Fatal("matrix not deterministic")
	}
}

func TestDiffRendering(t *testing.T) {
	before := Assessment{Accuracy: 0.5, PrecisionError: 10, DataVolume: 100}
	after := Assessment{Accuracy: 0.9, PrecisionError: 12, DataVolume: 100}
	d := Diff(before, after)
	if !strings.Contains(d, "+ accuracy") {
		t.Fatalf("accuracy improvement not marked:\n%s", d)
	}
	if !strings.Contains(d, "- precision_error") {
		t.Fatalf("precision regression not marked:\n%s", d)
	}
	if !strings.Contains(d, "= data_volume") {
		t.Fatalf("unchanged not marked:\n%s", d)
	}
}
