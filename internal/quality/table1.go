package quality

import (
	"fmt"
	"strings"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// Characteristic is one of the Table-1 SID characteristics.
type Characteristic int

// The thirteen characteristics of Table 1, in the paper's order.
const (
	NoisyErroneous Characteristic = iota
	TemporallyDiscrete
	DecentralizedHeterogeneous
	Dynamic
	VoluminousDuplicated
	IsolatedConflicting
	VaryingSmoothly
	Markovian
	Unverifiable
	HierarchicalMultiScaled
	SpatiallyDiscrete
	SpatiallyAutocorrelated
	SpatiallyAnisotropic
)

var characteristicNames = map[Characteristic]string{
	NoisyErroneous:             "Noisy and erroneous",
	TemporallyDiscrete:         "Temporally discrete",
	DecentralizedHeterogeneous: "Decentralized and heterogeneous",
	Dynamic:                    "Dynamic",
	VoluminousDuplicated:       "Voluminous and duplicated",
	IsolatedConflicting:        "Isolated and conflicting",
	VaryingSmoothly:            "Varying smoothly",
	Markovian:                  "Markovian",
	Unverifiable:               "Unverifiable",
	HierarchicalMultiScaled:    "Hierarchical and multi-scaled",
	SpatiallyDiscrete:          "Spatially discrete",
	SpatiallyAutocorrelated:    "Spatially autocorrelated",
	SpatiallyAnisotropic:       "Spatially anisotropic",
}

// String implements fmt.Stringer.
func (c Characteristic) String() string { return characteristicNames[c] }

// AllCharacteristics lists the Table-1 rows in order.
func AllCharacteristics() []Characteristic {
	return []Characteristic{
		NoisyErroneous, TemporallyDiscrete, DecentralizedHeterogeneous,
		Dynamic, VoluminousDuplicated, IsolatedConflicting, VaryingSmoothly,
		Markovian, Unverifiable, HierarchicalMultiScaled, SpatiallyDiscrete,
		SpatiallyAutocorrelated, SpatiallyAnisotropic,
	}
}

// Effect is a measured quality-issue entry: the characteristic degraded
// (or improved) a dimension.
type Effect struct {
	Dim      Dimension
	Degraded bool    // true: the issue direction matches Table 1's arrow
	Baseline float64 // dimension value before injecting the characteristic
	Observed float64 // dimension value after
}

// Row is one empirical Table-1 row.
type Row struct {
	Char       Characteristic
	Structural bool // "-" rows: exploitable structure, not an issue
	Effects    []Effect
}

// PaperIssues maps each characteristic to the dimensions Table 1 lists
// as affected (the expectation our measurement is checked against).
func PaperIssues(c Characteristic) []Dimension {
	switch c {
	case NoisyErroneous:
		return []Dimension{PrecisionError, Accuracy, Consistency}
	case TemporallyDiscrete:
		return []Dimension{TimeSparsity, Completeness, Staleness}
	case DecentralizedHeterogeneous:
		return []Dimension{Consistency, Latency, Interpretability}
	case Dynamic:
		return []Dimension{PrecisionError}
	case VoluminousDuplicated:
		return []Dimension{Redundancy, Latency, DataVolume}
	case IsolatedConflicting:
		return []Dimension{Consistency, Interpretability}
	case Unverifiable:
		return []Dimension{TruthVolume}
	case HierarchicalMultiScaled:
		return []Dimension{Consistency, Resolution, Interpretability}
	case SpatiallyDiscrete:
		return []Dimension{SpaceCoverage}
	default:
		return nil // structural rows
	}
}

// CharacteristicMatrix reproduces Table 1 empirically: it generates a
// clean baseline trajectory workload, injects each characteristic in
// isolation, re-assesses, and records which dimensions degraded. The
// four structural rows (varying smoothly, Markovian, spatially
// autocorrelated, spatially anisotropic) are reported as such — the
// paper marks them "-" because they are exploitable regularities, not
// quality problems.
func CharacteristicMatrix(seed int64) []Row {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	truth := simulate.RandomWalk("t1", region, 1200, 2.0, 1, seed)
	baseCtx := TrajectoryContext{
		Truth:            truth,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Region:           region,
		CellSize:         50,
		Now:              1200,
		// The clean baseline arrives instantly and fully annotated, so
		// latency/interpretability regressions become measurable.
		Delays:    make([]float64, truth.Len()),
		Annotated: truth.Len(),
	}
	base := AssessTrajectory(truth, baseCtx)

	rows := make([]Row, 0, 13)
	for _, c := range AllCharacteristics() {
		row := Row{Char: c}
		switch c {
		case NoisyErroneous:
			noisy := simulate.AddGaussianNoise(truth, 8, seed+1)
			noisy, _ = simulate.InjectOutliers(noisy, 0.03, 150, seed+2)
			row.Effects = compare(base, AssessTrajectory(noisy, baseCtx),
				PrecisionError, Accuracy, Consistency)
		case TemporallyDiscrete:
			// Keep every 20th sample with no guarantee the newest fix is
			// reported — discrete sampling both thins the series and
			// leaves the consumer with a stale last-known position.
			sparse := &trajectory.Trajectory{ID: truth.ID}
			for i := 0; i < truth.Len(); i += 20 {
				sparse.Points = append(sparse.Points, truth.Points[i])
			}
			row.Effects = compare(base, AssessTrajectory(sparse, baseCtx),
				TimeSparsity, Completeness, Staleness)
		case DecentralizedHeterogeneous:
			// Two unsynchronized sources: one offset by a constant bias
			// (inter-source disagreement) and arriving with delay.
			src2 := simulate.AddGaussianNoise(truth, 0.5, seed+3)
			for i := range src2.Points {
				src2.Points[i].Pos = src2.Points[i].Pos.Add(geo.Pt(40, 0))
			}
			merged := mergeAlternating(truth, src2)
			delayed, delays := simulate.DelayReports(merged, 5, seed+4)
			ctx := baseCtx
			ctx.Delays = delays
			// Only the primary source's fixes carry semantics; the
			// foreign source's format is opaque to the consumer.
			ctx.Annotated = truth.Len()
			row.Effects = compare(base, AssessTrajectory(delayed, ctx),
				Consistency, Latency, Interpretability)
		case Dynamic:
			// Dynamics: each fix is used after a processing lag, during
			// which the object moved; the effective precision degrades.
			lagged := truth.Clone()
			for i := range lagged.Points {
				if pos, ok := truth.LocationAt(lagged.Points[i].T - 3); ok {
					lagged.Points[i].Pos = pos
				}
			}
			row.Effects = compare(base, AssessTrajectory(lagged, baseCtx),
				PrecisionError, Accuracy)
		case VoluminousDuplicated:
			dup := simulate.DuplicateSamples(truth, 0.5, seed+5)
			_, delays := simulate.DelayReports(dup, 2, seed+6)
			ctx := baseCtx
			ctx.Delays = delays
			row.Effects = compare(base, AssessTrajectory(dup, ctx),
				Redundancy, Latency, DataVolume)
		case IsolatedConflicting:
			// Conflicting duplicate reports: a shifted copy of every 3rd
			// point is interleaved, so co-temporal fixes disagree.
			conflicted := truth.Clone()
			for i := 0; i < truth.Len(); i += 3 {
				p := truth.Points[i]
				p.Pos = p.Pos.Add(geo.Pt(120, 0))
				conflicted.Points = append(conflicted.Points, p)
			}
			conflicted = trajectory.New(conflicted.ID, conflicted.Points)
			ctx := baseCtx
			ctx.Annotated = truth.Len() // conflicting extras are uninterpretable
			row.Effects = compare(base, AssessTrajectory(conflicted, ctx),
				Consistency, Interpretability)
		case Unverifiable:
			ctx := baseCtx
			ctx.Truth = nil
			after := AssessTrajectory(truth, ctx)
			// TruthVolume disappears entirely: record as a degradation
			// from the baseline count to zero.
			bv := base[TruthVolume]
			row.Effects = []Effect{{Dim: TruthVolume, Degraded: bv > 0, Baseline: bv, Observed: 0}}
			_ = after
		case HierarchicalMultiScaled:
			// Half the points quantized to a coarse 200 m grid (coarser
			// administrative scale), half kept fine: mixed resolutions.
			mixed := truth.Clone()
			for i := range mixed.Points {
				if i%2 == 0 {
					p := mixed.Points[i].Pos
					mixed.Points[i].Pos = geo.Pt(snap(p.X, 200), snap(p.Y, 200))
				}
			}
			ctx := baseCtx
			ctx.CellSize = 200              // effective resolution coarsens
			ctx.Annotated = truth.Len() / 2 // coarse-scale points lose semantics
			row.Effects = compare(base, AssessTrajectory(mixed, ctx),
				Consistency, Resolution, Interpretability)
		case SpatiallyDiscrete:
			// Observations confined to one corner of the region.
			confined := truth.Clone()
			confined.Points = nil
			for _, p := range truth.Points {
				if p.Pos.X < 300 && p.Pos.Y < 300 {
					confined.Points = append(confined.Points, p)
				}
			}
			if len(confined.Points) < 2 {
				confined = truth.Slice(0, 100)
			}
			row.Effects = compare(base, AssessTrajectory(confined, baseCtx),
				SpaceCoverage)
		default:
			row.Structural = true
		}
		rows = append(rows, row)
	}
	return rows
}

// mergeAlternating interleaves the points of two trajectories by time.
func mergeAlternating(a, b *trajectory.Trajectory) *trajectory.Trajectory {
	pts := append(append([]trajectory.Point(nil), a.Points...), b.Points...)
	return trajectory.New(a.ID, pts)
}

func snap(v, grid float64) float64 {
	return grid * float64(int(v/grid+0.5))
}

// compare builds effects for the listed dimensions by diffing two
// assessments. An effect is marked Degraded when the observed value is
// worse (per dimension polarity) than baseline by more than 1%.
func compare(base, after Assessment, dims ...Dimension) []Effect {
	var out []Effect
	for _, d := range dims {
		bv, okB := base[d]
		av, okA := after[d]
		if !okB || !okA {
			continue
		}
		worse := av < bv
		if !d.HigherIsBetter() {
			worse = av > bv
		}
		scale := maxAbs(av, bv)
		material := scale > 0 && abs(av-bv)/scale > 0.01
		out = append(out, Effect{Dim: d, Degraded: worse && material, Baseline: bv, Observed: av})
	}
	return out
}

func maxAbs(a, b float64) float64 {
	a, b = abs(a), abs(b)
	if a > b {
		return a
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderTable1 renders the empirical matrix in the paper's Table-1
// format: one row per characteristic with arrow-annotated issues.
func RenderTable1(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s| %s\n", "SID Characteristic", "Measured Quality Issues (↓ low / ↑ high)")
	b.WriteString(strings.Repeat("-", 90) + "\n")
	for _, r := range rows {
		if r.Structural {
			fmt.Fprintf(&b, "%-34s| -\n", r.Char)
			continue
		}
		var parts []string
		for _, e := range r.Effects {
			if !e.Degraded {
				continue
			}
			arrow := "↑"
			if e.Dim.HigherIsBetter() {
				arrow = "↓"
			}
			parts = append(parts, fmt.Sprintf("%s %s (%.3g→%.3g)", arrow, e.Dim, e.Baseline, e.Observed))
		}
		if len(parts) == 0 {
			parts = []string{"(no material change measured)"}
		}
		fmt.Fprintf(&b, "%-34s| %s\n", r.Char, strings.Join(parts, ", "))
	}
	return b.String()
}
