// Package faults implements the paper's §2.2.4 Fault Correction task
// family: finding and repairing wrong, conflicting, or missing values.
//
// Three method groups are provided, mirroring the tutorial:
//   - symbolic-trajectory cleansing for RFID-style tracking: rule-based
//     conflict resolution, smoothing-window imputation of false
//     negatives, and an HMM (Viterbi) probabilistic cleanser covering
//     both false positives and false negatives;
//   - timestamp repair under temporal (gap) constraints;
//   - thematic value repair by spatiotemporal neighborhood consensus.
package faults

import (
	"math"
	"sort"

	"sidq/internal/geo"
)

// ReaderInfo describes one proximity sensor in a deployment.
type ReaderInfo struct {
	ID    string
	Pos   geo.Point
	Range float64
}

// Detection is a raw symbolic observation: the reader saw the tracked
// object at epoch time T.
type Detection struct {
	Reader string
	T      float64
}

// Deployment is the static context symbolic cleansing needs: the
// readers, the detection epoch, and the object's maximum speed.
type Deployment struct {
	Readers  []ReaderInfo
	Epoch    float64 // epoch length in seconds
	MaxSpeed float64 // object speed bound, m/s
}

// None is the symbolic label for "covered by no reader".
const None = ""

// EpochObservations groups raw detections by epoch time, returning the
// sorted epoch times and the set of readers seen at each.
func EpochObservations(dets []Detection) ([]float64, map[float64][]string) {
	byT := map[float64][]string{}
	for _, d := range dets {
		byT[d.T] = append(byT[d.T], d.Reader)
	}
	times := make([]float64, 0, len(byT))
	for t := range byT {
		times = append(times, t)
		sort.Strings(byT[t])
	}
	sort.Float64s(times)
	return times, byT
}

// ResolveConflicts performs rule-based false-positive removal: at each
// epoch with multiple detections it keeps the reader that is
// travel-feasible from the previously accepted reader (within
// MaxSpeed * elapsed), preferring the nearest such reader. Epochs with
// no detection keep the None label. This is the constraint-based
// cleansing rule.
func (d Deployment) ResolveConflicts(times []float64, obs map[float64][]string) map[float64]string {
	pos := d.readerPositions()
	out := make(map[float64]string, len(times))
	prev := None
	prevT := math.Inf(-1)
	for _, t := range times {
		cands := obs[t]
		switch {
		case len(cands) == 0:
			out[t] = None
		case len(cands) == 1:
			out[t] = cands[0]
			prev, prevT = cands[0], t
		default:
			best := None
			bestD := math.Inf(1)
			for _, c := range cands {
				cp, ok := pos[c]
				if !ok {
					continue
				}
				if prev != None {
					pp := pos[prev]
					limit := d.MaxSpeed * (t - prevT)
					if d.MaxSpeed > 0 && cp.Dist(pp) > limit+1e-9 {
						continue // unreachable: cross-read
					}
					if dd := cp.Dist(pp); dd < bestD {
						best, bestD = c, dd
					}
				} else if bestD == math.Inf(1) {
					best, bestD = c, 0
				}
			}
			if best == None && len(cands) > 0 {
				best = cands[0]
			}
			out[t] = best
			prev, prevT = best, t
		}
	}
	return out
}

// SmoothImpute fills None epochs (false negatives) between two epochs
// labeled with the same or adjacent readers: gaps up to maxGap epochs
// are interpolated by assigning each missing epoch the nearer of the
// two bracketing readers (by time). This is the smoothing-window
// imputation of the RFID cleansing literature.
func (d Deployment) SmoothImpute(times []float64, labels map[float64]string, maxGap int) map[float64]string {
	out := make(map[float64]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	i := 0
	for i < len(times) {
		if out[times[i]] != None {
			i++
			continue
		}
		// Find the gap [i, j).
		j := i
		for j < len(times) && out[times[j]] == None {
			j++
		}
		gapLen := j - i
		if i > 0 && j < len(times) && gapLen <= maxGap {
			left := out[times[i-1]]
			right := out[times[j]]
			for k := i; k < j; k++ {
				// Assign by temporal proximity.
				if times[k]-times[i-1] <= times[j]-times[k] {
					out[times[k]] = left
				} else {
					out[times[k]] = right
				}
			}
		}
		i = j
	}
	return out
}

// HMMClean is the probabilistic cleanser: a hidden Markov model whose
// states are the readers plus None, with travel-feasibility transitions
// and an emission model parameterized by the deployment's false
// negative and false positive rates. Viterbi decoding yields the most
// likely true reader sequence, repairing both FPs and FNs jointly.
func (d Deployment) HMMClean(times []float64, obs map[float64][]string, fnRate, fpRate float64) map[float64]string {
	states := make([]string, 0, len(d.Readers)+1)
	states = append(states, None)
	for _, r := range d.Readers {
		states = append(states, r.ID)
	}
	pos := d.readerPositions()
	fnRate = clampProb(fnRate, 0.05)
	fpRate = clampProb(fpRate, 0.01)

	n := len(times)
	if n == 0 {
		return map[float64]string{}
	}
	logp := make([][]float64, n)
	back := make([][]int, n)
	for i := range logp {
		logp[i] = make([]float64, len(states))
		back[i] = make([]int, len(states))
	}
	emit := func(t float64, state string) float64 {
		seen := map[string]bool{}
		for _, r := range obs[t] {
			seen[r] = true
		}
		lp := 0.0
		for _, r := range d.Readers {
			isState := r.ID == state
			detected := seen[r.ID]
			switch {
			case isState && detected:
				lp += math.Log(1 - fnRate)
			case isState && !detected:
				lp += math.Log(fnRate)
			case !isState && detected:
				lp += math.Log(fpRate)
			default:
				lp += math.Log(1 - fpRate)
			}
		}
		return lp
	}
	trans := func(from, to string, dt float64) float64 {
		// Dwell times in a reader zone span several epochs, so
		// self-transitions dominate; switching to a travel-feasible
		// neighbor (or the uncovered gap between zones) is rarer.
		if from == to {
			return math.Log(0.8)
		}
		if from == None || to == None {
			return math.Log(0.1)
		}
		limit := d.MaxSpeed * dt
		if d.MaxSpeed > 0 && pos[from].Dist(pos[to]) > limit+1e-9 {
			return math.Inf(-1) // infeasible jump
		}
		return math.Log(0.1)
	}
	for s, state := range states {
		logp[0][s] = emit(times[0], state)
	}
	for i := 1; i < n; i++ {
		dt := times[i] - times[i-1]
		for s, state := range states {
			best, bestK := math.Inf(-1), 0
			for k, prev := range states {
				if v := logp[i-1][k] + trans(prev, state, dt); v > best {
					best, bestK = v, k
				}
			}
			logp[i][s] = best + emit(times[i], state)
			back[i][s] = bestK
		}
	}
	bestS, bestV := 0, math.Inf(-1)
	for s, v := range logp[n-1] {
		if v > bestV {
			bestS, bestV = s, v
		}
	}
	out := make(map[float64]string, n)
	s := bestS
	for i := n - 1; i >= 0; i-- {
		out[times[i]] = states[s]
		s = back[i][s]
	}
	return out
}

func (d Deployment) readerPositions() map[string]geo.Point {
	pos := make(map[string]geo.Point, len(d.Readers))
	for _, r := range d.Readers {
		pos[r.ID] = r.Pos
	}
	return pos
}

func clampProb(p, def float64) float64 {
	if p <= 0 || p >= 1 {
		return def
	}
	return p
}

// SequenceAccuracy returns the fraction of epochs where got matches
// want, over the union of epoch keys.
func SequenceAccuracy(got, want map[float64]string) float64 {
	keys := map[float64]bool{}
	for t := range got {
		keys[t] = true
	}
	for t := range want {
		keys[t] = true
	}
	if len(keys) == 0 {
		return 1
	}
	ok := 0
	for t := range keys {
		if got[t] == want[t] {
			ok++
		}
	}
	return float64(ok) / float64(len(keys))
}
