package faults

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no timestamp assignment can satisfy
// the gap constraints (e.g. maxGap < minGap).
var ErrInfeasible = errors.New("faults: infeasible timestamp constraints")

// TimestampViolations returns the indices i (of the second element of
// the pair) where ts[i] - ts[i-1] falls outside [minGap, maxGap].
func TimestampViolations(ts []float64, minGap, maxGap float64) []int {
	var out []int
	for i := 1; i < len(ts); i++ {
		gap := ts[i] - ts[i-1]
		// Tolerance scales with magnitude: subtracting two large nearby
		// timestamps loses absolute precision.
		tol := 1e-9 * math.Max(1, math.Abs(ts[i]))
		if gap < minGap-tol || gap > maxGap+tol {
			out = append(out, i)
		}
	}
	return out
}

// RepairTimestamps repairs a timestamp sequence so consecutive gaps lie
// in [minGap, maxGap], staying close to the observed values. The repair
// follows the temporal-constraint cleaning approach: a forward pass
// derives the feasible interval of each timestamp given its repaired
// predecessor, and the observation is clamped into it (minimal change
// per step under the greedy order).
func RepairTimestamps(ts []float64, minGap, maxGap float64) ([]float64, error) {
	if maxGap < minGap {
		return nil, ErrInfeasible
	}
	out := make([]float64, len(ts))
	if len(ts) == 0 {
		return out, nil
	}
	// Anchor the start robustly: when the FIRST gap already violates
	// the constraints, the first timestamp itself may be the corrupted
	// one, so re-derive it from the median-implied start of the next
	// few observations. When the first gap is fine the anchor stays
	// put, which makes the repair the identity on feasible sequences
	// (and therefore idempotent).
	out[0] = ts[0]
	if len(ts) >= 3 {
		firstGap := ts[1] - ts[0]
		if firstGap < minGap-1e-12 || firstGap > maxGap+1e-12 {
			mid := (minGap + maxGap) / 2
			candidates := []float64{ts[0]}
			for i := 1; i < len(ts) && i <= 4; i++ {
				candidates = append(candidates, ts[i]-float64(i)*mid)
			}
			out[0] = median(candidates)
		}
	}
	for i := 1; i < len(ts); i++ {
		lo := out[i-1] + minGap
		hi := out[i-1] + maxGap
		switch {
		case ts[i] < lo:
			out[i] = lo
		case ts[i] > hi:
			out[i] = hi
		default:
			out[i] = ts[i]
		}
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
