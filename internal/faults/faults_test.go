package faults

import (
	"math"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
)

// world builds a symbolic tracking scenario from the simulator and
// converts it to the faults package's types.
func world(t *testing.T, fn, fp float64, seed int64) (Deployment, []float64, map[float64][]string, map[float64]string) {
	t.Helper()
	w := simulate.Symbolic("obj", simulate.SymbolicOptions{
		NumReaders: 12, Spacing: 20, Range: 8, Epoch: 1, Speed: 2,
		FalseNeg: fn, FalsePos: fp, Seed: seed,
	})
	dep := Deployment{Epoch: 1, MaxSpeed: 6}
	for _, r := range w.Readers {
		dep.Readers = append(dep.Readers, ReaderInfo{ID: r.ID, Pos: r.Pos, Range: r.Range})
	}
	dets := make([]Detection, 0, len(w.Detections))
	for _, d := range w.Detections {
		dets = append(dets, Detection{Reader: d.ReaderID, T: d.T})
	}
	_, obs := EpochObservations(dets)
	// Include silent epochs so FNs are visible to the cleaners.
	obsAll := map[float64][]string{}
	for _, e := range w.Epochs {
		obsAll[e] = obs[e]
	}
	return dep, w.Epochs, obsAll, w.Truth
}

// rawAccuracy scores the uncleaned observations: an epoch is correct if
// exactly the true reader was seen.
func rawAccuracy(epochs []float64, obs map[float64][]string, truth map[float64]string) float64 {
	ok := 0
	for _, t := range epochs {
		rs := obs[t]
		if len(rs) == 1 && rs[0] == truth[t] {
			ok++
		} else if len(rs) == 0 && truth[t] == None {
			ok++
		}
	}
	return float64(ok) / float64(len(epochs))
}

func TestEpochObservations(t *testing.T) {
	dets := []Detection{
		{Reader: "b", T: 2},
		{Reader: "a", T: 1},
		{Reader: "c", T: 2},
	}
	times, obs := EpochObservations(dets)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
	if got := obs[2.0]; len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("obs[2] = %v", got)
	}
}

func TestResolveConflictsRemovesCrossReads(t *testing.T) {
	dep, epochs, obs, truth := world(t, 0, 0.3, 1)
	labels := dep.ResolveConflicts(epochs, obs)
	acc := SequenceAccuracy(labels, truth)
	raw := rawAccuracy(epochs, obs, truth)
	if acc <= raw {
		t.Fatalf("conflict resolution did not improve: raw %v cleaned %v", raw, acc)
	}
	if acc < 0.7 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestSmoothImputeFillsFalseNegatives(t *testing.T) {
	dep, epochs, obs, truth := world(t, 0.35, 0, 2)
	labels := dep.ResolveConflicts(epochs, obs)
	before := SequenceAccuracy(labels, truth)
	imputed := dep.SmoothImpute(epochs, labels, 5)
	after := SequenceAccuracy(imputed, truth)
	if after <= before {
		t.Fatalf("imputation did not improve: %v -> %v", before, after)
	}
}

func TestSmoothImputeRespectsMaxGap(t *testing.T) {
	dep := Deployment{Epoch: 1, MaxSpeed: 5, Readers: []ReaderInfo{
		{ID: "r0", Pos: geo.Pt(0, 0), Range: 5},
		{ID: "r1", Pos: geo.Pt(10, 0), Range: 5},
	}}
	times := []float64{0, 1, 2, 3, 4, 5}
	labels := map[float64]string{0: "r0", 1: None, 2: None, 3: None, 4: None, 5: "r1"}
	out := dep.SmoothImpute(times, labels, 2) // gap of 4 > maxGap 2
	for _, tm := range times[1:5] {
		if out[tm] != None {
			t.Fatalf("gap beyond maxGap was imputed at %v", tm)
		}
	}
	out = dep.SmoothImpute(times, labels, 4)
	if out[1] != "r0" || out[4] != "r1" {
		t.Fatalf("imputation by proximity: %v", out)
	}
}

func TestHMMCleanBeatsRawUnderBothFaults(t *testing.T) {
	dep, epochs, obs, truth := world(t, 0.25, 0.08, 3)
	cleaned := dep.HMMClean(epochs, obs, 0.25, 0.08)
	acc := SequenceAccuracy(cleaned, truth)
	raw := rawAccuracy(epochs, obs, truth)
	if acc <= raw {
		t.Fatalf("HMM did not improve: raw %v cleaned %v", raw, acc)
	}
	if acc < 0.8 {
		t.Fatalf("HMM accuracy = %v", acc)
	}
}

func TestHMMCleanBeatsRules(t *testing.T) {
	dep, epochs, obs, truth := world(t, 0.25, 0.08, 4)
	rules := dep.SmoothImpute(epochs, dep.ResolveConflicts(epochs, obs), 5)
	hmm := dep.HMMClean(epochs, obs, 0.25, 0.08)
	if SequenceAccuracy(hmm, truth) < SequenceAccuracy(rules, truth)-0.05 {
		t.Fatalf("HMM (%v) much worse than rules (%v)",
			SequenceAccuracy(hmm, truth), SequenceAccuracy(rules, truth))
	}
}

func TestHMMCleanEmpty(t *testing.T) {
	dep := Deployment{Epoch: 1}
	if got := dep.HMMClean(nil, nil, 0.1, 0.1); len(got) != 0 {
		t.Fatal("empty HMM clean")
	}
}

func TestSequenceAccuracy(t *testing.T) {
	a := map[float64]string{0: "x", 1: "y"}
	b := map[float64]string{0: "x", 1: "z"}
	if got := SequenceAccuracy(a, b); got != 0.5 {
		t.Fatalf("accuracy = %v", got)
	}
	if SequenceAccuracy(nil, nil) != 1 {
		t.Fatal("empty accuracy")
	}
	// Asymmetric keys count against accuracy.
	c := map[float64]string{0: "x", 1: "y", 2: "w"}
	if got := SequenceAccuracy(a, c); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("asymmetric accuracy = %v", got)
	}
}

func TestTimestampViolationsAndRepair(t *testing.T) {
	ts := []float64{0, 1, 2, 2.1, 10, 11}
	v := TimestampViolations(ts, 0.5, 3)
	if len(v) != 2 || v[0] != 3 || v[1] != 4 {
		t.Fatalf("violations = %v", v)
	}
	repaired, err := RepairTimestamps(ts, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := TimestampViolations(repaired, 0.5, 3); len(got) != 0 {
		t.Fatalf("repair left violations: %v (%v)", got, repaired)
	}
}

func TestRepairTimestampsRecoversJitteredClock(t *testing.T) {
	// True clock ticks every 2 s; observed has bounded jitter plus two
	// gross errors.
	n := 100
	truth := make([]float64, n)
	obs := make([]float64, n)
	for i := range truth {
		truth[i] = float64(i) * 2
		obs[i] = truth[i]
	}
	obs[10] += 30  // gross future error
	obs[50] -= 25  // gross past error
	obs[70] += 0.4 // benign jitter within constraints
	repaired, err := RepairTimestamps(obs, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, repErr float64
	for i := range truth {
		rawErr += math.Abs(obs[i] - truth[i])
		repErr += math.Abs(repaired[i] - truth[i])
	}
	if repErr >= rawErr {
		t.Fatalf("repair: raw %v -> repaired %v", rawErr, repErr)
	}
	// Benign jitter within constraints is untouched.
	if repaired[70] != obs[70] {
		t.Fatalf("benign jitter modified: %v", repaired[70])
	}
}

func TestRepairTimestampsInfeasible(t *testing.T) {
	if _, err := RepairTimestamps([]float64{0, 1}, 5, 3); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	out, err := RepairTimestamps(nil, 0, 1)
	if err != nil || len(out) != 0 {
		t.Fatal("empty repair")
	}
}

func TestRepairThematic(t *testing.T) {
	f := simulate.NewField(simulate.FieldOptions{Seed: 5})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 30, Interval: 300, Duration: 3600, NoiseSigma: 1, Seed: 6,
	})
	corrupted, flags := simulate.InjectValueOutliers(readings, 0.08, 80, 7)
	repaired, n := RepairThematic(corrupted, flags, 200, 600)
	if n == 0 {
		t.Fatal("nothing repaired")
	}
	errOf := func(rs []stid.Reading) float64 {
		var sum float64
		for _, r := range rs {
			sum += math.Abs(r.Value - f.Value(r.Pos, r.T))
		}
		return sum / float64(len(rs))
	}
	if errOf(repaired) >= errOf(corrupted)/2 {
		t.Fatalf("repair too weak: %v vs %v", errOf(repaired), errOf(corrupted))
	}
	// All-flagged input cannot repair (no clean neighbors) but must not panic.
	all := make([]bool, len(corrupted))
	for i := range all {
		all[i] = true
	}
	_, n2 := RepairThematic(corrupted, all, 200, 600)
	if n2 != 0 {
		t.Fatal("repair without clean data should do nothing")
	}
}
