package faults

import (
	"sidq/internal/stid"
	"sidq/internal/uncertain"
)

// RepairThematic replaces the flagged readings' values with a
// spatiotemporal neighborhood-consensus estimate computed from the
// unflagged readings (Gaussian-kernel interpolation). Readings the
// consensus cannot estimate (no clean neighbors) are left unchanged.
// It returns the repaired copy and the number of values rewritten.
func RepairThematic(readings []stid.Reading, flags []bool, spaceSigma, timeSigma float64) ([]stid.Reading, int) {
	out := append([]stid.Reading(nil), readings...)
	var clean []stid.Reading
	for i, r := range readings {
		if i < len(flags) && flags[i] {
			continue
		}
		clean = append(clean, r)
	}
	if len(clean) == 0 {
		return out, 0
	}
	kernel := uncertain.GaussianKernel{
		Readings:   clean,
		SpaceSigma: spaceSigma,
		TimeSigma:  timeSigma,
	}
	repaired := 0
	for i := range out {
		if i >= len(flags) || !flags[i] {
			continue
		}
		if est, ok := kernel.Estimate(out[i].Pos, out[i].T); ok {
			out[i].Value = est
			repaired++
		}
	}
	return out, repaired
}
