package faults

// Storage fault injection for the durability layer (internal/store):
// the paper's fault-correction story extended from data faults to
// infrastructure faults. Two injectors are provided:
//
//   - CrashFS: an in-memory store.FS that models durability the way a
//     strict POSIX disk does. File data is durable only up to the last
//     File.Sync; directory entries (creates, renames, removes) are
//     durable only after SyncDir. Crash() produces the post-crash disk
//     image: unsynced data vanishes (optionally leaving a torn,
//     bit-flipped tail — the partially written page), unsynced renames
//     revert, unsynced creates disappear, and unsynced removes
//     resurrect their file. Recovery code that survives CrashFS at
//     every kill point survives a real power cut.
//   - Fault arming on CrashFS: injected fsync failures (sticky, the
//     fsyncgate model — after one failure nothing can be trusted) and
//     short writes with a byte budget.
//
// CrashFS is also a fast plain in-memory FS when no faults are armed,
// which is what makes truncate-at-every-byte-offset recovery sweeps
// affordable.

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"sidq/internal/store"
)

// Injected error sentinels, matchable with errors.Is.
var (
	ErrInjectedFsync = errors.New("faults: injected fsync failure")
	ErrInjectedWrite = errors.New("faults: injected short write")
)

// crashNode is one file's inode: current (page-cache) content and the
// content an fsync has made durable.
type crashNode struct {
	data    []byte
	durable []byte
}

// CrashFS is the crash-image in-memory filesystem. Safe for concurrent
// use. The zero value is not usable; call NewCrashFS.
type CrashFS struct {
	mu   sync.Mutex
	cur  map[string]*crashNode // current directory view: path -> inode
	dur  map[string]*crashNode // durable directory view (after SyncDir)
	dirs map[string]bool

	syncsLeft  int   // file Syncs remaining before failure; -1 = unarmed
	writeLeft  int64 // write bytes remaining before short write; -1 = unarmed
	writeShort int   // how many bytes of the failing write still land
	failed     bool  // sticky: a fault fired
}

// NewCrashFS returns an empty in-memory filesystem.
func NewCrashFS() *CrashFS {
	return &CrashFS{
		cur:       map[string]*crashNode{},
		dur:       map[string]*crashNode{},
		dirs:      map[string]bool{},
		syncsLeft: -1,
		writeLeft: -1,
	}
}

// FailFsyncAfter arms fsync failure: the first n File.Sync calls
// succeed, every later one fails with ErrInjectedFsync. The data those
// failed fsyncs claimed to cover is NOT marked durable — the injector
// models a disk that lied.
func (fs *CrashFS) FailFsyncAfter(n int) {
	fs.mu.Lock()
	fs.syncsLeft = n
	fs.mu.Unlock()
}

// FailWriteAfter arms short writes: writes consume a budget of n
// bytes; the write that would exceed it lands only short bytes of its
// buffer and returns ErrInjectedWrite, as do all writes after it.
func (fs *CrashFS) FailWriteAfter(n int64, short int) {
	fs.mu.Lock()
	fs.writeLeft, fs.writeShort = n, short
	fs.mu.Unlock()
}

// Failed reports whether an armed fault has fired.
func (fs *CrashFS) Failed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.failed
}

// Crash returns the post-crash disk image as a fresh, unarmed CrashFS.
// Every durable directory entry reappears with its durable data; with
// torn true, the file with the most unsynced data additionally keeps a
// seed-determined prefix of that lost tail, with one byte corrupted —
// the partially flushed page a real crash leaves.
func (fs *CrashFS) Crash(seed int64, torn bool) *CrashFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := NewCrashFS()
	for d := range fs.dirs {
		img.dirs[d] = true
	}
	// Pick the torn-tail victim deterministically: the durably listed
	// file with the largest unsynced suffix, ties broken by path.
	var victim string
	var victimLost int
	paths := make([]string, 0, len(fs.dur))
	for p := range fs.dur {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := fs.dur[p]
		if lost := len(n.data) - len(n.durable); lost > victimLost {
			victim, victimLost = p, lost
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range paths {
		n := fs.dur[p]
		data := append([]byte(nil), n.durable...)
		if torn && p == victim && victimLost > 0 {
			keep := rng.Intn(victimLost + 1)
			tail := append([]byte(nil), n.data[len(n.durable):len(n.durable)+keep]...)
			if len(tail) > 0 && rng.Intn(2) == 0 {
				tail[rng.Intn(len(tail))] ^= 1 << uint(rng.Intn(8))
			}
			data = append(data, tail...)
		}
		img.cur[p] = &crashNode{data: data, durable: append([]byte(nil), data...)}
		img.dur[p] = img.cur[p]
	}
	return img
}

// MkdirAll implements store.FS.
func (fs *CrashFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clean := path.Clean(dir)
	for clean != "." && clean != "/" {
		fs.dirs[clean] = true
		clean = path.Dir(clean)
	}
	return nil
}

// Create implements store.FS.
func (fs *CrashFS) Create(name string) (store.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	node := fs.cur[name]
	if node == nil {
		node = &crashNode{}
		fs.cur[name] = node
	}
	node.data = nil // truncate the cache; durable content survives until Sync
	return &crashHandle{fs: fs, node: node}, nil
}

// Open implements store.FS.
func (fs *CrashFS) Open(name string) (store.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	node := fs.cur[name]
	if node == nil {
		return nil, fmt.Errorf("faults: open %s: file does not exist", name)
	}
	return &crashHandle{fs: fs, node: node}, nil
}

// ReadDir implements store.FS.
func (fs *CrashFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clean := path.Clean(dir)
	if !fs.dirs[clean] {
		return nil, fmt.Errorf("faults: readdir %s: no such directory", dir)
	}
	var names []string
	for p := range fs.cur {
		if path.Dir(p) == clean {
			names = append(names, strings.TrimPrefix(p, clean+"/"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements store.FS. The entry move is durable only after
// SyncDir.
func (fs *CrashFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	node := fs.cur[oldname]
	if node == nil {
		return fmt.Errorf("faults: rename %s: file does not exist", oldname)
	}
	fs.cur[newname] = node
	delete(fs.cur, oldname)
	return nil
}

// Remove implements store.FS. The removal is durable only after
// SyncDir — until then a crash resurrects the file.
func (fs *CrashFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cur[name] == nil {
		return fmt.Errorf("faults: remove %s: file does not exist", name)
	}
	delete(fs.cur, name)
	return nil
}

// SyncDir implements store.FS: the directory's current entries become
// the durable entries.
func (fs *CrashFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clean := path.Clean(dir)
	for p := range fs.dur {
		if path.Dir(p) == clean {
			if fs.cur[p] == nil {
				delete(fs.dur, p)
			}
		}
	}
	for p, n := range fs.cur {
		if path.Dir(p) == clean {
			fs.dur[p] = n
		}
	}
	return nil
}

// crashHandle is one open descriptor: an offset over a shared inode.
type crashHandle struct {
	fs   *CrashFS
	node *crashNode
	off  int64
}

// Write implements store.File, honoring the short-write budget.
func (h *crashHandle) Write(p []byte) (int, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := len(p)
	var failErr error
	if fs.writeLeft >= 0 {
		if int64(n) > fs.writeLeft {
			n = int(fs.writeLeft) + fs.writeShort
			if n > len(p) {
				n = len(p)
			}
			fs.failed = true
			failErr = ErrInjectedWrite
			fs.writeLeft = 0
			fs.writeShort = 0
		} else {
			fs.writeLeft -= int64(n)
		}
	}
	end := h.off + int64(n)
	for int64(len(h.node.data)) < end {
		h.node.data = append(h.node.data, 0)
	}
	copy(h.node.data[h.off:end], p[:n])
	h.off = end
	return n, failErr
}

// ReadAt implements store.File.
func (h *crashHandle) ReadAt(p []byte, off int64) (int, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if off >= int64(len(h.node.data)) {
		return 0, errors.New("EOF")
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, errors.New("EOF")
	}
	return n, nil
}

// Seek implements store.File (whence 0/1/2).
func (h *crashHandle) Seek(offset int64, whence int) (int64, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch whence {
	case 0:
		h.off = offset
	case 1:
		h.off += offset
	case 2:
		h.off = int64(len(h.node.data)) + offset
	default:
		return 0, fmt.Errorf("faults: bad whence %d", whence)
	}
	return h.off, nil
}

// Sync implements store.File, honoring armed fsync failure.
func (h *crashHandle) Sync() error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.syncsLeft == 0 {
		fs.failed = true
		return ErrInjectedFsync
	}
	if fs.syncsLeft > 0 {
		fs.syncsLeft--
	}
	h.node.durable = append(h.node.durable[:0], h.node.data...)
	return nil
}

// Truncate implements store.File. Durable content shrinks only at the
// next Sync — a crash in between resurrects the longer durable data,
// which is exactly why recovery must fsync after truncating a torn
// tail.
func (h *crashHandle) Truncate(size int64) error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("faults: truncate to %d", size)
	}
	for int64(len(h.node.data)) < size {
		h.node.data = append(h.node.data, 0)
	}
	h.node.data = h.node.data[:size]
	return nil
}

// Close implements store.File.
func (h *crashHandle) Close() error { return nil }
