package faults

import (
	"testing"

	"sidq/internal/simulate"
)

func TestZoneMonitorTracksWatchedZones(t *testing.T) {
	m := NewZoneMonitor([]string{"r2", "r3"})
	// Object walks r0 -> r1 -> r2 -> r3 -> r4 with gaps (None).
	seq := []struct {
		t    float64
		zone string
	}{
		{0, "r0"}, {1, None}, {2, "r1"}, {3, "r2"}, {4, "r2"},
		{5, None}, {6, "r3"}, {7, "r4"},
	}
	var changes int
	for _, s := range seq {
		if m.Observe("tag", s.t, s.zone) {
			changes++
		}
	}
	// Transitions: enter at t=3 (r2), exit at t=5 (None), enter at t=6
	// (r3), exit at t=7 (r4).
	if changes != 4 {
		t.Fatalf("membership changes = %d", changes)
	}
	events := m.Events()
	if len(events) != 4 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].T != 3 || events[0].To != "r2" {
		t.Fatalf("first event = %+v", events[0])
	}
	if len(m.Result()) != 0 {
		t.Fatalf("object should be outside at the end: %v", m.Result())
	}
	if m.Where("tag") != "r4" {
		t.Fatalf("where = %q", m.Where("tag"))
	}
}

func TestZoneMonitorMultipleObjects(t *testing.T) {
	m := NewZoneMonitor([]string{"dock"})
	m.Observe("a", 0, "dock")
	m.Observe("b", 0, "hall")
	m.Observe("c", 0, "dock")
	got := m.Result()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("result = %v", got)
	}
	// Repeated same-zone observations are not membership changes.
	if m.Observe("a", 1, "dock") {
		t.Fatal("no-op observation reported a change")
	}
}

func TestZoneMonitorOverCleanedSymbolicStream(t *testing.T) {
	// End to end: simulate faulty detections, clean with the HMM, and
	// monitor a zone set over the cleaned stream; accuracy of membership
	// vs ground truth should beat monitoring the raw stream.
	w := simulate.Symbolic("tag", simulate.SymbolicOptions{
		NumReaders: 10, Spacing: 20, Range: 8, Epoch: 1, Speed: 2,
		FalseNeg: 0.3, FalsePos: 0.08, Seed: 9,
	})
	dep := Deployment{Epoch: 1, MaxSpeed: 6}
	for _, r := range w.Readers {
		dep.Readers = append(dep.Readers, ReaderInfo{ID: r.ID, Pos: r.Pos, Range: r.Range})
	}
	obs := map[float64][]string{}
	for _, e := range w.Epochs {
		obs[e] = nil
	}
	for _, d := range w.Detections {
		obs[d.T] = append(obs[d.T], d.ReaderID)
	}
	cleaned := dep.HMMClean(w.Epochs, obs, 0.3, 0.08)
	watch := []string{"r4", "r5"}
	inWatch := func(z string) bool { return z == "r4" || z == "r5" }

	score := func(label func(t float64) string) int {
		m := NewZoneMonitor(watch)
		ok := 0
		for _, e := range w.Epochs {
			m.Observe("tag", e, label(e))
			want := inWatch(w.Truth[e])
			got := len(m.Result()) == 1
			if got == want {
				ok++
			}
		}
		return ok
	}
	cleanedScore := score(func(t float64) string { return cleaned[t] })
	rawScore := score(func(t float64) string {
		rs := obs[t]
		if len(rs) == 0 {
			return None
		}
		return rs[0]
	})
	if cleanedScore <= rawScore {
		t.Fatalf("cleaned monitoring %d <= raw %d", cleanedScore, rawScore)
	}
}
