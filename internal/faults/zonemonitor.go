package faults

import (
	"sort"
)

// ZoneEvent is a monitored object's zone transition.
type ZoneEvent struct {
	ObjectID string
	T        float64
	From, To string // zone labels; None for uncovered space
}

// ZoneMonitor maintains a continuous range query over *symbolic* space
// (the indoor analogue of rectangle monitoring): given a watch-set of
// zones (readers/rooms), it tracks which objects are currently inside
// any watched zone from their cleaned symbolic label streams, emitting
// enter/exit events. This is the scalable symbolic-indoor range
// monitoring task the paper cites for symbolic tracking data.
type ZoneMonitor struct {
	watched map[string]bool
	current map[string]string // object -> zone label
	inside  map[string]bool
	events  []ZoneEvent
}

// NewZoneMonitor returns a monitor over the watched zone labels.
func NewZoneMonitor(zones []string) *ZoneMonitor {
	m := &ZoneMonitor{
		watched: map[string]bool{},
		current: map[string]string{},
		inside:  map[string]bool{},
	}
	for _, z := range zones {
		m.watched[z] = true
	}
	return m
}

// Observe feeds one labeled epoch of an object's symbolic trajectory.
// It returns whether the observation changed the object's membership
// in the watched set.
func (m *ZoneMonitor) Observe(objectID string, t float64, zone string) bool {
	prev := m.current[objectID]
	m.current[objectID] = zone
	wasIn := m.inside[objectID]
	isIn := m.watched[zone]
	if wasIn == isIn {
		return false
	}
	m.inside[objectID] = isIn
	m.events = append(m.events, ZoneEvent{
		ObjectID: objectID,
		T:        t,
		From:     prev,
		To:       zone,
	})
	return true
}

// Result returns the ids currently inside a watched zone, sorted.
func (m *ZoneMonitor) Result() []string {
	var out []string
	for id, in := range m.inside {
		if in {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Events returns the enter/exit transitions observed so far, in
// arrival order.
func (m *ZoneMonitor) Events() []ZoneEvent {
	return append([]ZoneEvent(nil), m.events...)
}

// Where returns the object's last known zone label.
func (m *ZoneMonitor) Where(objectID string) string { return m.current[objectID] }
