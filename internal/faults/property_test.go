package faults

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRepairTimestampsAlwaysFeasible: the repaired sequence satisfies
// the gap constraints for arbitrary observed timestamps.
func TestRepairTimestampsAlwaysFeasible(t *testing.T) {
	f := func(raw []float64, loRaw, spanRaw float64) bool {
		lo := math.Abs(math.Mod(loRaw, 5))
		hi := lo + 0.1 + math.Abs(math.Mod(spanRaw, 10))
		ts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			ts = append(ts, math.Mod(v, 1e6))
		}
		repaired, err := RepairTimestamps(ts, lo, hi)
		if err != nil {
			return false
		}
		return len(TimestampViolations(repaired, lo, hi)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRepairTimestampsIdempotent: repairing a repaired sequence is a
// no-op.
func TestRepairTimestampsIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		ts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			ts = append(ts, math.Mod(v, 1e5))
		}
		once, err := RepairTimestamps(ts, 0.5, 5)
		if err != nil {
			return false
		}
		twice, err := RepairTimestamps(once, 0.5, 5)
		if err != nil {
			return false
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRepairTimestampsIdentityOnFeasible: feasible sequences pass
// through untouched.
func TestRepairTimestampsIdentityOnFeasible(t *testing.T) {
	f := func(gapsRaw []float64) bool {
		ts := []float64{0}
		for _, g := range gapsRaw {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				g = 0
			}
			gap := 0.5 + math.Abs(math.Mod(g, 4.5)) // in [0.5, 5]
			ts = append(ts, ts[len(ts)-1]+gap)
		}
		repaired, err := RepairTimestamps(ts, 0.5, 5)
		if err != nil {
			return false
		}
		for i := range ts {
			if repaired[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRepairTimestampsCorruptFirst: a grossly wrong first timestamp is
// re-anchored instead of dragging the rest of the sequence.
func TestRepairTimestampsCorruptFirst(t *testing.T) {
	truth := make([]float64, 50)
	obs := make([]float64, 50)
	for i := range truth {
		truth[i] = float64(i) * 2
		obs[i] = truth[i]
	}
	obs[0] -= 40 // gross clock error on the very first report
	repaired, err := RepairTimestamps(obs, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var rawErr, repErr float64
	for i := range truth {
		rawErr += math.Abs(obs[i] - truth[i])
		repErr += math.Abs(repaired[i] - truth[i])
	}
	if repErr >= rawErr {
		t.Fatalf("first-timestamp repair: raw %v -> %v", rawErr, repErr)
	}
	if len(TimestampViolations(repaired, 1, 3)) != 0 {
		t.Fatal("constraints violated")
	}
}
