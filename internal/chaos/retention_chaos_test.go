package chaos

// Retention chaos: the server is killed in the middle of a retention
// pass — the forced compaction snapshot tears on disk after a few
// bytes — with earlier passes having already truncated the WAL front
// (and left their segment removals un-fsynced, so the crash image
// resurrects the dropped files). The restarted server must sweep the
// stale files, discard the torn snapshot, resume the session from the
// last good checkpoint, and drain byte-identically to an uninterrupted
// run — while history keeps answering over the retained window.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"sidq/internal/faults"
	"sidq/internal/server"
	"sidq/internal/store"
)

// newRetentionChaosServer opens a durable server with retention
// configured but its background ticker parked at an hour: the test
// drives every pass deterministically through RunRetentionOnce.
func newRetentionChaosServer(t *testing.T, fs store.FS) (*server.Service, *httptest.Server) {
	t.Helper()
	svc, err := server.OpenService(server.Config{
		Logger: server.DiscardLogger(),
		Durability: server.DurabilityConfig{
			Dir: "wal", Fsync: store.FsyncAlways, FS: fs,
			// SnapshotEvery 1000: only retention compaction checkpoints.
			SnapshotEvery: 1000, SegmentBytes: 512,
			Retain: 3 * time.Second, RetainEvery: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, httptest.NewServer(svc)
}

func TestChaosStoreRetentionKillMidCompaction(t *testing.T) {
	chunks := storeChaosChunks(14)
	const acked = 13
	ctrlID, want := controlDrain(t, chunks, acked)

	fs := faults.NewCrashFS()
	svc, srv := newRetentionChaosServer(t, fs)
	id := chaosOpenStream(t, srv, storeChaosParams)
	if id != ctrlID {
		t.Fatalf("durable session %s, control %s", id, ctrlID)
	}
	// One chunk per simulated second, a retention pass after each: with
	// a 3s window the front of the WAL ages out repeatedly, each drop
	// preceded by a forced compaction of the never-snapshotting session.
	base := time.Unix(1_000_000, 0)
	removed, compacted := 0, 0
	for i := 1; i <= acked; i++ {
		if code, _ := chaosIngestSeq(t, srv, id, i, chunks[i-1]); code != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, code)
		}
		st := svc.RunRetentionOnce(base.Add(time.Duration(i) * time.Second))
		removed += st.SegmentsRemoved
		compacted += st.Compacted
	}
	if removed == 0 || compacted == 0 {
		t.Fatalf("scenario never armed: %d segments removed, %d compactions before the kill", removed, compacted)
	}

	// The killing pass: the last sample covers every record including
	// the last compaction snapshot, so once it ages past the window the
	// session floor lags the age floor again and the pass MUST attempt
	// a compaction snapshot — whose append tears after 5 bytes.
	fs.FailWriteAfter(0, 5)
	svc.RunRetentionOnce(base.Add(17 * time.Second))
	if !fs.Failed() {
		t.Fatal("killing pass never reached the compaction write")
	}
	srv.Close()

	for seed := int64(0); seed < 4; seed++ {
		img := fs.Crash(seed, true)
		svc2, srv2 := newRetentionChaosServer(t, img)

		// History first: the retained window must answer 200 with the
		// truncation horizon in the min-seq header (the resurrected
		// pre-truncation files were swept, not re-adopted).
		resp, err := http.Get(srv2.URL + "/v1/history/range")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: history status %d", seed, resp.StatusCode)
		}
		minSeq, perr := strconv.ParseUint(resp.Header.Get("X-Sidq-History-Min-Seq"), 10, 64)
		if perr != nil || minSeq <= 1 {
			t.Fatalf("seed %d: min-seq header %q, want > 1 (truncation lost by recovery)",
				seed, resp.Header.Get("X-Sidq-History-Min-Seq"))
		}

		// The torn compaction snapshot must be invisible: the session
		// resumes from the last good checkpoint plus the chunks after
		// it, draining byte-identically to the uninterrupted run.
		got := chaosDrainBody(t, srv2, id, "flush=1")
		if got != want {
			t.Fatalf("seed %d: recovered drain differs from uninterrupted run\nwant:\n%s\ngot:\n%s", seed, want, got)
		}

		// And the recovered WAL is live, not poisoned: the next chunk acks.
		if code, _ := chaosIngestSeq(t, srv2, id, acked+1, chunks[acked]); code != http.StatusOK {
			t.Fatalf("seed %d: post-recovery ingest status %d", seed, code)
		}
		srv2.Close()
		svc2.Close()
	}
	svc.Close()
}
