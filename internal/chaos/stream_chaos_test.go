package chaos

// Chaos scenarios for the streaming ingestion subsystem: a slow
// consumer that lets the result buffer fill, a client disconnecting
// mid-chunk, and a stalled watermark holding events hostage until the
// janitor reclaims the session. Each scenario drives the real HTTP
// service and asserts the bounded-degradation invariants: shedding is
// loud (429), chunks apply atomically, and no session outlives the
// idle TTL.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sidq/internal/server"
)

func newStreamChaosServer(t *testing.T, cfg server.StreamConfig) (*server.Service, *httptest.Server) {
	t.Helper()
	svc := server.NewService(server.Config{Logger: server.DiscardLogger(), Stream: cfg})
	srv := httptest.NewServer(svc)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func chaosOpenStream(t *testing.T, srv *httptest.Server, params string) string {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/stream/open?"+params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status %d", resp.StatusCode)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Session
}

// countResults drains the session and returns how many NDJSON rows
// came back.
func countResults(t *testing.T, srv *httptest.Server, id, params string) int {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stream/" + id + "/results?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	n := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// A consumer that drains too slowly must see loud backpressure — 429
// with Retry-After — never silent data loss: after draining, retrying
// the rejected chunk succeeds, and every row the producer sent is
// eventually delivered exactly once.
func TestChaosStreamSlowConsumer(t *testing.T) {
	_, srv := newStreamChaosServer(t, server.StreamConfig{MaxResults: 8})
	id := chaosOpenStream(t, srv, "lateness=0&maxspeed=0")

	const chunks, rowsPerChunk = 12, 5
	delivered, shed := 0, 0
	for c := 0; c < chunks; c++ {
		var chunk strings.Builder
		for i := 0; i < rowsPerChunk; i++ {
			tm := c*rowsPerChunk + i
			fmt.Fprintf(&chunk, "veh-0,%d,%d,0\n", tm, tm)
		}
		for attempt := 0; ; attempt++ {
			resp, err := http.Post(srv.URL+"/v1/stream/ingest?session="+id, "text/csv", strings.NewReader(chunk.String()))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("chunk %d status %d", c, resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed without Retry-After")
			}
			if attempt > 0 {
				t.Fatalf("chunk %d still shed after draining", c)
			}
			shed++
			delivered += countResults(t, srv, id, "")
		}
	}
	if shed == 0 {
		t.Fatal("slow consumer never saw backpressure; MaxResults not enforced")
	}
	delivered += countResults(t, srv, id, "flush=1")
	if want := chunks * rowsPerChunk; delivered != want {
		t.Fatalf("delivered %d rows, want %d (shedding lost or duplicated data)", delivered, want)
	}
}

// A client dying mid-chunk must not corrupt the session: the truncated
// chunk is rejected whole, and the reconnected client's retransmission
// lands without duplicates.
func TestChaosStreamMidStreamDisconnect(t *testing.T) {
	_, srv := newStreamChaosServer(t, server.StreamConfig{})
	id := chaosOpenStream(t, srv, "lateness=0&maxspeed=0")

	good := "veh-0,1,0,0\nveh-0,2,1,0\nveh-0,3,2,0\n"

	// The connection drops mid-row: the body delivers one and a half
	// records, then errors like a reset TCP stream.
	pr, pw := io.Pipe()
	go func() {
		io.WriteString(pw, "veh-0,1,0,0\nveh-0,2,")
		pw.CloseWithError(fmt.Errorf("connection reset by peer"))
	}()
	resp, err := http.Post(srv.URL+"/v1/stream/ingest?session="+id, "text/csv", pr)
	if err == nil {
		// If the transport managed to complete the exchange, the server
		// must have rejected the truncated chunk.
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("truncated chunk accepted with %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Reconnect and retransmit the full chunk: exactly its rows arrive,
	// no leak from the failed attempt.
	resp, err = http.Post(srv.URL+"/v1/stream/ingest?session="+id, "text/csv", strings.NewReader(good))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("retransmit: %v %v", err, resp.StatusCode)
	}
	var ack struct {
		PendingResults int `json:"pending_results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.PendingResults != 3 {
		t.Fatalf("pending_results = %d after retransmit, want 3 (partial chunk leaked)", ack.PendingResults)
	}
}

// A stalled watermark (sources that stop sending, or an over-generous
// lateness bound) must not hold memory forever: flush releases the
// buffered events on demand, and a session nobody touches is reclaimed
// by the janitor within the idle TTL.
func TestChaosStreamWatermarkStall(t *testing.T) {
	svc, srv := newStreamChaosServer(t, server.StreamConfig{IdleTTL: time.Minute})

	// Session A: buffered events behind a huge lateness bound release
	// only on explicit flush.
	a := chaosOpenStream(t, srv, "lateness=1000000&maxspeed=0")
	resp, err := http.Post(srv.URL+"/v1/stream/ingest?session="+a, "text/csv",
		strings.NewReader("veh-0,1,0,0\nveh-0,2,1,0\nveh-0,3,2,0\n"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %v %v", err, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n := countResults(t, srv, a, ""); n != 0 {
		t.Fatalf("stalled watermark released %d events without flush", n)
	}
	if n := countResults(t, srv, a, "flush=1"); n != 3 {
		t.Fatalf("flush released %d events, want 3", n)
	}

	// Session B stalls and is abandoned; the sweep reclaims it once the
	// TTL passes (the sweep is driven directly with a future clock, so
	// the chaos suite needs no wall-time sleeps).
	b := chaosOpenStream(t, srv, "lateness=1000000")
	if n := svc.EvictIdleStreams(time.Now().Add(2 * time.Minute)); n == 0 {
		t.Fatal("janitor sweep reclaimed nothing past the idle TTL")
	}
	resp, err = http.Get(srv.URL + "/v1/stream/" + b + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session answered %d, want 404", resp.StatusCode)
	}
}
