package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"sidq/internal/core"
	"sidq/internal/geo"
	"sidq/internal/obs"
	"sidq/internal/quality"
	"sidq/internal/simulate"
	"sidq/internal/stream"
	"sidq/internal/trajectory"
)

// chaosDataset is a noisy, duplicated trajectory dataset with ground
// truth — dirty enough that every cleaning stage has work, tame
// enough that any surviving subset of stages leaves accuracy and
// consistency no worse than the input.
func chaosDataset(seed int64) *core.Dataset {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              600,
	}
	for i := 0; i < 3; i++ {
		truth := simulate.RandomWalk("v"+string(rune('0'+i)), region, 500, 2, 1, seed+int64(i))
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 5, seed+20+int64(i))
		dirty = simulate.DuplicateSamples(dirty, 0.1, seed+10+int64(i))
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	return ds
}

func cleaningStages() []core.Stage {
	return []core.Stage{
		core.DeduplicateStage{},
		core.OutlierRemovalStage{},
		core.SmoothingStage{},
	}
}

// TestSuiteSurvivesEveryFailureMode is the chaos harness: every
// injected failure mode (panic, error, hang, transient flake, active
// corruption) against the policy that must survive it, checked for
// completion, bounded retries, and the never-worse-than-input
// guarantee.
func TestSuiteSurvivesEveryFailureMode(t *testing.T) {
	for _, sc := range Suite(99, cleaningStages) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ds := chaosDataset(7)
			res, err := Verify(context.Background(), sc, ds)
			if err != nil {
				t.Fatal(err)
			}
			if !sc.WantErr && len(res.Reports) == 0 {
				t.Fatal("no stage reports")
			}
			// The input dataset is never mutated, chaos or not.
			if got := len(ds.Trajectories); got != 3 {
				t.Fatalf("input mutated: %d trajectories", got)
			}
		})
	}
}

func TestFlakyStageIsDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		ds := chaosDataset(3)
		fs := NewFlakyStage(core.DeduplicateStage{}, FlakyOptions{Seed: 2, PanicProb: 0.3, ErrProb: 0.3, DelayProb: 0.1, Delay: time.Millisecond})
		runner := &core.Runner{Policy: core.SkipStage, Retry: core.RetryPolicy{MaxAttempts: 6}}
		_, _, _ = runner.Run(context.Background(), core.NewPipeline(fs), ds)
		return fs.Injected()
	}
	p1, e1, d1 := run()
	p2, e2, d2 := run()
	if p1 != p2 || e1 != e2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, e1, d1, p2, e2, d2)
	}
	if p1+e1+d1 == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
}

func TestRollbackGuaranteesNeverWorse(t *testing.T) {
	// A pipeline that is pure sabotage: under RollbackStage every
	// stage must be reverted and the output must equal the input's
	// quality exactly.
	ds := chaosDataset(4)
	p := core.NewPipeline(CorruptStage{Seed: 1}, CorruptStage{Seed: 2, Sigma: 50})
	r := &core.Runner{Policy: core.RollbackStage, GuardDims: DefaultGuardDims()}
	out, reports, err := r.Run(context.Background(), p, ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rep := range reports {
		if !rep.RolledBack {
			t.Fatalf("corrupting stage survived: %+v", rep)
		}
	}
	beforeA, afterA := ds.Assess(), out.Assess()
	for _, d := range DefaultGuardDims() {
		if afterA[d] < beforeA[d]-1e-9 {
			t.Fatalf("%v regressed despite rollback: %v -> %v", d, beforeA[d], afterA[d])
		}
	}
}

func TestSkipPolicyNeverWorseWithAllStagesFailing(t *testing.T) {
	ds := chaosDataset(5)
	stages := make([]core.Stage, 0, 3)
	for i, st := range cleaningStages() {
		stages = append(stages, NewFlakyStage(st, FlakyOptions{Seed: int64(i), FailFirst: 1 << 30}))
	}
	r := &core.Runner{Policy: core.SkipStage, Retry: core.RetryPolicy{MaxAttempts: 2}}
	out, reports, err := r.Run(context.Background(), core.NewPipeline(stages...), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rep := range reports {
		if !rep.Skipped || rep.Attempts != 2 {
			t.Fatalf("report = %+v", rep)
		}
	}
	// Everything skipped means the output is the input, byte for byte.
	ba, aa := ds.Assess(), out.Assess()
	for _, d := range quality.AllDimensions() {
		if ba[d] != aa[d] {
			t.Fatalf("dimension %v moved in an all-skip run: %v -> %v", d, ba[d], aa[d])
		}
	}
}

func TestFaultySourceAccountingThroughReorderer(t *testing.T) {
	events := make([]stream.Event[int], 400)
	for i := range events {
		events[i] = stream.Event[int]{Time: float64(i), Value: i}
	}
	src := NewFaultySource(events, SourceOptions[int]{
		Seed:          31,
		DropProb:      0.1,
		DupProb:       0.05,
		StragglerProb: 0.1,
		StragglerHold: 8,
	})
	re := stream.NewReorderer[int](3) // lateness < straggler hold: some stragglers drop
	out := Drain(src, re)

	if src.Delivered() != src.Input()-src.Dropped()+src.Duplicated() {
		t.Fatalf("delivery accounting: delivered=%d input=%d dropped=%d dup=%d",
			src.Delivered(), src.Input(), src.Dropped(), src.Duplicated())
	}
	// The LateCount/Emitted pair must account for every delivered event.
	if re.Emitted()+re.LateCount() != src.Delivered() {
		t.Fatalf("reorderer accounting: emitted=%d late=%d delivered=%d",
			re.Emitted(), re.LateCount(), src.Delivered())
	}
	if len(out) != re.Emitted() {
		t.Fatalf("drained %d but reorderer emitted %d", len(out), re.Emitted())
	}
	if src.Dropped() == 0 || src.Duplicated() == 0 || src.Straggled() == 0 {
		t.Fatalf("faults not exercised: %d/%d/%d", src.Dropped(), src.Duplicated(), src.Straggled())
	}
	if re.LateCount() == 0 {
		t.Fatal("no straggler was late past the watermark")
	}
	times := make([]float64, len(out))
	for i, e := range out {
		times[i] = e.Time
	}
	if !sort.Float64sAreSorted(times) {
		t.Fatal("reorderer output out of order")
	}
}

func TestFaultySourceCorruption(t *testing.T) {
	events := make([]stream.Event[float64], 200)
	for i := range events {
		events[i] = stream.Event[float64]{Time: float64(i), Value: 1}
	}
	src := NewFaultySource(events, SourceOptions[float64]{
		Seed:        8,
		CorruptProb: 0.2,
		Corrupt:     func(v float64) float64 { return v + 1e6 },
	})
	corrupted := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.Value > 1e5 {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted != src.Corrupted() {
		t.Fatalf("corruption accounting: saw %d, counter %d", corrupted, src.Corrupted())
	}
}

func TestFaultySourceDeterministic(t *testing.T) {
	events := make([]stream.Event[int], 100)
	for i := range events {
		events[i] = stream.Event[int]{Time: float64(i), Value: i}
	}
	opts := SourceOptions[int]{Seed: 77, DropProb: 0.2, DupProb: 0.1, StragglerProb: 0.1}
	a := NewFaultySource(events, opts)
	b := NewFaultySource(events, opts)
	if a.Delivered() != b.Delivered() || a.Dropped() != b.Dropped() {
		t.Fatal("same seed diverged")
	}
	for {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if oka != okb {
			t.Fatal("length mismatch")
		}
		if !oka {
			break
		}
		if ea != eb {
			t.Fatalf("sequence diverged: %v vs %v", ea, eb)
		}
	}
}

// TestVerifyTraceAssertions pins the trace contract: the harness sink
// sees exactly the retries and panics the injected faults force, and a
// failing CheckTrace fails Verify.
func TestVerifyTraceAssertions(t *testing.T) {
	mk := func(check func([]obs.TraceEvent) error) Scenario {
		return Scenario{
			Name: "trace-exact-retries",
			Stages: func() []core.Stage {
				return []core.Stage{NewFlakyStage(core.DeduplicateStage{}, FlakyOptions{FailFirst: 2, Seed: 1})}
			},
			Runner: func() *core.Runner {
				return &core.Runner{
					Policy: core.SkipStage,
					Retry:  core.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond},
				}
			},
			CheckTrace: check,
		}
	}

	res, err := Verify(context.Background(), mk(func(evs []obs.TraceEvent) error {
		retries := 0
		for _, e := range evs {
			if e.Kind == obs.KindRetry {
				retries++
			}
		}
		if retries != 2 {
			return fmt.Errorf("recorded %d retries, want exactly 2", retries)
		}
		return nil
	}), chaosDataset(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("result carries no trace events")
	}

	_, err = Verify(context.Background(), mk(func(evs []obs.TraceEvent) error {
		return fmt.Errorf("always unhappy")
	}), chaosDataset(7))
	if err == nil || !strings.Contains(err.Error(), "always unhappy") {
		t.Fatalf("failing CheckTrace did not surface: %v", err)
	}
}
