package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"

	"sidq/internal/core"
)

// TestParallelFlakyRetriesHoldPerShard injects transient failures into
// a shardable stage running on the parallel worker pool: every shard
// must keep the per-stage retry contract (bounded attempts, eventual
// success) and the merged output must match a clean serial run exactly.
func TestParallelFlakyRetriesHoldPerShard(t *testing.T) {
	fs := NewFlakyStage(core.SmoothingStage{}, FlakyOptions{Seed: 5, FailFirst: 3})
	r := &core.Runner{Policy: core.SkipStage, Workers: 3, Retry: core.RetryPolicy{MaxAttempts: 6}}
	out, reports, err := r.Run(context.Background(), core.NewPipeline(fs), chaosDataset(11))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := reports[0]
	if rep.Skipped {
		t.Fatalf("stage skipped despite retries covering the injected failures: %+v", rep)
	}
	if rep.Attempts < 2 || rep.Attempts > 6 {
		t.Fatalf("attempts = %d, want within (1, 6]", rep.Attempts)
	}
	if _, errs, _ := fs.Injected(); errs != 3 {
		t.Fatalf("injected errors = %d, want 3", errs)
	}

	clean, _, err := core.DefaultRunner().Run(context.Background(),
		core.NewPipeline(core.SmoothingStage{}), chaosDataset(11))
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if !reflect.DeepEqual(out.Trajectories, clean.Trajectories) {
		t.Fatal("flaky parallel run diverged from the clean serial run after retries")
	}
}

// TestParallelPanicSkipsWithoutDeadlock makes every shard attempt
// panic: the panicking workers must cancel their siblings, the stage
// must be skipped, and the run must finish promptly — no deadlocked
// worker pool, no corrupted output.
func TestParallelPanicSkipsWithoutDeadlock(t *testing.T) {
	ds := chaosDataset(12)
	fs := NewFlakyStage(core.DeduplicateStage{}, FlakyOptions{Seed: 9, PanicProb: 1})
	r := &core.Runner{Policy: core.SkipStage, Workers: 4, Retry: core.RetryPolicy{MaxAttempts: 3}}

	var out *core.Dataset
	var reports []core.StageReport
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, reports, err = r.Run(context.Background(), core.NewPipeline(fs), ds)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("parallel runner deadlocked on panicking shards")
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reports[0].Skipped {
		t.Fatalf("all-panic stage not skipped: %+v", reports[0])
	}
	if !reflect.DeepEqual(out.Trajectories, ds.Trajectories) {
		t.Fatal("skipped stage altered the dataset")
	}
}

// TestShardedCorruptDeterministicAcrossWorkers pins the property the
// parallel-corrupt-rollback scenario relies on: ShardedCorruptStage
// injects byte-identical corruption at every worker count.
func TestShardedCorruptDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *core.Dataset {
		r := &core.Runner{Policy: core.SkipStage, Workers: workers}
		out, _, err := r.Run(context.Background(),
			core.NewPipeline(ShardedCorruptStage{Seed: 3, Sigma: 5}), chaosDataset(13))
		if err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); !reflect.DeepEqual(got.Trajectories, serial.Trajectories) {
			t.Fatalf("workers=%d corruption diverged from serial", w)
		}
	}
}

// TestParallelRollbackRevertsShardedCorruption runs active corruption
// on the sharded path under RollbackStage: the merged (corrupted)
// result must fail the quality guard and be rolled back, leaving the
// output no worse than the input.
func TestParallelRollbackRevertsShardedCorruption(t *testing.T) {
	ds := chaosDataset(14)
	r := &core.Runner{Policy: core.RollbackStage, GuardDims: DefaultGuardDims(), Workers: 4}
	out, reports, err := r.Run(context.Background(),
		core.NewPipeline(ShardedCorruptStage{Seed: 1}), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reports[0].RolledBack {
		t.Fatalf("sharded corruption survived the rollback guard: %+v", reports[0])
	}
	beforeA, afterA := ds.Assess(), out.Assess()
	for _, d := range DefaultGuardDims() {
		if afterA[d] < beforeA[d]-1e-9 {
			t.Fatalf("%v regressed despite rollback: %v -> %v", d, beforeA[d], afterA[d])
		}
	}
}
