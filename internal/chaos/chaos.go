// Package chaos provides deterministic, seeded fault injection for
// sidq's quality middleware: a FlakyStage wrapper that makes any
// pipeline stage panic, error, or stall with configured probabilities,
// a FaultySource stream wrapper that corrupts an event stream the way
// unreliable IoT devices do (drops, duplicates, stragglers, corrupted
// coordinates), and a scenario harness asserting that the core.Runner
// survives every injected failure mode. Everything is reproducible
// from a seed — chaos here is a test instrument, not randomness.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"sidq/internal/core"
)

// ErrInjected is the error returned by injected stage failures; use
// errors.Is to distinguish chaos faults from organic ones.
var ErrInjected = errors.New("chaos: injected fault")

// FlakyOptions configures a FlakyStage. Probabilities are evaluated
// per attempt in the order panic, error, delay; they need not sum
// to 1.
type FlakyOptions struct {
	Seed      int64
	PanicProb float64       // probability an attempt panics
	ErrProb   float64       // probability an attempt errors
	DelayProb float64       // probability an attempt stalls for Delay
	Delay     time.Duration // stall length (default 50ms)

	// FailFirst deterministically fails the first N attempts (as
	// errors) before the probabilistic behavior takes over — the shape
	// retry tests need.
	FailFirst int
}

// FlakyStage wraps a Stage with injected faults. It implements
// core.FallibleStage; a FlakyStage with zero options is transparent.
// It is safe for concurrent attempts (the runner abandons timed-out
// attempts whose goroutines may still be running).
type FlakyStage struct {
	Inner core.Stage
	opts  FlakyOptions

	mu       sync.Mutex
	rng      *rand.Rand
	attempts int
	panics   int
	errCount int
	delays   int
}

// NewFlakyStage wraps inner with the given fault options.
func NewFlakyStage(inner core.Stage, opts FlakyOptions) *FlakyStage {
	if opts.Delay <= 0 {
		opts.Delay = 50 * time.Millisecond
	}
	return &FlakyStage{Inner: inner, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Name implements Stage.
func (s *FlakyStage) Name() string { return "flaky(" + s.Inner.Name() + ")" }

// Task implements Stage.
func (s *FlakyStage) Task() core.Task { return s.Inner.Task() }

// Traits implements core.TraitedStage by forwarding the inner stage's
// declared traits: fault injection itself neither mutates trajectories
// nor couples shards (the fault draw is mutex-serialized), so a
// shardable inner stage stays shardable under chaos — which is exactly
// what lets the harness exercise the parallel runner.
func (s *FlakyStage) Traits() core.StageTraits { return core.TraitsOf(s.Inner) }

// Attempts returns how many attempts have been made against the stage.
func (s *FlakyStage) Attempts() int { s.mu.Lock(); defer s.mu.Unlock(); return s.attempts }

// Injected returns the number of injected panics, errors, and delays.
func (s *FlakyStage) Injected() (panics, errs, delays int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics, s.errCount, s.delays
}

// fault draws this attempt's fate under the lock.
func (s *FlakyStage) fault() (doPanic, doErr bool, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.attempts <= s.opts.FailFirst {
		s.errCount++
		return false, true, 0
	}
	u := s.rng.Float64()
	switch {
	case u < s.opts.PanicProb:
		s.panics++
		return true, false, 0
	case u < s.opts.PanicProb+s.opts.ErrProb:
		s.errCount++
		return false, true, 0
	case u < s.opts.PanicProb+s.opts.ErrProb+s.opts.DelayProb:
		s.delays++
		return false, false, s.opts.Delay
	}
	return false, false, 0
}

// Apply implements Stage.
func (s *FlakyStage) Apply(ds *core.Dataset) {
	if err := s.ApplyContext(context.Background(), ds); err != nil {
		panic(err) // legacy path has no error channel
	}
}

// ApplyContext implements core.FallibleStage.
func (s *FlakyStage) ApplyContext(ctx context.Context, ds *core.Dataset) error {
	doPanic, doErr, delay := s.fault()
	if doPanic {
		panic(fmt.Sprintf("%v (stage %s)", ErrInjected, s.Inner.Name()))
	}
	if doErr {
		return fmt.Errorf("%w (stage %s)", ErrInjected, s.Inner.Name())
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fs, ok := s.Inner.(core.FallibleStage); ok {
		return fs.ApplyContext(ctx, ds)
	}
	s.Inner.Apply(ds)
	return nil
}

// CorruptStage is a stage that actively damages the dataset — it
// scatters trajectory points with huge coordinate noise — for testing
// the quality-regression guard. It always "succeeds".
type CorruptStage struct {
	Seed  int64
	Sigma float64 // coordinate noise in meters (default 500)
}

// Name implements Stage.
func (s CorruptStage) Name() string { return "chaos-corrupt" }

// Task implements Stage.
func (s CorruptStage) Task() core.Task { return core.FaultCorrection }

// Apply implements Stage.
func (s CorruptStage) Apply(ds *core.Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements core.FallibleStage.
func (s CorruptStage) ApplyContext(ctx context.Context, ds *core.Dataset) error {
	sigma := s.Sigma
	if sigma <= 0 {
		sigma = 500
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for _, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range tr.Points {
			tr.Points[i].Pos.X += rng.NormFloat64() * sigma
			tr.Points[i].Pos.Y += rng.NormFloat64() * sigma
		}
	}
	for i := range ds.Readings {
		ds.Readings[i].Value += rng.NormFloat64() * sigma
	}
	return nil
}

// ShardedCorruptStage is CorruptStage's data-parallel twin: it derives
// an independent RNG per trajectory (from the trajectory ID) and
// replaces trajectory entries instead of mutating points in place, so
// it is safe to run sharded and injects identical corruption at every
// worker count — the shape the rollback guard must catch on the
// parallel path.
type ShardedCorruptStage struct {
	Seed  int64
	Sigma float64 // coordinate noise in meters (default 500)
}

// Name implements Stage.
func (s ShardedCorruptStage) Name() string { return "chaos-corrupt-sharded" }

// Task implements Stage.
func (s ShardedCorruptStage) Task() core.Task { return core.FaultCorrection }

// Traits implements core.TraitedStage: corruption is trajectory-local
// (per-trajectory seeds, no cross-trajectory state) and replace-only.
func (s ShardedCorruptStage) Traits() core.StageTraits {
	return core.StageTraits{Shardable: true, ReplacesTrajectories: true}
}

// Apply implements Stage.
func (s ShardedCorruptStage) Apply(ds *core.Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements core.FallibleStage.
func (s ShardedCorruptStage) ApplyContext(ctx context.Context, ds *core.Dataset) error {
	sigma := s.Sigma
	if sigma <= 0 {
		sigma = 500
	}
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(tr.ID))
		rng := rand.New(rand.NewSource(s.Seed ^ int64(h.Sum64())))
		out := tr.Clone()
		for j := range out.Points {
			out.Points[j].Pos.X += rng.NormFloat64() * sigma
			out.Points[j].Pos.Y += rng.NormFloat64() * sigma
		}
		ds.Trajectories[i] = out
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for i := range ds.Readings {
		ds.Readings[i].Value += rng.NormFloat64() * sigma
	}
	return nil
}

// HangStage blocks until its context is cancelled (or forever on the
// legacy path, bounded by MaxHang) — for testing per-stage deadlines.
type HangStage struct {
	MaxHang time.Duration // safety bound (default 5s)
}

// Name implements Stage.
func (s HangStage) Name() string { return "chaos-hang" }

// Task implements Stage.
func (s HangStage) Task() core.Task { return core.FaultCorrection }

// Apply implements Stage.
func (s HangStage) Apply(ds *core.Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements core.FallibleStage.
func (s HangStage) ApplyContext(ctx context.Context, ds *core.Dataset) error {
	max := s.MaxHang
	if max <= 0 {
		max = 5 * time.Second
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(max):
		return fmt.Errorf("%w: hang stage ran to its safety bound", ErrInjected)
	}
}
