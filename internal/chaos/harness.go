package chaos

import (
	"context"
	"fmt"
	"time"

	"sidq/internal/core"
	"sidq/internal/obs"
	"sidq/internal/quality"
)

// Scenario is one chaos experiment: a pipeline with injected faults,
// the runner configuration it executes under, and the invariants
// Verify checks afterwards.
type Scenario struct {
	Name string
	// Stages builds a fresh (stateful) stage list per run.
	Stages func() []core.Stage
	// Runner builds the runner under test.
	Runner func() *core.Runner
	// WantErr is true when the run is expected to surface an error
	// (fail-fast scenarios); otherwise the run must complete cleanly.
	WantErr bool
	// MaxAttempts bounds the attempts any single stage report may
	// record (0 = no check) — the "retries are bounded" invariant.
	MaxAttempts int
	// GuardDims are the dimensions on which the final dataset must not
	// be materially worse than the input (nil = skip the check).
	GuardDims []quality.Dimension
	// CheckTrace, if set, receives the runner's recorded trace events
	// after the run — the hook for exact-count assertions like
	// "exactly N retries happened". Verify attaches a MemSink for it
	// unless the scenario's Runner already supplies a trace sink.
	CheckTrace func([]obs.TraceEvent) error
}

// Result is what a scenario run produced, for inspection beyond the
// pass/fail of Verify.
type Result struct {
	Out     *core.Dataset
	Reports []core.StageReport
	Err     error
	Trace   []obs.TraceEvent // events recorded by the harness sink (nil if the runner brought its own)
}

// DefaultGuardDims are the dimensions the harness guards by default:
// the ones every cleaning stage should improve or leave alone.
func DefaultGuardDims() []quality.Dimension {
	return []quality.Dimension{quality.Accuracy, quality.Consistency}
}

// Verify runs the scenario over ds and checks the resilience
// invariants: the run never panics, errors only when expected, keeps
// retries bounded, and (under skip/rollback policies) ends no worse
// than the input on the guarded dimensions. It returns the run result
// and the first violated invariant.
func Verify(ctx context.Context, sc Scenario, ds *core.Dataset) (Result, error) {
	var res Result
	p := core.NewPipeline(sc.Stages()...)
	r := sc.Runner()
	var sink *obs.MemSink
	if r.Trace == nil {
		sink = &obs.MemSink{}
		r.Trace = sink
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Err = fmt.Errorf("runner panicked: %v", p)
			}
		}()
		res.Out, res.Reports, res.Err = p.RunContext(ctx, r, ds)
	}()
	if sink != nil {
		res.Trace = sink.Events()
	}
	if sc.WantErr {
		if res.Err == nil {
			return res, fmt.Errorf("scenario %s: expected an error, got none", sc.Name)
		}
	} else if res.Err != nil {
		return res, fmt.Errorf("scenario %s: unexpected error: %w", sc.Name, res.Err)
	}
	if res.Out == nil {
		return res, fmt.Errorf("scenario %s: no output dataset", sc.Name)
	}
	for _, rep := range res.Reports {
		if sc.MaxAttempts > 0 && rep.Attempts > sc.MaxAttempts {
			return res, fmt.Errorf("scenario %s: stage %s used %d attempts (max %d)",
				sc.Name, rep.Stage, rep.Attempts, sc.MaxAttempts)
		}
	}
	if len(sc.GuardDims) > 0 {
		beforeA := ds.Assess()
		afterA := res.Out.Assess()
		worse := afterA.WorseThan(beforeA, 0.05)
		for _, w := range worse {
			for _, g := range sc.GuardDims {
				if w == g {
					return res, fmt.Errorf("scenario %s: output worse than input on %v (%v -> %v)",
						sc.Name, w, beforeA[w], afterA[w])
				}
			}
		}
	}
	if sc.CheckTrace != nil {
		if sink == nil {
			return res, fmt.Errorf("scenario %s: CheckTrace set but the runner supplies its own trace sink", sc.Name)
		}
		if err := sc.CheckTrace(res.Trace); err != nil {
			return res, fmt.Errorf("scenario %s: trace check: %w", sc.Name, err)
		}
	}
	return res, nil
}

// Suite returns the standard chaos scenarios over the given cleaning
// stages: every injected failure mode (panic, error, stall, active
// corruption, transient flakiness) against every failure policy that
// must survive it. The stages callback must return fresh stage values
// each call.
func Suite(seed int64, stages func() []core.Stage) []Scenario {
	flakyAll := func(opts FlakyOptions) func() []core.Stage {
		return func() []core.Stage {
			inner := stages()
			out := make([]core.Stage, len(inner))
			for i, st := range inner {
				o := opts
				o.Seed = seed + int64(i)
				out[i] = NewFlakyStage(st, o)
			}
			return out
		}
	}
	return []Scenario{
		{
			Name:        "panic-skip",
			Stages:      flakyAll(FlakyOptions{PanicProb: 0.5}),
			Runner:      func() *core.Runner { return &core.Runner{Policy: core.SkipStage} },
			MaxAttempts: 1,
			GuardDims:   DefaultGuardDims(),
		},
		{
			Name:        "error-skip",
			Stages:      flakyAll(FlakyOptions{ErrProb: 0.5}),
			Runner:      func() *core.Runner { return &core.Runner{Policy: core.SkipStage} },
			MaxAttempts: 1,
			GuardDims:   DefaultGuardDims(),
		},
		{
			Name: "error-failfast",
			Stages: func() []core.Stage {
				return []core.Stage{NewFlakyStage(stages()[0], FlakyOptions{Seed: seed, FailFirst: 1 << 30})}
			},
			Runner:  func() *core.Runner { return &core.Runner{Policy: core.FailFast} },
			WantErr: true,
		},
		{
			Name:   "transient-retry",
			Stages: flakyAll(FlakyOptions{FailFirst: 2}),
			Runner: func() *core.Runner {
				return &core.Runner{
					Policy: core.SkipStage,
					Retry:  core.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond},
				}
			},
			MaxAttempts: 4,
			GuardDims:   DefaultGuardDims(),
			// FailFirst: 2 under serial execution is fully deterministic:
			// every stage fails attempts 1 and 2, succeeds on 3, so the
			// trace must hold exactly two retry events per stage — not
			// "at most", exactly.
			CheckTrace: func(evs []obs.TraceEvent) error {
				perStage := map[string]int{}
				for _, e := range evs {
					if e.Kind == obs.KindRetry {
						perStage[e.Name]++
					}
				}
				if len(perStage) == 0 {
					return fmt.Errorf("no retry events recorded")
				}
				for name, n := range perStage {
					if n != 2 {
						return fmt.Errorf("stage %s recorded %d retries, want exactly 2", name, n)
					}
				}
				return nil
			},
		},
		{
			Name: "hang-deadline",
			Stages: func() []core.Stage {
				return append([]core.Stage{HangStage{}}, stages()...)
			},
			Runner: func() *core.Runner {
				return &core.Runner{Policy: core.SkipStage, StageTimeout: 20 * time.Millisecond}
			},
			GuardDims: DefaultGuardDims(),
		},
		{
			Name: "corrupt-rollback",
			Stages: func() []core.Stage {
				return append([]core.Stage{CorruptStage{Seed: seed}}, stages()...)
			},
			Runner: func() *core.Runner {
				return &core.Runner{Policy: core.RollbackStage, GuardDims: DefaultGuardDims()}
			},
			GuardDims: DefaultGuardDims(),
		},
		// The same failure modes must hold when shardable stages run on
		// the data-parallel worker pool: per-shard retries stay bounded,
		// a failed or panicking shard skips the stage as a whole, and the
		// never-worse guard still holds on the merged output.
		{
			Name:        "parallel-panic-skip",
			Stages:      flakyAll(FlakyOptions{PanicProb: 0.5}),
			Runner:      func() *core.Runner { return &core.Runner{Policy: core.SkipStage, Workers: 4} },
			MaxAttempts: 1,
			GuardDims:   DefaultGuardDims(),
		},
		{
			Name:   "parallel-transient-retry",
			Stages: flakyAll(FlakyOptions{FailFirst: 2}),
			Runner: func() *core.Runner {
				return &core.Runner{
					Policy:  core.SkipStage,
					Workers: 4,
					Retry:   core.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond},
				}
			},
			MaxAttempts: 4,
			GuardDims:   DefaultGuardDims(),
		},
		{
			Name: "parallel-corrupt-rollback",
			Stages: func() []core.Stage {
				return append([]core.Stage{ShardedCorruptStage{Seed: seed}}, stages()...)
			},
			Runner: func() *core.Runner {
				return &core.Runner{Policy: core.RollbackStage, GuardDims: DefaultGuardDims(), Workers: 4}
			},
			GuardDims: DefaultGuardDims(),
		},
	}
}
