package chaos

import (
	"math/rand"

	"sidq/internal/stream"
)

// SourceOptions configures a FaultySource. Probabilities are evaluated
// per event in the order drop, straggle, duplicate; corruption is
// drawn independently for every delivered copy.
type SourceOptions[T any] struct {
	Seed          int64
	DropProb      float64 // event is lost entirely
	DupProb       float64 // event is delivered twice
	StragglerProb float64 // event is withheld and delivered late
	StragglerHold int     // deliveries a straggler is held behind (default 3)
	CorruptProb   float64 // a delivered copy is passed through Corrupt
	Corrupt       func(T) T
}

// FaultySource replays an event-time-ordered stream the way an
// unreliable device fleet would deliver it: some events are dropped,
// some duplicated, some arrive late (out of order), and some are
// corrupted. The arrival sequence is fixed at construction from the
// seed, so every run of a test sees the same chaos.
type FaultySource[T any] struct {
	out []stream.Event[T]
	pos int

	input      int
	dropped    int
	duplicated int
	straggled  int
	corrupted  int
}

// NewFaultySource builds the faulty arrival sequence for events (which
// must be in event-time order, as a well-behaved device would send
// them).
func NewFaultySource[T any](events []stream.Event[T], opts SourceOptions[T]) *FaultySource[T] {
	hold := opts.StragglerHold
	if hold <= 0 {
		hold = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	s := &FaultySource[T]{input: len(events)}

	type held struct {
		e       stream.Event[T]
		release int // deliver once this many events have been emitted
	}
	var pending []held
	deliver := func(e stream.Event[T]) {
		if opts.CorruptProb > 0 && opts.Corrupt != nil && rng.Float64() < opts.CorruptProb {
			e.Value = opts.Corrupt(e.Value)
			s.corrupted++
		}
		s.out = append(s.out, e)
	}
	flushDue := func() {
		for len(pending) > 0 && pending[0].release <= len(s.out) {
			h := pending[0]
			pending = pending[1:]
			deliver(h.e)
		}
	}
	for _, e := range events {
		u := rng.Float64()
		switch {
		case u < opts.DropProb:
			s.dropped++
		case u < opts.DropProb+opts.StragglerProb:
			s.straggled++
			pending = append(pending, held{e: e, release: len(s.out) + hold})
		case u < opts.DropProb+opts.StragglerProb+opts.DupProb:
			s.duplicated++
			deliver(e)
			deliver(e)
		default:
			deliver(e)
		}
		flushDue()
	}
	for _, h := range pending {
		deliver(h.e)
	}
	return s
}

// Next returns the next arriving event, or false when the stream is
// exhausted.
func (s *FaultySource[T]) Next() (stream.Event[T], bool) {
	if s.pos >= len(s.out) {
		var zero stream.Event[T]
		return zero, false
	}
	e := s.out[s.pos]
	s.pos++
	return e, true
}

// Input returns the number of events in the pristine stream.
func (s *FaultySource[T]) Input() int { return s.input }

// Delivered returns the number of events the source will deliver
// (input - dropped + duplicated).
func (s *FaultySource[T]) Delivered() int { return len(s.out) }

// Dropped returns the number of events lost entirely.
func (s *FaultySource[T]) Dropped() int { return s.dropped }

// Duplicated returns the number of events delivered twice.
func (s *FaultySource[T]) Duplicated() int { return s.duplicated }

// Straggled returns the number of events delivered out of order.
func (s *FaultySource[T]) Straggled() int { return s.straggled }

// Corrupted returns the number of delivered copies that were corrupted.
func (s *FaultySource[T]) Corrupted() int { return s.corrupted }

// Drain feeds the source's whole arrival sequence through the
// reorderer and returns the in-order output including the final flush.
// Combined with the source's counters and the reorderer's
// LateCount/Emitted accessors this gives exact drop accounting:
// Delivered == Emitted + LateCount after a drain.
func Drain[T any](s *FaultySource[T], r *stream.Reorderer[T]) []stream.Event[T] {
	var out []stream.Event[T]
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r.Push(e)...)
	}
	out = append(out, r.Flush()...)
	return out
}
