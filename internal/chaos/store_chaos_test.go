package chaos

// Crash chaos for the durable trajectory store: the server is killed
// mid-chunk (a short write tears the record on disk and the ack comes
// back 503), restarted from a post-crash filesystem image, and the
// recovered session must drain byte-identically to an uninterrupted
// run over the acked prefix. A second scenario has the client resume
// after the crash — re-sending from sequence one — and the dedup
// protocol must converge on exactly the uninterrupted full run, no
// matter which suffix the crash ate.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sidq/internal/faults"
	"sidq/internal/server"
	"sidq/internal/store"
)

const storeChaosParams = "lateness=2&maxspeed=50&lanes=2"

func newDurableChaosServer(t *testing.T, fs store.FS, fsync store.FsyncMode) (*server.Service, *httptest.Server) {
	t.Helper()
	svc, err := server.OpenService(server.Config{
		Logger: server.DiscardLogger(),
		Durability: server.DurabilityConfig{
			Dir: "wal", Fsync: fsync, SnapshotEvery: 3, FS: fs,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	return svc, srv
}

// chaosIngestSeq posts one chunk with a client retry sequence number
// and returns the HTTP status plus the duplicate flag from the ack.
func chaosIngestSeq(t *testing.T, srv *httptest.Server, id string, seq int, chunk string) (int, bool) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/stream/ingest?session=%s&seq=%d", srv.URL, id, seq)
	resp, err := http.Post(url, "text/csv", strings.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Duplicate bool `json:"duplicate"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, ack.Duplicate
}

// chaosDrainBody drains the session and returns the raw NDJSON body.
func chaosDrainBody(t *testing.T, srv *httptest.Server, id, params string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stream/" + id + "/results?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// storeChaosChunks builds a deterministic two-source chunk sequence
// with mild reordering and a periodic teleport outlier, so recovery
// has to reproduce reorder buffers, speed-gate state, and counters —
// not just the raw rows.
func storeChaosChunks(n int) []string {
	chunks := make([]string, n)
	for c := 0; c < n; c++ {
		var b strings.Builder
		base := float64(c * 4)
		for i := 0; i < 4; i++ {
			tm := base + float64(i)
			fmt.Fprintf(&b, "veh-a,%g,%g,5\n", tm, 10*tm)
			fmt.Fprintf(&b, "veh-b,%g,%g,100\n", tm-0.5, 8*tm)
		}
		if c%4 == 2 {
			fmt.Fprintf(&b, "veh-a,%g,90000,90000\n", base+2.25)
		}
		chunks[c] = b.String()
	}
	return chunks
}

// controlDrain runs the first k chunks through a memory-only server
// and returns the final flush body — the ground truth an interrupted
// durable run must reproduce.
func controlDrain(t *testing.T, chunks []string, k int) (id, body string) {
	t.Helper()
	svc := server.NewService(server.Config{Logger: server.DiscardLogger()})
	srv := httptest.NewServer(svc)
	defer func() { srv.Close(); svc.Close() }()
	id = chaosOpenStream(t, srv, storeChaosParams)
	for i := 0; i < k; i++ {
		if code, _ := chaosIngestSeq(t, srv, id, i+1, chunks[i]); code != http.StatusOK {
			t.Fatalf("control chunk %d status %d", i, code)
		}
	}
	return id, chaosDrainBody(t, srv, id, "flush=1")
}

// TestChaosStoreKillMidChunk kills the server in the middle of a chunk
// append — the write tears after a handful of bytes and the ack fails
// loudly — then restarts from crash images under several seeds. The
// recovered drain must be byte-identical to an uninterrupted run over
// the chunks that were acked, for every kill point: the torn record
// must never surface, and no acked row may go missing.
func TestChaosStoreKillMidChunk(t *testing.T) {
	chunks := storeChaosChunks(10)
	for _, kill := range []int{1, 4, 8} {
		ctrlID, want := controlDrain(t, chunks, kill)

		fs := faults.NewCrashFS()
		svc, srv := newDurableChaosServer(t, fs, store.FsyncAlways)
		id := chaosOpenStream(t, srv, storeChaosParams)
		if id != ctrlID {
			t.Fatalf("kill %d: durable session %s, control %s", kill, id, ctrlID)
		}
		for i := 0; i < kill; i++ {
			if code, _ := chaosIngestSeq(t, srv, id, i+1, chunks[i]); code != http.StatusOK {
				t.Fatalf("kill %d: chunk %d status %d", kill, i, code)
			}
		}
		// The killing blow: the next append lands 5 bytes and dies.
		fs.FailWriteAfter(0, 5)
		if code, _ := chaosIngestSeq(t, srv, id, kill+1, chunks[kill]); code != http.StatusServiceUnavailable {
			t.Fatalf("kill %d: torn chunk acked with %d, want 503", kill, code)
		}
		if !fs.Failed() {
			t.Fatalf("kill %d: injected short write never fired", kill)
		}
		srv.Close()

		for seed := int64(0); seed < 4; seed++ {
			img := fs.Crash(seed, true)
			svc2, srv2 := newDurableChaosServer(t, img, store.FsyncAlways)
			got := chaosDrainBody(t, srv2, id, "flush=1")
			if got != want {
				t.Fatalf("kill %d seed %d: recovered drain differs from uninterrupted run\nwant:\n%s\ngot:\n%s",
					kill, seed, want, got)
			}
			srv2.Close()
			svc2.Close()
		}
		svc.Close()
	}
}

// TestChaosStoreResumeAfterCrash is the client-side half of the story:
// after a mid-chunk crash the client reconnects and replays its whole
// send window from sequence one. Already-durable chunks must come back
// as duplicate acks, the lost suffix must apply exactly once, and the
// final drain must match an uninterrupted full run byte for byte.
// Under fsync=batch an acked chunk may legitimately die with the
// crash — the retry protocol is what makes that loss invisible.
func TestChaosStoreResumeAfterCrash(t *testing.T) {
	chunks := storeChaosChunks(12)
	for _, fsync := range []store.FsyncMode{store.FsyncAlways, store.FsyncBatch} {
		_, want := controlDrain(t, chunks, len(chunks))

		fs := faults.NewCrashFS()
		_, srv := newDurableChaosServer(t, fs, fsync)
		id := chaosOpenStream(t, srv, storeChaosParams)
		const kill = 7
		for i := 0; i < kill; i++ {
			if code, _ := chaosIngestSeq(t, srv, id, i+1, chunks[i]); code != http.StatusOK {
				t.Fatalf("%v: chunk %d status %d", fsync, i, code)
			}
		}
		fs.FailWriteAfter(0, 3)
		code, _ := chaosIngestSeq(t, srv, id, kill+1, chunks[kill])
		if fsync == store.FsyncAlways && code != http.StatusServiceUnavailable {
			// Batch mode acks before the batched flush reaches the disk,
			// so only always-mode guarantees the torn chunk is refused.
			t.Fatalf("torn chunk acked with %d, want 503", code)
		}
		srv.Close()

		img := fs.Crash(3, true)
		svc2, srv2 := newDurableChaosServer(t, img, fsync)
		defer func() { srv2.Close(); svc2.Close() }()

		// Reconnect and replay the whole send window. If the crash ate
		// even the session-open record the first send 404s — reopening
		// must then yield the same id, so the replay lands either way.
		dups := 0
		for i := range chunks {
			code, dup := chaosIngestSeq(t, srv2, id, i+1, chunks[i])
			if code == http.StatusNotFound && i == 0 {
				if id2 := chaosOpenStream(t, srv2, storeChaosParams); id2 != id {
					t.Fatalf("%v: reopened session %s, want %s", fsync, id2, id)
				}
				code, dup = chaosIngestSeq(t, srv2, id, i+1, chunks[i])
			}
			if code != http.StatusOK {
				t.Fatalf("%v: replayed chunk %d status %d", fsync, i, code)
			}
			if dup {
				dups++
			}
		}
		if fsync == store.FsyncAlways && dups != kill {
			t.Fatalf("always: %d duplicate acks on replay, want %d (acked chunks must survive)", dups, kill)
		}
		if dups > kill {
			t.Fatalf("%v: %d duplicate acks, more than the %d chunks ever acked", fsync, dups, kill)
		}
		got := chaosDrainBody(t, srv2, id, "flush=1")
		if got != want {
			t.Fatalf("%v: resumed run differs from uninterrupted run\nwant:\n%s\ngot:\n%s", fsync, want, got)
		}
	}
}
