package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
)

func TestCoTrainingBeatsSingleViewWithFewLabels(t *testing.T) {
	f := simulate.NewField(simulate.FieldOptions{Seed: 30})
	// Only 8 labeled sensors, but a long history each (the temporal
	// view's strength) spread over the region (the spatial view's).
	_, labeled := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 8, Interval: 300, Duration: 7200, NoiseSigma: 0.5, Seed: 31,
	})
	rng := rand.New(rand.NewSource(32))
	var queries []stid.Reading
	var truth []float64
	for i := 0; i < 120; i++ {
		q := stid.Reading{
			Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			T:   rng.Float64() * 7200,
		}
		queries = append(queries, q)
		truth = append(truth, f.Value(q.Pos, q.T))
	}
	ct := CoTraining{Rounds: 4, AddPerRound: 10}
	est, ok := ct.Estimate(labeled, queries)
	baseline := GaussianKernel{Readings: labeled, SpaceSigma: 150, TimeSigma: 900}
	var ctErr, baseErr float64
	var n int
	for i := range queries {
		bv, bok := baseline.Estimate(queries[i].Pos, queries[i].T)
		if !ok[i] || !bok {
			continue
		}
		ctErr += math.Abs(est[i] - truth[i])
		baseErr += math.Abs(bv - truth[i])
		n++
	}
	if n < len(queries)/2 {
		t.Fatalf("answered only %d queries", n)
	}
	// Co-training must not be much worse than the single view, and the
	// pseudo-labeling must answer everything the baseline can.
	if ctErr > baseErr*1.15 {
		t.Fatalf("co-training %v much worse than single view %v", ctErr/float64(n), baseErr/float64(n))
	}
}

func TestCoTrainingAnswersAllReachableQueries(t *testing.T) {
	labeled := []stid.Reading{{SensorID: "a", Pos: geo.Pt(0, 0), T: 0, Value: 10}}
	queries := []stid.Reading{{Pos: geo.Pt(10, 0), T: 100}}
	est, ok := CoTraining{}.Estimate(labeled, queries)
	if !ok[0] {
		t.Fatal("reachable query unanswered")
	}
	if math.Abs(est[0]-10) > 1 {
		t.Fatalf("estimate = %v", est[0])
	}
	// No labels at all -> nothing answered.
	_, ok = CoTraining{}.Estimate(nil, queries)
	if ok[0] {
		t.Fatal("label-free estimate should fail")
	}
}

func TestTransferTrendBeatsTargetOnly(t *testing.T) {
	// Source city: strong planar gradient, densely sensed. Target city:
	// same physics (same gradient) plus a level offset, 4 sensors only.
	gradient := func(p geo.Point) float64 { return 0.05*p.X + 0.02*p.Y }
	rng := rand.New(rand.NewSource(33))
	var source []stid.Reading
	for i := 0; i < 80; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		source = append(source, stid.Reading{Pos: p, T: 0, Value: gradient(p) + rng.NormFloat64()*0.3})
	}
	const offset = 12.0
	var target []stid.Reading
	for i := 0; i < 4; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		target = append(target, stid.Reading{Pos: p, T: 0, Value: gradient(p) + offset + rng.NormFloat64()*0.3})
	}
	transfer := NewTransferTrend(source, target, 200)
	targetOnly := GaussianKernel{Readings: target, SpaceSigma: 200}
	var trErr, toErr float64
	const probes = 80
	for i := 0; i < probes; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		truth := gradient(p) + offset
		if v, ok := transfer.Estimate(p, 0); ok {
			trErr += math.Abs(v - truth)
		}
		if v, ok := targetOnly.Estimate(p, 0); ok {
			toErr += math.Abs(v - truth)
		}
	}
	if trErr >= toErr*0.6 {
		t.Fatalf("transfer %v should clearly beat target-only %v", trErr/probes, toErr/probes)
	}
}

func TestMultiTaskTrendHelpsDataPoorTask(t *testing.T) {
	// Two correlated tasks over the same gradient; task B has only a
	// handful of sensors while A is rich.
	gradient := func(p geo.Point) float64 { return 0.05*p.X + 0.02*p.Y }
	rng := rand.New(rand.NewSource(50))
	var taskA, taskB []stid.Reading
	for i := 0; i < 80; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		taskA = append(taskA, stid.Reading{Pos: p, T: 0, Value: gradient(p) + rng.NormFloat64()*0.3})
	}
	for i := 0; i < 5; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		taskB = append(taskB, stid.Reading{Pos: p, T: 0, Value: 2*gradient(p) + 5 + rng.NormFloat64()*0.3})
	}
	joint := NewMultiTaskTrend(map[string][]stid.Reading{"A": taskA, "B": taskB}, 200)
	bAlone := GaussianKernel{Readings: taskB, SpaceSigma: 200}
	var jointErr, aloneErr float64
	const probes = 80
	for i := 0; i < probes; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		truth := 2*gradient(p) + 5
		if v, ok := joint.EstimateTask("B", p, 0); ok {
			jointErr += math.Abs(v - truth)
		}
		if v, ok := bAlone.Estimate(p, 0); ok {
			aloneErr += math.Abs(v - truth)
		}
	}
	if jointErr >= aloneErr*0.7 {
		t.Fatalf("multi-task %v should clearly beat B-alone %v", jointErr/probes, aloneErr/probes)
	}
	// Unknown task fails cleanly.
	if _, ok := joint.EstimateTask("nope", geo.Pt(0, 0), 0); ok {
		t.Fatal("unknown task answered")
	}
}
