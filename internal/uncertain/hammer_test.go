package uncertain_test

// Concurrency hammer for the road-network query engine: many
// goroutines map-match the same trajectories against one shared graph,
// exercising the engine scratch pool, the sharded route cache (with
// singleflight), and the snapper scratch pool simultaneously. Run
// under -race (see `make race`) this is the engine's data-race gate;
// in any mode it also asserts that concurrency never changes results.

import (
	"sync"
	"testing"

	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

func TestConcurrentMapMatchHammer(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 51,
	})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.Trips(g, simulate.TripOptions{
		NumObjects: 4, MinHops: 12, Speed: 12, SampleInterval: 1, Seed: 52,
	})
	noisy := make([]*trajectory.Trajectory, len(trips))
	for i, tr := range trips {
		noisy[i] = simulate.AddGaussianNoise(tr, 10, int64(53+i))
	}
	opt := uncertain.MatchOptions{EmissionSigma: 12}

	// Serial reference results, computed on a fresh engine.
	want := make([]uncertain.MatchResult, len(noisy))
	for i, tr := range noisy {
		res, err := uncertain.MapMatch(g, snapper, tr, opt)
		if err != nil {
			t.Fatalf("serial MapMatch %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, tr := range noisy {
					res, err := uncertain.MapMatch(g, snapper, tr, opt)
					if err != nil {
						errs <- err
						return
					}
					if !sameSnaps(res.Snaps, want[i].Snaps) ||
						!samePoints(res.Recovered, want[i].Recovered) {
						t.Errorf("worker %d round %d: trajectory %d diverged under concurrency", w, r, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent MapMatch: %v", err)
	}
}

// TestConcurrentNetworkDistHammer drives the route cache's
// getOrCompute path (singleflight) from many goroutines over a small
// set of hot edge pairs, asserting every caller sees the same value.
func TestConcurrentNetworkDistHammer(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: 8, NY: 8, Spacing: 100, Jitter: 5, RemoveFrac: 0.3, Seed: 61,
	})
	type q struct{ ea, eb roadnet.EdgeID }
	pairs := make([]q, 0, 64)
	for i := 0; i < 64; i++ {
		pairs = append(pairs, q{
			ea: roadnet.EdgeID((i * 7) % g.NumEdges()),
			eb: roadnet.EdgeID((i*13 + 5) % g.NumEdges()),
		})
	}
	want := make([]float64, len(pairs))
	wantErr := make([]bool, len(pairs))
	for i, p := range pairs {
		d, err := g.NetworkDist(p.ea, 0.25, p.eb, 0.75)
		want[i], wantErr[i] = d, err != nil
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				for i, p := range pairs {
					d, err := g.NetworkDist(p.ea, 0.25, p.eb, 0.75)
					if (err != nil) != wantErr[i] || (err == nil && d != want[i]) {
						t.Errorf("pair %d: got (%v, %v), want (%v, err=%v)", i, d, err, want[i], wantErr[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func sameSnaps(a, b []roadnet.Snap) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func samePoints(a, b *trajectory.Trajectory) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}
