package uncertain

// Snapshot/restore support for online map matching. Byte-identical
// session recovery needs the full Viterbi lattice: commitOldest
// re-roots log-probabilities in place, so re-pushing the pending points
// into a fresh matcher would NOT reproduce the same future commits.
// The snapshot therefore carries the lattice columns verbatim.

import (
	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// MatcherState is a serializable snapshot of an OnlineMatcher's
// lattice. Graph, snapper, options, and lag are reconstruction inputs,
// not part of the state: they come from the session's configuration.
type MatcherState struct {
	Pts   []trajectory.Point
	Cands [][]roadnet.Snap
	Logp  [][]float64
	Back  [][]int
}

// State deep-copies the pending lattice.
func (m *OnlineMatcher) State() MatcherState {
	st := MatcherState{
		Pts:   append([]trajectory.Point(nil), m.pts...),
		Cands: make([][]roadnet.Snap, len(m.cands)),
		Logp:  make([][]float64, len(m.logp)),
		Back:  make([][]int, len(m.back)),
	}
	for i := range m.cands {
		st.Cands[i] = append([]roadnet.Snap(nil), m.cands[i]...)
	}
	for i := range m.logp {
		st.Logp[i] = append([]float64(nil), m.logp[i]...)
	}
	for i := range m.back {
		st.Back[i] = append([]int(nil), m.back[i]...)
	}
	return st
}

// NewOnlineMatcherFromState rebuilds a matcher whose future Push and
// Flush outputs are identical to the matcher State was called on,
// given the same configuration it was built with.
func NewOnlineMatcherFromState(g *roadnet.Graph, snapper *roadnet.Snapper, opt MatchOptions, lag int, st MatcherState) *OnlineMatcher {
	m := NewOnlineMatcher(g, snapper, opt, lag)
	m.pts = append([]trajectory.Point(nil), st.Pts...)
	m.cands = make([][]roadnet.Snap, len(st.Cands))
	for i := range st.Cands {
		m.cands[i] = append([]roadnet.Snap(nil), st.Cands[i]...)
	}
	m.logp = make([][]float64, len(st.Logp))
	for i := range st.Logp {
		m.logp[i] = append([]float64(nil), st.Logp[i]...)
	}
	m.back = make([][]int, len(st.Back))
	for i := range st.Back {
		m.back[i] = append([]int(nil), st.Back[i]...)
	}
	return m
}
