// Package uncertain implements the paper's §2.2.2 Uncertainty
// Elimination task family: reducing imprecise measurements and imputing
// unknown values at unsampled points.
//
// Trajectory UE follows the tutorial's three categories:
//   - calibration-based: aligning noisy points with reference anchors;
//   - inference-based: HMM map matching plus shortest-path route
//     recovery on a road network;
//   - smoothing-based: moving-average and exponential smoothing
//     (Kalman/RTS smoothing lives in package refine, built on the same
//     motion model).
//
// STID UE provides spatiotemporal interpolation (IDW, Gaussian kernel,
// trend surface + residual) and multi-source fusion with per-source
// reliability estimation.
package uncertain

import (
	"errors"
	"fmt"
	"math"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// ErrNoCandidates is returned by MapMatch when a point has no nearby
// road candidates.
var ErrNoCandidates = errors.New("uncertain: no road candidates")

// CalibrateToAnchors aligns each trajectory point with its nearest
// reference anchor: points within radius of an anchor are pulled toward
// it by factor alpha in [0, 1]. Anchors typically come from a map (road
// intersections, doorways) or from dense historical trajectories. This
// is the calibration-based UE approach.
func CalibrateToAnchors(tr *trajectory.Trajectory, anchors []geo.Point, radius, alpha float64) *trajectory.Trajectory {
	out := tr.Clone()
	if len(anchors) == 0 || alpha <= 0 {
		return out
	}
	if alpha > 1 {
		alpha = 1
	}
	for i, p := range out.Points {
		best, bestD := geo.Point{}, math.Inf(1)
		for _, a := range anchors {
			if d := a.Dist(p.Pos); d < bestD {
				best, bestD = a, d
			}
		}
		if bestD <= radius {
			out.Points[i].Pos = p.Pos.Lerp(best, alpha)
		}
	}
	return out
}

// MovingAverage smooths positions with a centered window of the given
// half-width (in samples): each point becomes the mean of up to
// 2*halfWidth+1 neighbors. This is the simplest temporal-autocorrelation
// smoother.
func MovingAverage(tr *trajectory.Trajectory, halfWidth int) *trajectory.Trajectory {
	out := tr.Clone()
	if halfWidth <= 0 || tr.Len() < 3 {
		return out
	}
	for i := range tr.Points {
		var sx, sy float64
		var n int
		for w := -halfWidth; w <= halfWidth; w++ {
			j := i + w
			if j < 0 || j >= tr.Len() {
				continue
			}
			sx += tr.Points[j].Pos.X
			sy += tr.Points[j].Pos.Y
			n++
		}
		out.Points[i].Pos = geo.Pt(sx/float64(n), sy/float64(n))
	}
	return out
}

// ExponentialSmooth applies first-order exponential smoothing with
// factor alpha in (0, 1]: small alpha smooths more.
func ExponentialSmooth(tr *trajectory.Trajectory, alpha float64) *trajectory.Trajectory {
	out := tr.Clone()
	if tr.Len() == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	cur := tr.Points[0].Pos
	for i, p := range tr.Points {
		cur = cur.Lerp(p.Pos, alpha)
		out.Points[i].Pos = cur
	}
	return out
}

// MatchOptions configures HMM map matching.
type MatchOptions struct {
	Candidates     int     // road candidates per point (default 4)
	EmissionSigma  float64 // GPS error scale in meters (default 10)
	TransitionBeta float64 // route-vs-chord mismatch tolerance in meters (default 30)
}

// MatchResult is the output of MapMatch: the Viterbi-optimal snap per
// input point, the deduplicated edge route, and the recovered
// (densified, network-constrained) trajectory.
type MatchResult struct {
	Snaps     []roadnet.Snap
	Route     []roadnet.EdgeID
	Recovered *trajectory.Trajectory
}

// MapMatch aligns a noisy, possibly sparse trajectory to the road
// network with an HMM (emission: snap distance; transition: agreement
// between network distance and straight-line movement) solved by
// Viterbi, then reconstructs the full path between matched points with
// shortest-path inference. This is the inference-based UE approach of
// the route-recovery literature.
func MapMatch(g *roadnet.Graph, snapper *roadnet.Snapper, tr *trajectory.Trajectory, opt MatchOptions) (MatchResult, error) {
	if tr.Len() == 0 {
		return MatchResult{}, fmt.Errorf("uncertain: empty trajectory: %w", ErrNoCandidates)
	}
	if opt.Candidates <= 0 {
		opt.Candidates = 4
	}
	if opt.EmissionSigma <= 0 {
		opt.EmissionSigma = 10
	}
	if opt.TransitionBeta <= 0 {
		opt.TransitionBeta = 30
	}
	n := tr.Len()
	cands := make([][]roadnet.Snap, n)
	for i, p := range tr.Points {
		cs := snapper.KNearest(p.Pos, opt.Candidates)
		if len(cs) == 0 {
			return MatchResult{}, fmt.Errorf("uncertain: point %d at %v: %w", i, p.Pos, ErrNoCandidates)
		}
		cands[i] = cs
	}
	// Viterbi over candidate snaps. Transition rows come from the
	// engine's bounded one-to-many search: one truncated Dijkstra per
	// previous candidate instead of K single-pair searches, with the
	// route cache deduplicating repeated edge pairs across points.
	eng := g.Engine()
	sigma2 := 2 * opt.EmissionSigma * opt.EmissionSigma
	logp := make([][]float64, n)
	back := make([][]int, n)
	for i := range logp {
		logp[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
	}
	for j, c := range cands[0] {
		logp[0][j] = -c.Dist * c.Dist / sigma2
	}
	var ndBuf []float64 // flattened K_prev x K_cur network-distance rows
	for i := 1; i < n; i++ {
		straight := tr.Points[i-1].Pos.Dist(tr.Points[i].Pos)
		nd := transitionRows(eng, cands[i-1], cands[i], &ndBuf)
		k1 := len(cands[i])
		for j, cj := range cands[i] {
			em := -cj.Dist * cj.Dist / sigma2
			best, bestK := math.Inf(-1), 0
			for k := range cands[i-1] {
				trans := transLogProbFromDist(nd[k*k1+j], straight, opt.TransitionBeta)
				if v := logp[i-1][k] + trans; v > best {
					best, bestK = v, k
				}
			}
			logp[i][j] = best + em
			back[i][j] = bestK
		}
	}
	// Backtrack.
	bestJ, bestV := 0, math.Inf(-1)
	for j, v := range logp[n-1] {
		if v > bestV {
			bestJ, bestV = j, v
		}
	}
	snaps := make([]roadnet.Snap, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		snaps[i] = cands[i][j]
		j = back[i][j]
	}
	route := buildRoute(g, snaps)
	recovered := recoverTrajectory(g, tr, snaps)
	return MatchResult{Snaps: snaps, Route: route, Recovered: recovered}, nil
}

// transitionRows fills (and returns) the flattened |prev| x |cur|
// network-distance matrix between candidate snaps, reusing *buf across
// lattice steps. Row k holds the distances from prev[k] to every
// current candidate, computed by one bounded one-to-many sweep.
func transitionRows(eng *roadnet.Engine, prev, cur []roadnet.Snap, buf *[]float64) []float64 {
	need := len(prev) * len(cur)
	if cap(*buf) < need {
		*buf = make([]float64, need)
	}
	nd := (*buf)[:need]
	for k, ck := range prev {
		eng.SnapDists(ck, cur, math.Inf(1), nd[k*len(cur):(k+1)*len(cur)])
	}
	return nd
}

// transLogProbFromDist scores a transition given its network distance
// and the observed straight-line displacement: plausible transitions
// have network distance close to the chord length; +Inf (no route)
// maps to log probability -Inf.
func transLogProbFromDist(nd, straight, beta float64) float64 {
	if math.IsInf(nd, 1) {
		return math.Inf(-1)
	}
	return -math.Abs(nd-straight) / beta
}

// buildRoute returns the deduplicated edge sequence connecting the
// snapped points, filling gaps with shortest paths.
func buildRoute(g *roadnet.Graph, snaps []roadnet.Snap) []roadnet.EdgeID {
	var route []roadnet.EdgeID
	push := func(e roadnet.EdgeID) {
		if len(route) == 0 || route[len(route)-1] != e {
			route = append(route, e)
		}
	}
	for i, s := range snaps {
		if i == 0 {
			push(s.Edge)
			continue
		}
		prev := snaps[i-1]
		if prev.Edge == s.Edge {
			continue
		}
		pe := g.Edge(prev.Edge)
		se := g.Edge(s.Edge)
		if p, err := g.ShortestPath(pe.To, se.From); err == nil {
			for _, e := range p.Edges {
				push(e)
			}
		}
		push(s.Edge)
	}
	return route
}

// recoverTrajectory densifies the matched trajectory: between
// consecutive snapped points it walks the network shortest path,
// emitting intermediate vertices with linearly interpolated timestamps.
func recoverTrajectory(g *roadnet.Graph, tr *trajectory.Trajectory, snaps []roadnet.Snap) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	for i, s := range snaps {
		if i == 0 {
			out.Points = append(out.Points, trajectory.Point{T: tr.Points[0].T, Pos: s.Pos})
			continue
		}
		prev := snaps[i-1]
		t0, t1 := tr.Points[i-1].T, tr.Points[i].T
		geoPath := pathGeometry(g, prev, s)
		if len(geoPath) > 2 {
			total := geoPath.Length()
			walked := 0.0
			for v := 1; v < len(geoPath)-1; v++ {
				walked += geoPath[v-1].Dist(geoPath[v])
				frac := 0.5
				if total > 0 {
					frac = walked / total
				}
				out.Points = append(out.Points, trajectory.Point{
					T:   t0 + (t1-t0)*frac,
					Pos: geoPath[v],
				})
			}
		}
		out.Points = append(out.Points, trajectory.Point{T: t1, Pos: s.Pos})
	}
	return out
}

// pathGeometry returns the polyline from snap a to snap b along the
// network (straight chord if no route exists).
func pathGeometry(g *roadnet.Graph, a, b roadnet.Snap) geo.Polyline {
	if a.Edge == b.Edge && b.Param >= a.Param {
		return geo.Polyline{a.Pos, b.Pos}
	}
	ae := g.Edge(a.Edge)
	be := g.Edge(b.Edge)
	p, err := g.ShortestPath(ae.To, be.From)
	if err != nil {
		return geo.Polyline{a.Pos, b.Pos}
	}
	pl := geo.Polyline{a.Pos}
	for _, nid := range p.Nodes {
		pl = append(pl, g.Node(nid).Pos)
	}
	pl = append(pl, b.Pos)
	return pl
}

// RouteAccuracy compares a recovered edge route against the ground
// truth and returns the Jaccard similarity of their edge sets — the
// standard route-recovery quality measure.
func RouteAccuracy(got, want []roadnet.EdgeID) float64 {
	if len(got) == 0 && len(want) == 0 {
		return 1
	}
	gs := map[roadnet.EdgeID]bool{}
	for _, e := range got {
		gs[e] = true
	}
	ws := map[roadnet.EdgeID]bool{}
	for _, e := range want {
		ws[e] = true
	}
	inter := 0
	for e := range gs {
		if ws[e] {
			inter++
		}
	}
	union := len(gs) + len(ws) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
