package uncertain

import (
	"math"

	"sidq/internal/geo"
	"sidq/internal/stid"
)

// CoTraining implements semi-supervised field estimation in the spirit
// of the co-training air-quality work the paper surveys: two
// conditionally independent views — a *spatial* view (neighborhood
// kernel over labeled points) and a *temporal* view (per-location
// history trend) — take turns labeling the unlabeled points each is
// most confident about, growing the labeled set without ground truth.
//
// Labeled readings carry measured values; query points are unlabeled
// location-time pairs. Rounds controls how many pseudo-labeling
// iterations run; addPerRound how many new pseudo-labels each view
// contributes per round.
type CoTraining struct {
	SpaceSigma  float64 // spatial view bandwidth (default 150)
	TimeSigma   float64 // temporal view bandwidth (default 900)
	Rounds      int     // default 3
	AddPerRound int     // default 10
}

// Estimate returns estimates for the queries, co-training on the way:
// the returned slice aligns with queries; ok=false entries had no
// support in either view.
func (c CoTraining) Estimate(labeled []stid.Reading, queries []stid.Reading) ([]float64, []bool) {
	spaceSigma := c.SpaceSigma
	if spaceSigma <= 0 {
		spaceSigma = 150
	}
	timeSigma := c.TimeSigma
	if timeSigma <= 0 {
		timeSigma = 900
	}
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	add := c.AddPerRound
	if add <= 0 {
		add = 10
	}

	pool := append([]stid.Reading(nil), labeled...)
	pseudo := make([]stid.Reading, len(queries))
	done := make([]bool, len(queries))

	// The two views: spatial ignores time, temporal weights time heavily
	// and space loosely (same sensor / same place histories dominate).
	spatialView := func(q stid.Reading, data []stid.Reading) (float64, float64) {
		return kernelEstimate(q, data, spaceSigma, math.Inf(1))
	}
	temporalView := func(q stid.Reading, data []stid.Reading) (float64, float64) {
		return kernelEstimate(q, data, 4*spaceSigma, timeSigma)
	}

	for round := 0; round < rounds; round++ {
		for _, view := range []func(stid.Reading, []stid.Reading) (float64, float64){spatialView, temporalView} {
			// Score all remaining queries by this view's confidence.
			var cands []coTrainCand
			for i, q := range queries {
				if done[i] {
					continue
				}
				if v, conf := view(q, pool); conf > 0 {
					cands = append(cands, coTrainCand{i, v, conf})
				}
			}
			// Pseudo-label the most confident ones.
			sortScored(cands)
			for k := 0; k < add && k < len(cands); k++ {
				i := cands[k].idx
				pseudo[i] = queries[i]
				pseudo[i].Value = cands[k].val
				pool = append(pool, pseudo[i])
				done[i] = true
			}
		}
	}
	// Final pass: answer every query from the enlarged pool.
	out := make([]float64, len(queries))
	ok := make([]bool, len(queries))
	for i, q := range queries {
		if done[i] {
			out[i] = pseudo[i].Value
			ok[i] = true
			continue
		}
		if v, conf := kernelEstimate(q, pool, spaceSigma, timeSigma); conf > 0 {
			out[i] = v
			ok[i] = true
		}
	}
	return out, ok
}

// kernelEstimate returns the kernel-weighted value and total weight
// (confidence) of q against data.
func kernelEstimate(q stid.Reading, data []stid.Reading, spaceSigma, timeSigma float64) (float64, float64) {
	var num, den float64
	for _, r := range data {
		w := math.Exp(-r.Pos.DistSq(q.Pos) / (2 * spaceSigma * spaceSigma))
		if !math.IsInf(timeSigma, 1) && timeSigma > 0 {
			dt := r.T - q.T
			w *= math.Exp(-dt * dt / (2 * timeSigma * timeSigma))
		}
		num += w * r.Value
		den += w
	}
	if den < 1e-12 {
		return 0, 0
	}
	return num / den, den
}

// coTrainCand is a pseudo-label candidate with its view confidence.
type coTrainCand struct {
	idx  int
	val  float64
	conf float64
}

func sortScored(s []coTrainCand) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].conf > s[j-1].conf; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TransferTrend implements transfer learning for STID interpolation:
// the large-scale trend surface fitted in a data-rich source region is
// reused as the prior mean in a data-poor target region, where only
// the residuals are learned from the few local sensors. This is the
// borrow-knowledge-from-related-domains scheme the paper's
// decision-making section surveys, applied to field estimation.
type TransferTrend struct {
	source *TrendResidual
	local  GaussianKernel
	shift  float64 // estimated source->target level offset
}

// NewTransferTrend fits the source trend and calibrates it to the
// target's few labeled readings.
func NewTransferTrend(source []stid.Reading, target []stid.Reading, spaceSigma float64) *TransferTrend {
	if spaceSigma <= 0 {
		spaceSigma = 150
	}
	t := &TransferTrend{source: NewTrendResidual(source, 2, 0)}
	// Level shift: mean difference between target labels and the source
	// trend's prediction at those points.
	var diffs []float64
	residuals := make([]stid.Reading, 0, len(target))
	for _, r := range target {
		if base, ok := t.source.Estimate(r.Pos, r.T); ok {
			diffs = append(diffs, r.Value-base)
		}
	}
	var shift float64
	for _, d := range diffs {
		shift += d
	}
	if len(diffs) > 0 {
		shift /= float64(len(diffs))
	}
	t.shift = shift
	for _, r := range target {
		if base, ok := t.source.Estimate(r.Pos, r.T); ok {
			rr := r
			rr.Value = r.Value - base - shift
			residuals = append(residuals, rr)
		}
	}
	t.local = GaussianKernel{Readings: residuals, SpaceSigma: spaceSigma}
	return t
}

// Estimate implements Interpolator for the target region.
func (t *TransferTrend) Estimate(pos geo.Point, tm float64) (float64, bool) {
	base, ok := t.source.Estimate(pos, tm)
	if !ok {
		return 0, false
	}
	res, okR := t.local.Estimate(pos, tm)
	if !okR {
		res = 0
	}
	return base + t.shift + res, true
}

// MultiTaskTrend jointly estimates several correlated field tasks
// (e.g. PM2.5 and PM10 surfaces) under the latent-field multi-task
// model v_task = a_task * f + b_task + noise: the data-richest task
// anchors the latent field f, and every task calibrates a linear head
// against it plus a local residual kernel. Data-poor tasks borrow the
// anchor's spatial structure — the multi-task learning scheme the
// paper surveys for contending with label scarcity.
type MultiTaskTrend struct {
	latent *TrendResidual
	tasks  map[string]*taskHead
}

// taskHead is one task's calibration against the latent field.
type taskHead struct {
	scale, offset float64
	local         GaussianKernel
}

// NewMultiTaskTrend fits the joint model; tasksData maps task name to
// its labeled readings. The task with the most readings anchors the
// latent field.
func NewMultiTaskTrend(tasksData map[string][]stid.Reading, spaceSigma float64) *MultiTaskTrend {
	if spaceSigma <= 0 {
		spaceSigma = 150
	}
	m := &MultiTaskTrend{tasks: map[string]*taskHead{}}
	// Anchor: richest task (name-ordered tie-break for determinism).
	anchor := ""
	for name, data := range tasksData {
		if anchor == "" || len(data) > len(tasksData[anchor]) ||
			(len(data) == len(tasksData[anchor]) && name < anchor) {
			anchor = name
		}
	}
	if anchor == "" {
		m.latent = NewTrendResidual(nil, 2, 0)
		return m
	}
	m.latent = NewTrendResidual(tasksData[anchor], 2, 0)
	for name, data := range tasksData {
		var xs, ys []float64
		for _, r := range data {
			if f, ok := m.latent.Estimate(r.Pos, r.T); ok {
				xs = append(xs, f)
				ys = append(ys, r.Value)
			}
		}
		head := &taskHead{scale: 1}
		if n := float64(len(xs)); n >= 2 {
			var mx, my float64
			for i := range xs {
				mx += xs[i]
				my += ys[i]
			}
			mx /= n
			my /= n
			var cov, varX float64
			for i := range xs {
				cov += (xs[i] - mx) * (ys[i] - my)
				varX += (xs[i] - mx) * (xs[i] - mx)
			}
			if varX > 1e-9 {
				head.scale = cov / varX
				head.offset = my - head.scale*mx
			} else {
				head.scale = 0
				head.offset = my
			}
		} else if len(ys) == 1 {
			head.scale = 0
			head.offset = ys[0]
		}
		var residuals []stid.Reading
		for _, r := range data {
			if f, ok := m.latent.Estimate(r.Pos, r.T); ok {
				rr := r
				rr.Value = r.Value - (f*head.scale + head.offset)
				residuals = append(residuals, rr)
			}
		}
		head.local = GaussianKernel{Readings: residuals, SpaceSigma: spaceSigma}
		m.tasks[name] = head
	}
	return m
}

// EstimateTask returns the joint model's estimate for one task at
// (pos, tm); ok is false for unknown tasks or unreachable queries.
func (m *MultiTaskTrend) EstimateTask(task string, pos geo.Point, tm float64) (float64, bool) {
	head, okT := m.tasks[task]
	if !okT {
		return 0, false
	}
	f, ok := m.latent.Estimate(pos, tm)
	if !ok {
		return 0, false
	}
	res, okR := head.local.Estimate(pos, tm)
	if !okR {
		res = 0
	}
	return f*head.scale + head.offset + res, true
}
