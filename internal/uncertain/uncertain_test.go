package uncertain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func TestCalibrateToAnchors(t *testing.T) {
	tr := trajectory.New("a", []trajectory.Point{
		{T: 0, Pos: geo.Pt(3, 0)},
		{T: 1, Pos: geo.Pt(50, 50)},
	})
	anchors := []geo.Point{{X: 0, Y: 0}}
	out := CalibrateToAnchors(tr, anchors, 10, 0.5)
	if out.Points[0].Pos.Dist(geo.Pt(1.5, 0)) > 1e-9 {
		t.Fatalf("calibrated = %v", out.Points[0].Pos)
	}
	// Far point untouched.
	if out.Points[1].Pos != geo.Pt(50, 50) {
		t.Fatal("far point moved")
	}
	// alpha=0 and no anchors are identity.
	if got := CalibrateToAnchors(tr, anchors, 10, 0); got.Points[0].Pos != tr.Points[0].Pos {
		t.Fatal("alpha=0 should not move points")
	}
	if got := CalibrateToAnchors(tr, nil, 10, 1); got.Points[0].Pos != tr.Points[0].Pos {
		t.Fatal("no anchors should not move points")
	}
	// alpha > 1 clamps to the anchor.
	if got := CalibrateToAnchors(tr, anchors, 10, 5); got.Points[0].Pos != geo.Pt(0, 0) {
		t.Fatalf("alpha clamp: %v", got.Points[0].Pos)
	}
}

func TestCalibrationReducesNoiseNearAnchors(t *testing.T) {
	// Truth moves along a corridor of anchors every 10 m.
	var pts []trajectory.Point
	var anchors []geo.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*10, 0)})
		anchors = append(anchors, geo.Pt(float64(i)*10, 0))
	}
	truth := trajectory.New("t", pts)
	noisy := simulate.AddGaussianNoise(truth, 4, 1)
	cal := CalibrateToAnchors(noisy, anchors, 15, 0.8)
	if trajectory.RMSEAgainst(cal, truth) >= trajectory.RMSEAgainst(noisy, truth) {
		t.Fatal("calibration did not reduce error")
	}
}

func TestMovingAverageAndExponentialSmoothing(t *testing.T) {
	pts := make([]trajectory.Point, 200)
	for i := range pts {
		pts[i] = trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*2, 0)}
	}
	truth := trajectory.New("t", pts)
	noisy := simulate.AddGaussianNoise(truth, 6, 2)
	rawErr := trajectory.RMSEAgainst(noisy, truth)
	ma := MovingAverage(noisy, 3)
	if trajectory.RMSEAgainst(ma, truth) >= rawErr {
		t.Fatal("moving average did not reduce error")
	}
	es := ExponentialSmooth(noisy, 0.3)
	if trajectory.RMSEAgainst(es, truth) >= rawErr {
		t.Fatal("exponential smoothing did not reduce error")
	}
	// Degenerate inputs.
	if got := MovingAverage(noisy, 0); got.Points[5] != noisy.Points[5] {
		t.Fatal("halfWidth 0 should be identity")
	}
	if got := ExponentialSmooth(&trajectory.Trajectory{}, 0.5); got.Len() != 0 {
		t.Fatal("empty exponential smooth")
	}
	if got := ExponentialSmooth(noisy, 9); got.Len() != noisy.Len() {
		t.Fatal("bad alpha should default")
	}
}

func matchSetup(t *testing.T) (*roadnet.Graph, *roadnet.Snapper, []simulate.Trip) {
	t.Helper()
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 3,
	})
	return g, roadnet.NewSnapper(g, 100), simulate.TripsWithRoutes(g, simulate.TripOptions{
		NumObjects: 6, MinHops: 8, Speed: 12, SampleInterval: 2, Seed: 4,
	})
}

func TestMapMatchRecoversRoutes(t *testing.T) {
	g, snapper, trips := matchSetup(t)
	var accSum float64
	for _, trip := range trips {
		noisy := simulate.AddGaussianNoise(trip.Truth.Thin(5), 10, 5)
		res, err := MapMatch(g, snapper, noisy, MatchOptions{EmissionSigma: 12})
		if err != nil {
			t.Fatal(err)
		}
		acc := RouteAccuracy(res.Route, trip.Path.Edges)
		accSum += acc
		if res.Recovered.Len() < noisy.Len() {
			t.Fatal("recovery should densify the trajectory")
		}
		// Recovered points lie on the network.
		for _, p := range res.Recovered.Points {
			if snap, ok := snapper.Nearest(p.Pos); !ok || snap.Dist > 1 {
				t.Fatalf("recovered point off network by %v", snap.Dist)
			}
		}
	}
	if mean := accSum / float64(len(trips)); mean < 0.5 {
		t.Fatalf("mean route accuracy = %v", mean)
	}
}

func TestMapMatchImprovesGeometry(t *testing.T) {
	g, snapper, trips := matchSetup(t)
	trip := trips[0]
	noisy := simulate.AddGaussianNoise(trip.Truth.Thin(5), 10, 6)
	res, err := MapMatch(g, snapper, noisy, MatchOptions{EmissionSigma: 12})
	if err != nil {
		t.Fatal(err)
	}
	rawErr := trajectory.MeanErrorAgainst(noisy, trip.Truth)
	recErr := trajectory.MeanErrorAgainst(res.Recovered, trip.Truth)
	if recErr >= rawErr {
		t.Fatalf("map matching: raw %v -> recovered %v", rawErr, recErr)
	}
}

func TestMapMatchEmpty(t *testing.T) {
	g, snapper, _ := matchSetup(t)
	_, err := MapMatch(g, snapper, &trajectory.Trajectory{}, MatchOptions{})
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("want ErrNoCandidates, got %v", err)
	}
}

func TestRouteAccuracy(t *testing.T) {
	a := []roadnet.EdgeID{1, 2, 3}
	if RouteAccuracy(a, a) != 1 {
		t.Fatal("self accuracy")
	}
	if RouteAccuracy(a, []roadnet.EdgeID{4, 5}) != 0 {
		t.Fatal("disjoint accuracy")
	}
	if got := RouteAccuracy(a, []roadnet.EdgeID{2, 3, 4}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("partial accuracy = %v", got)
	}
	if RouteAccuracy(nil, nil) != 1 {
		t.Fatal("empty accuracy")
	}
}

func fieldReadings(t *testing.T, density int, seed int64) (*simulate.Field, []stid.Reading) {
	t.Helper()
	f := simulate.NewField(simulate.FieldOptions{Seed: seed})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: density, Interval: 600, Duration: 3600, NoiseSigma: 1, Seed: seed + 1,
	})
	return f, readings
}

func interpolationMAE(t *testing.T, f *simulate.Field, ip Interpolator, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	const trials = 100
	for i := 0; i < trials; i++ {
		pos := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		tm := rng.Float64() * 3600
		est, ok := ip.Estimate(pos, tm)
		if !ok {
			t.Fatal("estimate failed")
		}
		sum += math.Abs(est - f.Value(pos, tm))
	}
	return sum / trials
}

func TestIDWInterpolation(t *testing.T) {
	f, readings := fieldReadings(t, 60, 10)
	mae := interpolationMAE(t, f, IDW{Readings: readings, TimeWindow: 900}, 11)
	// Field range is ~±30 around 50; dense IDW should be much closer.
	if mae > 6 {
		t.Fatalf("IDW MAE = %v", mae)
	}
	// No readings in window -> not ok.
	if _, ok := (IDW{Readings: readings, TimeWindow: 1}).Estimate(geo.Pt(0, 0), 1e9); ok {
		t.Fatal("empty window should fail")
	}
	// Exact sample point returns ~the sample value.
	r := readings[0]
	est, _ := IDW{Readings: readings}.Estimate(r.Pos, r.T)
	if math.Abs(est-r.Value) > 1 {
		t.Fatalf("at-sample estimate %v vs %v", est, r.Value)
	}
}

func TestGaussianKernelInterpolation(t *testing.T) {
	f, readings := fieldReadings(t, 60, 12)
	mae := interpolationMAE(t, f, GaussianKernel{Readings: readings, SpaceSigma: 120, TimeSigma: 900}, 13)
	if mae > 8 {
		t.Fatalf("kernel MAE = %v", mae)
	}
	if _, ok := (GaussianKernel{SpaceSigma: 10}).Estimate(geo.Pt(0, 0), 0); ok {
		t.Fatal("no readings should fail")
	}
}

func TestTrendResidualBeatsIDWOnGradient(t *testing.T) {
	// A strongly tilted field: value = 0.2*x + noise-free.
	rng := rand.New(rand.NewSource(14))
	var readings []stid.Reading
	for i := 0; i < 40; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		readings = append(readings, stid.Reading{
			SensorID: "s", Pos: p, T: 0, Value: 0.2*p.X + 0.05*p.Y,
		})
	}
	tr := NewTrendResidual(readings, 2, 0)
	idw := IDW{Readings: readings}
	var trErr, idwErr float64
	for i := 0; i < 50; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		truth := 0.2*p.X + 0.05*p.Y
		if v, ok := tr.Estimate(p, 0); ok {
			trErr += math.Abs(v - truth)
		}
		if v, ok := idw.Estimate(p, 0); ok {
			idwErr += math.Abs(v - truth)
		}
	}
	if trErr >= idwErr {
		t.Fatalf("trend+residual (%v) should beat IDW (%v) on a planar field", trErr, idwErr)
	}
	// Tiny input degrades gracefully to IDW.
	small := NewTrendResidual(readings[:2], 2, 0)
	if _, ok := small.Estimate(geo.Pt(1, 1), 0); !ok {
		t.Fatal("small trend estimate failed")
	}
}

func TestFuseSourcesCorrectsBias(t *testing.T) {
	f := simulate.NewField(simulate.FieldOptions{Seed: 15})
	_, clean := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 40, Interval: 600, Duration: 3600, NoiseSigma: 0.5, Seed: 16,
	})
	// Source B: same grid, constant +20 bias and more noise.
	_, noisy := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 40, Interval: 600, Duration: 3600, NoiseSigma: 4, Seed: 17,
	})
	biased := make([]stid.Reading, len(noisy))
	copy(biased, noisy)
	for i := range biased {
		biased[i].Value += 20
	}
	res := FuseSources([]SourceReadings{
		{Source: "A", Readings: clean},
		{Source: "B", Readings: biased},
	}, 150)
	if len(res.Fused) != len(clean) {
		t.Fatalf("fused count = %d", len(res.Fused))
	}
	// The bias estimate for B should be near +20 relative to A's.
	if rel := res.Biases["B"] - res.Biases["A"]; rel < 10 || rel > 30 {
		t.Fatalf("relative bias estimate = %v, want ~20", rel)
	}
	// A is cleaner, so it should carry more weight.
	if res.Weights["A"] <= res.Weights["B"] {
		t.Fatalf("weights: A %v should exceed B %v", res.Weights["A"], res.Weights["B"])
	}
	// Fused error vs truth should beat the biased source alone.
	var fusedErr, biasedErr float64
	for i, r := range res.Fused {
		fusedErr += math.Abs(r.Value - f.Value(r.Pos, r.T))
		biasedErr += math.Abs(biased[i].Value - f.Value(biased[i].Pos, biased[i].T))
	}
	if fusedErr >= biasedErr {
		t.Fatalf("fusion (%v) should beat biased source (%v)", fusedErr, biasedErr)
	}
	// Degenerate input.
	empty := FuseSources(nil, 100)
	if len(empty.Fused) != 0 {
		t.Fatal("empty fusion")
	}
}
