package uncertain

import (
	"math"

	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// OnlineMatcher performs streaming HMM map matching with a fixed
// decision lag: points are pushed one at a time, and once the Viterbi
// lattice is lag steps deep the matcher commits the oldest point's
// snap (decoded from the current best path). This is the online
// variant of MapMatch for edge deployments where trajectories arrive
// as streams and bounded-latency output is required.
type OnlineMatcher struct {
	g       *roadnet.Graph
	snapper *roadnet.Snapper
	opt     MatchOptions
	lag     int

	pts   []trajectory.Point
	cands [][]roadnet.Snap
	logp  [][]float64
	back  [][]int
	ndBuf []float64 // reusable transition-distance rows
}

// NewOnlineMatcher returns a matcher that commits each point after
// seeing lag further points (lag >= 0; 0 commits greedily).
func NewOnlineMatcher(g *roadnet.Graph, snapper *roadnet.Snapper, opt MatchOptions, lag int) *OnlineMatcher {
	if opt.Candidates <= 0 {
		opt.Candidates = 4
	}
	if opt.EmissionSigma <= 0 {
		opt.EmissionSigma = 10
	}
	if opt.TransitionBeta <= 0 {
		opt.TransitionBeta = 30
	}
	if lag < 0 {
		lag = 0
	}
	return &OnlineMatcher{g: g, snapper: snapper, opt: opt, lag: lag}
}

// Matched is one committed output point.
type Matched struct {
	Point trajectory.Point
	Snap  roadnet.Snap
}

// Push feeds the next point and returns any snaps committed by it
// (zero or one under normal operation). Points with no road candidates
// are skipped silently.
func (m *OnlineMatcher) Push(p trajectory.Point) []Matched {
	cs := m.snapper.KNearest(p.Pos, m.opt.Candidates)
	if len(cs) == 0 {
		return nil
	}
	sigma2 := 2 * m.opt.EmissionSigma * m.opt.EmissionSigma
	row := make([]float64, len(cs))
	backRow := make([]int, len(cs))
	if len(m.pts) == 0 {
		for j, c := range cs {
			row[j] = -c.Dist * c.Dist / sigma2
		}
	} else {
		prev := m.pts[len(m.pts)-1]
		straight := prev.Pos.Dist(p.Pos)
		prevRow := m.logp[len(m.logp)-1]
		prevCands := m.cands[len(m.cands)-1]
		nd := transitionRows(m.g.Engine(), prevCands, cs, &m.ndBuf)
		for j, cj := range cs {
			em := -cj.Dist * cj.Dist / sigma2
			best, bestK := math.Inf(-1), 0
			for k := range prevCands {
				trans := transLogProbFromDist(nd[k*len(cs)+j], straight, m.opt.TransitionBeta)
				if v := prevRow[k] + trans; v > best {
					best, bestK = v, k
				}
			}
			row[j] = best + em
			backRow[j] = bestK
		}
	}
	m.pts = append(m.pts, p)
	m.cands = append(m.cands, cs)
	m.logp = append(m.logp, row)
	m.back = append(m.back, backRow)
	if len(m.pts) > m.lag {
		return []Matched{m.commitOldest()}
	}
	return nil
}

// commitOldest decodes the best current path and emits the oldest
// lattice column, then drops it.
func (m *OnlineMatcher) commitOldest() Matched {
	// Backtrack from the best terminal state to the oldest column.
	last := len(m.logp) - 1
	bestJ, bestV := 0, math.Inf(-1)
	for j, v := range m.logp[last] {
		if v > bestV {
			bestJ, bestV = j, v
		}
	}
	j := bestJ
	for i := last; i > 0; i-- {
		j = m.back[i][j]
	}
	out := Matched{Point: m.pts[0], Snap: m.cands[0][j]}
	// Re-root the lattice at column 1: keep only the paths passing
	// through the committed state.
	if len(m.pts) > 1 {
		for k := range m.logp[1] {
			if m.back[1][k] != j {
				m.logp[1][k] = math.Inf(-1)
			}
		}
	}
	m.pts = m.pts[1:]
	m.cands = m.cands[1:]
	m.logp = m.logp[1:]
	m.back = m.back[1:]
	return out
}

// Flush commits all buffered points in order.
func (m *OnlineMatcher) Flush() []Matched {
	var out []Matched
	for len(m.pts) > 0 {
		out = append(out, m.commitOldest())
	}
	return out
}

// Pending returns the number of buffered (uncommitted) points.
func (m *OnlineMatcher) Pending() int { return len(m.pts) }
