package uncertain

import (
	"testing"

	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func TestOnlineMatcherMatchesOfflineQuality(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 3})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 3, MinHops: 10, Speed: 12, SampleInterval: 2, Seed: 4})
	for _, trip := range trips {
		noisy := simulate.AddGaussianNoise(trip.Truth.Thin(4), 10, 5)
		// Offline baseline.
		offline, err := MapMatch(g, snapper, noisy, MatchOptions{EmissionSigma: 12})
		if err != nil {
			t.Fatal(err)
		}
		// Online with a 5-point lag.
		m := NewOnlineMatcher(g, snapper, MatchOptions{EmissionSigma: 12}, 5)
		var matched []Matched
		for _, p := range noisy.Points {
			matched = append(matched, m.Push(p)...)
		}
		matched = append(matched, m.Flush()...)
		if len(matched) != noisy.Len() {
			t.Fatalf("committed %d of %d points", len(matched), noisy.Len())
		}
		// Output preserves input order and timing.
		for i, mm := range matched {
			if mm.Point.T != noisy.Points[i].T {
				t.Fatalf("point %d out of order", i)
			}
		}
		// Online snapped positions track the offline ones closely.
		var onErr, offErr float64
		for i := range matched {
			tp, _ := trip.Truth.LocationAt(matched[i].Point.T)
			onErr += matched[i].Snap.Pos.Dist(tp)
			offErr += offline.Snaps[i].Pos.Dist(tp)
		}
		n := float64(len(matched))
		if onErr/n > offErr/n*1.5+3 {
			t.Fatalf("online error %.1f much worse than offline %.1f", onErr/n, offErr/n)
		}
	}
}

func TestOnlineMatcherLagSemantics(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 6, NY: 6, Spacing: 100, Seed: 6})
	snapper := roadnet.NewSnapper(g, 100)
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 8, Speed: 10, SampleInterval: 1, Seed: 7})[0]
	m := NewOnlineMatcher(g, snapper, MatchOptions{}, 3)
	committed := 0
	for i, p := range trip.Points {
		out := m.Push(p)
		committed += len(out)
		// Nothing commits until the lag fills.
		if i < 3 && committed != 0 {
			t.Fatalf("committed before lag filled at %d", i)
		}
		if m.Pending() > 4 {
			t.Fatalf("pending exceeded lag+1: %d", m.Pending())
		}
	}
	committed += len(m.Flush())
	if committed != trip.Len() {
		t.Fatalf("committed %d of %d", committed, trip.Len())
	}
	if m.Pending() != 0 {
		t.Fatal("pending after flush")
	}
}

func TestOnlineMatcherZeroLagGreedy(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 5, NY: 5, Spacing: 100, Seed: 8})
	snapper := roadnet.NewSnapper(g, 100)
	m := NewOnlineMatcher(g, snapper, MatchOptions{}, 0)
	out := m.Push(trajectory.Point{T: 0, Pos: g.Node(0).Pos})
	if len(out) != 1 {
		t.Fatalf("zero lag should commit immediately: %d", len(out))
	}
}
