package uncertain

import (
	"math"

	"sidq/internal/geo"
	"sidq/internal/stats"
	"sidq/internal/stid"
)

// Interpolator estimates a thematic value at an unsampled
// location-time point from nearby readings.
type Interpolator interface {
	// Estimate returns the interpolated value at (pos, t). ok is false
	// when no readings are usable (e.g. none within the time window).
	Estimate(pos geo.Point, t float64) (value float64, ok bool)
}

// IDW is inverse-distance-weighted spatiotemporal interpolation: each
// reading within the temporal window contributes with weight
// 1/(spatialDist^power + eps) scaled by a triangular temporal decay.
type IDW struct {
	Readings   []stid.Reading
	Power      float64 // distance exponent (default 2)
	TimeWindow float64 // readings further than this in time are ignored (default +Inf)
}

// Estimate implements Interpolator.
func (w IDW) Estimate(pos geo.Point, t float64) (float64, bool) {
	power := w.Power
	if power <= 0 {
		power = 2
	}
	window := w.TimeWindow
	if window <= 0 {
		window = math.Inf(1)
	}
	var num, den float64
	for _, r := range w.Readings {
		dt := math.Abs(r.T - t)
		if dt > window {
			continue
		}
		temporal := 1.0
		if !math.IsInf(window, 1) {
			temporal = 1 - dt/window
		}
		d := r.Pos.Dist(pos)
		wt := temporal / (math.Pow(d, power) + 1e-9)
		num += wt * r.Value
		den += wt
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// GaussianKernel interpolates with a Gaussian spatial kernel and an
// exponential temporal decay — smoother than IDW near sample points.
type GaussianKernel struct {
	Readings   []stid.Reading
	SpaceSigma float64 // spatial bandwidth in meters (default 100)
	TimeSigma  float64 // temporal bandwidth in seconds (default +Inf)
}

// Estimate implements Interpolator.
func (g GaussianKernel) Estimate(pos geo.Point, t float64) (float64, bool) {
	ss := g.SpaceSigma
	if ss <= 0 {
		ss = 100
	}
	var num, den float64
	for _, r := range g.Readings {
		wt := math.Exp(-r.Pos.DistSq(pos) / (2 * ss * ss))
		if g.TimeSigma > 0 {
			dt := r.T - t
			wt *= math.Exp(-dt * dt / (2 * g.TimeSigma * g.TimeSigma))
		}
		num += wt * r.Value
		den += wt
	}
	if den < 1e-12 {
		return 0, false
	}
	return num / den, true
}

// TrendResidual fits a first-order spatial trend surface
// v = a + b*x + c*y by least squares and interpolates the residuals
// with IDW — a light-weight version of universal kriging that captures
// large-scale gradients the pure-neighborhood methods miss.
type TrendResidual struct {
	idw     IDW
	a, b, c float64
	ok      bool
}

// NewTrendResidual fits the trend over the given readings.
func NewTrendResidual(readings []stid.Reading, power, timeWindow float64) *TrendResidual {
	tr := &TrendResidual{}
	if len(readings) < 3 {
		tr.idw = IDW{Readings: readings, Power: power, TimeWindow: timeWindow}
		return tr
	}
	// Normal equations for [a b c].
	m := stats.NewMatrix(3, 3)
	rhs := stats.NewMatrix(3, 1)
	for _, r := range readings {
		row := [3]float64{1, r.Pos.X, r.Pos.Y}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m.Set(i, j, m.At(i, j)+row[i]*row[j])
			}
			rhs.Set(i, 0, rhs.At(i, 0)+row[i]*r.Value)
		}
	}
	inv, err := m.Inverse()
	if err == nil {
		sol := inv.Mul(rhs)
		tr.a, tr.b, tr.c = sol.At(0, 0), sol.At(1, 0), sol.At(2, 0)
		tr.ok = true
	}
	residuals := make([]stid.Reading, len(readings))
	copy(residuals, readings)
	if tr.ok {
		for i := range residuals {
			residuals[i].Value -= tr.trend(residuals[i].Pos)
		}
	}
	tr.idw = IDW{Readings: residuals, Power: power, TimeWindow: timeWindow}
	return tr
}

func (t *TrendResidual) trend(p geo.Point) float64 { return t.a + t.b*p.X + t.c*p.Y }

// Estimate implements Interpolator.
func (t *TrendResidual) Estimate(pos geo.Point, tm float64) (float64, bool) {
	res, ok := t.idw.Estimate(pos, tm)
	if !ok {
		return 0, false
	}
	if t.ok {
		return t.trend(pos) + res, true
	}
	return res, true
}

// SourceReadings is one source's readings for fusion.
type SourceReadings struct {
	Source   string
	Readings []stid.Reading
}

// FusionResult carries the fused readings and the per-source weights
// and estimated biases the fusion derived.
type FusionResult struct {
	Fused   []stid.Reading
	Weights map[string]float64
	Biases  map[string]float64
}

// FuseSources merges multi-source STID by (1) estimating each source's
// systematic bias against the cross-source consensus at co-located
// sample points, (2) de-biasing, and (3) averaging sources weighted by
// the inverse of their residual variance. The fused readings are
// emitted on the first source's (sensor, time) grid. This mirrors the
// data-fusion approach to measurement-uncertainty reduction.
func FuseSources(sources []SourceReadings, spaceSigma float64) FusionResult {
	out := FusionResult{Weights: map[string]float64{}, Biases: map[string]float64{}}
	if len(sources) == 0 {
		return out
	}
	if spaceSigma <= 0 {
		spaceSigma = 100
	}
	// Consensus interpolator per source-complement: estimate each
	// source's bias as the mean difference between its readings and the
	// all-source Gaussian-kernel estimate at the same points.
	var all []stid.Reading
	for _, s := range sources {
		all = append(all, s.Readings...)
	}
	consensus := GaussianKernel{Readings: all, SpaceSigma: spaceSigma}
	for _, s := range sources {
		var diffs []float64
		for _, r := range s.Readings {
			if est, ok := consensus.Estimate(r.Pos, r.T); ok {
				diffs = append(diffs, r.Value-est)
			}
		}
		bias := stats.Mean(diffs)
		variance := stats.Variance(diffs)
		out.Biases[s.Source] = bias
		out.Weights[s.Source] = 1 / (variance + 1e-6)
	}
	// Normalize weights.
	var wsum float64
	for _, w := range out.Weights {
		wsum += w
	}
	for k := range out.Weights {
		out.Weights[k] /= wsum
	}
	// Fuse on the first source's sample grid: weighted average of each
	// source's de-biased kernel estimate.
	base := sources[0].Readings
	perSource := make([]GaussianKernel, len(sources))
	for i, s := range sources {
		debiased := make([]stid.Reading, len(s.Readings))
		copy(debiased, s.Readings)
		for j := range debiased {
			debiased[j].Value -= out.Biases[s.Source]
		}
		perSource[i] = GaussianKernel{Readings: debiased, SpaceSigma: spaceSigma}
	}
	for _, r := range base {
		var num, den float64
		for i, s := range sources {
			if est, ok := perSource[i].Estimate(r.Pos, r.T); ok {
				w := out.Weights[s.Source]
				num += w * est
				den += w
			}
		}
		fused := r
		if den > 0 {
			fused.Value = num / den
		} else {
			fused.Value = r.Value - out.Biases[sources[0].Source]
		}
		out.Fused = append(out.Fused, fused)
	}
	return out
}
