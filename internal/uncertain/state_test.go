package uncertain

import (
	"bytes"
	"encoding/gob"
	"testing"

	"sidq/internal/roadnet"
	"sidq/internal/simulate"
)

// TestOnlineMatcherStateRoundTrip: snapshot a matcher mid-stream,
// restore (through gob, as the server's WAL does), feed the identical
// suffix to both — every future commit must match exactly. This is the
// equivalence the crash-recovery acceptance test builds on.
func TestOnlineMatcherStateRoundTrip(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 8, NY: 8, Spacing: 110, Jitter: 6, Seed: 11})
	snapper := roadnet.NewSnapper(g, 100)
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 14, Speed: 11, SampleInterval: 1, Seed: 12})[0]
	noisy := simulate.AddGaussianNoise(trip, 8, 13)
	opt := MatchOptions{EmissionSigma: 12}
	const lag = 5

	for cut := 0; cut <= noisy.Len(); cut += 3 {
		orig := NewOnlineMatcher(g, snapper, opt, lag)
		for _, p := range noisy.Points[:cut] {
			orig.Push(p)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(orig.State()); err != nil {
			t.Fatalf("cut %d: encode: %v", cut, err)
		}
		var st MatcherState
		if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		restored := NewOnlineMatcherFromState(g, snapper, opt, lag, st)
		if restored.Pending() != orig.Pending() {
			t.Fatalf("cut %d: pending %d != %d", cut, restored.Pending(), orig.Pending())
		}
		var a, b []Matched
		for _, p := range noisy.Points[cut:] {
			a = append(a, orig.Push(p)...)
			b = append(b, restored.Push(p)...)
		}
		a = append(a, orig.Flush()...)
		b = append(b, restored.Flush()...)
		if len(a) != len(b) {
			t.Fatalf("cut %d: %d commits vs %d", cut, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cut %d: commit %d diverged:\n  orig     %+v\n  restored %+v", cut, i, a[i], b[i])
			}
		}
	}
}

// TestOnlineMatcherStateIsolation: mutating the snapshot must not
// affect the live matcher.
func TestOnlineMatcherStateIsolation(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 5, NY: 5, Spacing: 100, Seed: 8})
	snapper := roadnet.NewSnapper(g, 100)
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 6, Speed: 10, SampleInterval: 1, Seed: 9})[0]
	m := NewOnlineMatcher(g, snapper, MatchOptions{}, 4)
	for _, p := range trip.Points[:4] {
		m.Push(p)
	}
	st := m.State()
	for i := range st.Logp {
		for j := range st.Logp[i] {
			st.Logp[i][j] = 1e300
		}
	}
	st.Pts[0].T = -1
	want := m.State()
	for i := range want.Logp {
		for j := range want.Logp[i] {
			if want.Logp[i][j] == 1e300 {
				t.Fatal("snapshot aliases the live lattice")
			}
		}
	}
	if want.Pts[0].T == -1 {
		t.Fatal("snapshot aliases the live points")
	}
}
