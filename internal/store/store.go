// Package store is sidq's durability substrate: a segmented append-only
// log with WAL-style group-commit fsync batching, CRC32C-checksummed
// length-prefixed records, a sealed-segment manifest, and crash
// recovery that truncates a torn tail and resumes at the last durable
// record. It is stdlib-only and writes through a small FS abstraction
// so fault harnesses (internal/faults) can inject short writes, fsync
// failures, and crash images.
//
// Durability contract (see DESIGN.md "Durability & recovery"):
//
//   - A record is durable iff its full frame (length, CRC32C, type,
//     payload) verifies on disk. Recovery returns exactly the longest
//     verifiable prefix of the log — never a partial record.
//   - FsyncAlways: Append returns only after an fsync covering the
//     record. Concurrent appenders share fsyncs (group commit): while
//     one fsync is in flight, arriving appends buffer behind it and
//     are all released by the next single fsync.
//   - FsyncBatch: Append returns after the buffered write; a
//     background flusher fsyncs every BatchInterval. A crash can lose
//     up to one interval of acked records.
//   - FsyncOff: no fsyncs except at segment seal and Close. For
//     benchmarks and tests.
//   - Any write, flush, or fsync error poisons the log: the failed
//     and all subsequent Appends return the error rather than lying
//     about durability (an fsync failure leaves the page cache in an
//     unknowable state, so there is no safe retry).
package store

import (
	"bufio"
	"errors"
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncMode selects when Append makes records durable.
type FsyncMode int

// Fsync modes.
const (
	FsyncAlways FsyncMode = iota // fsync (group-committed) before every Append returns
	FsyncBatch                   // background fsync every BatchInterval
	FsyncOff                     // no fsync except seal/close
)

// String renders the mode as its flag spelling.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode parses the -fsync flag spelling.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync mode %q (want always, batch, or off)", s)
}

// Options tunes a Log. Zero fields take the documented defaults.
type Options struct {
	FS            FS               // filesystem (default OSFS{})
	Fsync         FsyncMode        // durability mode (default FsyncAlways)
	SegmentBytes  int64            // roll the active segment past this size (default 64 MiB)
	SegmentAge    time.Duration    // also roll past this age; 0 = size-only
	BatchInterval time.Duration    // FsyncBatch flush period (default 25ms)
	Now           func() time.Time // clock, injectable for age-roll tests
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = 25 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("store: log closed")

// RecoveryInfo reports what Open had to do to reach a consistent log.
type RecoveryInfo struct {
	Records           int    // records scanned in unsealed segments
	LastSeq           uint64 // highest durable seq (0 = empty log)
	TornBytes         int64  // bytes truncated off the torn tail
	AdoptedSegments   int    // sealed-but-unlisted segments re-adopted into the manifest
	DiscardedSegments int    // unreachable segments removed (past a tear or non-contiguous)
	StaleFiles        int    // leftover files removed (tmp manifest, pre-truncation segments)
}

// Log is a segmented append-only record log. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	opt Options
	fs  FS

	mu          sync.Mutex // guards buffered writes + the fields below
	active      File
	w           *bufio.Writer
	activeFirst uint64 // first seq in the active segment
	activeSize  int64  // bytes appended to the active segment (incl. buffered)
	activeBorn  time.Time
	nextSeq     uint64
	sealed      []SegmentInfo
	truncatedTo uint64 // retention horizon persisted in the manifest (0 = never truncated)
	err         error  // sticky failure; all appends fail after it
	scratch     []byte

	fsyncMu sync.Mutex    // serializes fsync against segment-roll close
	gen     atomic.Uint64 // bumped under fsyncMu after each successful seal; lets
	// syncNow detect a roll without reacquiring l.mu (lock order is
	// always l.mu -> fsyncMu, never the reverse)

	sc struct {
		mu      sync.Mutex
		cond    *sync.Cond
		durable uint64 // highest seq known fsynced
		syncing bool   // an fsync is in flight (group-commit gate)
		err     error  // sticky failure, mirrored for waiters
	}

	batchStop chan struct{}
	batchDone chan struct{}
	closeOnce sync.Once
}

// Open opens (creating if needed) the log in dir and runs crash
// recovery: stale files are removed, sealed-but-unlisted segments are
// re-adopted, the torn tail is truncated to the last verifiable
// record, and the active segment is reopened for append.
func Open(dir string, opt Options) (*Log, RecoveryInfo, error) {
	opt = opt.withDefaults()
	l := &Log{dir: dir, opt: opt, fs: opt.FS}
	l.sc.cond = sync.NewCond(&l.sc.mu)
	info, err := l.recover()
	if err != nil {
		return nil, info, err
	}
	obsRecovery(&info)
	registerLog(l)
	if opt.Fsync == FsyncBatch {
		l.batchStop = make(chan struct{})
		l.batchDone = make(chan struct{})
		go l.batchLoop()
	}
	return l, info, nil
}

// recover scans dir into a consistent, appendable state.
func (l *Log) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	fs := l.fs
	if err := fs.MkdirAll(l.dir); err != nil {
		return info, fmt.Errorf("store: mkdir %s: %w", l.dir, err)
	}
	m, err := loadManifest(fs, l.dir)
	if err != nil {
		return info, fmt.Errorf("store: %w", err)
	}
	names, err := fs.ReadDir(l.dir)
	if err != nil {
		return info, fmt.Errorf("store: readdir %s: %w", l.dir, err)
	}
	listed := map[string]bool{}
	for _, s := range m.Sealed {
		listed[s.Name] = true
	}
	expected := uint64(1)
	if m.TruncatedTo > expected {
		// Nothing below the truncation horizon is part of the log, even
		// if a crash resurrected removed segment files below it.
		expected = m.TruncatedTo
	}
	if n := len(m.Sealed); n > 0 {
		expected = m.Sealed[n-1].LastSeq + 1
	}
	// Partition the directory: sealed segments must exist; unlisted
	// segment files at or past the sealed horizon are the recovery
	// tail; anything else (tmp manifests, segments below the horizon
	// left by an interrupted TruncateFront) is stale and removed.
	present := map[string]bool{}
	var tail []uint64 // firstSeqs of unlisted segments, sorted by ReadDir
	for _, name := range names {
		present[name] = true
		if name == manifestName || listed[name] {
			continue
		}
		seq, ok := parseSegmentName(name)
		if !ok || seq < expected {
			if err := fs.Remove(path.Join(l.dir, name)); err != nil {
				return info, fmt.Errorf("store: remove stale %s: %w", name, err)
			}
			info.StaleFiles++
			continue
		}
		tail = append(tail, seq)
	}
	for _, s := range m.Sealed {
		if !present[s.Name] {
			return info, fmt.Errorf("store: sealed segment %s missing from %s", s.Name, l.dir)
		}
	}
	sortUint64(tail)
	l.sealed = m.Sealed
	l.truncatedTo = m.TruncatedTo
	l.nextSeq = expected

	// Walk the unlisted tail in seq order. Complete segments followed
	// by more tail are re-adopted into the manifest (their seal's
	// rename was lost in a crash); the first tear ends the durable log
	// — the torn file is truncated in place and anything after it is
	// unreachable and removed.
	adopted := false
	var activeName string
	var activeGood int64
	for i, first := range tail {
		name := segmentName(first)
		if first != l.nextSeq {
			// A gap: this segment and everything after is unreachable.
			for _, seq := range tail[i:] {
				if err := fs.Remove(path.Join(l.dir, segmentName(seq))); err != nil {
					return info, fmt.Errorf("store: remove unreachable %s: %w", segmentName(seq), err)
				}
				info.DiscardedSegments++
			}
			break
		}
		f, err := fs.Open(path.Join(l.dir, name))
		if err != nil {
			return info, fmt.Errorf("store: open %s: %w", name, err)
		}
		data, err := readAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return info, fmt.Errorf("store: read %s: %w", name, err)
		}
		res := scanSegment(data)
		info.Records += len(res.records)
		l.nextSeq = first + uint64(len(res.records))
		if res.torn || i == len(tail)-1 {
			if res.torn {
				info.TornBytes += int64(len(data)) - res.good
				obsTornTruncation()
			}
			activeName, activeGood = name, res.good
			for _, seq := range tail[i+1:] {
				if err := fs.Remove(path.Join(l.dir, segmentName(seq))); err != nil {
					return info, fmt.Errorf("store: remove unreachable %s: %w", segmentName(seq), err)
				}
				info.DiscardedSegments++
			}
			break
		}
		// Complete and followed by more tail: re-adopt as sealed.
		l.sealed = append(l.sealed, SegmentInfo{
			Name: name, FirstSeq: first, LastSeq: l.nextSeq - 1, Bytes: int64(len(data)),
		})
		info.AdoptedSegments++
		adopted = true
	}
	if adopted {
		if err := writeManifest(fs, l.dir, manifest{Sealed: l.sealed, TruncatedTo: l.truncatedTo}); err != nil {
			return info, fmt.Errorf("store: %w", err)
		}
	}

	// Reopen (or create) the active segment and make the recovered
	// state durable: the truncation must not reappear after the next
	// crash.
	l.activeFirst = l.nextSeq
	if activeName != "" {
		l.activeFirst = mustSegSeq(activeName)
		f, err := fs.Open(path.Join(l.dir, activeName))
		if err != nil {
			return info, fmt.Errorf("store: reopen %s: %w", activeName, err)
		}
		if err := f.Truncate(activeGood); err != nil {
			f.Close()
			return info, fmt.Errorf("store: truncate %s: %w", activeName, err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return info, fmt.Errorf("store: seek %s: %w", activeName, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return info, fmt.Errorf("store: sync %s: %w", activeName, err)
		}
		l.active = f
		l.activeSize = activeGood
	} else {
		name := segmentName(l.activeFirst)
		f, err := fs.Create(path.Join(l.dir, name))
		if err != nil {
			return info, fmt.Errorf("store: create %s: %w", name, err)
		}
		if err := fs.SyncDir(l.dir); err != nil {
			f.Close()
			return info, fmt.Errorf("store: sync dir: %w", err)
		}
		l.active = f
		l.activeSize = 0
	}
	l.activeBorn = l.opt.Now()
	l.w = bufio.NewWriterSize(l.active, 1<<16)
	l.sc.durable = l.nextSeq - 1
	info.LastSeq = l.nextSeq - 1
	return info, nil
}

func mustSegSeq(name string) uint64 {
	seq, ok := parseSegmentName(name)
	if !ok {
		panic("store: bad segment name " + name)
	}
	return seq
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Append writes one record and returns its seq. Under FsyncAlways the
// record is durable when Append returns; under FsyncBatch/FsyncOff it
// is buffered (see the package contract).
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if int64(len(payload)) > MaxRecord {
		return 0, fmt.Errorf("store: record payload %d exceeds max %d", len(payload), int64(MaxRecord))
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if l.activeSize > 0 && (l.activeSize >= l.opt.SegmentBytes ||
		(l.opt.SegmentAge > 0 && l.opt.Now().Sub(l.activeBorn) >= l.opt.SegmentAge)) {
		if err := l.rollLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	seq := l.nextSeq
	l.scratch = appendRecord(l.scratch[:0], typ, payload)
	if _, err := l.w.Write(l.scratch); err != nil {
		l.failLocked(err)
		l.mu.Unlock()
		return 0, err
	}
	l.nextSeq++
	l.activeSize += int64(len(l.scratch))
	mode := l.opt.Fsync
	l.mu.Unlock()
	obsAppend(len(payload))
	if mode == FsyncAlways {
		if err := l.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// waitDurable blocks until seq is covered by an fsync, sharing in-
// flight fsyncs between waiters (group commit): the first waiter to
// find no fsync running becomes the syncer; everyone else rides its
// broadcast, and anyone whose record missed the flush cut starts the
// next round.
func (l *Log) waitDurable(seq uint64) error {
	sc := &l.sc
	sc.mu.Lock()
	for {
		if sc.err != nil {
			err := sc.err
			sc.mu.Unlock()
			return err
		}
		if sc.durable >= seq {
			sc.mu.Unlock()
			return nil
		}
		if sc.syncing {
			sc.cond.Wait()
			continue
		}
		sc.syncing = true
		sc.mu.Unlock()
		hi, err := l.syncNow()
		sc.mu.Lock()
		sc.syncing = false
		if err != nil {
			sc.err = err
		} else if hi > sc.durable {
			sc.durable = hi
		}
		sc.cond.Broadcast()
	}
}

// syncNow flushes the write buffer and fsyncs the active segment,
// returning the highest seq the fsync covers. The buffer flush holds
// the log mutex; the fsync itself does not, so appenders keep writing
// (into the buffer) while the disk syncs — that is what makes group
// commit group.
func (l *Log) syncNow() (uint64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		l.mu.Unlock()
		return 0, err
	}
	hi := l.nextSeq - 1
	f := l.active
	gen := l.gen.Load()
	l.mu.Unlock()

	l.fsyncMu.Lock()
	// A generation bump means a roll sealed (fsynced and closed) f after
	// our flush, so everything up to hi is already durable and f must
	// not be touched. Checked under fsyncMu, where rolls publish the
	// bump — l.mu is never taken here, which would invert the
	// l.mu -> fsyncMu order rollLocked uses and deadlock.
	stale := l.gen.Load() != gen
	var err error
	if !stale {
		start := time.Now()
		err = f.Sync()
		obsFsync(time.Since(start), err)
	}
	l.fsyncMu.Unlock()
	if err != nil {
		l.fail(err)
		return 0, err
	}
	return hi, nil
}

// Sync forces all buffered records durable regardless of mode.
func (l *Log) Sync() error {
	hi, err := l.syncNow()
	if err != nil {
		return err
	}
	l.markDurable(hi)
	return nil
}

func (l *Log) markDurable(hi uint64) {
	sc := &l.sc
	sc.mu.Lock()
	if hi > sc.durable {
		sc.durable = hi
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// failLocked poisons the log (caller holds l.mu).
func (l *Log) failLocked(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("store: log failed: %w", err)
	}
	err = l.err
	sc := &l.sc
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

func (l *Log) fail(err error) {
	l.mu.Lock()
	l.failLocked(err)
	l.mu.Unlock()
}

// rollLocked seals the active segment (flush, fsync, manifest) and
// starts the next one. Caller holds l.mu.
func (l *Log) rollLocked() error {
	if err := l.w.Flush(); err != nil {
		l.failLocked(err)
		return err
	}
	l.fsyncMu.Lock()
	err := l.active.Sync()
	if err == nil {
		err = l.active.Close()
		// Publish the seal while still under fsyncMu: a syncNow that
		// captured this segment either holds fsyncMu now (its fsync hits
		// the still-open file) or observes the new generation and skips.
		l.gen.Add(1)
	}
	l.fsyncMu.Unlock()
	if err != nil {
		l.failLocked(err)
		return err
	}
	info := SegmentInfo{
		Name:     segmentName(l.activeFirst),
		FirstSeq: l.activeFirst,
		LastSeq:  l.nextSeq - 1,
		Bytes:    l.activeSize,
	}
	l.sealed = append(l.sealed, info)
	if err := writeManifest(l.fs, l.dir, manifest{Sealed: l.sealed, TruncatedTo: l.truncatedTo}); err != nil {
		l.failLocked(err)
		return err
	}
	name := segmentName(l.nextSeq)
	f, err := l.fs.Create(path.Join(l.dir, name))
	if err != nil {
		l.failLocked(err)
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		l.failLocked(err)
		return err
	}
	l.active = f
	l.activeFirst = l.nextSeq
	l.activeSize = 0
	l.activeBorn = l.opt.Now()
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.markDurable(info.LastSeq)
	obsSeal()
	return nil
}

// batchLoop is the FsyncBatch background flusher.
func (l *Log) batchLoop() {
	defer close(l.batchDone)
	t := time.NewTicker(l.opt.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-l.batchStop:
			return
		case <-t.C:
			l.mu.Lock()
			dirty := l.err == nil && l.nextSeq-1 > l.sc.durable
			l.mu.Unlock()
			if dirty {
				_ = l.Sync() // a failure poisons the log; nothing more to do here
			}
		}
	}
}

// Close flushes, fsyncs, and closes the log. Further appends return
// ErrClosed. Idempotent. Returns an error only for a failure that
// happens during Close itself: a log already poisoned by an earlier
// write/fsync error closes "cleanly" — that error was delivered to
// the operation that hit it, and surfacing it again here would make
// every shutdown look like a fresh failure.
func (l *Log) Close() error {
	var err error
	l.closeOnce.Do(func() {
		deregisterLog(l)
		if l.batchStop != nil {
			close(l.batchStop)
			<-l.batchDone
		}
		l.mu.Lock()
		poisoned := l.err != nil
		l.mu.Unlock()
		_, serr := l.syncNow() // clean-shutdown durability, any mode
		l.mu.Lock()
		if cerr := l.active.Close(); serr == nil {
			serr = cerr
		}
		if poisoned {
			serr = nil
		}
		if l.err == nil {
			l.err = ErrClosed
		}
		sc := &l.sc
		sc.mu.Lock()
		if sc.err == nil {
			sc.err = ErrClosed
		}
		sc.cond.Broadcast()
		sc.mu.Unlock()
		l.mu.Unlock()
		err = serr
	})
	return err
}

// LastSeq returns the highest appended seq (0 = empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq returns the lowest seq still present in the log — the
// retained floor after truncation. A never-truncated log reports 1;
// an empty log reports the seq the next Append will be assigned.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sealed) > 0 {
		return l.sealed[0].FirstSeq
	}
	return l.activeFirst
}

// DurableSeq returns the highest seq known covered by an fsync.
func (l *Log) DurableSeq() uint64 {
	l.sc.mu.Lock()
	defer l.sc.mu.Unlock()
	return l.sc.durable
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Segments returns the sealed segments plus the active one, in seq
// order. The active segment's Bytes includes buffered-but-unflushed
// data.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]SegmentInfo(nil), l.sealed...)
	out = append(out, SegmentInfo{
		Name:     segmentName(l.activeFirst),
		FirstSeq: l.activeFirst,
		LastSeq:  l.nextSeq - 1,
		Bytes:    l.activeSize,
	})
	return out
}
