package store

import (
	"encoding/json"
	"fmt"
	"path"
)

// The manifest is the log's sealed-segment catalog: a JSON file listing
// every segment that is complete, fsynced, and immutable. The active
// (tail) segment is by definition not in it — recovery finds it by
// scanning the directory for segment files past the last sealed seq.
//
// The manifest is replaced atomically: written to MANIFEST.tmp, file-
// fsynced, renamed over MANIFEST, directory-fsynced. A crash at any
// point leaves either the old or the new manifest, never a partial
// one; a crash that loses the rename (the fault injector's
// "reordered-after-crash files" mode) leaves an older manifest plus
// sealed-but-unlisted segment files, which recovery re-adopts by the
// same directory scan that finds the active segment.
const (
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
)

// SegmentInfo describes one sealed segment.
type SegmentInfo struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Bytes    int64  `json:"bytes"`
}

type manifest struct {
	Sealed []SegmentInfo `json:"sealed"`
	// TruncatedTo is the retention horizon: no seq below it is part of
	// the log, even if a crash resurrects a removed segment file
	// (TruncateFront's removes are not followed by a directory fsync).
	// Without it, truncating away *every* sealed segment would leave an
	// empty manifest that says "the log starts at seq 1", and recovery
	// would re-adopt a resurrected pre-truncation segment as the log —
	// then discard the real active tail as a gap. 0 = never truncated.
	TruncatedTo uint64 `json:"truncated_to,omitempty"`
}

// loadManifest reads dir's manifest; an absent manifest is an empty
// log, not an error.
func loadManifest(fs FS, dir string) (manifest, error) {
	var m manifest
	f, err := fs.Open(path.Join(dir, manifestName))
	if err != nil {
		return m, nil // no manifest yet
	}
	defer f.Close()
	data, err := readAll(f)
	if err != nil {
		return m, fmt.Errorf("read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("parse manifest: %w", err)
	}
	for i := 1; i < len(m.Sealed); i++ {
		if m.Sealed[i].FirstSeq != m.Sealed[i-1].LastSeq+1 {
			return m, fmt.Errorf("manifest: segment %s not contiguous with %s",
				m.Sealed[i].Name, m.Sealed[i-1].Name)
		}
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(fs FS, dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path.Join(dir, manifestTmp)
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("create manifest tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("write manifest tmp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync manifest tmp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close manifest tmp: %w", err)
	}
	if err := fs.Rename(tmp, path.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("rename manifest: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("sync dir after manifest rename: %w", err)
	}
	return nil
}

// readAll reads a File front to back via ReadAt (the File interface
// carries no io.Reader contract about the current offset).
func readAll(f File) ([]byte, error) {
	size, err := f.Seek(0, 2)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if int64(n) == size {
		return buf, nil
	}
	return nil, err
}
