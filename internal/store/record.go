package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// On-disk record framing. Every record is
//
//	u32  payload length n (little-endian)
//	u32  CRC32C over (type byte || payload)
//	u8   type
//	n    payload bytes
//
// The checksum covers the type byte so a flipped type cannot pass, and
// the length sits outside the checksum: a corrupt length either points
// past the segment end (torn tail) or frames a span whose CRC fails.
// Either way the scanner stops at the last good record, which is the
// recovery invariant — a record is durable iff its full frame verifies.
const (
	recordHeader = 9 // 4 length + 4 crc + 1 type

	// MaxRecord bounds a single record's payload. A length prefix above
	// it is treated as tail corruption rather than an allocation
	// request — a torn length field must not ask the scanner for
	// gigabytes.
	MaxRecord = 64 << 20
)

// castagnoli is the CRC32C table (iSCSI polynomial), hardware
// accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one durable log entry. Seq is assigned by the log,
// contiguous from 1; Type and Payload are the caller's.
type Record struct {
	Seq     uint64
	Type    byte
	Payload []byte
}

// appendRecord appends the framed record to buf and returns the
// extended slice.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// recordSize returns the framed size of a payload.
func recordSize(payload []byte) int64 { return recordHeader + int64(len(payload)) }

// errTorn marks a frame that does not verify: short header, short
// payload, oversized length, or CRC mismatch. The scanner maps it to
// "the durable log ends here".
var errTorn = errors.New("torn or corrupt record")

// parseRecord decodes one record from the front of b. It returns the
// type, payload (aliasing b), and the total frame size consumed, or
// errTorn if the frame does not verify.
func parseRecord(b []byte) (typ byte, payload []byte, size int64, err error) {
	if len(b) < recordHeader {
		return 0, nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxRecord {
		return 0, nil, 0, errTorn
	}
	size = recordHeader + int64(n)
	if int64(len(b)) < size {
		return 0, nil, 0, errTorn
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	typ = b[8]
	payload = b[recordHeader:size]
	crc := crc32.Update(0, castagnoli, b[8:9])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, 0, errTorn
	}
	return typ, payload, size, nil
}

// scanResult is what scanning one segment's bytes yields: the records
// (payloads copied out of the scan buffer), the byte offset of the end
// of the last good record, and whether the segment ended in a torn or
// corrupt frame.
type scanResult struct {
	records []Record // Seq left 0; the caller numbers them
	good    int64    // bytes of verified records
	torn    bool     // data remained past good that did not verify
}

// scanSegment walks the framed records in b front to back, stopping at
// the first frame that fails to verify.
func scanSegment(b []byte) scanResult {
	var res scanResult
	off := int64(0)
	for off < int64(len(b)) {
		typ, payload, size, err := parseRecord(b[off:])
		if err != nil {
			res.torn = true
			break
		}
		res.records = append(res.records, Record{Type: typ, Payload: append([]byte(nil), payload...)})
		off += size
	}
	res.good = off
	return res
}

// segmentName renders the file name of the segment whose first record
// is seq.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%020d.wal", seq) }

// parseSegmentName extracts the first-record seq from a segment file
// name; ok is false for non-segment files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal")
	if len(num) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil || segmentName(seq) != name {
		return 0, false
	}
	return seq, true
}
