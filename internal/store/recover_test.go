package store_test

// Crash-recovery property tests. The core invariant (ISSUE 6,
// acceptance criteria): for ANY prefix truncation of the log bytes,
// recovery yields exactly the durable records — a full prefix of what
// was appended, never a partial or corrupted record.

import (
	"bytes"
	"fmt"
	"path"
	"testing"

	"sidq/internal/faults"
	"sidq/internal/store"
)

// readFSFile reads one file out of a store.FS.
func readFSFile(t *testing.T, fs store.FS, p string) []byte {
	t.Helper()
	f, err := fs.Open(p)
	if err != nil {
		t.Fatalf("open %s: %v", p, err)
	}
	defer f.Close()
	size, err := f.Seek(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
	}
	return buf
}

// writeFSFile creates one durable file in a store.FS.
func writeFSFile(t *testing.T, fs store.FS, p string, data []byte) {
	t.Helper()
	if err := fs.MkdirAll(path.Dir(p)); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(path.Dir(p)); err != nil {
		t.Fatal(err)
	}
}

// sweepPayloads are sized to cross frame boundaries at interesting
// offsets: empty, tiny, and multi-hundred-byte records.
func sweepPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("p%03d|%s", i, bytes.Repeat([]byte{byte('a' + i%26)}, (i*37)%251)))
	}
	return out
}

// TestRecoveryTruncationSweep cuts a written log at EVERY byte offset
// and proves recovery returns exactly the records whose frames fit the
// prefix — never a partial record, never a corrupt payload.
func TestRecoveryTruncationSweep(t *testing.T) {
	payloads := sweepPayloads(40)
	src := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: src, Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(7, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segName := l.Segments()[0].Name
	data := readFSFile(t, src, path.Join("wal", segName))

	// frameEnds[k] = byte offset at which record k's frame ends.
	const header = 9
	var frameEnds []int
	off := 0
	for _, p := range payloads {
		off += header + len(p)
		frameEnds = append(frameEnds, off)
	}
	if off != len(data) {
		t.Fatalf("frame math: computed %d bytes, file has %d", off, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		wantRecords := 0
		for wantRecords < len(frameEnds) && frameEnds[wantRecords] <= cut {
			wantRecords++
		}
		img := faults.NewCrashFS()
		writeFSFile(t, img, path.Join("wal", segName), data[:cut])
		l2, info, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncOff})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if info.Records != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, info.Records, wantRecords)
		}
		wantTorn := int64(cut - frameEnd(frameEnds, wantRecords))
		if info.TornBytes != wantTorn {
			t.Fatalf("cut %d: torn %d bytes, want %d", cut, info.TornBytes, wantTorn)
		}
		i := 0
		err = l2.Replay(func(r store.Record) error {
			if r.Type != 7 || !bytes.Equal(r.Payload, payloads[i]) {
				return fmt.Errorf("record %d corrupt after cut %d", i, cut)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != wantRecords {
			t.Fatalf("cut %d: replay yielded %d records, want %d", cut, i, wantRecords)
		}
		// The log must accept appends after any truncation.
		if _, err := l2.Append(8, []byte("resume")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
	}
}

func frameEnd(ends []int, k int) int {
	if k == 0 {
		return 0
	}
	return ends[k-1]
}

// TestRecoveryBitFlipSweep flips every byte of the log in turn; the
// flip may shorten the recovered log but the recovered records must
// always be an intact prefix of the originals.
func TestRecoveryBitFlipSweep(t *testing.T) {
	payloads := sweepPayloads(12)
	src := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: src, Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(7, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segName := l.Segments()[0].Name
	data := readFSFile(t, src, path.Join("wal", segName))

	for flip := 0; flip < len(data); flip++ {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x40
		img := faults.NewCrashFS()
		writeFSFile(t, img, path.Join("wal", segName), mut)
		l2, _, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncOff})
		if err != nil {
			t.Fatalf("flip %d: open: %v", flip, err)
		}
		i := 0
		err = l2.Replay(func(r store.Record) error {
			if i >= len(payloads) || r.Type != 7 || !bytes.Equal(r.Payload, payloads[i]) {
				return fmt.Errorf("flip %d surfaced a corrupt record at index %d", flip, i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
	}
}

// TestRecoveryCrashImageSweep drives the full CrashFS model: sync up
// to a known point, keep writing unsynced, crash with a torn
// bit-flipped tail, recover. The synced prefix must always survive
// intact; nothing corrupt may ever surface.
func TestRecoveryCrashImageSweep(t *testing.T) {
	payloads := sweepPayloads(30)
	const syncedAt = 11 // records 0..10 are fsynced
	for seed := int64(0); seed < 25; seed++ {
		fs := faults.NewCrashFS()
		l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range payloads {
			if _, err := l.Append(7, p); err != nil {
				t.Fatal(err)
			}
			if i == syncedAt-1 {
				if err := l.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// No Close: the process dies here.
		img := fs.Crash(seed, true)
		l2, info, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncOff})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		if info.Records < syncedAt {
			t.Fatalf("seed %d: lost fsynced records: %+v", seed, info)
		}
		i := 0
		err = l2.Replay(func(r store.Record) error {
			if i >= len(payloads) || !bytes.Equal(r.Payload, payloads[i]) {
				return fmt.Errorf("seed %d: corrupt record at %d", seed, i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
	}
}

// TestRecoveryAdoptsUnlistedSealedSegment models a crash that loses
// the manifest rename: segment files exist and are complete, but the
// surviving manifest predates them. Recovery must re-adopt them.
func TestRecoveryAdoptsUnlistedSealedSegment(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncAlways, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for len(l.Segments()) < 2 { // until the first seal
		if _, err := l.Append(1, []byte(fmt.Sprintf("rec-%04d", n))); err != nil {
			t.Fatal(err)
		}
		n++
	}
	oldManifest := readFSFile(t, fs, "wal/MANIFEST")
	for len(l.Segments()) < 4 { // two more seals
		if _, err := l.Append(1, []byte(fmt.Sprintf("rec-%04d", n))); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Build the post-crash hybrid: all segment files, but the manifest
	// reverted to the single-seal version.
	img := fs.Crash(0, false)
	hybrid := faults.NewCrashFS()
	names, err := img.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == "MANIFEST" {
			writeFSFile(t, hybrid, "wal/MANIFEST", oldManifest)
			continue
		}
		writeFSFile(t, hybrid, path.Join("wal", name), readFSFile(t, img, path.Join("wal", name)))
	}
	l2, info, err := store.Open("wal", store.Options{FS: hybrid, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatalf("recovery with reverted manifest: %v", err)
	}
	defer l2.Close()
	if info.AdoptedSegments != 2 {
		t.Fatalf("adopted %d segments, want 2 (info %+v)", info.AdoptedSegments, info)
	}
	i := 0
	if err := l2.Replay(func(r store.Record) error {
		if string(r.Payload) != fmt.Sprintf("rec-%04d", i) {
			return fmt.Errorf("record %d mismatch: %q", i, r.Payload)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("replayed %d records, want %d", i, n)
	}
}

// TestRecoveryDiscardsGappedSegments: a tail segment that is not
// contiguous with the durable log is unreachable and must be removed,
// not replayed out of order.
func TestRecoveryDiscardsGappedSegments(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncAlways, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for len(l.Segments()) < 3 {
		if _, err := l.Append(1, []byte(fmt.Sprintf("rec-%04d", n))); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	img := fs.Crash(0, false)
	segs := l.Segments()
	// Drop the middle sealed segment's file and the manifest, leaving
	// seg1 and seg3 with a hole between them.
	hybrid := faults.NewCrashFS()
	for _, s := range []store.SegmentInfo{segs[0], segs[2]} {
		writeFSFile(t, hybrid, path.Join("wal", s.Name), readFSFile(t, img, path.Join("wal", s.Name)))
	}
	l2, info, err := store.Open("wal", store.Options{FS: hybrid, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatalf("recovery with gap: %v", err)
	}
	defer l2.Close()
	if info.DiscardedSegments != 1 {
		t.Fatalf("discarded %d segments, want 1 (info %+v)", info.DiscardedSegments, info)
	}
	last := uint64(0)
	if err := l2.Replay(func(r store.Record) error {
		if r.Seq != last+1 {
			return fmt.Errorf("replay gap: seq %d after %d", r.Seq, last)
		}
		last = r.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last != segs[0].LastSeq {
		t.Fatalf("replay ended at %d, want %d (first segment only)", last, segs[0].LastSeq)
	}
}
