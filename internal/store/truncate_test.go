package store_test

// Retention coverage: the TruncateFront crash window (manifest commit
// vs file removal), the partial-Remove accounting contract, and the
// ReadRange/Replay-vs-TruncateFront race that used to surface as
// spurious "corrupt segment" errors on live history queries.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"sidq/internal/faults"
	"sidq/internal/store"
)

// buildSegmented appends n records under fsync=always over small
// segments, returning the log, its fs, and the segment layout (sealed
// segments plus the active one last).
func buildSegmented(t *testing.T, n int) (*store.Log, *faults.CrashFS, []store.SegmentInfo) {
	t.Helper()
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	return l, fs, l.Segments()
}

// TestTruncateFrontCrashImageSweep kills the process inside the
// TruncateFront crash window at every segment-boundary cut, including
// the cut that drops every sealed segment (an empty manifest sealed
// list, where only the persisted truncated_to horizon tells recovery
// that the resurrected files are stale, not the real log prefix). The
// removes are not followed by a directory fsync, so every crash image
// resurrects the dropped files; recovery must sweep them as stale and
// resume exactly at the kept seq.
func TestTruncateFrontCrashImageSweep(t *testing.T) {
	const n = 80
	_, _, segs := buildSegmented(t, n)
	sealed := len(segs) - 1
	if sealed < 3 {
		t.Fatalf("layout too small: %d sealed segments", sealed)
	}
	for cut := 1; cut <= sealed; cut++ {
		// cut == sealed keeps only the active segment: the drop-everything
		// case.
		l, fs, _ := buildSegmented(t, n)
		keep := segs[cut].FirstSeq
		removed, err := l.TruncateFront(keep)
		if err != nil {
			t.Fatalf("cut %d: truncate: %v", cut, err)
		}
		if removed != cut {
			t.Fatalf("cut %d: removed %d segments, want %d", cut, removed, cut)
		}
		if got := l.FirstSeq(); got != keep {
			t.Fatalf("cut %d: FirstSeq %d, want %d", cut, got, keep)
		}
		for seed := int64(0); seed < 3; seed++ {
			img := fs.Crash(seed, false) // kill -9: removes were never dir-fsynced
			l2, info, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncAlways, SegmentBytes: 256})
			if err != nil {
				t.Fatalf("cut %d seed %d: recovery: %v", cut, seed, err)
			}
			if info.StaleFiles != cut {
				t.Fatalf("cut %d seed %d: swept %d stale files, want %d (resurrected pre-truncation segments)",
					cut, seed, info.StaleFiles, cut)
			}
			var first, last uint64
			if err := l2.Replay(func(r store.Record) error {
				if first == 0 {
					first = r.Seq
				}
				last = r.Seq
				return nil
			}); err != nil {
				t.Fatalf("cut %d seed %d: replay: %v", cut, seed, err)
			}
			if first != keep || last != n {
				t.Fatalf("cut %d seed %d: replay spans [%d,%d], want [%d,%d]", cut, seed, first, last, keep, n)
			}
			if seq, err := l2.Append(2, []byte("resume")); err != nil || seq != n+1 {
				t.Fatalf("cut %d seed %d: append after recovery: seq %d err %v", cut, seed, seq, err)
			}
			l2.Close()
		}
		l.Close()
	}
}

var errInjectedRemove = errors.New("injected remove failure")

// removeFailFS fails the next `fail` Removes, recording their names.
type removeFailFS struct {
	store.FS
	mu   sync.Mutex
	fail int
}

func (f *removeFailFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		return errInjectedRemove
	}
	return f.FS.Remove(name)
}

// TestTruncateFrontRemoveFailureAccounting: the manifest commit IS the
// truncation. When a Remove fails afterwards, TruncateFront must still
// report every manifest-dropped segment (the disk-usage metric feeds
// off that count), surface the error, leave the log usable, and leave
// files the next Open sweeps as stale.
func TestTruncateFrontRemoveFailureAccounting(t *testing.T) {
	inner := faults.NewCrashFS()
	ffs := &removeFailFS{FS: inner}
	l, _, err := store.Open("wal", store.Options{FS: ffs, Fsync: store.FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 4 {
		t.Fatalf("layout too small: %d segments", len(segs))
	}
	keep := segs[3].FirstSeq
	ffs.mu.Lock()
	ffs.fail = 2
	ffs.mu.Unlock()
	removed, err := l.TruncateFront(keep)
	if !errors.Is(err, errInjectedRemove) {
		t.Fatalf("truncate error %v, want the injected remove failure", err)
	}
	if removed != 3 {
		t.Fatalf("removed %d, want 3: the count must reflect the committed manifest, not the Removes", removed)
	}
	// A failed Remove is not an integrity fault: the log stays usable.
	if _, err := l.Append(2, []byte("after")); err != nil {
		t.Fatalf("append after failed remove: %v", err)
	}
	var first uint64
	if err := l.Replay(func(r store.Record) error {
		if first == 0 {
			first = r.Seq
		}
		return nil
	}); err != nil {
		t.Fatalf("replay after failed remove: %v", err)
	}
	if first != keep {
		t.Fatalf("replay starts at %d, want %d", first, keep)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The two files the injector kept on disk are below the persisted
	// truncation horizon: the next Open sweeps them.
	l2, info, err := store.Open("wal", store.Options{FS: inner, Fsync: store.FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.StaleFiles != 2 {
		t.Fatalf("swept %d stale files, want the 2 failed removes", info.StaleFiles)
	}
}

// TestTruncateReadRaceHammer races ReadRange/Replay against a
// concurrent truncator and writer. The contract under test: a reader
// must NEVER see an error because a segment it was about to read got
// truncated out from under it — dropped segments are skipped — and the
// seqs each reader observes stay strictly ascending. Run under -race
// (make crash does).
func TestTruncateReadRaceHammer(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncOff, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const total = 4000
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		for i := 0; i < total; i++ {
			if _, err := l.Append(1, payload(i)); err != nil {
				errCh <- fmt.Errorf("append %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // truncator: chase the writer, keeping a 128-seq window
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if last := l.LastSeq(); last > 128 {
				if _, err := l.TruncateFront(last - 128); err != nil {
					errCh <- fmt.Errorf("truncate: %w", err)
					return
				}
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // readers: full-log replays while segments vanish
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev uint64
				err := l.ReadRange(1, math.MaxUint64, func(rec store.Record) error {
					if rec.Seq <= prev {
						return fmt.Errorf("seq %d after %d", rec.Seq, prev)
					}
					prev = rec.Seq
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// The surviving window is still fully intact and contiguous.
	var prev uint64
	if err := l.Replay(func(rec store.Record) error {
		if prev != 0 && rec.Seq != prev+1 {
			return fmt.Errorf("gap: seq %d after %d", rec.Seq, prev)
		}
		prev = rec.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if prev != total {
		t.Fatalf("final replay ends at %d, want %d", prev, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
