package store

import (
	"fmt"
	"math"
	"path"
)

// Replay streams every durable record, in seq order, through fn. It is
// the recovery entry point: the caller rebuilds its state machine from
// the records. Stops at fn's first error.
func (l *Log) Replay(fn func(Record) error) error {
	obsReplay()
	return l.ReadRange(1, math.MaxUint64, fn)
}

// ReadRange streams records with from <= Seq <= to, in seq order,
// through fn. Sealed segments that do not overlap the range are not
// read at all — the manifest's seq ranges are the coarse index. The
// active segment is snapshotted under the log lock (flush + copy) so
// reads never observe a partially written record.
//
// A TruncateFront running concurrently may remove segments after the
// sealed list is copied; those segments are silently skipped, so the
// emitted seqs are still strictly ascending but may start above (or
// have an initial gap below) the log's retained floor at return time.
// Records at or above FirstSeq observed after ReadRange returns are
// always complete.
func (l *Log) ReadRange(from, to uint64, fn func(Record) error) error {
	l.mu.Lock()
	sealed := append([]SegmentInfo(nil), l.sealed...)
	wantFirst := l.activeFirst
	l.mu.Unlock()
	for _, s := range sealed {
		if err := l.emitSealed(s, from, to, fn); err != nil {
			return err
		}
	}
	recs, first := l.snapshotActive()
	// A roll between the sealed-list copy and the active snapshot moves
	// [wantFirst, first) into segments that are in neither: sealed too
	// late for the copy, inactive too early for the snapshot. They are
	// sealed (immutable) now, so read them from the current manifest
	// before the active records — seq order is preserved because every
	// copied segment ends below wantFirst.
	if first != wantFirst {
		l.mu.Lock()
		var gap []SegmentInfo
		for _, s := range l.sealed {
			if s.FirstSeq >= wantFirst && s.LastSeq < first {
				gap = append(gap, s)
			}
		}
		l.mu.Unlock()
		for _, s := range gap {
			if err := l.emitSealed(s, from, to, fn); err != nil {
				return err
			}
		}
	}
	if first > to {
		return nil
	}
	return emitRange(recs, first, from, to, fn)
}

// emitSealed reads one sealed segment, verifies it against its
// manifest entry, and emits its records in [from, to]. Segments
// outside the range are not read at all. A segment that a concurrent
// TruncateFront dropped from the manifest between the caller's
// sealed-list copy and the read here is skipped, not an error — its
// open may fail, or its bytes may scan short/torn on filesystems
// where removal invalidates readers; either way the manifest, not the
// file, says whether it is still part of the log.
func (l *Log) emitSealed(s SegmentInfo, from, to uint64, fn func(Record) error) error {
	if s.LastSeq < from || s.FirstSeq > to {
		return nil
	}
	f, err := l.fs.Open(path.Join(l.dir, s.Name))
	if err != nil {
		if !l.sealedListed(s.Name) {
			return nil // truncated out from under us
		}
		return fmt.Errorf("store: open sealed %s: %w", s.Name, err)
	}
	data, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if !l.sealedListed(s.Name) {
			return nil
		}
		return fmt.Errorf("store: read sealed %s: %w", s.Name, err)
	}
	res := scanSegment(data)
	if res.torn || uint64(len(res.records)) != s.LastSeq-s.FirstSeq+1 {
		if !l.sealedListed(s.Name) {
			return nil
		}
		return fmt.Errorf("store: sealed segment %s corrupt (%d records, want %d, torn=%v)",
			s.Name, len(res.records), s.LastSeq-s.FirstSeq+1, res.torn)
	}
	return emitRange(res.records, s.FirstSeq, from, to, fn)
}

// sealedListed reports whether name is (still) in the sealed manifest.
func (l *Log) sealedListed(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sealed {
		if s.Name == name {
			return true
		}
	}
	return false
}

// snapshotActive flushes and scans the active segment under the log
// lock, returning copied records and the segment's first seq.
func (l *Log) snapshotActive() ([]Record, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		if err := l.w.Flush(); err != nil {
			l.failLocked(err)
		}
	}
	// On a poisoned or closed log only what already reached the file is
	// readable; the scan below stops at any tear.
	first := l.activeFirst
	data, err := readAll(l.active)
	if err != nil {
		return nil, first
	}
	res := scanSegment(data)
	return res.records, first
}

// emitRange numbers recs from firstSeq and forwards those in [from,to].
func emitRange(recs []Record, firstSeq, from, to uint64, fn func(Record) error) error {
	for i := range recs {
		seq := firstSeq + uint64(i)
		if seq < from {
			continue
		}
		if seq > to {
			return nil
		}
		recs[i].Seq = seq
		if err := fn(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// TruncateFront drops sealed segments whose every record is below
// keepSeq — retention, not compaction: the cut is segment-granular and
// never touches the active segment. The manifest (which also records
// the new truncation horizon) is rewritten before the files are
// removed, so a crash between the two — or a failed Remove — leaves
// stale files that the next Open sweeps. The manifest commit is the
// truncation: the returned count and the removed-segments metric
// reflect the manifest, even when a subsequent Remove fails (that
// error is still returned, alongside the true count).
func (l *Log) TruncateFront(keepSeq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	cut := 0
	for cut < len(l.sealed) && l.sealed[cut].LastSeq < keepSeq {
		cut++
	}
	if cut == 0 {
		return 0, nil
	}
	dropped := append([]SegmentInfo(nil), l.sealed[:cut]...)
	kept := append([]SegmentInfo(nil), l.sealed[cut:]...)
	horizon := dropped[len(dropped)-1].LastSeq + 1
	if err := writeManifest(l.fs, l.dir, manifest{Sealed: kept, TruncatedTo: horizon}); err != nil {
		l.failLocked(err)
		return 0, err
	}
	l.sealed = kept
	l.truncatedTo = horizon
	obsRemoveSegments(len(dropped))
	var firstErr error
	for _, s := range dropped {
		if err := l.fs.Remove(path.Join(l.dir, s.Name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: remove %s: %w", s.Name, err)
		}
	}
	return len(dropped), firstErr
}

// SegmentReport is one segment's health in a VerifyReport.
type SegmentReport struct {
	Name     string
	Sealed   bool   // listed in the manifest
	FirstSeq uint64 // from the name
	Records  int    // verified records
	Bytes    int64  // file size
	Good     int64  // bytes of verified records
	Torn     bool   // data past Good failed to verify
	Problem  string // non-empty = integrity violation beyond a recoverable tail
}

// VerifyReport is the operator-facing integrity summary of a log
// directory.
type VerifyReport struct {
	Segments   []SegmentReport
	LastSeq    uint64 // last seq recovery would yield
	DurableOff string // "segment:offset" of the durable end
	TornBytes  int64  // tail bytes recovery would truncate
	Problems   []string
}

// OK reports whether the directory is fully intact up to (at most) a
// recoverable torn tail.
func (r VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Verify walks a log directory read-only: every sealed segment's
// checksums and record counts are validated against the manifest, the
// unlisted tail is scanned the way recovery would scan it, and the
// last durable record's position is reported. Nothing is modified —
// Verify on a live or crashed directory is always safe.
func Verify(dir string, fs FS) (VerifyReport, error) {
	if fs == nil {
		fs = OSFS{}
	}
	var rep VerifyReport
	m, err := loadManifest(fs, dir)
	if err != nil {
		rep.Problems = append(rep.Problems, err.Error())
		return rep, nil
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return rep, fmt.Errorf("store: readdir %s: %w", dir, err)
	}
	present := map[string]bool{}
	listed := map[string]bool{}
	for _, n := range names {
		present[n] = true
	}
	scan := func(name string) ([]byte, error) {
		f, err := fs.Open(path.Join(dir, name))
		if err != nil {
			return nil, err
		}
		data, err := readAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return data, err
	}
	expected := uint64(1)
	if m.TruncatedTo > expected {
		expected = m.TruncatedTo // segments below the horizon are stale, not gaps
	}
	for _, s := range m.Sealed {
		listed[s.Name] = true
		sr := SegmentReport{Name: s.Name, Sealed: true, FirstSeq: s.FirstSeq}
		switch data, err := scan(s.Name); {
		case !present[s.Name]:
			sr.Problem = "sealed segment missing"
		case err != nil:
			sr.Problem = fmt.Sprintf("read: %v", err)
		default:
			res := scanSegment(data)
			sr.Records, sr.Bytes, sr.Good, sr.Torn = len(res.records), int64(len(data)), res.good, res.torn
			if res.torn {
				sr.Problem = fmt.Sprintf("sealed segment torn at offset %d", res.good)
			} else if uint64(len(res.records)) != s.LastSeq-s.FirstSeq+1 {
				sr.Problem = fmt.Sprintf("%d records, manifest says %d", len(res.records), s.LastSeq-s.FirstSeq+1)
			}
		}
		if sr.Problem != "" {
			rep.Problems = append(rep.Problems, s.Name+": "+sr.Problem)
		}
		rep.Segments = append(rep.Segments, sr)
		expected = s.LastSeq + 1
		rep.LastSeq = s.LastSeq
		rep.DurableOff = fmt.Sprintf("%s:%d", s.Name, s.Bytes)
	}
	// The unlisted tail, scanned like recovery: contiguous complete
	// segments extend the durable log; the first tear ends it.
	var tail []uint64
	for _, n := range names {
		if n == manifestName || listed[n] {
			continue
		}
		if seq, ok := parseSegmentName(n); ok && seq >= expected {
			tail = append(tail, seq)
		} else {
			rep.Problems = append(rep.Problems, n+": stale file (removed by next recovery)")
		}
	}
	sortUint64(tail)
	ended := false
	for _, first := range tail {
		name := segmentName(first)
		sr := SegmentReport{Name: name, FirstSeq: first}
		data, err := scan(name)
		if err != nil {
			sr.Problem = fmt.Sprintf("read: %v", err)
			rep.Problems = append(rep.Problems, name+": "+sr.Problem)
			rep.Segments = append(rep.Segments, sr)
			continue
		}
		res := scanSegment(data)
		sr.Records, sr.Bytes, sr.Good, sr.Torn = len(res.records), int64(len(data)), res.good, res.torn
		switch {
		case ended:
			sr.Problem = "unreachable (past a tear or gap; removed by next recovery)"
			rep.Problems = append(rep.Problems, name+": "+sr.Problem)
		case first != expected:
			sr.Problem = fmt.Sprintf("gap: starts at seq %d, want %d", first, expected)
			rep.Problems = append(rep.Problems, name+": "+sr.Problem)
			ended = true
		default:
			expected = first + uint64(len(res.records))
			rep.LastSeq = expected - 1
			rep.DurableOff = fmt.Sprintf("%s:%d", name, res.good)
			if res.torn {
				rep.TornBytes += sr.Bytes - res.good
				ended = true
			}
		}
		rep.Segments = append(rep.Segments, sr)
	}
	return rep, nil
}
