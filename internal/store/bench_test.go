package store_test

import (
	"fmt"
	"testing"

	"sidq/internal/store"
)

// BenchmarkStoreAppend measures the append path per fsync mode. Runs on
// the real filesystem (b.TempDir) so fsync=batch reflects actual disk
// behavior; fsync=off isolates the framing + buffered-write cost.
func BenchmarkStoreAppend(b *testing.B) {
	payload := []byte("src-007,1700000000.5,116.3974,39.9093") // one ingest CSV row
	for _, mode := range []store.FsyncMode{store.FsyncOff, store.FsyncBatch} {
		b.Run(fmt.Sprintf("fsync=%s", mode), func(b *testing.B) {
			l, _, err := store.Open(b.TempDir()+"/wal", store.Options{Fsync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(2, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreAppendParallel exercises group commit: many goroutines
// appending under fsync=always share fsyncs.
func BenchmarkStoreAppendParallel(b *testing.B) {
	payload := []byte("src-007,1700000000.5,116.3974,39.9093")
	l, _, err := store.Open(b.TempDir()+"/wal", store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(2, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
