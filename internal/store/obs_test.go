package store

// Tests for the disk-footprint gauges. These live in the internal
// package (unlike store_test.go) so they can read sumLiveSegments
// directly instead of parsing a Prometheus exposition for deltas.

import (
	"bytes"
	"strings"
	"testing"

	"sidq/internal/obs"
)

func TestDiskGaugesTrackOpenLogs(t *testing.T) {
	baseBytes, baseSegs := sumLiveSegments()

	l, _, err := Open(t.TempDir(), Options{Fsync: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	b1, s1 := sumLiveSegments()
	if s1-baseSegs != 1 {
		t.Fatalf("fresh log segment delta = %v, want 1", s1-baseSegs)
	}
	// Roll a few segments: 8 records of ~100 bytes against a 256-byte
	// segment cap forces multiple seals.
	rec := bytes.Repeat([]byte{'x'}, 100)
	for i := 0; i < 8; i++ {
		if _, err := l.Append(1, rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	b2, s2 := sumLiveSegments()
	if s2-baseSegs < 3 {
		t.Fatalf("segment delta after rolls = %v, want >= 3", s2-baseSegs)
	}
	if b2 <= b1 || b2-baseBytes < 8*100 {
		t.Fatalf("disk bytes did not grow with appends: before=%v after=%v", b1, b2)
	}
	// The gauge must agree with the log's own Segments() accounting.
	var want float64
	for _, s := range l.Segments() {
		want += float64(s.Bytes)
	}
	if b2-baseBytes != want {
		t.Fatalf("gauge bytes delta = %v, Segments() sum = %v", b2-baseBytes, want)
	}

	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	b3, s3 := sumLiveSegments()
	if b3 != baseBytes || s3 != baseSegs {
		t.Fatalf("closed log still counted: bytes delta=%v segs delta=%v", b3-baseBytes, s3-baseSegs)
	}
	// Close is idempotent; a second Close must not double-deregister.
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestInstrumentToExposesDiskGauges(t *testing.T) {
	reg := obs.NewRegistry()
	InstrumentTo(reg)

	l, _, err := Open(t.TempDir(), Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("payload")); err != nil {
		t.Fatalf("append: %v", err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, fam := range []string{"sidq_store_disk_bytes", "sidq_store_segments"} {
		if !strings.Contains(expo, fam+" ") {
			t.Errorf("exposition missing %s:\n%s", fam, expo)
		}
	}
	// The scraped value must be live: this log is open with at least
	// one segment holding at least one record.
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "sidq_store_segments ") {
			if strings.TrimPrefix(line, "sidq_store_segments ") == "0" {
				t.Errorf("segments gauge is zero with an open log: %q", line)
			}
		}
	}
}
