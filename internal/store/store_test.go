package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sidq/internal/faults"
	"sidq/internal/store"
)

// collect replays the log into a slice.
func collect(t *testing.T, l *store.Log) []store.Record {
	t.Helper()
	var recs []store.Record
	if err := l.Replay(func(r store.Record) error {
		recs = append(recs, store.Record{Seq: r.Seq, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%97))))
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, mode := range []store.FsyncMode{store.FsyncAlways, store.FsyncBatch, store.FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			l, info, err := store.Open(t.TempDir(), store.Options{Fsync: mode, BatchInterval: time.Millisecond})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if info.Records != 0 || info.LastSeq != 0 {
				t.Fatalf("fresh log recovered %+v", info)
			}
			const n = 200
			for i := 0; i < n; i++ {
				seq, err := l.Append(byte(i%5), payload(i))
				if err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
				if seq != uint64(i+1) {
					t.Fatalf("append %d: seq %d", i, seq)
				}
			}
			recs := collect(t, l)
			if len(recs) != n {
				t.Fatalf("replayed %d records, want %d", len(recs), n)
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) || r.Type != byte(i%5) || !bytes.Equal(r.Payload, payload(i)) {
					t.Fatalf("record %d mismatch: %+v", i, r)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if _, err := l.Append(1, nil); !errors.Is(err, store.ErrClosed) {
				t.Fatalf("append after close: %v", err)
			}
		})
	}
}

func TestReopenContinuesSeq(t *testing.T) {
	dir := t.TempDir()
	l, _, err := store.Open(dir, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := store.Open(dir, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.LastSeq != 10 || info.Records != 10 || info.TornBytes != 0 {
		t.Fatalf("recovery info %+v", info)
	}
	seq, err := l2.Append(2, []byte("after"))
	if err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	recs := collect(t, l2)
	if len(recs) != 11 || recs[10].Seq != 11 || string(recs[10].Payload) != "after" {
		t.Fatalf("replay after reopen: %d records", len(recs))
	}
}

func TestSegmentRollAndManifest(t *testing.T) {
	dir := t.TempDir()
	l, _, err := store.Open(dir, store.Options{Fsync: store.FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 4 {
		t.Fatalf("expected several segments at 256-byte roll, got %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstSeq != segs[i-1].LastSeq+1 {
			t.Fatalf("segments not contiguous: %+v", segs)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: sealed segments come from the manifest, all records
	// survive, and appends continue.
	l2, info, err := store.Open(dir, store.Options{Fsync: store.FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.LastSeq != n {
		t.Fatalf("recovered LastSeq %d, want %d", info.LastSeq, n)
	}
	if got := len(collect(t, l2)); got != n {
		t.Fatalf("replayed %d, want %d", got, n)
	}
	// Recovery scans only the unsealed tail, not the sealed segments.
	if info.Records >= n {
		t.Fatalf("recovery scanned %d records; sealed segments should be skipped", info.Records)
	}
}

func TestSegmentAgeRoll(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l, _, err := store.Open(t.TempDir(), store.Options{
		Fsync: store.FsyncOff, SegmentAge: time.Minute, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if len(segs) != 2 {
		t.Fatalf("expected age roll to seal a segment, got %d segments", len(segs))
	}
}

func TestReadRangeSkipsAndFilters(t *testing.T) {
	l, _, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := l.ReadRange(17, 23, func(r store.Record) error {
		got = append(got, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || got[0] != 17 || got[6] != 23 {
		t.Fatalf("ReadRange returned %v", got)
	}
}

func TestTruncateFrontRetention(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	keep := segs[2].FirstSeq
	removed, err := l.TruncateFront(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments, want 2", removed)
	}
	var first uint64
	if err := l.Replay(func(r store.Record) error {
		if first == 0 {
			first = r.Seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != keep {
		t.Fatalf("replay starts at %d, want %d", first, keep)
	}
	if _, err := l.TruncateFront(keep); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Retention survives reopen.
	l2, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	first = 0
	if err := l2.Replay(func(r store.Record) error {
		if first == 0 {
			first = r.Seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != keep {
		t.Fatalf("after reopen replay starts at %d, want %d", first, keep)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	l, _, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(byte(w), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != workers*per {
		t.Fatalf("LastSeq %d, want %d", got, workers*per)
	}
	if l.DurableSeq() != l.LastSeq() {
		t.Fatalf("durable %d != last %d under FsyncAlways", l.DurableSeq(), l.LastSeq())
	}
	recs := collect(t, l)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d", len(recs))
	}
	// Per-writer record order must be preserved even under contention.
	lastPer := map[byte]int{}
	for _, r := range recs {
		var w, i int
		if _, err := fmt.Sscanf(string(r.Payload), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad payload %q", r.Payload)
		}
		if last, ok := lastPer[r.Type]; ok && i != last+1 {
			t.Fatalf("writer %d order broken: %d after %d", w, i, last)
		}
		lastPer[r.Type] = i
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncErrorPoisonsLog(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("ok")); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	fs.FailFsyncAfter(0)
	if _, err := l.Append(1, []byte("doomed")); !errors.Is(err, faults.ErrInjectedFsync) {
		t.Fatalf("append during fsync failure: %v", err)
	}
	// The failure is sticky: later appends fail too, even though the
	// write itself would succeed — the log will not lie about
	// durability after an fsync error.
	if _, err := l.Append(1, []byte("also doomed")); err == nil {
		t.Fatal("append after fsync failure succeeded")
	}
}

func TestShortWritePoisonsLog(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, bytes.Repeat([]byte{'a'}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // make the first record durable before arming the fault
		t.Fatal(err)
	}
	fs.FailWriteAfter(10, 3)
	// The bufio buffer absorbs small writes; force enough volume to hit
	// the armed budget, then expect the sticky failure.
	var sawErr bool
	for i := 0; i < 2000 && !sawErr; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte{'b'}, 64)); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("short write never surfaced")
	}
	if _, err := l.Append(1, []byte("after")); err == nil {
		t.Fatal("append after short write succeeded")
	}
	// Recovery over the crashed image still yields a verifiable prefix.
	img := fs.Crash(1, false)
	l2, info, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncOff})
	if err != nil {
		t.Fatalf("recovery after short write: %v", err)
	}
	defer l2.Close()
	if info.LastSeq < 1 {
		t.Fatalf("first record lost: %+v", info)
	}
}

func TestVerifyCleanAndTorn(t *testing.T) {
	fs := faults.NewCrashFS()
	l, _, err := store.Open("wal", store.Options{FS: fs, Fsync: store.FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := store.Verify("wal", fs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify problems on clean log: %v", rep.Problems)
	}
	if rep.LastSeq != 40 {
		t.Fatalf("verify LastSeq %d, want 40", rep.LastSeq)
	}
	// Keep writing, then crash with a torn tail: Verify must report the
	// tear but still find the durable prefix, without modifying
	// anything.
	for i := 40; i < 50; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	img := fs.Crash(7, true)
	rep1, err := store.Verify("wal", img)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := store.Verify("wal", img)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.LastSeq != rep2.LastSeq || rep1.TornBytes != rep2.TornBytes {
		t.Fatalf("verify not read-only: %+v vs %+v", rep1, rep2)
	}
	// Recovery agrees with Verify's prediction.
	l2, info, err := store.Open("wal", store.Options{FS: img, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.LastSeq != rep1.LastSeq {
		t.Fatalf("recovery LastSeq %d, verify predicted %d", info.LastSeq, rep1.LastSeq)
	}
}

// TestConcurrentAppendRollNoDeadlock races group-commit fsyncs against
// segment rolls. syncNow's roll-staleness check must never reacquire
// the log mutex while holding fsyncMu (rollLocked takes them in the
// opposite order); before that check went lock-free via the segment
// generation counter, this test wedged every appender.
func TestConcurrentAppendRollNoDeadlock(t *testing.T) {
	for _, mode := range []store.FsyncMode{store.FsyncAlways, store.FsyncBatch} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := faults.NewCrashFS()
			l, _, err := store.Open("wal", store.Options{
				FS: fs, Fsync: mode, SegmentBytes: 64, BatchInterval: 100 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			const writers, per = 4, 150
			done := make(chan error, writers)
			for w := 0; w < writers; w++ {
				go func(w int) {
					for i := 0; i < per; i++ {
						if _, err := l.Append(1, payload(w*per+i)); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(w)
			}
			timeout := time.After(30 * time.Second)
			for w := 0; w < writers; w++ {
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("append: %v", err)
					}
				case <-timeout:
					t.Fatal("appenders wedged: fsync vs segment-roll deadlock")
				}
			}
			if got := len(collect(t, l)); got != writers*per {
				t.Fatalf("replayed %d records, want %d", got, writers*per)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// hookFS wraps an FS and, while armed, runs fn before the next Open.
// It deterministically lands writes inside ReadRange's window between
// the sealed-list copy and the active-segment snapshot.
type hookFS struct {
	store.FS
	mu    sync.Mutex
	armed bool
	fn    func()
}

func (h *hookFS) Open(name string) (store.File, error) {
	h.mu.Lock()
	fn := h.fn
	if h.armed {
		h.armed = false
	} else {
		fn = nil
	}
	h.mu.Unlock()
	if fn != nil {
		fn()
	}
	return h.FS.Open(name)
}

// TestReadRangeSealDuringRead: a segment sealed after ReadRange copied
// the sealed list but before it snapshotted the active segment is in
// neither view; its records must still be emitted, not silently
// dropped from the range.
func TestReadRangeSealDuringRead(t *testing.T) {
	h := &hookFS{FS: faults.NewCrashFS()}
	l, _, err := store.Open("wal", store.Options{FS: h, Fsync: store.FsyncOff, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// SegmentBytes 1: each Append first seals the previous record's
	// segment, so every record gets its own segment.
	for i := 1; i <= 2; i++ {
		if _, err := l.Append(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fires when ReadRange opens the first sealed segment — after the
	// sealed-list copy: appends seal the then-active segment (record 2)
	// and record 3's, leaving record 4 active.
	h.fn = func() {
		for i := 3; i <= 4; i++ {
			if _, err := l.Append(1, payload(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	h.mu.Lock()
	h.armed = true
	h.mu.Unlock()
	var seqs []uint64
	if err := l.ReadRange(1, 100, func(r store.Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("read %v, want seqs 1..4 (mid-read seal dropped records)", seqs)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("read %v out of order", seqs)
		}
	}
}
