package store

// Store observability, mirroring the stream/roadnet pattern: package-
// level gated atomics for process-wide totals (one atomic bool load
// when unobserved), plus a cached histogram pointer for fsync latency
// so the group-commit path never does a registry lookup.

import (
	"sync"
	"sync/atomic"
	"time"

	"sidq/internal/obs"
)

var pkgObs struct {
	enabled atomic.Bool

	appends     atomic.Uint64 // records appended
	appendBytes atomic.Uint64 // payload bytes appended
	fsyncs      atomic.Uint64 // fsyncs issued
	fsyncErrs   atomic.Uint64 // fsyncs that failed (each poisons a log)
	seals       atomic.Uint64 // segments sealed into the manifest
	removed     atomic.Uint64 // sealed segments dropped by TruncateFront
	recoveries  atomic.Uint64 // Open recoveries performed
	recovered   atomic.Uint64 // records scanned by recoveries
	torn        atomic.Uint64 // torn tails truncated
	replays     atomic.Uint64 // Replay passes started
}

var fsyncHist atomic.Pointer[obs.Histogram]

// liveLogs tracks every open Log so the disk-footprint gauges can sum
// over them at scrape time. Registration is unconditional (not gated
// on pkgObs.enabled): a map insert per Open/Close is noise next to the
// file creation they bracket, and it means logs opened before
// InstrumentTo still show up in the gauges.
var liveLogs struct {
	mu   sync.Mutex
	logs map[*Log]struct{}
}

func registerLog(l *Log) {
	liveLogs.mu.Lock()
	if liveLogs.logs == nil {
		liveLogs.logs = make(map[*Log]struct{})
	}
	liveLogs.logs[l] = struct{}{}
	liveLogs.mu.Unlock()
}

func deregisterLog(l *Log) {
	liveLogs.mu.Lock()
	delete(liveLogs.logs, l)
	liveLogs.mu.Unlock()
}

// sumLiveSegments walks every open log's Segments() snapshot. Called
// only from registry scrapes, so taking each log's mutex briefly is
// fine; lock order is liveLogs.mu -> l.mu, and nothing under l.mu ever
// touches liveLogs.mu.
func sumLiveSegments() (bytes, segments float64) {
	liveLogs.mu.Lock()
	defer liveLogs.mu.Unlock()
	for l := range liveLogs.logs {
		for _, s := range l.Segments() {
			bytes += float64(s.Bytes)
			segments++
		}
	}
	return bytes, segments
}

// minLiveFirstSeq is the lowest retained seq across open logs — the
// oldest record still answerable from disk. 0 when no log is open.
func minLiveFirstSeq() float64 {
	liveLogs.mu.Lock()
	defer liveLogs.mu.Unlock()
	var min uint64
	for l := range liveLogs.logs {
		if first := l.FirstSeq(); min == 0 || first < min {
			min = first
		}
	}
	return float64(min)
}

func obsAppend(payloadBytes int) {
	if pkgObs.enabled.Load() {
		pkgObs.appends.Add(1)
		pkgObs.appendBytes.Add(uint64(payloadBytes))
	}
}

func obsFsync(d time.Duration, err error) {
	if !pkgObs.enabled.Load() {
		return
	}
	pkgObs.fsyncs.Add(1)
	if err != nil {
		pkgObs.fsyncErrs.Add(1)
		return
	}
	if h := fsyncHist.Load(); h != nil {
		h.Observe(d.Nanoseconds())
	}
}

func obsSeal() {
	if pkgObs.enabled.Load() {
		pkgObs.seals.Add(1)
	}
}

func obsRemoveSegments(n int) {
	if pkgObs.enabled.Load() {
		pkgObs.removed.Add(uint64(n))
	}
}

func obsRecovery(info *RecoveryInfo) {
	if pkgObs.enabled.Load() {
		pkgObs.recoveries.Add(1)
		pkgObs.recovered.Add(uint64(info.Records))
	}
}

func obsTornTruncation() {
	if pkgObs.enabled.Load() {
		pkgObs.torn.Add(1)
	}
}

func obsReplay() {
	if pkgObs.enabled.Load() {
		pkgObs.replays.Add(1)
	}
}

// InstrumentTo enables process-wide store aggregation and registers
// the sidq_store_* families in reg. Totals cover every Log in the
// process from the first call on.
func InstrumentTo(reg *obs.Registry) {
	pkgObs.enabled.Store(true)
	reg.Help("sidq_store_appends_total", "Records appended to durable logs.")
	reg.Help("sidq_store_append_bytes_total", "Record payload bytes appended to durable logs.")
	reg.Help("sidq_store_fsyncs_total", "Fsyncs issued by durable logs (group commit shares them).")
	reg.Help("sidq_store_fsync_errors_total", "Fsyncs that failed; each poisons its log.")
	reg.Help("sidq_store_fsync_ns", "Fsync latency in nanoseconds.")
	reg.Help("sidq_store_segments_sealed_total", "Segments sealed into manifests.")
	reg.Help("sidq_store_segments_removed_total", "Sealed segments dropped by retention (TruncateFront).")
	reg.Help("sidq_store_recoveries_total", "Crash recoveries performed by Open.")
	reg.Help("sidq_store_recovered_records_total", "Records scanned from unsealed segments during recovery.")
	reg.Help("sidq_store_torn_truncations_total", "Torn tails truncated during recovery.")
	reg.Help("sidq_store_replays_total", "Full Replay passes started.")
	reg.Help("sidq_store_disk_bytes", "Bytes held by open durable logs (sealed segments plus active, including buffered writes).")
	reg.Help("sidq_store_segments", "Segment count across open durable logs (sealed plus active).")
	reg.Help("sidq_store_retained_seq", "Lowest WAL seq still on disk across open durable logs (the retention floor).")
	counter := func(name string, v *atomic.Uint64) {
		reg.Func(name, obs.FuncCounter, func() float64 { return float64(v.Load()) })
	}
	counter("sidq_store_appends_total", &pkgObs.appends)
	counter("sidq_store_append_bytes_total", &pkgObs.appendBytes)
	counter("sidq_store_fsyncs_total", &pkgObs.fsyncs)
	counter("sidq_store_fsync_errors_total", &pkgObs.fsyncErrs)
	counter("sidq_store_segments_sealed_total", &pkgObs.seals)
	counter("sidq_store_segments_removed_total", &pkgObs.removed)
	counter("sidq_store_recoveries_total", &pkgObs.recoveries)
	counter("sidq_store_recovered_records_total", &pkgObs.recovered)
	counter("sidq_store_torn_truncations_total", &pkgObs.torn)
	counter("sidq_store_replays_total", &pkgObs.replays)
	reg.Func("sidq_store_disk_bytes", obs.FuncGauge, func() float64 {
		bytes, _ := sumLiveSegments()
		return bytes
	})
	reg.Func("sidq_store_segments", obs.FuncGauge, func() float64 {
		_, segs := sumLiveSegments()
		return segs
	})
	reg.Func("sidq_store_retained_seq", obs.FuncGauge, minLiveFirstSeq)
	fsyncHist.Store(reg.Histogram("sidq_store_fsync_ns"))
}
