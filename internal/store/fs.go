package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the directory abstraction the log writes through. It exists so
// fault-injection harnesses (internal/faults) can interpose short
// writes, fsync failures, and crash images between the log and the
// disk; production code uses OSFS. All paths are slash-joined under
// the log's root directory.
type FS interface {
	// MkdirAll creates the directory (and parents) if absent.
	MkdirAll(dir string) error
	// Create opens a new read-write file, truncating any existing one.
	Create(name string) (File, error)
	// Open opens an existing file for read-write access without
	// truncation (the recovery path reopens the active segment through
	// it, then seeks to the durable end).
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) in dir, in any order.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// within it durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the log needs: sequential writes,
// random reads, fsync, and truncation (recovery cuts torn tails in
// place).
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR, 0o644)
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS. Directory fsync makes the entries themselves
// (a freshly created segment, a renamed manifest) durable; on
// platforms where directories cannot be fsynced the error is
// surfaced, not swallowed — the caller decides.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
