package distrib

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sidq/internal/geo"
)

func TestGridPartitionerCoversAndClamps(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	p := NewGridPartitioner(bounds, 4, 4)
	if p.NumPartitions() != 16 {
		t.Fatalf("partitions = %d", p.NumPartitions())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		pt := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		part := p.Partition(pt)
		if part < 0 || part >= 16 {
			t.Fatalf("partition out of range: %d", part)
		}
		if !p.CellRect(part).Contains(pt) {
			t.Fatalf("point %v not in cell %d rect %v", pt, part, p.CellRect(part))
		}
	}
	// Outside points clamp.
	if got := p.Partition(geo.Pt(-50, -50)); got != 0 {
		t.Fatalf("clamp low = %d", got)
	}
	if got := p.Partition(geo.Pt(500, 500)); got != 15 {
		t.Fatalf("clamp high = %d", got)
	}
}

func TestGridPartitionerLocality(t *testing.T) {
	p := NewGridPartitioner(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}, 10, 10)
	a := p.Partition(geo.Pt(5, 5))
	b := p.Partition(geo.Pt(6, 6))
	if a != b {
		t.Fatal("nearby points should share a cell")
	}
}

func TestHashPartitionerBalanceUnderSkew(t *testing.T) {
	// All points in one tiny hot spot: grid concentrates them in one
	// partition; hash (with fine quantization) spreads them.
	grid := NewGridPartitioner(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 4, 4)
	hash := NewHashPartitioner(16, 0.5)
	rng := rand.New(rand.NewSource(2))
	gridCounts := make([]int, 16)
	hashCounts := make([]int, 16)
	for i := 0; i < 4000; i++ {
		pt := geo.Pt(rng.Float64()*30, rng.Float64()*30) // hot corner
		gridCounts[grid.Partition(pt)]++
		hashCounts[hash.Partition(pt)]++
	}
	gmax, hmax := 0, 0
	for i := 0; i < 16; i++ {
		if gridCounts[i] > gmax {
			gmax = gridCounts[i]
		}
		if hashCounts[i] > hmax {
			hmax = hashCounts[i]
		}
	}
	if gmax != 4000 {
		t.Fatalf("grid should concentrate skew, max = %d", gmax)
	}
	if hmax > 1000 {
		t.Fatalf("hash failed to spread skew, max = %d", hmax)
	}
}

func TestHashPartitionerDeterministic(t *testing.T) {
	h := NewHashPartitioner(8, 1)
	pt := geo.Pt(123.4, 567.8)
	if h.Partition(pt) != h.Partition(pt) {
		t.Fatal("hash partition not deterministic")
	}
}

func TestExecutorRunsAllTasks(t *testing.T) {
	e := NewExecutor(4, 16)
	var count int64
	var wg sync.WaitGroup
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		i := i
		if err := e.Submit(i, func() {
			atomic.AddInt64(&count, 1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	e.Close()
	if count != 1000 {
		t.Fatalf("ran %d tasks", count)
	}
	var total int64
	for _, c := range e.Counts() {
		total += c
	}
	if total != 1000 {
		t.Fatalf("counts total %d", total)
	}
	if im := e.Imbalance(); im < 0.99 || im > 1.5 {
		t.Fatalf("round-robin partitions should balance, imbalance = %v", im)
	}
}

func TestExecutorPartitionAffinitySerializes(t *testing.T) {
	// Tasks on the same partition must run in order on one goroutine:
	// an unsynchronized counter must end exactly at N.
	e := NewExecutor(8, 32)
	counter := 0
	var wg sync.WaitGroup
	const n = 2000
	for i := 0; i < n; i++ {
		wg.Add(1)
		if err := e.Submit(7, func() {
			counter++ // safe only if same-partition tasks serialize
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	e.Close()
	if counter != n {
		t.Fatalf("counter = %d, want %d (affinity broken)", counter, n)
	}
}

func TestExecutorCloseIdempotentAndRejects(t *testing.T) {
	e := NewExecutor(2, 4)
	e.Close()
	e.Close() // must not panic
	if err := e.Submit(0, func() {}); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestExecutorImbalanceEmpty(t *testing.T) {
	e := NewExecutor(3, 4)
	defer e.Close()
	if e.Imbalance() != 0 {
		t.Fatal("empty imbalance should be 0")
	}
	if e.NumWorkers() != 3 {
		t.Fatalf("workers = %d", e.NumWorkers())
	}
}

func TestExecutorNegativePartition(t *testing.T) {
	e := NewExecutor(2, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	if err := e.Submit(-5, func() { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.Close()
}
