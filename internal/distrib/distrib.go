// Package distrib provides the distributed-computing substrate used by
// sidq's scalable query experiments: spatial partitioners that map
// points to partitions, and a goroutine-backed partitioned executor
// with per-worker load accounting. It reproduces the *shape* of the
// distributed spatial-processing systems the paper surveys (throughput
// scaling with workers, skew-induced imbalance) on a single machine.
package distrib

import (
	"errors"
	"hash/fnv"
	"sync"

	"sidq/internal/geo"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("distrib: executor closed")

// Partitioner maps a spatial point to a partition in [0, N).
type Partitioner interface {
	Partition(p geo.Point) int
	NumPartitions() int
}

// GridPartitioner tiles a fixed extent into nx x ny cells; each cell is
// a partition. Points outside the extent clamp to border cells. Spatial
// locality is preserved, which helps range queries but concentrates
// skewed data.
type GridPartitioner struct {
	bounds geo.Rect
	nx, ny int
}

// NewGridPartitioner returns a grid partitioner over bounds.
func NewGridPartitioner(bounds geo.Rect, nx, ny int) *GridPartitioner {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if bounds.IsEmpty() || bounds.Area() == 0 {
		bounds = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
	}
	return &GridPartitioner{bounds: bounds, nx: nx, ny: ny}
}

// Partition implements Partitioner.
func (g *GridPartitioner) Partition(p geo.Point) int {
	cx := int(float64(g.nx) * (p.X - g.bounds.Min.X) / g.bounds.Width())
	cy := int(float64(g.ny) * (p.Y - g.bounds.Min.Y) / g.bounds.Height())
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// NumPartitions implements Partitioner.
func (g *GridPartitioner) NumPartitions() int { return g.nx * g.ny }

// CellRect returns the spatial extent of partition i.
func (g *GridPartitioner) CellRect(i int) geo.Rect {
	cx, cy := i%g.nx, i/g.nx
	w, h := g.bounds.Width()/float64(g.nx), g.bounds.Height()/float64(g.ny)
	min := geo.Pt(g.bounds.Min.X+float64(cx)*w, g.bounds.Min.Y+float64(cy)*h)
	return geo.Rect{Min: min, Max: min.Add(geo.Pt(w, h))}
}

// HashPartitioner spreads points over n partitions by hashing
// quantized coordinates. It destroys locality but balances skew.
type HashPartitioner struct {
	n     int
	quant float64
}

// NewHashPartitioner returns a hash partitioner with n partitions;
// coordinates are quantized to quant meters before hashing (default 1).
func NewHashPartitioner(n int, quant float64) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	if quant <= 0 {
		quant = 1
	}
	return &HashPartitioner{n: n, quant: quant}
}

// Partition implements Partitioner.
func (h *HashPartitioner) Partition(p geo.Point) int {
	hash := fnv.New64a()
	var buf [16]byte
	qx := int64(p.X / h.quant)
	qy := int64(p.Y / h.quant)
	for i := 0; i < 8; i++ {
		buf[i] = byte(qx >> (8 * i))
		buf[8+i] = byte(qy >> (8 * i))
	}
	hash.Write(buf[:])
	return int(hash.Sum64() % uint64(h.n))
}

// NumPartitions implements Partitioner.
func (h *HashPartitioner) NumPartitions() int { return h.n }

// Executor runs tasks on a fixed pool of workers. Tasks submitted for
// the same partition run on the same worker in submission order, which
// gives partitioned state single-writer semantics without locks.
type Executor struct {
	workers []chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	counts  []int64
	closed  bool
}

// NewExecutor starts an executor with n workers (min 1) and the given
// per-worker queue depth.
func NewExecutor(n, queueDepth int) *Executor {
	if n < 1 {
		n = 1
	}
	if queueDepth < 1 {
		queueDepth = 64
	}
	e := &Executor{
		workers: make([]chan func(), n),
		counts:  make([]int64, n),
	}
	for i := range e.workers {
		ch := make(chan func(), queueDepth)
		e.workers[i] = ch
		e.wg.Add(1)
		go func(i int, ch chan func()) {
			defer e.wg.Done()
			for task := range ch {
				task()
				e.mu.Lock()
				e.counts[i]++
				e.mu.Unlock()
			}
		}(i, ch)
	}
	return e
}

// NumWorkers returns the pool size.
func (e *Executor) NumWorkers() int { return len(e.workers) }

// Submit enqueues a task for the worker owning the given partition.
func (e *Executor) Submit(partition int, task func()) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if partition < 0 {
		partition = -partition
	}
	e.workers[partition%len(e.workers)] <- task
	return nil
}

// Close stops accepting tasks, drains the queues, and waits for all
// workers to exit. It is idempotent.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, ch := range e.workers {
		close(ch)
	}
	e.wg.Wait()
}

// Counts returns a copy of the per-worker completed-task counts.
func (e *Executor) Counts() []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int64(nil), e.counts...)
}

// Imbalance returns max/mean of the per-worker task counts (1.0 is a
// perfectly balanced pool; 0 if nothing ran).
func (e *Executor) Imbalance() float64 {
	counts := e.Counts()
	var sum, max int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}
