// Package stats provides the statistical building blocks shared by the
// sidq quality-management and exploitation packages: descriptive
// statistics, robust estimators, online (streaming) accumulators,
// Gaussian density helpers, and a tiny dense-matrix type sized for
// Kalman filtering.
//
// Everything in this package is deterministic given the caller's
// *rand.Rand; no package-level randomness is used.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMS returns the root mean square of xs, or 0 for empty input.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MedianInPlace returns the median of xs, sorting xs itself instead of
// a copy — the allocation-free variant for hot loops that own a
// scratch buffer.
func MedianInPlace(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sort.Float64s(xs)
	return quantileSorted(xs, 0.5), nil
}

// MAD returns the median absolute deviation of xs, scaled by 1.4826 so
// that it estimates the standard deviation for Gaussian data.
func MAD(xs []float64) (float64, error) {
	med, err := Median(xs)
	if err != nil {
		return 0, err
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	m, err := Median(dev)
	if err != nil {
		return 0, err
	}
	return 1.4826 * m, nil
}

// Covariance returns the unbiased sample covariance of xs and ys, which
// must have equal length (0 if len < 2).
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation of xs and ys, or 0 when
// either series is constant.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// NormalPDF returns the density of N(mu, sigma^2) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns the cumulative distribution of N(mu, sigma^2) at x.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// LogNormalPDF returns log(NormalPDF(x, mu, sigma)) computed stably.
func LogNormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// Online accumulates streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples folded in.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running unbiased variance (0 if n < 2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum seen (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the maximum seen (0 if empty).
func (o *Online) Max() float64 { return o.max }

// Histogram is a fixed-range equi-width histogram.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
	under  int
	over   int
}

// NewHistogram returns a histogram over [lo, hi) with n bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		n = 1
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, n)}
}

// Add records x. Values outside [lo, hi) are counted as under/overflow.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.counts) { // guard FP edge
			i--
		}
		h.counts[i]++
	}
}

// Total returns the total number of samples added, including overflow.
func (h *Histogram) Total() int { return h.total }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int { return append([]int(nil), h.counts...) }

// Entropy returns the Shannon entropy (nats) of the in-range bin
// distribution; 0 for an empty histogram.
func (h *Histogram) Entropy() float64 {
	in := h.total - h.under - h.over
	if in == 0 {
		return 0
	}
	var e float64
	for _, c := range h.counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(in)
		e -= p * math.Log(p)
	}
	return e
}
