package stats

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a matrix inverse does not exist.
var ErrSingular = errors.New("stats: singular matrix")

// Matrix is a small dense row-major matrix. It is sized for the state
// dimensions used in Kalman filtering (typically 2x2 or 4x4) and favors
// clarity over asymptotic performance.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom returns a rows x cols matrix initialized from vals in
// row-major order. It panics if len(vals) != rows*cols, which indicates
// a programming error at the call site.
func MatrixFrom(rows, cols int, vals ...float64) *Matrix {
	if len(vals) != rows*cols {
		panic(fmt.Sprintf("stats: MatrixFrom %dx%d needs %d values, got %d",
			rows, cols, rows*cols, len(vals)))
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, vals)
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) *Matrix {
	mustSameShape(m, n)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	mustSameShape(m, n)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// Mul returns the matrix product m * n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("stats: Mul shape mismatch %dx%d * %dx%d",
			m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// CopyFrom overwrites m's elements with n's. Shapes must match.
func (m *Matrix) CopyFrom(n *Matrix) {
	mustSameShape(m, n)
	copy(m.Data, n.Data)
}

// AddInto stores a + b into out (which may alias a or b) and returns
// out. All three must share a shape.
func AddInto(out, a, b *Matrix) *Matrix {
	mustSameShape(a, b)
	mustSameShape(out, a)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// SubInto stores a - b into out (which may alias a or b) and returns
// out. All three must share a shape.
func SubInto(out, a, b *Matrix) *Matrix {
	mustSameShape(a, b)
	mustSameShape(out, a)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// MulInto stores the product a * b into out and returns out. out must
// not alias a or b and must be shaped a.Rows x b.Cols. The
// accumulation order matches Mul exactly, so results are bit-identical
// to the allocating variant.
func MulInto(out, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("stats: MulInto shape mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("stats: MulInto out is %dx%d, want %dx%d",
			out.Rows, out.Cols, a.Rows, b.Cols))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += v * b.At(k, j)
			}
		}
	}
	return out
}

// TransposeInto stores the transpose of m into out (which must not
// alias m) and returns out.
func TransposeInto(out, m *Matrix) *Matrix {
	if out.Rows != m.Cols || out.Cols != m.Rows {
		panic(fmt.Sprintf("stats: TransposeInto out is %dx%d, want %dx%d",
			out.Rows, out.Cols, m.Cols, m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// IdentityInto overwrites the square matrix m with the identity.
func IdentityInto(m *Matrix) *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ScaleBy returns m with every element multiplied by s.
func (m *Matrix) ScaleBy(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] * s
	}
	return out
}

// Transpose returns m transposed.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a.At(r, col)) > abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		if abs(a.At(pivot, col)) < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		pv := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/pv)
			inv.Set(col, j, inv.At(col, j)/pv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// InverseInto computes the inverse of the square matrix m into out,
// using scratch as elimination workspace. out, m, and scratch must be
// three distinct matrices of the same square shape. The elimination
// is identical to Inverse, so results are bit-identical.
func InverseInto(out, m, scratch *Matrix) error {
	if m.Rows != m.Cols {
		return fmt.Errorf("stats: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := scratch
	a.CopyFrom(m)
	inv := IdentityInto(out)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a.At(r, col)) > abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		if abs(a.At(pivot, col)) < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		pv := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/pv)
			inv.Set(col, j, inv.At(col, j)/pv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return nil
}

func swapRows(m *Matrix, a, b int) {
	for j := 0; j < m.Cols; j++ {
		m.Data[a*m.Cols+j], m.Data[b*m.Cols+j] = m.Data[b*m.Cols+j], m.Data[a*m.Cols+j]
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mustSameShape(m, n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("stats: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, n.Rows, n.Cols))
	}
}
