package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	almost(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/short inputs should yield 0")
	}
}

func TestRMS(t *testing.T) {
	almost(t, RMS([]float64{3, 4}), math.Sqrt(12.5), 1e-12, "rms")
	if RMS(nil) != 0 {
		t.Fatal("empty RMS")
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, got, tc.want, 1e-12, "quantile")
	}
	med, err := Median([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, med, 2.5, 1e-12, "even median")
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestMADGaussianConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	mad, err := MAD(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled MAD should estimate sigma = 3 for Gaussian data.
	almost(t, mad, 3, 0.15, "MAD sigma estimate")
}

func TestMADRobustToOutliers(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.05, 0.95, 1000}
	mad, err := MAD(xs)
	if err != nil {
		t.Fatal(err)
	}
	if mad > 1 {
		t.Fatalf("MAD %v not robust to outlier", mad)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	almost(t, Correlation(xs, ys), 1, 1e-12, "perfect correlation")
	neg := []float64{8, 6, 4, 2}
	almost(t, Correlation(xs, neg), -1, 1e-12, "perfect anticorrelation")
	if Correlation(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series correlation should be 0")
	}
}

func TestNormalPDFandCDF(t *testing.T) {
	almost(t, NormalPDF(0, 0, 1), 1/math.Sqrt(2*math.Pi), 1e-12, "pdf peak")
	almost(t, NormalCDF(0, 0, 1), 0.5, 1e-12, "cdf median")
	almost(t, NormalCDF(1.96, 0, 1), 0.975, 1e-3, "cdf 97.5")
	if NormalPDF(1, 0, 0) != 0 {
		t.Fatal("zero sigma pdf")
	}
	if NormalCDF(-1, 0, 0) != 0 || NormalCDF(1, 0, 0) != 1 {
		t.Fatal("zero sigma cdf should be a step")
	}
	almost(t, LogNormalPDF(0.3, 0, 1), math.Log(NormalPDF(0.3, 0, 1)), 1e-9, "log pdf")
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 500)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + 3
		o.Add(xs[i])
	}
	almost(t, o.Mean(), Mean(xs), 1e-9, "online mean")
	almost(t, o.Variance(), Variance(xs), 1e-9, "online variance")
	if o.N() != 500 {
		t.Fatalf("N = %d", o.N())
	}
	if o.Min() > o.Max() {
		t.Fatal("min > max")
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Fatal("zero value not zeroed")
	}
	o.Add(7)
	if o.Mean() != 7 || o.Variance() != 0 || o.Min() != 7 || o.Max() != 7 {
		t.Fatal("single sample stats wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.99, -1, 10, 15} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	counts := h.Counts()
	if counts[0] != 3 { // 0, 1, 2.5 fall in [0,2) and [2,4): 0,1 in bin0; 2.5 bin1
		// recompute: bin width 2; 0->0, 1->0, 2.5->1, 5->2, 9.99->4
		t.Logf("counts = %v", counts)
	}
	want := []int{2, 1, 1, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Entropy() <= 0 {
		t.Fatal("entropy should be positive for spread data")
	}
	empty := NewHistogram(0, 1, 4)
	if empty.Entropy() != 0 {
		t.Fatal("empty entropy")
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid, should self-correct
	h.Add(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram dropped sample")
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	m := MatrixFrom(2, 2, 1, 2, 3, 4)
	id := Identity(2)
	got := m.Mul(id)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("M*I != M: %v", got.Data)
		}
	}
}

func TestMatrixInverse(t *testing.T) {
	m := MatrixFrom(2, 2, 4, 7, 2, 6)
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			almost(t, prod.At(i, j), want, 1e-9, "M*M^-1")
		}
	}
}

func TestMatrixInverseSingular(t *testing.T) {
	m := MatrixFrom(2, 2, 1, 2, 2, 4)
	if _, err := m.Inverse(); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	rect := NewMatrix(2, 3)
	if _, err := rect.Inverse(); err == nil {
		t.Fatal("non-square inverse should error")
	}
}

func TestMatrixInverseRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + trial%3
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		// Make diagonally dominant so it is well-conditioned.
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+float64(n)*3)
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := m.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				almost(t, prod.At(i, j), want, 1e-8, "random inverse")
			}
		}
	}
}

func TestMatrixTransposeAddSubScale(t *testing.T) {
	m := MatrixFrom(2, 3, 1, 2, 3, 4, 5, 6)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
	s := m.Add(m).Sub(m)
	for i := range m.Data {
		if s.Data[i] != m.Data[i] {
			t.Fatal("add/sub roundtrip")
		}
	}
	sc := m.ScaleBy(2)
	if sc.At(1, 2) != 12 {
		t.Fatal("scale")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1, _ := Quantile(xs, 0.25)
		q2, _ := Quantile(xs, 0.5)
		q3, _ := Quantile(xs, 0.75)
		return q1 <= q2 && q2 <= q3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
