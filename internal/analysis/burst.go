package analysis

import (
	"math"
	"sort"

	"sidq/internal/geo"
)

// BurstDetector finds bursty regions over a stream of spatial events
// (the continuous bursty-region detection task the paper surveys under
// stream computing): the space is gridded, events are counted in
// tumbling windows, and a cell is bursty in a window when its count
// exceeds its own historical mean by more than Threshold standard
// deviations (with a minimum absolute count to suppress cold-cell
// noise).
type BurstDetector struct {
	bounds    geo.Rect
	nx, ny    int
	window    float64
	threshold float64
	minCount  int

	curWindow int64
	cur       map[int]int
	// Per-cell historical statistics over closed windows.
	n       map[int]int
	mean    map[int]float64
	m2      map[int]float64
	started bool
}

// Burst is one detected bursty cell-window.
type Burst struct {
	Cell        geo.Rect
	WindowStart float64
	Count       int
	Expected    float64
}

// NewBurstDetector returns a detector over bounds with an nx x ny grid,
// tumbling windows of the given width (seconds), a z-score threshold,
// and a minimum count.
func NewBurstDetector(bounds geo.Rect, nx, ny int, window, threshold float64, minCount int) *BurstDetector {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if window <= 0 {
		window = 60
	}
	if threshold <= 0 {
		threshold = 3
	}
	if minCount < 1 {
		minCount = 1
	}
	return &BurstDetector{
		bounds: bounds, nx: nx, ny: ny,
		window: window, threshold: threshold, minCount: minCount,
		cur:  map[int]int{},
		n:    map[int]int{},
		mean: map[int]float64{},
		m2:   map[int]float64{},
	}
}

func (b *BurstDetector) cellOf(p geo.Point) int {
	cx := int(float64(b.nx) * (p.X - b.bounds.Min.X) / b.bounds.Width())
	cy := int(float64(b.ny) * (p.Y - b.bounds.Min.Y) / b.bounds.Height())
	if cx < 0 {
		cx = 0
	}
	if cx >= b.nx {
		cx = b.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= b.ny {
		cy = b.ny - 1
	}
	return cy*b.nx + cx
}

func (b *BurstDetector) cellRect(i int) geo.Rect {
	cx, cy := i%b.nx, i/b.nx
	w := b.bounds.Width() / float64(b.nx)
	h := b.bounds.Height() / float64(b.ny)
	min := geo.Pt(b.bounds.Min.X+float64(cx)*w, b.bounds.Min.Y+float64(cy)*h)
	return geo.Rect{Min: min, Max: min.Add(geo.Pt(w, h))}
}

// Push feeds an in-order event; it returns the bursts detected in any
// windows the event closed.
func (b *BurstDetector) Push(t float64, p geo.Point) []Burst {
	w := int64(math.Floor(t / b.window))
	var out []Burst
	if !b.started {
		b.started = true
		b.curWindow = w
	}
	for w > b.curWindow {
		out = append(out, b.closeWindow()...)
		b.curWindow++
	}
	b.cur[b.cellOf(p)]++
	return out
}

// Flush closes the active window and returns its bursts.
func (b *BurstDetector) Flush() []Burst {
	if !b.started {
		return nil
	}
	return b.closeWindow()
}

func (b *BurstDetector) closeWindow() []Burst {
	var out []Burst
	// Evaluate bursts against history BEFORE folding the window in.
	cells := make([]int, 0, len(b.cur))
	for c := range b.cur {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		count := b.cur[c]
		if n := b.n[c]; n >= 3 && count >= b.minCount {
			mean := b.mean[c]
			sd := math.Sqrt(b.m2[c] / float64(n-1))
			if sd < 1 {
				sd = 1
			}
			if float64(count) > mean+b.threshold*sd {
				out = append(out, Burst{
					Cell:        b.cellRect(c),
					WindowStart: float64(b.curWindow) * b.window,
					Count:       count,
					Expected:    mean,
				})
			}
		}
	}
	// Fold every tracked cell's (possibly zero) count into its history.
	seen := map[int]bool{}
	for c := range b.cur {
		seen[c] = true
	}
	for c := range b.n {
		seen[c] = true
	}
	for c := range seen {
		b.welford(c, float64(b.cur[c]))
	}
	b.cur = map[int]int{}
	return out
}

func (b *BurstDetector) welford(cell int, x float64) {
	b.n[cell]++
	d := x - b.mean[cell]
	b.mean[cell] += d / float64(b.n[cell])
	b.m2[cell] += d * (x - b.mean[cell])
}
