package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
	"sidq/internal/uquery"
)

// uncertainBlobs builds three well-separated clusters of uncertain
// objects plus scattered noise; returns objects and true labels.
func uncertainBlobs(sigma float64, seed int64) ([]uquery.UncertainObject, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := []geo.Point{{X: 100, Y: 100}, {X: 800, Y: 200}, {X: 400, Y: 800}}
	var objs []uquery.UncertainObject
	var labels []int
	id := 0
	for c, center := range centers {
		for i := 0; i < 40; i++ {
			mean := center.Add(geo.Pt(rng.NormFloat64()*25, rng.NormFloat64()*25))
			objs = append(objs, uquery.GaussianObject{
				ID: fmt.Sprintf("o%d", id), Mean: mean, Sigma: sigma,
			})
			labels = append(labels, c)
			id++
		}
	}
	for i := 0; i < 12; i++ {
		objs = append(objs, uquery.GaussianObject{
			ID:    fmt.Sprintf("n%d", i),
			Mean:  geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Sigma: sigma,
		})
		labels = append(labels, Noise)
		id++
	}
	return objs, labels
}

func TestUncertainDBSCANRecoversBlobs(t *testing.T) {
	objs, truth := uncertainBlobs(5, 1)
	labels := UncertainDBSCAN(objs, 60, 5)
	ari := AdjustedRandIndex(labels, truth)
	if ari < 0.8 {
		t.Fatalf("ARI = %v", ari)
	}
	// Three clusters found.
	clusters := map[int]bool{}
	for _, l := range labels {
		if l != Noise {
			clusters[l] = true
		}
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d", len(clusters))
	}
}

func TestUncertainDBSCANDegradesGracefullyWithUncertainty(t *testing.T) {
	objsLo, truth := uncertainBlobs(2, 2)
	objsHi, _ := uncertainBlobs(60, 2)
	ariLo := AdjustedRandIndex(UncertainDBSCAN(objsLo, 60, 5), truth)
	ariHi := AdjustedRandIndex(UncertainDBSCAN(objsHi, 60, 5), truth)
	if ariHi > ariLo {
		t.Fatalf("more uncertainty should not improve clustering: %v vs %v", ariHi, ariLo)
	}
}

func TestUncertainDBSCANDegenerate(t *testing.T) {
	if got := UncertainDBSCAN(nil, 10, 3); len(got) != 0 {
		t.Fatal("empty input")
	}
	objs, _ := uncertainBlobs(5, 3)
	labels := UncertainDBSCAN(objs, 0, 3)
	for _, l := range labels {
		if l != Noise {
			t.Fatal("eps=0 should yield all noise")
		}
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("self ARI = %v", got)
	}
	// Permuted labels are still a perfect match.
	b := []int{5, 5, 9, 9}
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("relabeled ARI = %v", got)
	}
	// Mismatched lengths.
	if AdjustedRandIndex(a, []int{0}) != 0 {
		t.Fatal("length mismatch")
	}
	// Random labels near zero.
	rng := rand.New(rand.NewSource(4))
	x := make([]int, 2000)
	y := make([]int, 2000)
	for i := range x {
		x[i] = rng.Intn(3)
		y[i] = rng.Intn(3)
	}
	if got := AdjustedRandIndex(x, y); math.Abs(got) > 0.05 {
		t.Fatalf("random ARI = %v", got)
	}
}

func TestStreamAnomalyDetector(t *testing.T) {
	// Normal driving at ~10 m/s with two injected teleports.
	var pts []trajectory.Point
	rng := rand.New(rand.NewSource(5))
	pos := geo.Pt(0, 0)
	for i := 0; i < 300; i++ {
		pos = pos.Add(geo.Pt(10+rng.NormFloat64(), rng.NormFloat64()))
		pts = append(pts, trajectory.Point{T: float64(i), Pos: pos})
	}
	tr := trajectory.New("t", pts)
	tr.Points[150].Pos = tr.Points[150].Pos.Add(geo.Pt(0, 500))
	tr.Points[250].Pos = tr.Points[250].Pos.Add(geo.Pt(400, 0))
	flags := DetectTrajectory(tr, 60, 5)
	if !flags[150] || !flags[250] {
		t.Fatalf("teleports not flagged: %v %v", flags[150], flags[250])
	}
	fp := 0
	for i, f := range flags {
		if f && i != 150 && i != 151 && i != 250 && i != 251 {
			fp++
		}
	}
	if fp > 6 {
		t.Fatalf("false positives = %d", fp)
	}
}

func TestStreamAnomalyNonMonotoneTime(t *testing.T) {
	d := NewStreamAnomalyDetector(60, 4)
	d.Push(trajectory.Point{T: 10, Pos: geo.Pt(0, 0)})
	if !d.Push(trajectory.Point{T: 5, Pos: geo.Pt(1, 0)}) {
		t.Fatal("time reversal should be anomalous")
	}
}

func TestFrequentPairs(t *testing.T) {
	// Sequences dominated by A->B with some uncertainty.
	mk := func(labels ...string) []ProbItem {
		out := make([]ProbItem, len(labels))
		for i, l := range labels {
			out[i] = ProbItem{{Label: l, Prob: 0.8}, {Label: "X", Prob: 0.2}}
		}
		return out
	}
	seqs := [][]ProbItem{
		mk("A", "B", "C"),
		mk("A", "B"),
		mk("A", "B", "C"),
		mk("D", "E"),
	}
	pats := FrequentPairs(seqs, 1.0)
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	if pats[0].Labels[0] != "A" || pats[0].Labels[1] != "B" {
		t.Fatalf("top pattern = %v", pats[0].Labels)
	}
	// Expected support of A->B: 3 occurrences * 0.8*0.8 = 1.92.
	if math.Abs(pats[0].ExpectedSupport-1.92) > 1e-9 {
		t.Fatalf("support = %v", pats[0].ExpectedSupport)
	}
	// Higher threshold filters.
	if len(FrequentPairs(seqs, 10)) != 0 {
		t.Fatal("threshold not applied")
	}
}

func TestExtendPatterns(t *testing.T) {
	mk := func(labels ...string) []ProbItem {
		out := make([]ProbItem, len(labels))
		for i, l := range labels {
			out[i] = ProbItem{{Label: l, Prob: 1}}
		}
		return out
	}
	seqs := [][]ProbItem{
		mk("A", "B", "C"),
		mk("A", "B", "C"),
		mk("A", "B", "D"),
	}
	pairs := FrequentPairs(seqs, 1.5)
	triples := ExtendPatterns(seqs, pairs, 1.5)
	if len(triples) != 1 {
		t.Fatalf("triples = %+v", triples)
	}
	want := []string{"A", "B", "C"}
	for i, l := range triples[0].Labels {
		if l != want[i] {
			t.Fatalf("triple = %v", triples[0].Labels)
		}
	}
	if math.Abs(triples[0].ExpectedSupport-2) > 1e-9 {
		t.Fatalf("support = %v", triples[0].ExpectedSupport)
	}
}

func TestPopularRouteRecoversDominantPath(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 8, NY: 8, Spacing: 100, Seed: 6})
	path, err := g.ShortestPath(0, roadnet.NodeID(g.NumNodes()-1))
	if err != nil {
		t.Fatal(err)
	}
	dominant := path.Edges
	rng := rand.New(rand.NewSource(7))
	var routes [][]roadnet.EdgeID
	for i := 0; i < 30; i++ {
		r := append([]roadnet.EdgeID(nil), dominant...)
		// Noise: drop a random prefix/suffix edge sometimes.
		if rng.Float64() < 0.3 && len(r) > 2 {
			r = r[1:]
		}
		if rng.Float64() < 0.3 && len(r) > 2 {
			r = r[:len(r)-1]
		}
		routes = append(routes, r)
	}
	// A few entirely different routes.
	other, _ := g.ShortestPath(roadnet.NodeID(3), roadnet.NodeID(g.NumNodes()-4))
	for i := 0; i < 5; i++ {
		routes = append(routes, other.Edges)
	}
	got := PopularRoute(routes, 100)
	// The recovered route should overlap the dominant route heavily.
	dom := map[roadnet.EdgeID]bool{}
	for _, e := range dominant {
		dom[e] = true
	}
	overlap := 0
	for _, e := range got {
		if dom[e] {
			overlap++
		}
	}
	if len(got) == 0 || float64(overlap)/float64(len(got)) < 0.8 {
		t.Fatalf("popular route overlap %d/%d", overlap, len(got))
	}
	if PopularRoute(nil, 10) != nil {
		t.Fatal("empty routes")
	}
	if PopularRoute(routes, 0) != nil {
		t.Fatal("maxLen 0")
	}
}

func TestPopularRouteRespectsMaxLen(t *testing.T) {
	routes := [][]roadnet.EdgeID{{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}}
	if got := PopularRoute(routes, 3); len(got) != 3 {
		t.Fatalf("maxLen ignored: %v", got)
	}
}

var _ = simulate.FieldOptions{} // reserved for future analysis tests
