package analysis

import (
	"math"
	"sort"

	"sidq/internal/trajectory"
)

// UncertainTrajectory pairs a trajectory with its per-point isotropic
// positional uncertainty (one sigma for the whole track, the common
// case for a homogeneous positioning source).
type UncertainTrajectory struct {
	Traj  *trajectory.Trajectory
	Sigma float64
}

// SimilarResult is one top-k similarity answer.
type SimilarResult struct {
	ID           string
	ExpectedDist float64
}

// ExpectedSyncDistance returns the expected synchronized distance
// between two uncertain trajectories evaluated at n evenly spaced
// times over their overlapping span: at each time the expected
// point-to-point distance is approximated by the root second moment
// sqrt(d^2 + 2(sa^2 + sb^2)), which is order-preserving and within a
// few percent of the true expectation for isotropic Gaussian error —
// the ranking property top-k similarity queries over uncertain
// trajectories rely on. It returns +Inf when the spans do not overlap.
func ExpectedSyncDistance(a, b UncertainTrajectory, n int) float64 {
	a0, a1, okA := a.Traj.TimeBounds()
	b0, b1, okB := b.Traj.TimeBounds()
	if !okA || !okB || n < 1 {
		return math.Inf(1)
	}
	t0, t1 := math.Max(a0, b0), math.Min(a1, b1)
	if t1 < t0 {
		return math.Inf(1)
	}
	varTerm := 2 * (a.Sigma*a.Sigma + b.Sigma*b.Sigma)
	var sum float64
	for i := 0; i < n; i++ {
		var t float64
		if n == 1 {
			t = (t0 + t1) / 2
		} else {
			t = t0 + (t1-t0)*float64(i)/float64(n-1)
		}
		pa, _ := a.Traj.LocationAt(t)
		pb, _ := b.Traj.LocationAt(t)
		d := pa.Dist(pb)
		sum += math.Sqrt(d*d + varTerm)
	}
	return sum / float64(n)
}

// TopKSimilar returns the k candidates most similar to the query by
// expected synchronized distance, ascending. Candidates with no
// temporal overlap are skipped.
func TopKSimilar(query UncertainTrajectory, cands []UncertainTrajectory, k, samples int) []SimilarResult {
	if k <= 0 {
		return nil
	}
	if samples <= 0 {
		samples = 20
	}
	var all []SimilarResult
	for _, c := range cands {
		d := ExpectedSyncDistance(query, c, samples)
		if math.IsInf(d, 1) {
			continue
		}
		all = append(all, SimilarResult{ID: c.Traj.ID, ExpectedDist: d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ExpectedDist != all[j].ExpectedDist {
			return all[i].ExpectedDist < all[j].ExpectedDist
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
