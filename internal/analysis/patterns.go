package analysis

import (
	"sort"

	"sidq/internal/roadnet"
)

// ProbItem is one uncertain symbol occurrence: alternative labels with
// probabilities (e.g. the candidate regions of an uncertain check-in).
type ProbItem []ProbAlt

// ProbAlt is one alternative of an uncertain item.
type ProbAlt struct {
	Label string
	Prob  float64
}

// Pattern is a mined sequential pattern with its expected support.
type Pattern struct {
	Labels          []string
	ExpectedSupport float64
}

// FrequentPairs mines probabilistic frequent length-2 contiguous
// patterns from uncertain sequences: the expected support of (a, b) is
// the sum over sequences and adjacent positions of P(a at i) * P(b at
// i+1), the standard expected-support semantics for uncertain
// sequential pattern mining. Patterns meeting minExpectedSupport are
// returned sorted by support (descending, then lexicographic).
func FrequentPairs(sequences [][]ProbItem, minExpectedSupport float64) []Pattern {
	type key struct{ a, b string }
	support := map[key]float64{}
	for _, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			for _, x := range seq[i-1] {
				for _, y := range seq[i] {
					support[key{x.Label, y.Label}] += x.Prob * y.Prob
				}
			}
		}
	}
	var out []Pattern
	for k, s := range support {
		if s >= minExpectedSupport {
			out = append(out, Pattern{Labels: []string{k.a, k.b}, ExpectedSupport: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExpectedSupport != out[j].ExpectedSupport {
			return out[i].ExpectedSupport > out[j].ExpectedSupport
		}
		if out[i].Labels[0] != out[j].Labels[0] {
			return out[i].Labels[0] < out[j].Labels[0]
		}
		return out[i].Labels[1] < out[j].Labels[1]
	})
	return out
}

// ExtendPatterns grows frequent pairs into length-3 patterns by
// expected support, using the anti-monotonicity of expected support to
// restrict candidates to extensions of surviving pairs.
func ExtendPatterns(sequences [][]ProbItem, pairs []Pattern, minExpectedSupport float64) []Pattern {
	frequentPair := map[[2]string]bool{}
	for _, p := range pairs {
		frequentPair[[2]string{p.Labels[0], p.Labels[1]}] = true
	}
	type key struct{ a, b, c string }
	support := map[key]float64{}
	for _, seq := range sequences {
		for i := 2; i < len(seq); i++ {
			for _, x := range seq[i-2] {
				for _, y := range seq[i-1] {
					if !frequentPair[[2]string{x.Label, y.Label}] {
						continue
					}
					for _, z := range seq[i] {
						if !frequentPair[[2]string{y.Label, z.Label}] {
							continue
						}
						support[key{x.Label, y.Label, z.Label}] += x.Prob * y.Prob * z.Prob
					}
				}
			}
		}
	}
	var out []Pattern
	for k, s := range support {
		if s >= minExpectedSupport {
			out = append(out, Pattern{Labels: []string{k.a, k.b, k.c}, ExpectedSupport: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExpectedSupport != out[j].ExpectedSupport {
			return out[i].ExpectedSupport > out[j].ExpectedSupport
		}
		for x := 0; x < 3; x++ {
			if out[i].Labels[x] != out[j].Labels[x] {
				return out[i].Labels[x] < out[j].Labels[x]
			}
		}
		return false
	})
	return out
}

// PopularRoute reconstructs the dominant route from a collection of
// noisy edge routes (e.g. map-matched uncertain trajectories): it
// builds an edge-transition graph weighted by traversal counts and
// greedily follows the most popular successor from the most popular
// start edge. maxLen bounds the walk.
func PopularRoute(routes [][]roadnet.EdgeID, maxLen int) []roadnet.EdgeID {
	if len(routes) == 0 || maxLen <= 0 {
		return nil
	}
	startCount := map[roadnet.EdgeID]int{}
	next := map[roadnet.EdgeID]map[roadnet.EdgeID]int{}
	endCount := map[roadnet.EdgeID]int{}
	for _, r := range routes {
		if len(r) == 0 {
			continue
		}
		startCount[r[0]]++
		endCount[r[len(r)-1]]++
		for i := 1; i < len(r); i++ {
			m, ok := next[r[i-1]]
			if !ok {
				m = map[roadnet.EdgeID]int{}
				next[r[i-1]] = m
			}
			m[r[i]]++
		}
	}
	start, bestN := roadnet.EdgeID(-1), 0
	for e, n := range startCount {
		if n > bestN || (n == bestN && e < start) {
			start, bestN = e, n
		}
	}
	if start < 0 {
		return nil
	}
	route := []roadnet.EdgeID{start}
	seen := map[roadnet.EdgeID]bool{start: true}
	cur := start
	for len(route) < maxLen {
		succ := next[cur]
		var best roadnet.EdgeID = -1
		bestN := 0
		for e, n := range succ {
			if seen[e] {
				continue
			}
			if n > bestN || (n == bestN && e < best) {
				best, bestN = e, n
			}
		}
		if best < 0 {
			break
		}
		// Stop preference: if ending here is more popular than continuing.
		if endCount[cur] > bestN {
			break
		}
		route = append(route, best)
		seen[best] = true
		cur = best
	}
	return route
}
