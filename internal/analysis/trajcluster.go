package analysis

import (
	"math"

	"sidq/internal/trajectory"
)

// TrajectoryClustering is the result of k-medoids trajectory
// clustering: medoid indices into the input slice and a cluster label
// per trajectory (-1 for trajectories with no temporal overlap with
// any medoid).
type TrajectoryClustering struct {
	Medoids []int
	Labels  []int
	Cost    float64
}

// ClusterTrajectories groups trajectories into k clusters with
// k-medoids (PAM-style alternation) under the synchronized-Euclidean
// distance — the whole-trajectory clustering task of the large-scale
// trajectory clustering literature. The seeding is deterministic
// (farthest-first from index 0), so results are reproducible.
func ClusterTrajectories(trs []*trajectory.Trajectory, k, samples, maxIter int) TrajectoryClustering {
	n := len(trs)
	out := TrajectoryClustering{Labels: make([]int, n)}
	if n == 0 || k <= 0 {
		return out
	}
	if k > n {
		k = n
	}
	if samples <= 0 {
		samples = 20
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	// Distance matrix (symmetric; +Inf for non-overlapping pairs).
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := trajectory.SyncDistance(trs[i], trs[j], samples)
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	// Farthest-first seeding.
	medoids := []int{0}
	for len(medoids) < k {
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < best {
					best = dist[i][m]
				}
			}
			if !math.IsInf(best, 1) && best > farD {
				far, farD = i, best
			}
		}
		if far < 0 {
			break // everything else is unreachable
		}
		medoids = append(medoids, far)
	}
	assign := func() float64 {
		var cost float64
		for i := 0; i < n; i++ {
			bestM, bestD := -1, math.Inf(1)
			for mi, m := range medoids {
				d := dist[i][m]
				if i == m {
					d = 0
				}
				if d < bestD {
					bestM, bestD = mi, d
				}
			}
			if math.IsInf(bestD, 1) {
				out.Labels[i] = -1
				continue
			}
			out.Labels[i] = bestM
			cost += bestD
		}
		return cost
	}
	cost := assign()
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		// Try replacing each medoid with the member minimizing the
		// within-cluster distance sum.
		for mi := range medoids {
			bestCand, bestSum := medoids[mi], math.Inf(1)
			for i := 0; i < n; i++ {
				if out.Labels[i] != mi {
					continue
				}
				var sum float64
				ok := true
				for j := 0; j < n; j++ {
					if out.Labels[j] != mi {
						continue
					}
					d := dist[i][j]
					if i == j {
						d = 0
					}
					if math.IsInf(d, 1) {
						ok = false
						break
					}
					sum += d
				}
				if ok && sum < bestSum {
					bestCand, bestSum = i, sum
				}
			}
			if bestCand != medoids[mi] {
				medoids[mi] = bestCand
				improved = true
			}
		}
		if !improved {
			break
		}
		cost = assign()
	}
	out.Medoids = medoids
	out.Cost = cost
	return out
}
