package analysis

import (
	"sort"

	"sidq/internal/stats"
	"sidq/internal/stid"
)

// CoEvolvingPair is a spatially-close sensor pair whose thematic values
// move together — the spatial co-evolving pattern the paper surveys for
// massive geo-sensory data.
type CoEvolvingPair struct {
	A, B        string
	Dist        float64
	Correlation float64
}

// CoEvolving discovers co-evolving sensor pairs: pairs within radius
// meters whose per-epoch value series (aligned by nearest timestamps)
// correlate at least minCorr. Pairs are returned sorted by correlation
// (descending), then ids.
func CoEvolving(readings []stid.Reading, radius, minCorr float64, minOverlap int) []CoEvolvingPair {
	if minOverlap < 3 {
		minOverlap = 3
	}
	series := stid.NewSeries(readings)
	var out []CoEvolvingPair
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			a, b := series[i], series[j]
			d := a.Pos.Dist(b.Pos)
			if d > radius {
				continue
			}
			xs, ys := alignSeries(a, b)
			if len(xs) < minOverlap {
				continue
			}
			if c := stats.Correlation(xs, ys); c >= minCorr {
				out = append(out, CoEvolvingPair{A: a.SensorID, B: b.SensorID, Dist: d, Correlation: c})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].Correlation != out[y].Correlation {
			return out[x].Correlation > out[y].Correlation
		}
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out
}

// alignSeries pairs a's readings with b's nearest-in-time readings.
func alignSeries(a, b stid.Series) (xs, ys []float64) {
	for _, r := range a.Readings {
		if m, ok := b.At(r.T); ok {
			xs = append(xs, r.Value)
			ys = append(ys, m.Value)
		}
	}
	return xs, ys
}
