package analysis

import (
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/stid"
)

func TestCoEvolvingFindsCorrelatedNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var readings []stid.Reading
	// Sensors a and b: 50 m apart, driven by the same signal.
	// Sensor c: nearby but driven by an independent signal.
	// Sensor d: correlated with a but 5 km away (fails the radius).
	positions := map[string]geo.Point{
		"a": geo.Pt(0, 0),
		"b": geo.Pt(50, 0),
		"c": geo.Pt(0, 60),
		"d": geo.Pt(5000, 0),
	}
	for i := 0; i < 60; i++ {
		tm := float64(i) * 60
		shared := math.Sin(float64(i)/5) * 10
		indep := math.Cos(float64(i)/3) * 10
		readings = append(readings,
			stid.Reading{SensorID: "a", Pos: positions["a"], T: tm, Value: shared + rng.NormFloat64()*0.5},
			stid.Reading{SensorID: "b", Pos: positions["b"], T: tm, Value: shared + rng.NormFloat64()*0.5},
			stid.Reading{SensorID: "c", Pos: positions["c"], T: tm, Value: indep + rng.NormFloat64()*0.5},
			stid.Reading{SensorID: "d", Pos: positions["d"], T: tm, Value: shared + rng.NormFloat64()*0.5},
		)
	}
	pairs := CoEvolving(readings, 200, 0.8, 10)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].A != "a" || pairs[0].B != "b" {
		t.Fatalf("wrong pair: %+v", pairs[0])
	}
	if pairs[0].Correlation < 0.9 {
		t.Fatalf("correlation = %v", pairs[0].Correlation)
	}
	// Widening the radius admits the far pair too.
	wide := CoEvolving(readings, 10000, 0.8, 10)
	found := false
	for _, p := range wide {
		if (p.A == "a" && p.B == "d") || (p.A == "d" && p.B == "b") || (p.A == "b" && p.B == "d") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wide radius should admit the remote correlated pair: %+v", wide)
	}
}

func TestCoEvolvingDegenerate(t *testing.T) {
	if got := CoEvolving(nil, 100, 0.5, 3); len(got) != 0 {
		t.Fatal("empty readings")
	}
	// Too little overlap is skipped.
	rs := []stid.Reading{
		{SensorID: "a", Pos: geo.Pt(0, 0), T: 0, Value: 1},
		{SensorID: "b", Pos: geo.Pt(1, 0), T: 0, Value: 1},
	}
	if got := CoEvolving(rs, 100, 0, 3); len(got) != 0 {
		t.Fatal("insufficient overlap should be skipped")
	}
}
