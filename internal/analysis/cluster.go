// Package analysis implements the paper's §2.3.2: analytics over
// low-quality SID. It provides uncertainty-aware clustering (DBSCAN
// with expected distances over uncertain objects), online
// trajectory-stream anomaly detection, probabilistic frequent-pattern
// mining over uncertain symbol sequences, and popular-route discovery
// from noisy route collections.
package analysis

import (
	"sidq/internal/uquery"
)

// Noise is the cluster label for noise points.
const Noise = -1

// UncertainDBSCAN clusters uncertain objects with DBSCAN using expected
// distance between objects as the metric (computed against each
// object's expectation via the other's ExpectedDist, symmetrized). It
// returns one label per input object; Noise (-1) marks outliers.
func UncertainDBSCAN(objs []uquery.UncertainObject, eps float64, minPts int) []int {
	n := len(objs)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || minPts <= 0 || eps <= 0 {
		return labels
	}
	// Pairwise expected distances (symmetrized) with bound-based skips.
	dist := func(i, j int) float64 {
		// Use each object's expected distance to the other's bound
		// center; averaging symmetrizes the asymmetric definition.
		ci := objs[i].Bounds().Center()
		cj := objs[j].Bounds().Center()
		return (objs[i].ExpectedDist(cj) + objs[j].ExpectedDist(ci)) / 2
	}
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// Prune with bound-box distance before the exact metric.
			if objs[i].Bounds().DistToPoint(objs[j].Bounds().Center()) > 3*eps {
				continue
			}
			if dist(i, j) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	visited := make([]bool, n)
	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nb := neighbors(i)
		if len(nb)+1 < minPts {
			continue // stays noise unless adopted later
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = cluster // border point adoption
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			nb2 := neighbors(j)
			if len(nb2)+1 >= minPts {
				queue = append(queue, nb2...)
			}
		}
		cluster++
	}
	return labels
}

// AdjustedRandIndex scores a clustering against ground-truth labels:
// 1 for identical partitions, ~0 for random assignments.
func AdjustedRandIndex(a, b []int) float64 {
	n := len(a)
	if n != len(b) || n == 0 {
		return 0
	}
	// Contingency table.
	type pair struct{ x, y int }
	cont := map[pair]int{}
	rowSum := map[int]int{}
	colSum := map[int]int{}
	for i := 0; i < n; i++ {
		cont[pair{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumCont, sumRow, sumCol float64
	for _, c := range cont {
		sumCont += choose2(c)
	}
	for _, c := range rowSum {
		sumRow += choose2(c)
	}
	for _, c := range colSum {
		sumCol += choose2(c)
	}
	total := choose2(n)
	expected := sumRow * sumCol / total
	maxIdx := (sumRow + sumCol) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumCont - expected) / (maxIdx - expected)
}
