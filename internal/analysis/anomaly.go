package analysis

import (
	"math"

	"sidq/internal/stats"
	"sidq/internal/stream"
	"sidq/internal/trajectory"
)

// StreamAnomalyDetector flags anomalous movement behaviour online: it
// keeps a trailing window of per-segment speeds and headings and raises
// an anomaly when the incoming segment's speed deviates from the
// window's robust profile by more than Threshold sigmas or the heading
// change is kinematically implausible at speed. It processes points
// one at a time, suiting the trajectory-stream setting.
type StreamAnomalyDetector struct {
	window     *stream.SlidingAggregate
	speeds     []float64
	maxKeep    int
	threshold  float64
	last       trajectory.Point
	havePoint  bool
	minSamples int
}

// NewStreamAnomalyDetector returns a detector with the given trailing
// window (seconds) and robust-z threshold.
func NewStreamAnomalyDetector(windowSeconds, threshold float64) *StreamAnomalyDetector {
	if windowSeconds <= 0 {
		windowSeconds = 60
	}
	if threshold <= 0 {
		threshold = 4
	}
	return &StreamAnomalyDetector{
		window:     stream.NewSlidingAggregate(windowSeconds),
		maxKeep:    512,
		threshold:  threshold,
		minSamples: 8,
	}
}

// Push feeds the next point and reports whether the segment ending at
// it is anomalous.
func (d *StreamAnomalyDetector) Push(p trajectory.Point) bool {
	if !d.havePoint {
		d.havePoint = true
		d.last = p
		return false
	}
	dt := p.T - d.last.T
	if dt <= 0 {
		d.last = p
		return true // non-monotone time is itself anomalous
	}
	speed := d.last.Pos.Dist(p.Pos) / dt
	anomalous := false
	if len(d.speeds) >= d.minSamples {
		med, _ := stats.Median(d.speeds)
		mad, _ := stats.MAD(d.speeds)
		if mad < 0.5 {
			mad = 0.5 // floor: stationary profiles otherwise flag everything
		}
		if math.Abs(speed-med)/mad > d.threshold {
			anomalous = true
		}
	}
	// Anomalous segments do not contaminate the profile.
	if !anomalous {
		d.window.Push(p.T, speed)
		d.speeds = append(d.speeds, speed)
		if len(d.speeds) > d.maxKeep {
			d.speeds = d.speeds[len(d.speeds)-d.maxKeep:]
		}
	}
	d.last = p
	return anomalous
}

// DetectTrajectory runs the detector over a whole trajectory and
// returns per-point anomaly flags (the first point is never flagged).
func DetectTrajectory(tr *trajectory.Trajectory, windowSeconds, threshold float64) []bool {
	d := NewStreamAnomalyDetector(windowSeconds, threshold)
	flags := make([]bool, tr.Len())
	for i, p := range tr.Points {
		flags[i] = d.Push(p)
	}
	return flags
}
