package analysis

import (
	"fmt"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// corridorFleet builds three groups of trajectories following three
// separated corridors, with noise.
func corridorFleet(perGroup int, seed int64) ([]*trajectory.Trajectory, []int) {
	var trs []*trajectory.Trajectory
	var labels []int
	corridors := []float64{0, 400, 800} // y offsets
	for g, y := range corridors {
		for i := 0; i < perGroup; i++ {
			var pts []trajectory.Point
			for s := 0; s < 60; s++ {
				pts = append(pts, trajectory.Point{
					T:   float64(s),
					Pos: geo.Pt(float64(s)*10, y),
				})
			}
			base := trajectory.New(fmt.Sprintf("g%d-%d", g, i), pts)
			trs = append(trs, simulate.AddGaussianNoise(base, 8, seed+int64(g*100+i)))
			labels = append(labels, g)
		}
	}
	return trs, labels
}

func TestClusterTrajectoriesRecoversCorridors(t *testing.T) {
	trs, truth := corridorFleet(8, 1)
	res := ClusterTrajectories(trs, 3, 20, 20)
	if len(res.Medoids) != 3 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	if ari := AdjustedRandIndex(res.Labels, truth); ari < 0.95 {
		t.Fatalf("ARI = %v (labels %v)", ari, res.Labels)
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %v", res.Cost)
	}
}

func TestClusterTrajectoriesDeterministic(t *testing.T) {
	trs, _ := corridorFleet(5, 2)
	a := ClusterTrajectories(trs, 3, 15, 10)
	b := ClusterTrajectories(trs, 3, 15, 10)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestClusterTrajectoriesDegenerate(t *testing.T) {
	if got := ClusterTrajectories(nil, 3, 10, 10); len(got.Medoids) != 0 {
		t.Fatal("empty input")
	}
	trs, _ := corridorFleet(2, 3)
	// k > n clamps.
	res := ClusterTrajectories(trs[:2], 10, 10, 10)
	if len(res.Medoids) > 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	// Non-overlapping trajectory gets label -1.
	late := trs[0].Clone()
	late.ID = "late"
	for i := range late.Points {
		late.Points[i].T += 1e6
	}
	mixed := append([]*trajectory.Trajectory{}, trs[:4]...)
	mixed = append(mixed, late)
	res = ClusterTrajectories(mixed, 2, 10, 10)
	foundUnassigned := false
	for i, l := range res.Labels {
		if mixed[i].ID == "late" && l == -1 {
			foundUnassigned = true
		}
	}
	if !foundUnassigned {
		// The late trajectory could have been chosen as a seed medoid;
		// either way the clustering must not crash and must label it.
		t.Logf("late trajectory label: %v (acceptable if seeded as medoid)", res.Labels)
	}
}
