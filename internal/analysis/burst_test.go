package analysis

import (
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

func TestBurstDetectorFindsInjectedBurst(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	d := NewBurstDetector(bounds, 10, 10, 60, 3, 5)
	rng := rand.New(rand.NewSource(1))
	var bursts []Burst
	// 30 windows of uniform background traffic (~50 events each), then a
	// burst of 80 extra events in one cell during window 30.
	for w := 0; w < 35; w++ {
		base := float64(w) * 60
		for i := 0; i < 50; i++ {
			tm := base + rng.Float64()*60
			p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			bursts = append(bursts, d.Push(tm, p)...)
		}
		if w == 30 {
			for i := 0; i < 80; i++ {
				tm := base + rng.Float64()*60
				p := geo.Pt(550+rng.Float64()*50, 550+rng.Float64()*50) // one cell
				bursts = append(bursts, d.Push(tm, p)...)
			}
		}
	}
	bursts = append(bursts, d.Flush()...)
	found := false
	for _, b := range bursts {
		if b.Cell.Contains(geo.Pt(575, 575)) && b.WindowStart == 30*60 {
			found = true
			if b.Count < 50 {
				t.Fatalf("burst count = %d", b.Count)
			}
			if float64(b.Count) <= b.Expected {
				t.Fatal("burst not above expectation")
			}
		}
	}
	if !found {
		t.Fatalf("injected burst not detected (found %d bursts: %+v)", len(bursts), bursts)
	}
	// Background-only windows should raise few alarms.
	if len(bursts) > 5 {
		t.Fatalf("too many bursts: %d", len(bursts))
	}
}

func TestBurstDetectorQuietStream(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	d := NewBurstDetector(bounds, 4, 4, 10, 3, 3)
	rng := rand.New(rand.NewSource(2))
	var bursts []Burst
	for w := 0; w < 50; w++ {
		for i := 0; i < 8; i++ {
			bursts = append(bursts, d.Push(float64(w)*10+rng.Float64()*10,
				geo.Pt(rng.Float64()*100, rng.Float64()*100))...)
		}
	}
	bursts = append(bursts, d.Flush()...)
	if len(bursts) > 3 {
		t.Fatalf("quiet stream produced %d bursts", len(bursts))
	}
}

func TestBurstDetectorEmptyFlush(t *testing.T) {
	d := NewBurstDetector(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}, 2, 2, 10, 3, 1)
	if d.Flush() != nil {
		t.Fatal("flush before any event")
	}
}

func TestExpectedSyncDistanceInflation(t *testing.T) {
	mk := func(id string, dy float64) *trajectory.Trajectory {
		var pts []trajectory.Point
		for i := 0; i < 50; i++ {
			pts = append(pts, trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*2, dy)})
		}
		return trajectory.New(id, pts)
	}
	a := UncertainTrajectory{Traj: mk("a", 0), Sigma: 0}
	b := UncertainTrajectory{Traj: mk("b", 10), Sigma: 0}
	// Certain case: expected distance equals geometric distance.
	if got := ExpectedSyncDistance(a, b, 20); got < 9.99 || got > 10.01 {
		t.Fatalf("certain distance = %v", got)
	}
	// Uncertainty inflates the expectation.
	bu := UncertainTrajectory{Traj: b.Traj, Sigma: 10}
	if got := ExpectedSyncDistance(a, bu, 20); got <= 10 {
		t.Fatalf("uncertain distance = %v, want > 10", got)
	}
	// Disjoint spans are +Inf.
	late := mk("c", 0)
	for i := range late.Points {
		late.Points[i].T += 1000
	}
	if got := ExpectedSyncDistance(a, UncertainTrajectory{Traj: trajectory.New("c", late.Points)}, 5); got < 1e300 {
		t.Fatalf("disjoint = %v", got)
	}
}

func TestTopKSimilarRanking(t *testing.T) {
	mk := func(id string, dy float64) UncertainTrajectory {
		var pts []trajectory.Point
		for i := 0; i < 50; i++ {
			pts = append(pts, trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*2, dy)})
		}
		return UncertainTrajectory{Traj: trajectory.New(id, pts), Sigma: 2}
	}
	query := mk("q", 0)
	cands := []UncertainTrajectory{mk("far", 100), mk("near", 5), mk("mid", 30)}
	got := TopKSimilar(query, cands, 2, 20)
	if len(got) != 2 || got[0].ID != "near" || got[1].ID != "mid" {
		t.Fatalf("ranking = %+v", got)
	}
	if TopKSimilar(query, cands, 0, 20) != nil {
		t.Fatal("k=0")
	}
	// A candidate with huge uncertainty ranks below a certain one at the
	// same geometric distance.
	a := mk("certain", 20)
	b := mk("fuzzy", 20)
	b.Sigma = 50
	got = TopKSimilar(query, []UncertainTrajectory{a, b}, 2, 20)
	if got[0].ID != "certain" {
		t.Fatalf("uncertainty should penalize ranking: %+v", got)
	}
}
