package geo

import "math"

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
// The zero value is an empty rectangle (see EmptyRect) only if built
// via EmptyRect; prefer the constructors.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns a rectangle that contains nothing and acts as the
// identity for Union.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// RectFromPoints returns the minimal bounding rectangle of pts.
func RectFromPoints(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// RectFromCenter returns a rectangle centered at c with half-extents hx, hy.
func RectFromCenter(c Point, hx, hy float64) Rect {
	return Rect{Min: Point{c.X - hx, c.Y - hy}, Max: Point{c.X + hx, c.Y + hy}}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the X extent (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the Y extent (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns half the perimeter (the usual R-tree margin metric).
func (r Rect) Perimeter() float64 { return r.Width() + r.Height() }

// Center returns the rectangle center.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the minimal rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersection returns the overlap of r and s (possibly empty).
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// ExtendPoint returns the minimal rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Expand returns r grown by d on every side. Negative d shrinks.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// DistToPoint returns the minimum distance from p to r, 0 if p is inside.
func (r Rect) DistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MaxDistToPoint returns the maximum distance from p to any point of r.
func (r Rect) MaxDistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return 0
	}
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}
