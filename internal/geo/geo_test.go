package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(4, 6)
	if d := p.Dist(q); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := p.DistSq(q); d != 25 {
		t.Fatalf("DistSq = %v, want 25", d)
	}
	if got := p.Add(q); got != Pt(5, 8) {
		t.Fatalf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(3, 4) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 16 {
		t.Fatalf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -2 {
		t.Fatalf("Cross = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(2.5, 4) {
		t.Fatalf("Lerp = %v", got)
	}
}

func TestBearing(t *testing.T) {
	almost(t, Pt(0, 0).Bearing(Pt(1, 0)), 0, 1e-12, "east")
	almost(t, Pt(0, 0).Bearing(Pt(0, 1)), math.Pi/2, 1e-12, "north")
	almost(t, Pt(0, 0).Bearing(Pt(-1, 0)), math.Pi, 1e-12, "west")
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if got := s.ClosestPoint(Pt(5, 3)); got != Pt(5, 0) {
		t.Fatalf("mid projection = %v", got)
	}
	if got := s.ClosestPoint(Pt(-4, 2)); got != Pt(0, 0) {
		t.Fatalf("clamp to A = %v", got)
	}
	if got := s.ClosestPoint(Pt(14, -2)); got != Pt(10, 0) {
		t.Fatalf("clamp to B = %v", got)
	}
	almost(t, s.Dist(Pt(5, 3)), 3, 1e-12, "segment dist")
}

func TestDegenerateSegment(t *testing.T) {
	s := Segment{Pt(2, 2), Pt(2, 2)}
	if got := s.ClosestPoint(Pt(5, 6)); got != Pt(2, 2) {
		t.Fatalf("degenerate closest = %v", got)
	}
	almost(t, s.Dist(Pt(5, 6)), 5, 1e-12, "degenerate dist")
	if s.Length() != 0 {
		t.Fatalf("length = %v", s.Length())
	}
}

func TestSegmentDistNonNegativeAndTriangle(t *testing.T) {
	bound := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Segment{Pt(bound(ax), bound(ay)), Pt(bound(bx), bound(by))}
		p := Pt(bound(px), bound(py))
		d := s.Dist(p)
		// Distance to the segment is never negative and never exceeds
		// the distance to either endpoint.
		return d >= 0 && d <= p.Dist(s.A)+1e-9 && d <= p.Dist(s.B)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	cph := LatLon{Lat: 55.6761, Lon: 12.5683} // Copenhagen
	aal := LatLon{Lat: 57.0488, Lon: 9.9217}  // Aalborg
	d := Haversine(cph, aal)
	// Great-circle distance Copenhagen-Aalborg is roughly 220 km.
	if d < 210e3 || d > 230e3 {
		t.Fatalf("Haversine = %v m, want ~220 km", d)
	}
	if Haversine(cph, cph) != 0 {
		t.Fatalf("self distance nonzero")
	}
	almost(t, Haversine(cph, aal), Haversine(aal, cph), 1e-9, "symmetry")
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(LatLon{Lat: 55.67, Lon: 12.56})
	cases := []LatLon{
		{55.67, 12.56},
		{55.70, 12.60},
		{55.60, 12.50},
		{55.75, 12.40},
	}
	for _, ll := range cases {
		p := pr.ToPlane(ll)
		back := pr.ToLatLon(p)
		almost(t, back.Lat, ll.Lat, 1e-9, "lat round trip")
		almost(t, back.Lon, ll.Lon, 1e-9, "lon round trip")
	}
}

func TestProjectionMatchesHaversine(t *testing.T) {
	origin := LatLon{Lat: 55.67, Lon: 12.56}
	pr := NewProjection(origin)
	other := LatLon{Lat: 55.72, Lon: 12.63}
	planar := pr.ToPlane(other).Dist(pr.ToPlane(origin))
	geodetic := Haversine(origin, other)
	if math.Abs(planar-geodetic)/geodetic > 0.005 {
		t.Fatalf("planar %v vs geodetic %v differ by >0.5%%", planar, geodetic)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectFromPoints(Pt(0, 0), Pt(10, 5))
	if r.Width() != 10 || r.Height() != 5 || r.Area() != 50 {
		t.Fatalf("dims: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(5, 2.5) {
		t.Fatalf("center = %v", r.Center())
	}
	if !r.Contains(Pt(10, 5)) || !r.Contains(Pt(0, 0)) || r.Contains(Pt(10.01, 5)) {
		t.Fatalf("contains boundary behaviour wrong")
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 {
		t.Fatal("empty rect area/width nonzero")
	}
	r := RectFromPoints(Pt(1, 1), Pt(2, 2))
	if got := e.Union(r); got != r {
		t.Fatalf("empty union identity: %v", got)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("union with empty: %v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty intersects")
	}
	if e.Contains(Pt(0, 0)) {
		t.Fatal("empty contains point")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(10, 10)}
	b := Rect{Pt(5, 5), Pt(15, 15)}
	got := a.Intersection(b)
	want := Rect{Pt(5, 5), Pt(10, 10)}
	if got != want {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	c := Rect{Pt(20, 20), Pt(30, 30)}
	if !a.Intersection(c).IsEmpty() {
		t.Fatal("disjoint intersection not empty")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects intersect")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(10, 10)}
	almost(t, r.DistToPoint(Pt(5, 5)), 0, 0, "inside")
	almost(t, r.DistToPoint(Pt(13, 14)), 5, 1e-12, "corner")
	almost(t, r.DistToPoint(Pt(5, -3)), 3, 1e-12, "edge")
	almost(t, r.MaxDistToPoint(Pt(0, 0)), math.Hypot(10, 10), 1e-12, "max corner")
}

func TestRectExpand(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(10, 10)}
	g := r.Expand(2)
	if g.Min != Pt(-2, -2) || g.Max != Pt(12, 12) {
		t.Fatalf("expand = %v", g)
	}
	if !r.Expand(-6).IsEmpty() {
		t.Fatal("over-shrunk rect should be empty")
	}
}

func TestRectUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectFromPoints(Pt(ax, ay), Pt(bx, by))
		s := RectFromPoints(Pt(cx, cy), Pt(dx, dy))
		u := r.Union(s)
		// Union contains both inputs and is commutative.
		return u.ContainsRect(r) && u.ContainsRect(s) && u == s.Union(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolylineLengthAndPointAt(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	almost(t, pl.Length(), 20, 1e-12, "length")
	if got := pl.PointAt(5); got != Pt(5, 0) {
		t.Fatalf("PointAt(5) = %v", got)
	}
	if got := pl.PointAt(15); got != Pt(10, 5) {
		t.Fatalf("PointAt(15) = %v", got)
	}
	if got := pl.PointAt(-1); got != Pt(0, 0) {
		t.Fatalf("PointAt(-1) = %v", got)
	}
	if got := pl.PointAt(99); got != Pt(10, 10) {
		t.Fatalf("PointAt(99) = %v", got)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0)}
	rs := pl.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0] != Pt(0, 0) || rs[4] != Pt(10, 0) {
		t.Fatalf("endpoints not preserved: %v", rs)
	}
	almost(t, rs[2].X, 5, 1e-9, "midpoint")
	if pl.Resample(1) != nil {
		t.Fatal("n<2 should return nil")
	}
	if Polyline(nil).Resample(3) != nil {
		t.Fatal("empty polyline should return nil")
	}
}

func TestPolylineProject(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	arc, closest, dist := pl.Project(Pt(12, 5))
	almost(t, arc, 15, 1e-9, "arc")
	if closest != Pt(10, 5) {
		t.Fatalf("closest = %v", closest)
	}
	almost(t, dist, 2, 1e-9, "dist")
}

func TestHausdorff(t *testing.T) {
	a := Polyline{Pt(0, 0), Pt(10, 0)}
	b := Polyline{Pt(0, 3), Pt(10, 3)}
	almost(t, Hausdorff(a, b), 3, 1e-12, "parallel lines")
	if Hausdorff(a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
	almost(t, Hausdorff(a, b), Hausdorff(b, a), 0, "symmetry")
}

func TestPointNormAndString(t *testing.T) {
	if Pt(3, 4).Norm() != 5 {
		t.Fatal("norm")
	}
	if got := Pt(1, 2).String(); got != "(1.000, 2.000)" {
		t.Fatalf("string = %q", got)
	}
}

func TestProjectionOrigin(t *testing.T) {
	o := LatLon{Lat: 55, Lon: 12}
	if NewProjection(o).Origin() != o {
		t.Fatal("origin")
	}
}

func TestPolylineBoundsAndDistToPoint(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	b := pl.Bounds()
	if b.Min != Pt(0, 0) || b.Max != Pt(10, 10) {
		t.Fatalf("bounds = %v", b)
	}
	almost(t, pl.DistToPoint(Pt(5, 3)), 3, 1e-12, "polyline dist")
	if !math.IsInf(Polyline(nil).DistToPoint(Pt(0, 0)), 1) {
		t.Fatal("empty polyline dist")
	}
	almost(t, Polyline{Pt(2, 2)}.DistToPoint(Pt(5, 6)), 5, 1e-12, "single-point dist")
}

func TestPolylineProjectSinglePoint(t *testing.T) {
	arc, closest, dist := Polyline{Pt(1, 1)}.Project(Pt(4, 5))
	if arc != 0 || closest != Pt(1, 1) {
		t.Fatalf("project single: %v %v", arc, closest)
	}
	almost(t, dist, 5, 1e-12, "single dist")
}

func TestRectFromCenterAndPerimeter(t *testing.T) {
	r := RectFromCenter(Pt(5, 5), 2, 3)
	if r.Min != Pt(3, 2) || r.Max != Pt(7, 8) {
		t.Fatalf("rect = %v", r)
	}
	if r.Perimeter() != 10 { // width 4 + height 6
		t.Fatalf("perimeter = %v", r.Perimeter())
	}
}

func TestContainsRectEmptyCases(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(10, 10)}
	if !r.ContainsRect(EmptyRect()) {
		t.Fatal("any rect contains the empty rect")
	}
	if EmptyRect().ContainsRect(r) {
		t.Fatal("empty rect contains nothing non-empty")
	}
}

func TestRectDistEmptyAndExpandEmpty(t *testing.T) {
	if !math.IsInf(EmptyRect().DistToPoint(Pt(0, 0)), 1) {
		t.Fatal("empty dist should be +Inf")
	}
	if EmptyRect().MaxDistToPoint(Pt(0, 0)) != 0 {
		t.Fatal("empty max dist should be 0")
	}
	if !EmptyRect().Expand(5).IsEmpty() {
		t.Fatal("expanding empty stays empty")
	}
}
