// Package geo provides planar and geodetic geometry primitives used by
// every other sidq package: points, segments, rectangles, polylines,
// distance functions, and a local tangent-plane projection that maps
// WGS84 coordinates into planar meters.
//
// All planar computations are in meters in a right-handed X/Y frame.
// Geodetic helpers operate on WGS84 latitude/longitude degrees.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine and
// local-projection helpers.
const EarthRadiusMeters = 6371008.8

// Point is a planar point in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by factor s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q. It
// avoids the square root on hot paths such as index scans.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Bearing returns the angle in radians of the vector from p to q,
// measured counter-clockwise from the positive X axis in (-pi, pi].
func (p Point) Bearing(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Segment is a directed planar line segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// ClosestParam returns the clamped parameter t in [0,1] such that
// s.A.Lerp(s.B, t) is the point on the segment closest to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return clamp01(t)
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	return s.A.Lerp(s.B, s.ClosestParam(p))
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// Interpolate returns the point at fraction t of the segment length.
func (s Segment) Interpolate(t float64) Point { return s.A.Lerp(s.B, clamp01(t)) }

func clamp01(t float64) float64 {
	switch {
	case t < 0:
		return 0
	case t > 1:
		return 1
	default:
		return t
	}
}

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }

// LatLon is a WGS84 geodetic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Haversine returns the great-circle distance in meters between a and b.
func Haversine(a, b LatLon) float64 {
	lat1, lat2 := DegToRad(a.Lat), DegToRad(b.Lat)
	dLat := lat2 - lat1
	dLon := DegToRad(b.Lon - a.Lon)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Projection is an equirectangular local tangent-plane projection
// anchored at an origin. It is accurate to well under 0.1% for extents
// up to tens of kilometers, which covers every workload in this
// repository (city-scale SID).
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection returns a local projection anchored at origin.
func NewProjection(origin LatLon) *Projection {
	return &Projection{origin: origin, cosLat: math.Cos(DegToRad(origin.Lat))}
}

// Origin returns the projection anchor.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToPlane projects a geodetic coordinate to planar meters.
func (pr *Projection) ToPlane(ll LatLon) Point {
	return Point{
		X: DegToRad(ll.Lon-pr.origin.Lon) * pr.cosLat * EarthRadiusMeters,
		Y: DegToRad(ll.Lat-pr.origin.Lat) * EarthRadiusMeters,
	}
}

// ToLatLon inverts ToPlane.
func (pr *Projection) ToLatLon(p Point) LatLon {
	return LatLon{
		Lat: pr.origin.Lat + RadToDeg(p.Y/EarthRadiusMeters),
		Lon: pr.origin.Lon + RadToDeg(p.X/(EarthRadiusMeters*pr.cosLat)),
	}
}
