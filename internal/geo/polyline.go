package geo

import "math"

// Polyline is an ordered sequence of planar points.
type Polyline []Point

// Length returns the total arc length of the polyline.
func (pl Polyline) Length() float64 {
	var sum float64
	for i := 1; i < len(pl); i++ {
		sum += pl[i-1].Dist(pl[i])
	}
	return sum
}

// Bounds returns the minimal bounding rectangle of the polyline.
func (pl Polyline) Bounds() Rect { return RectFromPoints(pl...) }

// PointAt returns the point at arc-length distance d from the start,
// clamped to the endpoints. It returns the first point for empty input
// handling by the caller; calling PointAt on an empty polyline panics.
func (pl Polyline) PointAt(d float64) Point {
	if d <= 0 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		if d <= seg {
			if seg == 0 {
				return pl[i]
			}
			return pl[i-1].Lerp(pl[i], d/seg)
		}
		d -= seg
	}
	return pl[len(pl)-1]
}

// Resample returns n points evenly spaced along the polyline by arc
// length, always including both endpoints. n must be >= 2.
func (pl Polyline) Resample(n int) Polyline {
	if len(pl) == 0 || n < 2 {
		return nil
	}
	total := pl.Length()
	out := make(Polyline, n)
	for i := 0; i < n; i++ {
		out[i] = pl.PointAt(total * float64(i) / float64(n-1))
	}
	return out
}

// DistToPoint returns the minimum distance from p to the polyline.
func (pl Polyline) DistToPoint(p Point) float64 {
	if len(pl) == 0 {
		return math.Inf(1)
	}
	if len(pl) == 1 {
		return pl[0].Dist(p)
	}
	best := math.Inf(1)
	for i := 1; i < len(pl); i++ {
		d := Segment{pl[i-1], pl[i]}.Dist(p)
		if d < best {
			best = d
		}
	}
	return best
}

// Project returns the arc-length position along the polyline of the
// point closest to p, together with that closest point and distance.
func (pl Polyline) Project(p Point) (arc float64, closest Point, dist float64) {
	dist = math.Inf(1)
	var walked float64
	if len(pl) == 1 {
		return 0, pl[0], pl[0].Dist(p)
	}
	for i := 1; i < len(pl); i++ {
		seg := Segment{pl[i-1], pl[i]}
		t := seg.ClosestParam(p)
		c := seg.Interpolate(t)
		if d := c.Dist(p); d < dist {
			dist = d
			closest = c
			arc = walked + t*seg.Length()
		}
		walked += seg.Length()
	}
	return arc, closest, dist
}

// Hausdorff returns the (symmetric) discrete Hausdorff distance between
// the vertex sets of a and b.
func Hausdorff(a, b Polyline) float64 {
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b Polyline) float64 {
	var worst float64
	for _, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
