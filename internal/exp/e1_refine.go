package exp

import (
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/quality"
	"sidq/internal/refine"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// T1 reproduces Table 1 empirically: SID characteristics and the
// quality issues they cause, measured on synthetic workloads.
func T1(seed int64) string {
	return quality.RenderTable1(quality.CharacteristicMatrix(seed))
}

// E1Radio compares ensemble location refinement methods on a simulated
// radio environment across shadowing-noise levels: single-source WkNN
// fingerprinting, multi-source WLS multilateration, and their
// inverse-variance fusion.
func E1Radio(seed int64) Table {
	t := Table{
		ID:    "E1a",
		Title: "ensemble LR: mean positioning error (m) vs radio noise",
		Cols:  []string{"noise σ (dB/m)", "WkNN", "multilateration", "fused"},
		Notes: []string{"100x100 m arena, 9 beacons, 10 m survey grid, 60 queries"},
	}
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	for _, sigma := range []float64{0.5, 1.5, 3, 6} {
		env := simulate.NewRadioEnv(bounds, 9, 2.5, sigma, seed)
		raw := env.FingerprintMap(bounds, 10, 5, seed+1)
		fps := make([]refine.Fingerprint, len(raw))
		for i, f := range raw {
			fps[i] = refine.Fingerprint{Pos: f.Pos, RSSI: f.RSSI}
		}
		wknn, err := refine.NewWkNN(fps, 4)
		if err != nil {
			continue
		}
		rng := rand.New(rand.NewSource(seed + 2))
		var eW, eM, eF float64
		const trials = 60
		for i := 0; i < trials; i++ {
			truth := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
			// WkNN from RSSI.
			obs := env.Observe(truth, rng)
			pw, errW := wknn.Locate(obs)
			// Multilateration from ranging (noise scales with sigma).
			ranges := env.ObserveRanges(truth, sigma, rng)
			robs := make([]refine.RangeObs, len(ranges))
			for j, r := range ranges {
				robs[j] = refine.RangeObs{Anchor: r.Anchor, Range: r.Range}
			}
			pm, errM := refine.Multilaterate(robs)
			if errW != nil || errM != nil {
				continue
			}
			// Variance models calibrated to the two processes: WkNN
			// error is dominated by the survey-grid pitch and grows
			// with shadowing; ranging error scales directly with the
			// ranging noise.
			fused, _ := refine.Fuse([]refine.Estimate{
				{Pos: pw, Var: 9 + 4*sigma*sigma},
				{Pos: pm, Var: 0.5 * sigma * sigma},
			})
			eW += pw.Dist(truth)
			eM += pm.Dist(truth)
			eF += fused.Pos.Dist(truth)
		}
		t.AddRow(F1(sigma), F(eW/trials), F(eM/trials), F(eF/trials))
	}
	return t
}

// E1Motion compares motion-based LR filters on noisy GPS tracks across
// noise levels: raw observations vs Kalman filter, RTS smoother,
// particle filter, and HMM grid filter.
func E1Motion(seed int64) Table {
	t := Table{
		ID:    "E1b",
		Title: "motion-based LR: RMSE (m) vs GPS noise",
		Cols:  []string{"noise σ (m)", "raw", "kalman", "RTS smoother", "particle", "HMM grid"},
		Notes: []string{"300-point random walks, 3 tracks per cell"},
	}
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(600, 600)}
	for _, sigma := range []float64{2, 5, 10, 20} {
		var raw, kal, rts, pf, hmm float64
		const tracks = 3
		for k := 0; k < tracks; k++ {
			truth := simulate.RandomWalk("w", region, 300, 2.5, 1, seed+int64(k))
			noisy := simulate.AddGaussianNoise(truth, sigma, seed+10+int64(k))
			raw += trajectory.RMSEAgainst(noisy, truth)
			kal += trajectory.RMSEAgainst(refine.KalmanFilterTrajectory(noisy, 1, sigma), truth)
			rts += trajectory.RMSEAgainst(refine.KalmanSmoothTrajectory(noisy, 1, sigma), truth)
			pf += trajectory.RMSEAgainst(refine.ParticleFilterTrajectory(noisy, 400, 1, sigma, seed+20+int64(k)), truth)
			hmm += trajectory.RMSEAgainst(refine.HMMGridTrajectory(noisy, region.Expand(50), 12, 3, sigma), truth)
		}
		t.AddRow(F1(sigma), F(raw/tracks), F(kal/tracks), F(rts/tracks), F(pf/tracks), F(hmm/tracks))
	}
	return t
}

// E1Collab compares collaborative LR against per-object refinement
// when a fleet shares common-mode error.
func E1Collab(seed int64) Table {
	t := Table{
		ID:    "E1c",
		Title: "collaborative LR: mean error (m) vs shared-bias scale",
		Cols:  []string{"bias σ (m)", "raw", "joint denoise", "iterative (ranging)"},
		Notes: []string{"8 objects, 60 epochs; iterative uses exact pairwise ranges"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, biasSigma := range []float64{5, 15, 30} {
		const nObj, nT = 8, 60
		truth := make([][]geo.Point, nT)
		obs := make([][]geo.Point, nT)
		starts := make([]geo.Point, nObj)
		vels := make([]geo.Point, nObj)
		for i := range starts {
			starts[i] = geo.Pt(rng.Float64()*500, rng.Float64()*500)
			vels[i] = geo.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		for tt := 0; tt < nT; tt++ {
			bias := geo.Pt(rng.NormFloat64()*biasSigma, rng.NormFloat64()*biasSigma)
			truth[tt] = make([]geo.Point, nObj)
			obs[tt] = make([]geo.Point, nObj)
			for i := 0; i < nObj; i++ {
				truth[tt][i] = starts[i].Add(vels[i].Scale(float64(tt)))
				obs[tt][i] = truth[tt][i].Add(bias).Add(geo.Pt(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
		corrected, _ := refine.JointDenoise(obs, 8)
		var rawErr, jdErr, itErr float64
		var count int
		for tt := 0; tt < nT; tt++ {
			// Iterative optimization per epoch with exact pairwise ranges.
			var ranges []refine.PairRange
			for i := 0; i < nObj; i++ {
				for j := i + 1; j < nObj; j++ {
					ranges = append(ranges, refine.PairRange{I: i, J: j, Dist: truth[tt][i].Dist(truth[tt][j])})
				}
			}
			iter := refine.IterativeOptimize(obs[tt], ranges, 150, 0.01)
			for i := 0; i < nObj; i++ {
				rawErr += obs[tt][i].Dist(truth[tt][i])
				jdErr += corrected[tt][i].Dist(truth[tt][i])
				itErr += iter[i].Dist(truth[tt][i])
				count++
			}
		}
		n := float64(count)
		t.AddRow(F1(biasSigma), F(rawErr/n), F(jdErr/n), F(itErr/n))
	}
	return t
}
