package exp

import (
	"math"
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/refine"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

// E2 compares trajectory uncertainty-elimination methods across
// sampling sparsity: calibration, smoothing (moving average and RTS),
// and inference-based route recovery (map matching).
func E2(seed int64) Table {
	t := Table{
		ID:    "E2",
		Title: "trajectory UE: mean error (m) vs sampling interval (noise σ=10 m)",
		Cols:  []string{"thin factor", "noisy raw", "moving avg", "RTS", "calibration", "map-matched", "route acc"},
		Notes: []string{"grid-city trips; calibration anchors = network nodes; route acc = Jaccard vs true edges"},
	}
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: seed})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 4, MinHops: 10, Speed: 12, SampleInterval: 1, Seed: seed + 1})
	anchors := make([]geo.Point, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		anchors = append(anchors, g.Node(roadnet.NodeID(i)).Pos)
	}
	for _, thin := range []int{2, 5, 10} {
		var raw, ma, rts, cal, mm, acc float64
		var n float64
		for k, trip := range trips {
			noisy := simulate.AddGaussianNoise(trip.Truth.Thin(thin), 10, seed+10+int64(k))
			raw += trajectory.MeanErrorAgainst(noisy, trip.Truth)
			ma += trajectory.MeanErrorAgainst(uncertain.MovingAverage(noisy, 2), trip.Truth)
			rts += trajectory.MeanErrorAgainst(refine.KalmanSmoothTrajectory(noisy, 1, 10), trip.Truth)
			cal += trajectory.MeanErrorAgainst(uncertain.CalibrateToAnchors(noisy, anchors, 25, 0.6), trip.Truth)
			res, err := uncertain.MapMatch(g, snapper, noisy, uncertain.MatchOptions{EmissionSigma: 12})
			if err == nil {
				mm += trajectory.MeanErrorAgainst(res.Recovered, trip.Truth)
				acc += uncertain.RouteAccuracy(res.Route, trip.Path.Edges)
			}
			n++
		}
		t.AddRow(I(thin), F(raw/n), F(ma/n), F(rts/n), F(cal/n), F(mm/n), F(acc/n))
	}
	return t
}

// E3 compares spatiotemporal interpolation methods across sensor
// density, and shows the gain from bias-corrected multi-source fusion.
func E3(seed int64) Table {
	t := Table{
		ID:    "E3",
		Title: "STID UE: interpolation MAE vs sensor density; fusion gain",
		Cols:  []string{"sensors", "IDW", "gaussian kernel", "trend+residual", "fused 2-src MAE"},
		Notes: []string{"1 km² field, 100 random location-time probes; 2nd source has +15 bias, 4x noise"},
	}
	f := simulate.NewField(simulate.FieldOptions{Seed: seed})
	for _, density := range []int{10, 20, 40, 80} {
		_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
			NumSensors: density, Interval: 600, Duration: 3600, NoiseSigma: 1, Seed: seed + int64(density),
		})
		idw := uncertain.IDW{Readings: readings, TimeWindow: 900}
		gk := uncertain.GaussianKernel{Readings: readings, SpaceSigma: 150, TimeSigma: 900}
		tr := uncertain.NewTrendResidual(readings, 2, 900)
		rng := rand.New(rand.NewSource(seed + 99))
		var eI, eG, eT float64
		const probes = 100
		for i := 0; i < probes; i++ {
			pos := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			tm := rng.Float64() * 3600
			truth := f.Value(pos, tm)
			if v, ok := idw.Estimate(pos, tm); ok {
				eI += math.Abs(v - truth)
			}
			if v, ok := gk.Estimate(pos, tm); ok {
				eG += math.Abs(v - truth)
			}
			if v, ok := tr.Estimate(pos, tm); ok {
				eT += math.Abs(v - truth)
			}
		}
		// Fusion: a second biased, noisier source on the same grid.
		_, noisy := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
			NumSensors: density, Interval: 600, Duration: 3600, NoiseSigma: 4, Seed: seed + 500 + int64(density),
		})
		biased := make([]stid.Reading, len(noisy))
		copy(biased, noisy)
		for i := range biased {
			biased[i].Value += 15
		}
		fres := uncertain.FuseSources([]uncertain.SourceReadings{
			{Source: "A", Readings: readings},
			{Source: "B", Readings: biased},
		}, 150)
		var eF float64
		for _, r := range fres.Fused {
			eF += math.Abs(r.Value - f.Value(r.Pos, r.T))
		}
		if len(fres.Fused) > 0 {
			eF /= float64(len(fres.Fused))
		}
		t.AddRow(I(density), F(eI/probes), F(eG/probes), F(eT/probes), F(eF))
	}
	return t
}
