package exp

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"sidq/internal/core"
	"sidq/internal/obs"
)

// pipelineWorkers is the data-parallel worker count experiment
// pipelines hand to core.Pipeline.RunParallel. Zero means serial. It
// is process-global (experiments have a fixed Run(seed) signature) and
// atomic so RunSelected may set it while experiments run concurrently.
var pipelineWorkers atomic.Int32

// SetPipelineWorkers sets the worker count experiment pipelines run
// with: 0 or 1 is serial, negative selects runtime.NumCPU(). Tables
// are bit-identical for every setting; only wall-clock time changes.
func SetPipelineWorkers(n int) {
	if n < 0 {
		n = runtime.NumCPU()
	}
	pipelineWorkers.Store(int32(n))
}

// PipelineWorkers returns the current experiment worker count (minimum
// 1, i.e. serial).
func PipelineWorkers() int {
	if n := int(pipelineWorkers.Load()); n > 1 {
		return n
	}
	return 1
}

// obsRegistry is the metrics registry experiment pipelines report
// into, process-global for the same reason as pipelineWorkers. Nil
// (the default) leaves pipelines uninstrumented.
var obsRegistry atomic.Pointer[obs.Registry]

// SetObsRegistry installs the registry experiment pipelines record
// stage metrics into (nil detaches). Tables are unaffected; only the
// registry's contents change.
func SetObsRegistry(reg *obs.Registry) { obsRegistry.Store(reg) }

// ObsRegistry returns the registry installed by SetObsRegistry, or
// nil.
func ObsRegistry() *obs.Registry { return obsRegistry.Load() }

// pipelineRunner is the runner experiment pipelines execute on: the
// PipelineWorkers pool with the installed registry attached.
func pipelineRunner() *core.Runner {
	return &core.Runner{Policy: core.SkipStage, Workers: PipelineWorkers(), Obs: ObsRegistry()}
}

// Rendered is one experiment's output, ready to print.
type Rendered struct {
	ID   string
	Name string
	Text string
}

// RunSelected runs the experiments whose upper-cased IDs appear in ids
// (nil or empty selects all) across a pool of workerCount goroutines
// (<= 0 selects runtime.NumCPU()), with the same worker count applied
// to data parallelism inside each experiment's pipelines. Results come
// back in All() order regardless of completion order, and each table
// is bit-identical to a serial run: experiments share no mutable state
// and every stage sharded inside a pipeline merges deterministically.
func RunSelected(seed int64, workerCount int, ids map[string]bool) []Rendered {
	if workerCount <= 0 {
		workerCount = runtime.NumCPU()
	}
	SetPipelineWorkers(workerCount)

	var selected []Experiment
	for _, e := range All() {
		if len(ids) == 0 || ids[strings.ToUpper(e.ID)] {
			selected = append(selected, e)
		}
	}
	out := make([]Rendered, len(selected))
	sem := make(chan struct{}, workerCount)
	var wg sync.WaitGroup
	for i, e := range selected {
		i, e := i, e
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			tb := e.Run(seed)
			out[i] = Rendered{ID: e.ID, Name: e.Name, Text: tb.Render()}
		}()
	}
	wg.Wait()
	return out
}
