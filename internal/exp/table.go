// Package exp contains the experiment harness that regenerates the
// paper-derived tables and figures listed in DESIGN.md: T1 (Table 1),
// F2 (Figure 2), and the taxonomy experiments E1-E12. Every experiment
// is deterministic given its seed and returns a Table that renders as
// an aligned text table; cmd/sidqbench prints them and the root bench
// suite times them.
package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F1 formats with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// Render returns the aligned text rendering of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Cols {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
