package exp

import (
	"fmt"
	"math/rand"
	"time"

	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/simulate"
	"sidq/internal/uquery"
)

// E8 evaluates probabilistic queries over uncertain objects across
// uncertainty levels: range precision/recall vs ground truth, pruning
// effectiveness, kNN overlap with the true neighbors, and
// between-sample inference agreement (prism vs Markov grid).
func E8(seed int64) Table {
	t := Table{
		ID:    "E8",
		Title: "uncertain queries: quality and pruning vs location uncertainty",
		Cols:  []string{"σ (m)", "range P", "range R", "pruned frac", "kNN overlap", "prism⊆markov"},
		Notes: []string{"500 Gaussian objects; threshold 0.5; kNN k=10 vs true positions; prism/markov on a 2-fix gap"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, sigma := range []float64{2, 5, 15, 40} {
		objs := make([]uquery.UncertainObject, 500)
		truth := make([]geo.Point, 500)
		for i := range objs {
			truth[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			mean := truth[i].Add(geo.Pt(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
			objs[i] = uquery.GaussianObject{ID: fmt.Sprintf("o%d", i), Mean: mean, Sigma: sigma}
		}
		rect := geo.RectFromCenter(geo.Pt(500, 500), 150, 150)
		res, st := uquery.ProbRange(objs, rect, 0.5)
		inTruth := map[string]bool{}
		total := 0
		for i, p := range truth {
			if rect.Contains(p) {
				inTruth[fmt.Sprintf("o%d", i)] = true
				total++
			}
		}
		hits := 0
		for _, r := range res {
			if inTruth[r.ID] {
				hits++
			}
		}
		prec, rec := 1.0, 1.0
		if len(res) > 0 {
			prec = float64(hits) / float64(len(res))
		}
		if total > 0 {
			rec = float64(hits) / float64(total)
		}
		prunedFrac := float64(st.Pruned) / float64(st.Candidates)

		// kNN overlap with true nearest neighbors.
		q := geo.Pt(500, 500)
		knn, _ := uquery.ProbKNN(objs, q, 10)
		trueKNN := map[string]bool{}
		type dv struct {
			id string
			d  float64
		}
		var all []dv
		for i, p := range truth {
			all = append(all, dv{fmt.Sprintf("o%d", i), p.Dist(q)})
		}
		for i := 0; i < 10; i++ {
			min := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[min].d {
					min = j
				}
			}
			all[i], all[min] = all[min], all[i]
			trueKNN[all[i].id] = true
		}
		overlap := 0
		for _, r := range knn {
			if trueKNN[r.ID] {
				overlap++
			}
		}

		// Between-sample agreement: every cell the prism admits should
		// carry Markov mass, and high-mass Markov cells should be inside
		// the prism (checked as containment fraction).
		pr := uquery.Prism{P1: geo.Pt(100, 500), P2: geo.Pt(900, 500), T1: 0, T2: 80, VMax: 20}
		mg := uquery.NewMarkovGrid(geo.Rect{Min: geo.Pt(0, 200), Max: geo.Pt(1000, 800)}, 25)
		dist := mg.Between(pr.P1, pr.T1, pr.P2, pr.T2, 4, 40)
		inside, massInside := 0.0, 0.0
		var totalMass float64
		for cy := 0; cy < 600/25; cy++ {
			for cx := 0; cx < 1000/25; cx++ {
				c := geo.Pt(float64(cx)*25+12.5, 200+float64(cy)*25+12.5)
				m := dist[cy*(1000/25)+cx]
				totalMass += m
				if pr.PossibleAt(c, 40) {
					inside++
					massInside += m
				}
			}
		}
		agreement := 0.0
		if totalMass > 0 {
			agreement = massInside / totalMass
		}
		t.AddRow(F1(sigma), F(prec), F(rec), F(prunedFrac), F(float64(overlap)/10), F(agreement))
	}
	return t
}

// E9 measures the dynamics-side machinery: safe-region communication
// savings, stream query late-drop handling, and distributed range-query
// throughput scaling with workers.
func E9(seed int64) Table {
	t := Table{
		ID:    "E9",
		Title: "dynamics: safe-region savings, stream lateness, distributed scaling",
		Cols:  []string{"workers", "dist insert+query ms", "speedup", "safe-region savings", "stream late frac"},
		Notes: []string{"20k points, 30 queries; savings over 100 ticks x 50 objects; stream: 10% disorder at 2x lateness"},
	}
	// Safe-region savings (worker-independent; computed once).
	query := geo.Rect{Min: geo.Pt(400, 400), Max: geo.Pt(600, 600)}
	mon := uquery.NewSafeRegionMonitor(query)
	rng := rand.New(rand.NewSource(seed))
	type obj struct {
		id  string
		pos geo.Point
	}
	objs := make([]obj, 50)
	for i := range objs {
		objs[i] = obj{fmt.Sprintf("o%d", i), geo.Pt(rng.Float64()*1000, rng.Float64()*1000)}
	}
	for tick := 0; tick < 100; tick++ {
		for i := range objs {
			objs[i].pos = objs[i].pos.Add(geo.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3))
			mon.Update(objs[i].id, objs[i].pos)
		}
	}
	savings, _, _ := mon.Savings()

	// Stream lateness (also worker-independent).
	counter := uquery.NewStreamRangeCounter(query, 10, 5)
	late := 0
	totalEvents := 0
	base := 0.0
	for i := 0; i < 5000; i++ {
		base += 0.1
		tm := base
		if rng.Float64() < 0.1 {
			tm -= 8 + rng.Float64()*8 // some beyond the 5 s lateness
		}
		counter.Push(tm, uquery.PointEvent{ID: fmt.Sprintf("e%d", i), Pos: geo.Pt(500, 500)})
		totalEvents++
	}
	counter.Flush()
	late = counter.Late()
	lateFrac := float64(late) / float64(totalEvents)

	// Distributed scaling.
	entries := make([]index.PointEntry, 20000)
	for i := range entries {
		entries[i] = index.PointEntry{
			ID:  fmt.Sprintf("p%05d", i),
			Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		}
	}
	var baseMs float64
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		store := uquery.NewDistStore(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 8, 8, workers)
		if err := store.InsertBatch(entries); err != nil {
			store.Close()
			continue
		}
		qrng := rand.New(rand.NewSource(seed + int64(workers)))
		for q := 0; q < 30; q++ {
			rect := geo.RectFromCenter(
				geo.Pt(qrng.Float64()*1000, qrng.Float64()*1000), 150, 150)
			if _, err := store.Range(rect); err != nil {
				break
			}
		}
		store.Close()
		ms := float64(time.Since(start).Microseconds()) / 1000
		if workers == 1 {
			baseMs = ms
		}
		speedup := 0.0
		if ms > 0 {
			speedup = baseMs / ms
		}
		t.AddRow(I(workers), F1(ms), F(speedup), F(savings), F(lateFrac))
	}
	return t
}

var _ = simulate.TripOptions{} // reserved for future dynamics workloads
