package exp

import (
	"math/rand"

	"sidq/internal/distrib"
	"sidq/internal/geo"
	"sidq/internal/outlier"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// E4b ablates the outlier-handling strategy (DESIGN ablation #3):
// repairing gross outliers with the motion prediction versus dropping
// them, scored on positional accuracy and on the completeness the
// consumer retains.
func E4b(seed int64) Table {
	t := Table{
		ID:    "E4b",
		Title: "outlier handling ablation: repair vs drop",
		Cols:  []string{"rate", "raw err", "drop err", "repair err", "drop kept", "repair kept"},
		Notes: []string{"mean error (m) vs truth; kept = points retained / original"},
	}
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(2000, 2000)}
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.3} {
		truth := simulate.RandomWalk("w", region, 600, 3, 1, seed)
		noisy := simulate.AddGaussianNoise(truth, 2, seed+1)
		corrupted, _ := simulate.InjectOutliers(noisy, rate, 150, seed+2)

		_, flags := outlier.Prediction(corrupted, outlier.PredictionOptions{MeasNoise: 4, Threshold: 6})
		dropped := outlier.Remove(corrupted, flags)
		repaired, _ := outlier.Prediction(corrupted, outlier.PredictionOptions{MeasNoise: 4, Threshold: 6, Repair: true})

		t.AddRow(F(rate),
			F1(trajectory.MeanErrorAgainst(corrupted, truth)),
			F1(trajectory.MeanErrorAgainst(dropped, truth)),
			F1(trajectory.MeanErrorAgainst(repaired, truth)),
			F(float64(dropped.Len())/float64(corrupted.Len())),
			F(float64(repaired.Len())/float64(corrupted.Len())),
		)
	}
	return t
}

// E9b reproduces the skewed-SID partitioning comparison: locality-
// preserving grid partitioning concentrates a hot spot on one worker,
// hash partitioning spreads it — the load-balancing trade-off the paper
// surveys for queries over skewed SID.
func E9b(seed int64) Table {
	t := Table{
		ID:    "E9b",
		Title: "skewed SID partitioning: load imbalance (max/mean) grid vs hash",
		Cols:  []string{"hot-spot frac", "grid imbalance", "hash imbalance"},
		Notes: []string{"16 partitions, 20k points; hot spot is a 30x30 m cell of a 1 km² region"},
	}
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	for _, hot := range []float64{0, 0.25, 0.5, 0.9} {
		rng := rand.New(rand.NewSource(seed))
		grid := distrib.NewGridPartitioner(bounds, 4, 4)
		hash := distrib.NewHashPartitioner(16, 0.5)
		gridCounts := make([]float64, 16)
		hashCounts := make([]float64, 16)
		const n = 20000
		for i := 0; i < n; i++ {
			var p geo.Point
			if rng.Float64() < hot {
				p = geo.Pt(500+rng.Float64()*30, 500+rng.Float64()*30)
			} else {
				p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			gridCounts[grid.Partition(p)]++
			hashCounts[hash.Partition(p)]++
		}
		t.AddRow(F(hot), F(imbalance(gridCounts)), F(imbalance(hashCounts)))
	}
	return t
}

func imbalance(counts []float64) float64 {
	var sum, max float64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(counts)))
}
