package exp

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d, %d)", tb.ID, row, col)
	}
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q: %v", tb.ID, row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestT1AndF2Render(t *testing.T) {
	tab := T1(42)
	if !strings.Contains(tab, "Noisy and erroneous") {
		t.Fatal("T1 missing rows")
	}
	fig := F2()
	if !strings.Contains(fig, "pre-processing layer") {
		t.Fatal("F2 missing layers")
	}
}

func TestE1aShapes(t *testing.T) {
	tb := E1Radio(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Errors grow with noise for multilateration (direct noise scaling).
	if cell(t, tb, 0, 2) >= cell(t, tb, 3, 2) {
		t.Fatal("multilateration error should grow with noise")
	}
	// Fusion never much worse than the better single source.
	for r := range tb.Rows {
		fused := cell(t, tb, r, 3)
		best := cell(t, tb, r, 1)
		if m := cell(t, tb, r, 2); m < best {
			best = m
		}
		if fused > best*1.3+0.5 {
			t.Fatalf("row %d: fused %v much worse than best %v", r, fused, best)
		}
	}
}

func TestE1bShapes(t *testing.T) {
	tb := E1Motion(2)
	for r := range tb.Rows {
		raw := cell(t, tb, r, 1)
		kal := cell(t, tb, r, 2)
		rts := cell(t, tb, r, 3)
		if kal >= raw {
			t.Fatalf("row %d: kalman %v >= raw %v", r, kal, raw)
		}
		if rts > kal {
			t.Fatalf("row %d: smoother %v worse than filter %v", r, rts, kal)
		}
	}
	// Raw error tracks sigma.
	if cell(t, tb, 0, 1) >= cell(t, tb, 3, 1) {
		t.Fatal("raw error should grow with noise")
	}
}

func TestE1cShapes(t *testing.T) {
	tb := E1Collab(3)
	for r := range tb.Rows {
		raw := cell(t, tb, r, 1)
		jd := cell(t, tb, r, 2)
		it := cell(t, tb, r, 3)
		if jd >= raw {
			t.Fatalf("row %d: joint denoise %v >= raw %v", r, jd, raw)
		}
		if it >= raw {
			t.Fatalf("row %d: iterative %v >= raw %v", r, it, raw)
		}
	}
}

func TestE2Shapes(t *testing.T) {
	tb := E2(4)
	for r := range tb.Rows {
		raw := cell(t, tb, r, 1)
		mm := cell(t, tb, r, 5)
		if mm >= raw {
			t.Fatalf("row %d: map-matched %v >= raw %v", r, mm, raw)
		}
		if acc := cell(t, tb, r, 6); acc < 0.3 {
			t.Fatalf("row %d: route accuracy %v", r, acc)
		}
	}
}

func TestE3Shapes(t *testing.T) {
	tb := E3(5)
	// Denser networks interpolate better (first vs last row, per method).
	for col := 1; col <= 3; col++ {
		if cell(t, tb, 3, col) >= cell(t, tb, 0, col) {
			t.Fatalf("col %d: error should shrink with density", col)
		}
	}
	// Fusion stays near the clean source despite the biased second source.
	for r := range tb.Rows {
		if cell(t, tb, r, 4) > 14 { // raw bias of the bad source alone is 15
			t.Fatalf("row %d: fusion failed to suppress bias: %v", r, cell(t, tb, r, 4))
		}
	}
}

func TestE4Shapes(t *testing.T) {
	tb := E4(6)
	// At the lowest rate every trajectory detector should be strong.
	for col := 1; col <= 3; col++ {
		if cell(t, tb, 0, col) < 0.6 {
			t.Fatalf("col %d weak at low rate: %v", col, cell(t, tb, 0, col))
		}
	}
	// STID temporal detector strong across rates.
	for r := range tb.Rows {
		if cell(t, tb, r, 4) < 0.6 {
			t.Fatalf("row %d: temporal F1 %v", r, cell(t, tb, r, 4))
		}
	}
}

func TestE4bShapes(t *testing.T) {
	tb := E4b(20)
	for r := range tb.Rows {
		raw := cell(t, tb, r, 1)
		drop := cell(t, tb, r, 2)
		rep := cell(t, tb, r, 3)
		if drop >= raw || rep >= raw {
			t.Fatalf("row %d: handling did not beat raw (%v %v %v)", r, raw, drop, rep)
		}
		// Repair keeps everything; drop loses the flagged share.
		if cell(t, tb, r, 5) != 1 {
			t.Fatalf("row %d: repair changed length", r)
		}
		if cell(t, tb, r, 4) >= 1 {
			t.Fatalf("row %d: drop kept everything", r)
		}
	}
}

func TestE9bShapes(t *testing.T) {
	tb := E9b(21)
	for r := range tb.Rows {
		grid := cell(t, tb, r, 1)
		hash := cell(t, tb, r, 2)
		// Hash stays near balanced regardless of skew.
		if hash > 1.6 {
			t.Fatalf("row %d: hash imbalance %v", r, hash)
		}
		// Under real skew, grid concentrates load.
		if hot := cell(t, tb, r, 0); hot >= 0.25 && grid < hash {
			t.Fatalf("row %d: grid (%v) should be worse than hash (%v) under skew", r, grid, hash)
		}
	}
	// Imbalance grows with the hot-spot fraction for grid.
	if cell(t, tb, 3, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("grid imbalance should grow with skew")
	}
}

func TestE5Shapes(t *testing.T) {
	tb := E5(7)
	for r := range tb.Rows {
		raw := cell(t, tb, r, 2)
		hmm := cell(t, tb, r, 4)
		if hmm <= raw {
			t.Fatalf("row %d: HMM %v <= raw %v", r, hmm, raw)
		}
		if before, after := cell(t, tb, r, 5), cell(t, tb, r, 6); r > 0 && after >= before {
			t.Fatalf("row %d: timestamp repair %v -> %v", r, before, after)
		}
	}
}

func TestE6Shapes(t *testing.T) {
	tb := E6(8)
	// Low-noise annotation and linking are near perfect.
	if cell(t, tb, 0, 1) < 0.9 || cell(t, tb, 0, 2) < 0.9 {
		t.Fatalf("low-noise integration weak: %v %v", cell(t, tb, 0, 1), cell(t, tb, 0, 2))
	}
	// Dedup removes the injected 30% duplicates exactly.
	for r := range tb.Rows {
		kept := cell(t, tb, r, 3)
		if kept < 0.7 || kept > 0.85 {
			t.Fatalf("row %d: dedup kept %v, want ~10/13", r, kept)
		}
	}
}

func TestE7Shapes(t *testing.T) {
	tb := E7(9)
	prevRatio := 0.0
	for r := range tb.Rows {
		eps := cell(t, tb, r, 0)
		ratio := cell(t, tb, r, 1)
		maxSED := cell(t, tb, r, 2)
		if maxSED > eps+1e-6 {
			t.Fatalf("row %d: DP bound violated: %v > %v", r, maxSED, eps)
		}
		if swSED := cell(t, tb, r, 4); swSED > eps+1e-6 {
			t.Fatalf("row %d: SW bound violated", r)
		}
		if ratio < prevRatio {
			t.Fatalf("row %d: ratio not monotone in eps", r)
		}
		prevRatio = ratio
	}
	tb2 := E7b(9)
	if len(tb2.Rows) != 5 {
		t.Fatalf("E7b rows = %d", len(tb2.Rows))
	}
	// Network-constrained compression dominates everything else.
	if cell(t, tb2, 0, 1) < 10 {
		t.Fatalf("network ratio = %v", cell(t, tb2, 0, 1))
	}
}

func TestE8Shapes(t *testing.T) {
	tb := E8(10)
	// Low uncertainty: near-perfect precision/recall and heavy pruning.
	if cell(t, tb, 0, 1) < 0.9 || cell(t, tb, 0, 2) < 0.9 {
		t.Fatalf("low-σ range quality: %v %v", cell(t, tb, 0, 1), cell(t, tb, 0, 2))
	}
	if cell(t, tb, 0, 3) < 0.5 {
		t.Fatalf("pruned frac = %v", cell(t, tb, 0, 3))
	}
	// Recall (vs truth membership) degrades as uncertainty grows.
	if cell(t, tb, 3, 2) > cell(t, tb, 0, 2) {
		t.Fatal("recall should not improve with uncertainty")
	}
	// Markov mass concentrates inside the prism.
	for r := range tb.Rows {
		if cell(t, tb, r, 5) < 0.9 {
			t.Fatalf("row %d: prism/markov agreement %v", r, cell(t, tb, r, 5))
		}
	}
}

func TestE9Shapes(t *testing.T) {
	tb := E9(11)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Safe-region savings are substantial; late fraction is near the
	// injected 10% (those events exceeded the lateness bound).
	if cell(t, tb, 0, 3) < 0.5 {
		t.Fatalf("savings = %v", cell(t, tb, 0, 3))
	}
	lf := cell(t, tb, 0, 4)
	if lf < 0.02 || lf > 0.2 {
		t.Fatalf("late frac = %v", lf)
	}
}

func TestE10Shapes(t *testing.T) {
	tb := E10(12)
	// Clustering degrades with uncertainty.
	if cell(t, tb, 0, 1) < 0.8 {
		t.Fatalf("low-σ ARI = %v", cell(t, tb, 0, 1))
	}
	if cell(t, tb, 3, 1) > cell(t, tb, 0, 1) {
		t.Fatal("ARI should not improve with uncertainty")
	}
	// Anomaly detection catches teleports at all noise levels.
	for r := range tb.Rows {
		if cell(t, tb, r, 2) < 0.5 {
			t.Fatalf("row %d anomaly F1 = %v", r, cell(t, tb, r, 2))
		}
	}
}

func TestE11Shapes(t *testing.T) {
	tb := E11(13)
	// Markov accuracy decreases as training data is dropped.
	if cell(t, tb, 3, 1) > cell(t, tb, 0, 1) {
		t.Fatal("dropping training data should not improve prediction")
	}
	for r := range tb.Rows {
		// Smoothed traffic inference beats naive scaling.
		if cell(t, tb, r, 3) >= cell(t, tb, r, 2) {
			t.Fatalf("row %d: smoothing did not help: %v vs %v",
				r, cell(t, tb, r, 3), cell(t, tb, r, 2))
		}
	}
	// DQ-aware assignment wins when quality is bad.
	if cell(t, tb, 3, 5) <= 1 {
		t.Fatalf("aware/blind at worst quality = %v", cell(t, tb, 3, 5))
	}
}

func TestE12Shapes(t *testing.T) {
	tb := E12(14)
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	parse := func(name string, col int) float64 {
		v, err := strconv.ParseFloat(byName[name][col], 64)
		if err != nil {
			t.Fatalf("parse %s[%d]: %v", name, col, err)
		}
		return v
	}
	if parse("full plan", 1) <= parse("none (raw)", 1) {
		t.Fatal("full pipeline should beat raw accuracy")
	}
	if parse("full plan", 1) <= parse("- outliers", 1) {
		t.Fatal("removing outlier stage should hurt accuracy")
	}
	if parse("full plan", 3) < parse("none (raw)", 3) {
		t.Fatal("cleaning should not hurt downstream query F1")
	}
	if parse("full plan", 1) < parse("reversed", 1) {
		t.Fatal("planned order should not lose to reversed order")
	}
}

func TestE13Shapes(t *testing.T) {
	tb := E13(15)
	prevOver := 0.0
	for r := range tb.Rows {
		if tb.Rows[r][1] != "true" {
			t.Fatalf("row %d: private query incorrect", r)
		}
		over := cell(t, tb, r, 2)
		if over < 1 {
			t.Fatalf("row %d: over-fetch < 1: %v", r, over)
		}
		if over < prevOver {
			t.Fatalf("row %d: over-fetch should grow with cell size", r)
		}
		prevOver = over
	}
	// Tokens per query shrink as cells grow.
	if cell(t, tb, 3, 3) >= cell(t, tb, 0, 3) {
		t.Fatal("token count should shrink with cell size")
	}
}

func TestE14Shapes(t *testing.T) {
	tb := E14(16)
	for r := range tb.Rows {
		worst := cell(t, tb, r, 1)
		fed := cell(t, tb, r, 3)
		central := cell(t, tb, r, 4)
		if fed >= worst {
			t.Fatalf("row %d: federated %v >= worst local %v", r, fed, worst)
		}
		// Centralized pooling is the bound; federated should be close
		// (same information, averaged rather than pooled).
		if fed > central*2+2 {
			t.Fatalf("row %d: federated %v far above centralized %v", r, fed, central)
		}
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, e := range All() {
		tb := e.Run(99)
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", e.ID)
		}
		out := tb.Render()
		if !strings.Contains(out, tb.ID) {
			t.Fatalf("%s render missing id", e.ID)
		}
	}
}
