package exp

import (
	"math"

	"sidq/internal/faults"
	"sidq/internal/geo"
	"sidq/internal/outlier"
	"sidq/internal/simulate"
)

// E4 scores the trajectory and STID outlier detectors across injected
// outlier rates.
func E4(seed int64) Table {
	t := Table{
		ID:    "E4",
		Title: "outlier removal: F1 vs injected outlier rate",
		Cols:  []string{"rate", "constraint F1", "statistics F1", "prediction F1", "STID temporal F1", "STID spatial F1", "STID s-t F1"},
		Notes: []string{"trajectory: 600-pt walks, σ=2 noise, 150 m spikes; STID: 30 sensors, 60-unit spikes"},
	}
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(2000, 2000)}
	f := simulate.NewField(simulate.FieldOptions{Seed: seed})
	for _, rate := range []float64{0.02, 0.05, 0.1, 0.2} {
		truth := simulate.RandomWalk("w", region, 600, 3, 1, seed+1)
		noisy := simulate.AddGaussianNoise(truth, 2, seed+2)
		corrupted, flags := simulate.InjectOutliers(noisy, rate, 150, seed+3)
		cF1 := outlier.Evaluate(outlier.SpeedConstraint(corrupted, 15), flags).F1()
		sF1 := outlier.Evaluate(outlier.Statistical(corrupted, outlier.StatisticalOptions{}), flags).F1()
		_, pFlags := outlier.Prediction(corrupted, outlier.PredictionOptions{MeasNoise: 4, Threshold: 6})
		pF1 := outlier.Evaluate(pFlags, flags).F1()

		_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
			NumSensors: 30, Interval: 300, Duration: 7200, NoiseSigma: 1, Seed: seed + 4,
		})
		rCorrupted, rFlags := simulate.InjectValueOutliers(readings, rate, 60, seed+5)
		tF1 := outlier.Evaluate(outlier.Temporal(rCorrupted, outlier.TemporalOptions{}), rFlags).F1()
		spF1 := outlier.Evaluate(outlier.Spatial(rCorrupted, outlier.SpatialOptions{Neighbors: 6, TimeWindow: 10}), rFlags).F1()
		stF1 := outlier.Evaluate(outlier.SpatioTemporal(rCorrupted, outlier.TemporalOptions{}, outlier.SpatialOptions{Neighbors: 6, TimeWindow: 10}), rFlags).F1()
		t.AddRow(F(rate), F(cF1), F(sF1), F(pF1), F(tF1), F(spF1), F(stF1))
	}
	return t
}

// E5 scores symbolic-trajectory fault correction and timestamp repair
// across fault rates.
func E5(seed int64) Table {
	t := Table{
		ID:    "E5",
		Title: "fault correction: epoch accuracy vs FN/FP rates; timestamp repair",
		Cols:  []string{"FN rate", "FP rate", "raw acc", "rules acc", "HMM acc", "ts err before", "ts err after"},
		Notes: []string{"12-reader corridor; rules = conflict resolution + smoothing impute; ts = jittered 2 s clock"},
	}
	for _, rates := range [][2]float64{{0.1, 0.02}, {0.2, 0.05}, {0.3, 0.1}, {0.4, 0.15}} {
		fn, fp := rates[0], rates[1]
		w := simulate.Symbolic("obj", simulate.SymbolicOptions{
			NumReaders: 12, Spacing: 20, Range: 8, Epoch: 1, Speed: 2,
			FalseNeg: fn, FalsePos: fp, Seed: seed,
		})
		dep := faults.Deployment{Epoch: 1, MaxSpeed: 6}
		for _, r := range w.Readers {
			dep.Readers = append(dep.Readers, faults.ReaderInfo{ID: r.ID, Pos: r.Pos, Range: r.Range})
		}
		obs := map[float64][]string{}
		for _, e := range w.Epochs {
			obs[e] = nil
		}
		for _, d := range w.Detections {
			obs[d.T] = append(obs[d.T], d.ReaderID)
		}
		raw := rawSymbolicAccuracy(w.Epochs, obs, w.Truth)
		rules := dep.SmoothImpute(w.Epochs, dep.ResolveConflicts(w.Epochs, obs), 5)
		rulesAcc := faults.SequenceAccuracy(rules, w.Truth)
		hmm := dep.HMMClean(w.Epochs, obs, fn, fp)
		hmmAcc := faults.SequenceAccuracy(hmm, w.Truth)

		// Timestamp repair: 2 s clock with jitter and gross errors.
		n := 200
		truthTs := make([]float64, n)
		obsTs := make([]float64, n)
		for i := range truthTs {
			truthTs[i] = float64(i) * 2
			obsTs[i] = truthTs[i]
		}
		// Gross errors scale with the FN rate to form a sweep.
		gross := int(fn * 40)
		for g := 0; g < gross; g++ {
			idx := 10 + g*4
			if idx < n {
				obsTs[idx] += 25
			}
		}
		repaired, err := faults.RepairTimestamps(obsTs, 1, 3)
		before, after := 0.0, 0.0
		if err == nil {
			for i := range truthTs {
				before += math.Abs(obsTs[i] - truthTs[i])
				after += math.Abs(repaired[i] - truthTs[i])
			}
			before /= float64(n)
			after /= float64(n)
		}
		t.AddRow(F(fn), F(fp), F(raw), F(rulesAcc), F(hmmAcc), F(before), F(after))
	}
	return t
}

func rawSymbolicAccuracy(epochs []float64, obs map[float64][]string, truth map[float64]string) float64 {
	ok := 0
	for _, t := range epochs {
		rs := obs[t]
		if len(rs) == 1 && rs[0] == truth[t] {
			ok++
		} else if len(rs) == 0 && truth[t] == faults.None {
			ok++
		}
	}
	if len(epochs) == 0 {
		return 1
	}
	return float64(ok) / float64(len(epochs))
}
