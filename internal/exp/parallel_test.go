package exp

import (
	"runtime"
	"testing"
)

// TestRunSelectedBitIdenticalAcrossWorkers is the acceptance test for
// the experiment harness: parallelism must introduce no divergence
// beyond an experiment's own run-to-run nondeterminism. A few tables
// report wall-clock measurements (e.g. E9's ms/speedup columns) that
// differ even between two serial runs; every other experiment must
// render byte-identical output at 1, 4, and NumCPU workers — and E12,
// the experiment that actually runs cleaning pipelines (sharded when
// workers > 1), must be in that deterministic set.
func TestRunSelectedBitIdenticalAcrossWorkers(t *testing.T) {
	defer SetPipelineWorkers(0)
	serial := RunSelected(42, 1, nil)
	serial2 := RunSelected(42, 1, nil)
	if len(serial) != len(All()) {
		t.Fatalf("serial run produced %d tables, want %d", len(serial), len(All()))
	}
	deterministic := map[string]bool{}
	for i := range serial {
		if serial[i].Text == serial2[i].Text {
			deterministic[serial[i].ID] = true
		}
	}
	if !deterministic["E12"] {
		t.Fatal("E12 (pipeline ablation) is not deterministic across serial runs")
	}
	if len(deterministic) < len(serial)-2 {
		t.Fatalf("only %d/%d experiments deterministic serially — expected all but the timing tables",
			len(deterministic), len(serial))
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got := RunSelected(42, w, nil)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d produced %d tables, want %d", w, len(got), len(serial))
		}
		for i := range got {
			if got[i].ID != serial[i].ID {
				t.Fatalf("workers=%d: table %d is %s, want %s (order broke)", w, i, got[i].ID, serial[i].ID)
			}
			if deterministic[got[i].ID] && got[i].Text != serial[i].Text {
				t.Fatalf("workers=%d: experiment %s rendered differently than serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					w, got[i].ID, serial[i].Text, got[i].Text)
			}
		}
	}
}

// TestRunSelectedFiltersByID pins the id filter the sidqbench -exp
// flag relies on (upper-cased match, All() order preserved).
func TestRunSelectedFiltersByID(t *testing.T) {
	defer SetPipelineWorkers(0)
	got := RunSelected(42, 2, map[string]bool{"E12": true, "E1A": true})
	if len(got) != 2 || got[0].ID != "E1a" || got[1].ID != "E12" {
		ids := make([]string, len(got))
		for i, r := range got {
			ids[i] = r.ID
		}
		t.Fatalf("selected ids = %v, want [E1a E12]", ids)
	}
}

// TestPipelineWorkersKnob pins the knob semantics experiments rely on.
func TestPipelineWorkersKnob(t *testing.T) {
	defer SetPipelineWorkers(0)
	SetPipelineWorkers(0)
	if got := PipelineWorkers(); got != 1 {
		t.Fatalf("workers(0) = %d, want 1", got)
	}
	SetPipelineWorkers(6)
	if got := PipelineWorkers(); got != 6 {
		t.Fatalf("workers(6) = %d, want 6", got)
	}
	SetPipelineWorkers(-1)
	if got := PipelineWorkers(); got < 1 {
		t.Fatalf("workers(-1) = %d, want >= 1", got)
	}
}
