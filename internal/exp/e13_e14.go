package exp

import (
	"fmt"
	"math/rand"

	"sidq/internal/decide"
	"sidq/internal/geo"
	"sidq/internal/private"
)

// E13 measures the privacy-preserving outsourcing scheme (§2.4
// emerging trend): correctness of the private range query versus a
// plaintext baseline, and the over-fetch cost across cell sizes — the
// efficiency/privacy knob of spatial-transformation schemes.
func E13(seed int64) Table {
	t := Table{
		ID:    "E13",
		Title: "privacy-preserving outsourcing: over-fetch vs cell size",
		Cols:  []string{"cell (m)", "results correct", "fetched/answer", "tokens/query"},
		Notes: []string{"2000 encrypted points, 20 range queries of ~120 m; server sees tokens only"},
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, 2000)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	queries := make([]geo.Rect, 20)
	for i := range queries {
		queries[i] = geo.RectFromCenter(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 120, 120)
	}
	for _, cell := range []float64{50, 100, 200, 400} {
		scheme := private.NewScheme([]byte("bench-key"), cell)
		server := private.NewServer()
		var recs []private.Record
		for i, p := range pts {
			recs = append(recs, scheme.Encrypt(uint64(i), p, []byte(fmt.Sprintf("d%d", i))))
		}
		server.Store(recs)
		client := &private.Client{Scheme: scheme}
		correct := true
		answers, tokens := 0, 0
		for _, rect := range queries {
			got, err := client.RangeQuery(server, rect)
			if err != nil {
				correct = false
				break
			}
			want := 0
			for _, p := range pts {
				if rect.Contains(p) {
					want++
				}
			}
			if len(got) != want {
				correct = false
			}
			answers += len(got)
			tokens += len(scheme.CoverTokens(rect))
		}
		overFetch := 0.0
		if answers > 0 {
			overFetch = float64(server.Fetched()) / float64(answers)
		}
		t.AddRow(F1(cell), fmt.Sprintf("%v", correct), F(overFetch), F1(float64(tokens)/float64(len(queries))))
	}
	return t
}

// E14 measures federated traffic-volume learning (§2.4 emerging
// trend): the federated-averaged global model versus each node's local
// model and versus the centralized (all raw data pooled) upper bound,
// across fleet sizes.
func E14(seed int64) Table {
	t := Table{
		ID:    "E14",
		Title: "federated learning: volume MAE vs number of nodes",
		Cols:  []string{"nodes", "worst local MAE", "best local MAE", "federated MAE", "centralized MAE"},
		Notes: []string{"30k trips split across companies by market share; raw data never leaves a node"},
	}
	for _, k := range []int{2, 4, 8} {
		truth, nodes, rates := federatedScenario(k, seed)
		fed := decide.NewFederatedVolume(len(truth))
		var updates []decide.LocalUpdate
		worst, best := 0.0, 1e18
		for i, g := range nodes {
			updates = append(updates, decide.LocalEstimate(g, rates[i], 1))
			local := decide.MAE(g.InferVolumes(rates[i], 1), truth)
			if local > worst {
				worst = local
			}
			if local < best {
				best = local
			}
		}
		if err := fed.Aggregate(updates); err != nil {
			continue
		}
		fedMAE := decide.MAE(fed.Global(), truth)

		// Centralized bound: pool everything with the summed rate.
		bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
		central := decide.NewVolumeGrid(bounds, 8, 8)
		var totalRate float64
		for i, g := range nodes {
			totalRate += rates[i]
			counts := g.Counts()
			for c, v := range counts {
				for j := 0; j < int(v); j++ {
					central.Add(cellCenter(bounds, 8, 8, c))
				}
			}
		}
		centralMAE := decide.MAE(central.InferVolumes(totalRate, 1), truth)
		t.AddRow(I(k), F1(worst), F1(best), F1(fedMAE), F1(centralMAE))
	}
	return t
}

// federatedScenario mirrors the decide package's test fixture: one
// probe stream split across k companies with random market shares.
func federatedScenario(k int, seed int64) (truth []float64, nodes []*decide.VolumeGrid, rates []float64) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	rng := rand.New(rand.NewSource(seed))
	truthGrid := decide.NewVolumeGrid(bounds, 8, 8)
	nodes = make([]*decide.VolumeGrid, k)
	rates = make([]float64, k)
	for i := range nodes {
		nodes[i] = decide.NewVolumeGrid(bounds, 8, 8)
		rates[i] = 0.05 + rng.Float64()*0.15
	}
	for i := 0; i < 30000; i++ {
		var p geo.Point
		if rng.Float64() < 0.7 {
			p = geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*120)
		} else {
			p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		truthGrid.Add(p)
		r := rng.Float64()
		acc := 0.0
		for j := range nodes {
			acc += rates[j]
			if r < acc {
				nodes[j].Add(p)
				break
			}
		}
	}
	return truthGrid.Counts(), nodes, rates
}

func cellCenter(bounds geo.Rect, nx, ny, i int) geo.Point {
	cx, cy := i%nx, i/nx
	w := bounds.Width() / float64(nx)
	h := bounds.Height() / float64(ny)
	return geo.Pt(
		bounds.Min.X+(float64(cx)+0.5)*w,
		bounds.Min.Y+(float64(cy)+0.5)*h,
	)
}
