package exp

import (
	"sidq/internal/core"
)

// F2 renders the Figure-2 taxonomy coverage matrix.
func F2() string { return core.RenderFigure2() }

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed int64) Table
}

// All returns every table-producing experiment in run order (T1 and F2
// render free-form text and are exposed separately).
func All() []Experiment {
	return []Experiment{
		{"E1a", "ensemble location refinement", E1Radio},
		{"E1b", "motion-based location refinement", E1Motion},
		{"E1c", "collaborative location refinement", E1Collab},
		{"E2", "trajectory uncertainty elimination", E2},
		{"E3", "STID interpolation and fusion", E3},
		{"E4", "outlier removal", E4},
		{"E4b", "outlier handling ablation", E4b},
		{"E5", "fault correction", E5},
		{"E6", "data integration", E6},
		{"E7", "trajectory compression", E7},
		{"E7b", "network + STID codecs", E7b},
		{"E8", "uncertain queries", E8},
		{"E9", "dynamics: continuous/stream/distributed", E9},
		{"E9b", "skew partitioning", E9b},
		{"E10", "analysis", E10},
		{"E11", "decision-making", E11},
		{"E12", "pipeline ablation", E12},
		{"E13", "privacy-preserving outsourcing", E13},
		{"E14", "federated volume learning", E14},
	}
}
