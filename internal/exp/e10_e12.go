package exp

import (
	"context"
	"fmt"
	"math/rand"

	"sidq/internal/analysis"
	"sidq/internal/core"
	"sidq/internal/decide"
	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/outlier"
	"sidq/internal/quality"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
	"sidq/internal/uquery"
)

// E10 evaluates the analysis layer: uncertain clustering quality vs
// noise, stream anomaly F1, and popular-route recovery overlap.
func E10(seed int64) Table {
	t := Table{
		ID:    "E10",
		Title: "analysis over low-quality SID",
		Cols:  []string{"σ (m)", "DBSCAN ARI", "anomaly F1", "popular-route overlap"},
		Notes: []string{"3 blobs + noise; anomalies = teleports in a 300-pt stream; routes: 30 noisy copies of one path"},
	}
	for _, sigma := range []float64{2, 10, 30, 60} {
		// Clustering.
		objs, truthLabels := blobs(sigma, seed)
		labels := analysis.UncertainDBSCAN(objs, 60, 5)
		ari := analysis.AdjustedRandIndex(labels, truthLabels)

		// Stream anomaly detection: teleports proportional in size to
		// sigma (noise raises the detection floor).
		rng := rand.New(rand.NewSource(seed + 1))
		var pts []trajectory.Point
		pos := geo.Pt(0, 0)
		for i := 0; i < 300; i++ {
			pos = pos.Add(geo.Pt(10+rng.NormFloat64()*sigma/10, rng.NormFloat64()*sigma/10))
			pts = append(pts, trajectory.Point{T: float64(i), Pos: pos})
		}
		tr := trajectory.New("t", pts)
		truthFlags := make([]bool, tr.Len())
		for _, idx := range []int{100, 200} {
			tr.Points[idx].Pos = tr.Points[idx].Pos.Add(geo.Pt(0, 500))
			truthFlags[idx] = true
		}
		got := analysis.DetectTrajectory(tr, 60, 5)
		// Score only the injected points (recovery position after a
		// teleport may legitimately flag idx+1 too; ignore those).
		var s outlier.Score
		for i := range truthFlags {
			switch {
			case got[i] && truthFlags[i]:
				s.TP++
			case got[i] && !truthFlags[i] && !(i > 0 && truthFlags[i-1]):
				s.FP++
			case !got[i] && truthFlags[i]:
				s.FN++
			}
		}

		// Popular route (noise level controls how many edges get dropped).
		routes := noisyRoutes(seed+2, sigma)
		route := analysis.PopularRoute(routes.noisy, 100)
		dom := map[int]bool{}
		for _, e := range routes.truth {
			dom[int(e)] = true
		}
		hits := 0
		for _, e := range route {
			if dom[int(e)] {
				hits++
			}
		}
		overlap := 0.0
		if len(route) > 0 {
			overlap = float64(hits) / float64(len(route))
		}
		t.AddRow(F1(sigma), F(ari), F(s.F1()), F(overlap))
	}
	return t
}

func blobs(sigma float64, seed int64) ([]uquery.UncertainObject, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := []geo.Point{{X: 100, Y: 100}, {X: 800, Y: 200}, {X: 400, Y: 800}}
	var objs []uquery.UncertainObject
	var labels []int
	id := 0
	for c, center := range centers {
		for i := 0; i < 40; i++ {
			mean := center.Add(geo.Pt(rng.NormFloat64()*25, rng.NormFloat64()*25))
			objs = append(objs, uquery.GaussianObject{ID: fmt.Sprintf("o%d", id), Mean: mean, Sigma: sigma})
			labels = append(labels, c)
			id++
		}
	}
	for i := 0; i < 12; i++ {
		objs = append(objs, uquery.GaussianObject{
			ID: fmt.Sprintf("n%d", i), Mean: geo.Pt(rng.Float64()*1000, rng.Float64()*1000), Sigma: sigma,
		})
		labels = append(labels, analysis.Noise)
	}
	return objs, labels
}

type routeSet struct {
	truth []roadnet.EdgeID
	noisy [][]roadnet.EdgeID
}

// noisyRoutes builds a dominant path plus noisy copies; higher sigma
// drops more edges per copy.
func noisyRoutes(seed int64, sigma float64) routeSet {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 8, NY: 8, Spacing: 100, Seed: seed})
	path, err := g.ShortestPath(0, roadnet.NodeID(g.NumNodes()-1))
	if err != nil {
		return routeSet{}
	}
	rng := rand.New(rand.NewSource(seed + 1))
	dropProb := sigma / 200 // 0.01..0.3 across the sweep
	var rs routeSet
	rs.truth = path.Edges
	for i := 0; i < 30; i++ {
		var r []roadnet.EdgeID
		for _, e := range path.Edges {
			if rng.Float64() < dropProb {
				continue
			}
			r = append(r, e)
		}
		if len(r) > 0 {
			rs.noisy = append(rs.noisy, r)
		}
	}
	return rs
}

// E11 evaluates decision-making under low data quality: next-location
// prediction vs training completeness (with and without incremental
// decay under drift), traffic inference MAE, recommendation hit rate
// under check-in uncertainty, and DQ-aware task assignment.
func E11(seed int64) Table {
	t := Table{
		ID:    "E11",
		Title: "decision-making: accuracy vs data quality deficits",
		Cols:  []string{"deficit", "markov acc", "traffic MAE naive", "traffic MAE smoothed", "rec hit@5", "assign aware/blind"},
		Notes: []string{"deficit = train-data drop fraction / check-in uncertainty / probe rate scenario coupling"},
	}
	for _, deficit := range []float64{0, 0.25, 0.5, 0.75} {
		// Next-location prediction with dropped training data.
		_, events := simulate.CheckIns(simulate.CheckInOptions{
			NumPOIs: 25, NumUsers: 12, VisitsEach: 60, Seed: seed,
		})
		byUser := map[string][]string{}
		for _, e := range events {
			byUser[e.UserID] = append(byUser[e.UserID], e.TruePOI)
		}
		rng := rand.New(rand.NewSource(seed + int64(deficit*100)))
		var train, test [][]string
		for _, seq := range byUser {
			cut := len(seq) * 3 / 4
			var kept []string
			for _, sym := range seq[:cut] {
				if rng.Float64() >= deficit {
					kept = append(kept, sym)
				}
			}
			train = append(train, kept)
			test = append(test, seq[cut:])
		}
		m := decide.NewMarkovPredictor(1)
		m.Train(train)
		acc := m.Accuracy(test)

		// Traffic inference: penetration rate shrinks with the deficit.
		rate := 0.4 * (1 - deficit)
		if rate < 0.05 {
			rate = 0.05
		}
		bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
		truthGrid := decide.NewVolumeGrid(bounds, 10, 10)
		obsGrid := decide.NewVolumeGrid(bounds, 10, 10)
		for i := 0; i < 20000; i++ {
			var p geo.Point
			if rng.Float64() < 0.7 {
				p = geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*120)
			} else {
				p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			truthGrid.Add(p)
			if rng.Float64() < rate {
				obsGrid.Add(p)
			}
		}
		truthCounts := truthGrid.Counts()
		naive := decide.MAE(obsGrid.InferVolumes(rate, 0), truthCounts)
		smoothed := decide.MAE(obsGrid.InferVolumes(rate, 1), truthCounts)

		// Recommendation under uncertainty = deficit.
		_, uev := simulate.CheckIns(simulate.CheckInOptions{
			NumPOIs: 20, NumUsers: 8, VisitsEach: 50, Uncertainty: deficit, Seed: seed + 7,
		})
		rec := decide.NewRecommender(0.2)
		cut := len(uev) * 3 / 4
		for _, e := range uev[:cut] {
			var visit decide.UncertainVisit
			for _, c := range e.Candidates {
				visit = append(visit, decide.POIProb{POI: c.POI, Prob: c.Prob})
			}
			rec.Observe(e.UserID, visit)
		}
		var tests []struct {
			User string
			POI  string
		}
		for _, e := range uev[cut:] {
			tests = append(tests, struct {
				User string
				POI  string
			}{e.UserID, e.TruePOI})
		}
		hit := rec.HitRate(tests, 5)

		// Task assignment: worker sigma grows with the deficit.
		ratio := assignRatio(seed+9, 20+deficit*200)
		t.AddRow(F(deficit), F(acc), F1(naive), F1(smoothed), F(hit), F(ratio))
	}
	return t
}

// assignRatio returns realized utility of DQ-aware over DQ-blind
// assignment when half the fleet has the given positional sigma.
func assignRatio(seed int64, badSigma float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	const n = 30
	workers := make([]decide.Worker, n)
	truePos := map[string]geo.Point{}
	for i := range workers {
		truth := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		sigma := 5.0
		if i%2 == 0 {
			sigma = badSigma
		}
		workers[i] = decide.Worker{ID: fmt.Sprintf("w%d", i), Sigma: sigma}
		truePos[workers[i].ID] = truth
	}
	tasks := make([]decide.Task, 15)
	for i := range tasks {
		tasks[i] = decide.Task{
			ID: fmt.Sprintf("t%d", i), Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Reward: 1, MaxRange: 250,
		}
	}
	var aware, blind float64
	for trial := 0; trial < 15; trial++ {
		for i := range workers {
			workers[i].Reported = truePos[workers[i].ID].Add(
				geo.Pt(rng.NormFloat64()*workers[i].Sigma, rng.NormFloat64()*workers[i].Sigma))
		}
		aware += decide.RealizedUtility(decide.AssignTasks(workers, tasks, true), workers, truePos, tasks)
		blind += decide.RealizedUtility(decide.AssignTasks(workers, tasks, false), workers, truePos, tasks)
	}
	if blind == 0 {
		return 1
	}
	return aware / blind
}

// E12 is the pipeline ablation: the planned cleaning pipeline versus
// versions with one stage removed (and a reversed-order variant), each
// scored on final accuracy and on a downstream spatio-temporal range
// query's F1 against ground truth.
func E12(seed int64) Table {
	t := Table{
		ID:    "E12",
		Title: "pipeline ablation: cleaning accuracy and downstream query F1",
		Cols:  []string{"pipeline", "accuracy", "precision err (m)", "query F1"},
		Notes: []string{"query: 40 random ST range queries on a trajectory index over cleaned vs truth data"},
	}
	ds := e12Dataset(seed)
	full := []core.Stage{
		core.DeduplicateStage{},
		core.OutlierRemovalStage{},
		core.SmoothingStage{},
		core.ImputeStage{},
	}
	variants := []struct {
		name   string
		stages []core.Stage
	}{
		{"none (raw)", nil},
		{"full plan", full},
		{"- dedup", full[1:]},
		{"- outliers", []core.Stage{full[0], full[2], full[3]}},
		{"- smoothing", []core.Stage{full[0], full[1], full[3]}},
		{"- impute", full[:3]},
		{"reversed", []core.Stage{full[3], full[2], full[1], full[0]}},
	}
	for _, v := range variants {
		cleaned, _, _ := core.NewPipeline(v.stages...).RunContext(context.Background(), pipelineRunner(), ds)
		a := cleaned.Assess()
		f1 := downstreamQueryF1(cleaned, seed+3)
		t.AddRow(v.name, F(a[quality.Accuracy]), F(a[quality.PrecisionError]), F(f1))
	}
	return t
}

func e12Dataset(seed int64) *core.Dataset {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              600,
	}
	for i := 0; i < 4; i++ {
		truth := simulate.RandomWalk(fmt.Sprintf("v%d", i), region, 600, 2, 1, seed+int64(i))
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 6, seed+20+int64(i))
		dirty, _ = simulate.InjectOutliers(dirty, 0.03, 120, seed+30+int64(i))
		dirty = simulate.DropSamples(dirty, 0.2, seed+40+int64(i))
		dirty = simulate.DuplicateSamples(dirty, 0.1, seed+10+int64(i))
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	return ds
}

// downstreamQueryF1 indexes the cleaned trajectories and the truth,
// runs random spatio-temporal range queries on both, and scores the
// cleaned answers against the truth answers.
func downstreamQueryF1(ds *core.Dataset, seed int64) float64 {
	cleanIdx := index.NewTrajectoryIndex(60)
	truthIdx := index.NewTrajectoryIndex(60)
	for _, tr := range ds.Trajectories {
		cleanIdx.Add(tr)
	}
	for _, tr := range ds.Truth {
		truthIdx.Add(tr)
	}
	rng := rand.New(rand.NewSource(seed))
	var tp, fp, fn int
	for q := 0; q < 40; q++ {
		rect := geo.RectFromCenter(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 60, 60)
		t0 := rng.Float64() * 500
		t1 := t0 + 50
		got := cleanIdx.RangeQuery(rect, t0, t1)
		want := truthIdx.RangeQuery(rect, t0, t1)
		wantSet := map[string]bool{}
		for _, id := range want {
			wantSet[id] = true
		}
		gotSet := map[string]bool{}
		for _, id := range got {
			gotSet[id] = true
			if wantSet[id] {
				tp++
			} else {
				fp++
			}
		}
		for _, id := range want {
			if !gotSet[id] {
				fn++
			}
		}
	}
	if tp == 0 {
		if fp == 0 && fn == 0 {
			return 1
		}
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
