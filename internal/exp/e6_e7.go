package exp

import (
	"fmt"
	"math"

	"sidq/internal/geo"
	"sidq/internal/integrate"
	"sidq/internal/reduce"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// E6 scores the data-integration tasks: semantic annotation accuracy,
// cross-system entity-linking precision, and reading deduplication.
func E6(seed int64) Table {
	t := Table{
		ID:    "E6",
		Title: "data integration: quality vs GPS noise",
		Cols:  []string{"noise σ (m)", "annotation acc", "linking precision", "dedup kept frac"},
		Notes: []string{"annotation: 3-stop visit tours; linking: 6 objects seen by 2 systems; dedup: 30% duplicated readings"},
	}
	pois := []integrate.POI{
		{ID: "home", Pos: geo.Pt(50, 50), Category: "home"},
		{ID: "work", Pos: geo.Pt(700, 100), Category: "work"},
		{ID: "cafe", Pos: geo.Pt(400, 650), Category: "food"},
		{ID: "gym", Pos: geo.Pt(100, 700), Category: "leisure"},
	}
	for _, sigma := range []float64{1, 4, 8, 16} {
		// Semantic annotation.
		truthTr, visits := visitTour(pois, []int{0, 1, 2, 3}, 180, 8)
		noisy := simulate.AddGaussianNoise(truthTr, sigma, seed+1)
		eps := integrate.Episodes(noisy, pois, 20+2*sigma, 90, 40+2*sigma)
		annAcc := integrate.AnnotationAccuracy(eps, visits)

		// Entity linking.
		region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
		var sysA, sysB []*trajectory.Trajectory
		for i := 0; i < 6; i++ {
			truth := simulate.RandomWalk(fmt.Sprintf("A%d", i), region, 150, 2, 1, seed+10+int64(i))
			sysA = append(sysA, truth)
			obs := simulate.AddGaussianNoise(truth, sigma, seed+20+int64(i))
			obs.ID = fmt.Sprintf("B%d", i)
			sysB = append(sysB, obs)
		}
		links := integrate.LinkEntities(sysA, sysB, 25, 0)
		correct := 0
		for _, l := range links {
			if l.A[1:] == l.B[1:] {
				correct++
			}
		}
		linkPrec := 0.0
		if len(links) > 0 {
			linkPrec = float64(correct) / float64(len(links))
		}

		// Deduplication.
		f := simulate.NewField(simulate.FieldOptions{Seed: seed})
		_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
			NumSensors: 20, Interval: 300, Duration: 3000, Seed: seed + 30,
		})
		dup := append([]stid.Reading(nil), readings...)
		for i := 0; i < len(readings)*3/10; i++ {
			dup = append(dup, readings[i])
		}
		merged := integrate.Deduplicate(dup, 5, 5)
		t.AddRow(F1(sigma), F(annAcc), F(linkPrec), F(float64(len(merged))/float64(len(dup))))
	}
	return t
}

// visitTour builds a tour dwelling at each POI; mirrors the integrate
// package's test helper.
func visitTour(pois []integrate.POI, order []int, dwell, speed float64) (*trajectory.Trajectory, map[float64]string) {
	var pts []trajectory.Point
	visits := map[float64]string{}
	tm := 0.0
	var cur geo.Point
	for k, idx := range order {
		target := pois[idx].Pos
		if k > 0 {
			dist := cur.Dist(target)
			steps := int(dist/(speed*5)) + 1
			for s := 1; s <= steps; s++ {
				tm += 5
				pts = append(pts, trajectory.Point{T: tm, Pos: cur.Lerp(target, float64(s)/float64(steps))})
			}
		}
		cur = target
		start := tm
		for dt := 0.0; dt <= dwell; dt += 10 {
			tm += 10
			wob := geo.Pt(math.Sin(tm)*2, math.Cos(tm)*2)
			pts = append(pts, trajectory.Point{T: tm, Pos: cur.Add(wob)})
		}
		visits[start+dwell/2] = pois[idx].ID
	}
	return trajectory.New("tour", pts), visits
}

// E7 measures data reduction: trajectory simplification ratios at
// bounded SED error, network-constrained encoding, and STID codecs.
func E7(seed int64) Table {
	t := Table{
		ID:    "E7",
		Title: "data reduction: compression ratio vs error bound",
		Cols:  []string{"eps (m)", "DP-SED ratio", "DP maxSED", "sliding-window ratio", "SW maxSED", "dead-reckoning ratio", "SQUISH@eq ratio"},
		Notes: []string{"grid-city trip @1 Hz; SQUISH capacity = DP's kept count (equal budget)"},
	}
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 150, Jitter: 10, RemoveFrac: 0.2, Seed: seed})
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 14, Speed: 12, SampleInterval: 1, Seed: seed})[0]
	for _, eps := range []float64{2, 5, 10, 25} {
		dp := reduce.DouglasPeuckerSED(trip, eps)
		sw := reduce.SlidingWindow(trip, eps)
		dr := reduce.DeadReckoning(trip, eps)
		sq := reduce.SQUISH(trip, dp.Len())
		t.AddRow(F1(eps),
			F1(reduce.CompressionRatio(trip.Len(), dp.Len())), F(reduce.VerifySED(trip, dp)),
			F1(reduce.CompressionRatio(trip.Len(), sw.Len())), F(reduce.VerifySED(trip, sw)),
			F1(reduce.CompressionRatio(trip.Len(), dr.Len())),
			F1(reduce.CompressionRatio(trip.Len(), sq.Len())),
		)
	}
	return t
}

// E7b measures network-constrained and STID codecs.
func E7b(seed int64) Table {
	t := Table{
		ID:    "E7b",
		Title: "data reduction: network-constrained + STID codecs",
		Cols:  []string{"codec", "ratio", "max error"},
	}
	// Network-constrained trip.
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 150, Seed: seed})
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 1, MinHops: 15, Speed: 12, SampleInterval: 1, Seed: seed})
	trip := trips[0]
	times := make([]float64, len(trip.Path.Edges))
	walked := 0.0
	for i, e := range trip.Path.Edges {
		walked += g.Edge(e).Length
		times[i] = walked / 12
	}
	enc := reduce.EncodeNetworkTrip(reduce.NetworkTrip{Route: trip.Path.Edges, Times: times}, 1)
	t.AddRow("network-constrained", F1(float64(reduce.RawTripBytes(trip.Truth.Len()))/float64(len(enc))), "0.5 s (time quantum)")

	// STID series: one sensor over a day.
	f := simulate.NewField(simulate.FieldOptions{Seed: seed + 1})
	samples := make([]reduce.Sample, 1440)
	vals := make([]float64, len(samples))
	pos := geo.Pt(500, 500)
	for i := range samples {
		tm := float64(i) * 60
		samples[i] = reduce.Sample{T: tm, V: f.Value(pos, tm)}
		vals[i] = samples[i].V
	}
	// Lossless after 0.01 quantization.
	q := reduce.Quantize(vals, 0.01)
	dv := reduce.DeltaVarintEncode(q)
	t.AddRow("delta+varint (q=0.01)", F1(float64(8*len(vals))/float64(len(dv))), "0.005 (quantization)")
	zz := make([]uint64, len(q))
	prev := int64(0)
	for i, v := range q {
		zz[i] = reduce.ZigZag(v - prev)
		prev = v
	}
	rice := reduce.RiceEncode(zz, 4)
	t.AddRow("rice k=4 (q=0.01)", F1(float64(8*len(vals))/float64(len(rice))), "0.005 (quantization)")
	// Lossy LTC at eps=0.5.
	kept := reduce.LTC(samples, 0.5)
	t.AddRow("LTC eps=0.5", F1(reduce.CompressionRatio(len(samples), len(kept))), F(reduce.MaxReconstructionError(samples, kept)))
	// Prediction suppression at eps=0.5.
	sup := reduce.SuppressConstant(samples, 0.5)
	var worst float64
	for _, s := range samples {
		v, _ := reduce.ReconstructConstant(sup, s.T)
		if d := math.Abs(v - s.V); d > worst {
			worst = d
		}
	}
	t.AddRow("suppress eps=0.5", F1(reduce.CompressionRatio(len(samples), len(sup))), F(worst))
	return t
}
