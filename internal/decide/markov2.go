package decide

// Markov2Predictor is an order-2 Markov next-symbol model with backoff
// to order 1: when the (prev2, prev1) context was never seen, the
// order-1 model answers instead. Higher order captures longer habits
// (home->work->lunch) when data suffices; backoff keeps coverage when
// it does not — the standard fix for the order/coverage trade-off of
// Markov mobility models.
type Markov2Predictor struct {
	pairs  map[[2]string]map[string]float64
	order1 *MarkovPredictor
	decay  float64
}

// NewMarkov2Predictor returns a predictor; decay as in NewMarkovPredictor.
func NewMarkov2Predictor(decay float64) *Markov2Predictor {
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	return &Markov2Predictor{
		pairs:  map[[2]string]map[string]float64{},
		order1: NewMarkovPredictor(decay),
		decay:  decay,
	}
}

// Observe records a transition (prev2, prev1) -> next.
func (m *Markov2Predictor) Observe(prev2, prev1, next string) {
	key := [2]string{prev2, prev1}
	row, ok := m.pairs[key]
	if !ok {
		row = map[string]float64{}
		m.pairs[key] = row
	}
	if m.decay < 1 {
		for k := range row {
			row[k] *= m.decay
		}
	}
	row[next]++
	m.order1.Observe(prev1, next)
}

// Train folds in whole sequences.
func (m *Markov2Predictor) Train(sequences [][]string) {
	for _, seq := range sequences {
		for i := 2; i < len(seq); i++ {
			m.Observe(seq[i-2], seq[i-1], seq[i])
		}
		// Order-1 still learns from the first transition.
		if len(seq) >= 2 {
			m.order1.Observe(seq[0], seq[1])
		}
	}
}

// Predict returns the most likely next symbol, backing off to order 1
// for unseen contexts. ok is false when even the order-1 context is
// unknown.
func (m *Markov2Predictor) Predict(prev2, prev1 string) (string, bool) {
	if row, ok := m.pairs[[2]string{prev2, prev1}]; ok && len(row) > 0 {
		best, bestN := "", -1.0
		for k, n := range row {
			if n > bestN || (n == bestN && k < best) {
				best, bestN = k, n
			}
		}
		return best, true
	}
	return m.order1.Predict(prev1)
}

// Accuracy evaluates next-symbol prediction over test sequences.
func (m *Markov2Predictor) Accuracy(sequences [][]string) float64 {
	correct, total := 0, 0
	for _, seq := range sequences {
		for i := 2; i < len(seq); i++ {
			pred, ok := m.Predict(seq[i-2], seq[i-1])
			if !ok {
				continue
			}
			total++
			if pred == seq[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
