package decide

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
)

func checkinSequences(uncertainty float64, seed int64) ([][]string, [][]string) {
	_, events := simulate.CheckIns(simulate.CheckInOptions{
		NumPOIs: 25, NumUsers: 12, VisitsEach: 60, Uncertainty: uncertainty, Seed: seed,
	})
	byUser := map[string][]string{}
	for _, e := range events {
		byUser[e.UserID] = append(byUser[e.UserID], e.TruePOI)
	}
	var train, test [][]string
	for _, seq := range byUser {
		cut := len(seq) * 3 / 4
		train = append(train, seq[:cut])
		test = append(test, seq[cut:])
	}
	return train, test
}

func TestMarkovPredictorLearnsHabits(t *testing.T) {
	train, test := checkinSequences(0, 1)
	m := NewMarkovPredictor(1)
	m.Train(train)
	acc := m.Accuracy(test)
	// The generator picks the next POI uniformly within the next
	// habitual category (~5 POIs/category), so ~10% is the model
	// ceiling; anything well above the 1/25 = 4% uniform baseline
	// shows the habit was learned.
	if acc < 0.08 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestMarkovPredictorDeterministicTieBreak(t *testing.T) {
	m := NewMarkovPredictor(1)
	m.Observe("a", "x")
	m.Observe("a", "y")
	p1, _ := m.Predict("a")
	p2, _ := m.Predict("a")
	if p1 != p2 || p1 != "x" { // lexicographic tie-break
		t.Fatalf("tie break: %v %v", p1, p2)
	}
	if _, ok := m.Predict("unknown"); ok {
		t.Fatal("unknown context should be !ok")
	}
}

func TestMarkovPredictTopK(t *testing.T) {
	m := NewMarkovPredictor(1)
	for i := 0; i < 5; i++ {
		m.Observe("a", "x")
	}
	for i := 0; i < 3; i++ {
		m.Observe("a", "y")
	}
	m.Observe("a", "z")
	top := m.PredictTopK("a", 2)
	if len(top) != 2 || top[0] != "x" || top[1] != "y" {
		t.Fatalf("topk = %v", top)
	}
	if m.PredictTopK("a", 0) != nil || m.PredictTopK("nope", 3) != nil {
		t.Fatal("degenerate topk")
	}
	if got := m.PredictTopK("a", 10); len(got) != 3 {
		t.Fatalf("k clamp: %v", got)
	}
}

func TestDecayTracksDrift(t *testing.T) {
	// Behaviour drifts: first phase a->x, second phase a->y. A decayed
	// model should adapt; an undecayed one stays stuck on x because the
	// first phase is longer.
	decayed := NewMarkovPredictor(0.9)
	static := NewMarkovPredictor(1)
	for i := 0; i < 200; i++ {
		decayed.Observe("a", "x")
		static.Observe("a", "x")
	}
	for i := 0; i < 80; i++ {
		decayed.Observe("a", "y")
		static.Observe("a", "y")
	}
	dp, _ := decayed.Predict("a")
	sp, _ := static.Predict("a")
	if dp != "y" {
		t.Fatalf("decayed model did not adapt: %v", dp)
	}
	if sp != "x" {
		t.Fatalf("static model unexpectedly adapted: %v", sp)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewMarkovPredictor(1)
	if m.Accuracy(nil) != 0 {
		t.Fatal("empty accuracy")
	}
}

func TestInferVolumesImproves(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	rng := rand.New(rand.NewSource(2))
	truthGrid := NewVolumeGrid(bounds, 10, 10)
	observedGrid := NewVolumeGrid(bounds, 10, 10)
	const rate = 0.2
	// Smooth true demand: dense in a hot band, sparse elsewhere.
	for i := 0; i < 40000; i++ {
		var p geo.Point
		if rng.Float64() < 0.7 {
			p = geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*120)
		} else {
			p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		truthGrid.Add(p)
		if rng.Float64() < rate {
			observedGrid.Add(p)
		}
	}
	truth := truthGrid.Counts()
	naive := observedGrid.InferVolumes(rate, 0)
	smoothed := observedGrid.InferVolumes(rate, 1)
	if MAE(smoothed, truth) >= MAE(naive, truth) {
		t.Fatalf("smoothing did not help: naive %v smoothed %v",
			MAE(naive, truth), MAE(smoothed, truth))
	}
	// Scaling matters: unscaled counts are far off.
	raw := observedGrid.Counts()
	if MAE(raw, truth) <= MAE(naive, truth) {
		t.Fatal("penetration-rate scaling should dominate raw counts")
	}
}

func TestVolumeGridDegenerate(t *testing.T) {
	g := NewVolumeGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 0, 0)
	g.Add(geo.Pt(-5, 50)) // clamps
	if got := g.InferVolumes(0, -1); got[0] != 1 {
		t.Fatalf("degenerate inference: %v", got)
	}
	if !math.IsInf(MAE([]float64{1}, []float64{1, 2}), 1) {
		t.Fatal("MAE length mismatch")
	}
}

func TestRecommenderHitRate(t *testing.T) {
	_, events := simulate.CheckIns(simulate.CheckInOptions{
		NumPOIs: 20, NumUsers: 8, VisitsEach: 50, Uncertainty: 0.3, Seed: 3,
	})
	rec := NewRecommender(0.2)
	cut := len(events) * 3 / 4
	for _, e := range events[:cut] {
		var visit UncertainVisit
		for _, c := range e.Candidates {
			visit = append(visit, POIProb{POI: c.POI, Prob: c.Prob})
		}
		rec.Observe(e.UserID, visit)
	}
	var tests []struct {
		User string
		POI  string
	}
	for _, e := range events[cut:] {
		tests = append(tests, struct {
			User string
			POI  string
		}{e.UserID, e.TruePOI})
	}
	hr := rec.HitRate(tests, 5)
	// Top-5 of 20 POIs at random would hit 25%; habits should beat it.
	if hr < 0.3 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestRecommendExcludes(t *testing.T) {
	rec := NewRecommender(0)
	rec.Observe("u", UncertainVisit{{POI: "a", Prob: 1}})
	rec.Observe("u", UncertainVisit{{POI: "b", Prob: 0.5}})
	top := rec.Recommend("u", 5, map[string]bool{"a": true})
	for _, s := range top {
		if s.POI == "a" {
			t.Fatal("excluded poi recommended")
		}
	}
	if rec.Recommend("u", 0, nil) != nil {
		t.Fatal("k=0")
	}
	if got := rec.HitRate(nil, 3); got != 0 {
		t.Fatal("empty hit rate")
	}
}

func TestAssignTasksDQAwareBeatsBlind(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 30
	workers := make([]Worker, n)
	truePos := map[string]geo.Point{}
	for i := range workers {
		truth := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		// Half the fleet has very poor positioning.
		sigma := 5.0
		if i%2 == 0 {
			sigma = 150
		}
		workers[i] = Worker{
			ID:       fmt.Sprintf("w%d", i),
			Reported: truth.Add(geo.Pt(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)),
			Sigma:    sigma,
		}
		truePos[workers[i].ID] = truth
	}
	tasks := make([]Task, 15)
	for i := range tasks {
		tasks[i] = Task{
			ID:       fmt.Sprintf("t%d", i),
			Pos:      geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Reward:   1,
			MaxRange: 250,
		}
	}
	var awareTotal, blindTotal float64
	for trial := 0; trial < 20; trial++ {
		// Re-noise the reports each trial for stability.
		for i := range workers {
			workers[i].Reported = truePos[workers[i].ID].Add(
				geo.Pt(rng.NormFloat64()*workers[i].Sigma, rng.NormFloat64()*workers[i].Sigma))
		}
		aware := AssignTasks(workers, tasks, true)
		blind := AssignTasks(workers, tasks, false)
		awareTotal += RealizedUtility(aware, workers, truePos, tasks)
		blindTotal += RealizedUtility(blind, workers, truePos, tasks)
	}
	if awareTotal <= blindTotal {
		t.Fatalf("DQ-aware (%v) should beat DQ-blind (%v)", awareTotal, blindTotal)
	}
}

func TestAssignTasksOneToOne(t *testing.T) {
	workers := []Worker{
		{ID: "w1", Reported: geo.Pt(0, 0), Sigma: 1},
		{ID: "w2", Reported: geo.Pt(10, 0), Sigma: 1},
	}
	tasks := []Task{
		{ID: "t1", Pos: geo.Pt(1, 0), Reward: 1, MaxRange: 100},
		{ID: "t2", Pos: geo.Pt(11, 0), Reward: 1, MaxRange: 100},
		{ID: "t3", Pos: geo.Pt(500, 500), Reward: 1, MaxRange: 10}, // unreachable
	}
	as := AssignTasks(workers, tasks, true)
	if len(as) != 2 {
		t.Fatalf("assignments = %d", len(as))
	}
	seenW := map[string]bool{}
	seenT := map[string]bool{}
	for _, a := range as {
		if seenW[a.Worker] || seenT[a.Task] {
			t.Fatal("not one-to-one")
		}
		seenW[a.Worker] = true
		seenT[a.Task] = true
		if a.Task == "t3" {
			t.Fatal("unreachable task assigned")
		}
	}
}
