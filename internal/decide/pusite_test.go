package decide

import (
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

func TestPUSiteSelectionPrefersPositivePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	// Successful facilities cluster along a demand band at y~300; the
	// unlabeled background is city-wide with a saturated downtown blob.
	var positives []geo.Point
	for i := 0; i < 20; i++ {
		positives = append(positives, geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*40))
	}
	var unlabeled []geo.Point
	for i := 0; i < 300; i++ {
		if rng.Float64() < 0.5 {
			unlabeled = append(unlabeled, geo.Pt(500+rng.NormFloat64()*60, 700+rng.NormFloat64()*60))
		} else {
			unlabeled = append(unlabeled, geo.Pt(rng.Float64()*1000, rng.Float64()*1000))
		}
	}
	candidates := []geo.Point{
		geo.Pt(200, 300), // on the demand band, away from saturation
		geo.Pt(500, 700), // saturated downtown
		geo.Pt(900, 950), // nowhere
	}
	ranked := PUSiteSelection(positives, unlabeled, candidates, 100)
	if ranked[0].Pos != candidates[0] {
		t.Fatalf("top site = %v (scores %+v)", ranked[0].Pos, ranked)
	}
	// The saturated blob must rank below the band site.
	for _, s := range ranked {
		if s.Pos == candidates[1] && s.Score >= ranked[0].Score {
			t.Fatal("saturated site outranked the band site")
		}
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
}

func TestPUSiteSelectionDegenerate(t *testing.T) {
	if got := PUSiteSelection(nil, nil, nil, 0); len(got) != 0 {
		t.Fatal("empty candidates")
	}
	got := PUSiteSelection(nil, nil, []geo.Point{{X: 1, Y: 1}}, 50)
	if len(got) != 1 || got[0].Score != 0 {
		t.Fatalf("no-positives score = %+v", got)
	}
}
