package decide

import (
	"math"
	"math/rand"
)

// AdaptiveSampler chooses an IoT node's sampling interval online with
// an epsilon-greedy multi-armed bandit — the paper's
// reinforcement-learning trend applied to the energy/quality trade-off
// of dynamic SID collection. Each arm is a candidate interval; the
// caller reports a reward after each round (typically
// -(energyCost + lambda * reconstructionError)), and the sampler
// converges to the interval that balances the two.
type AdaptiveSampler struct {
	intervals []float64
	counts    []int
	values    []float64 // running mean reward per arm
	epsilon   float64
	rng       *rand.Rand
	lastArm   int
}

// NewAdaptiveSampler returns a sampler over the candidate intervals
// (seconds) with the given exploration rate (default 0.1).
func NewAdaptiveSampler(intervals []float64, epsilon float64, seed int64) *AdaptiveSampler {
	if len(intervals) == 0 {
		intervals = []float64{1}
	}
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.1
	}
	return &AdaptiveSampler{
		intervals: append([]float64(nil), intervals...),
		counts:    make([]int, len(intervals)),
		values:    make([]float64, len(intervals)),
		epsilon:   epsilon,
		rng:       rand.New(rand.NewSource(seed)),
		lastArm:   -1,
	}
}

// Choose picks the next sampling interval (epsilon-greedy).
func (a *AdaptiveSampler) Choose() float64 {
	if a.rng.Float64() < a.epsilon {
		a.lastArm = a.rng.Intn(len(a.intervals))
		return a.intervals[a.lastArm]
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range a.values {
		if a.counts[i] == 0 {
			// Optimistic initialization: try every arm once.
			a.lastArm = i
			return a.intervals[i]
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	a.lastArm = best
	return a.intervals[best]
}

// Reward reports the outcome of the last chosen interval.
func (a *AdaptiveSampler) Reward(r float64) {
	if a.lastArm < 0 {
		return
	}
	i := a.lastArm
	a.counts[i]++
	a.values[i] += (r - a.values[i]) / float64(a.counts[i])
}

// Best returns the currently best-believed interval.
func (a *AdaptiveSampler) Best() float64 {
	best, bestV := 0, math.Inf(-1)
	for i, v := range a.values {
		if a.counts[i] > 0 && v > bestV {
			best, bestV = i, v
		}
	}
	return a.intervals[best]
}

// Pulls returns how many times each interval was chosen.
func (a *AdaptiveSampler) Pulls() []int { return append([]int(nil), a.counts...) }
