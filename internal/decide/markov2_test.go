package decide

import "testing"

func TestMarkov2BeatsOrder1OnSecondOrderHabits(t *testing.T) {
	// Habit is strictly second-order: after (A,B) comes C, after (X,B)
	// comes D — an order-1 model on context B can only get one right.
	var train [][]string
	for i := 0; i < 50; i++ {
		train = append(train, []string{"A", "B", "C"})
		train = append(train, []string{"X", "B", "D"})
	}
	m2 := NewMarkov2Predictor(1)
	m2.Train(train)
	m1 := NewMarkovPredictor(1)
	m1.Train(train)
	test := [][]string{{"A", "B", "C"}, {"X", "B", "D"}}
	if a2 := m2.Accuracy(test); a2 != 1 {
		t.Fatalf("order2 acc %v", a2)
	}
	// Order 1 sees only context B and must get one of the two wrong.
	p, _ := m1.Predict("B")
	hits := 0
	if p == "C" {
		hits++
	}
	if p == "D" {
		hits++
	}
	if hits != 1 {
		t.Fatalf("order1 should satisfy exactly one habit, predicted %q", p)
	}
}

func TestMarkov2BackoffToOrder1(t *testing.T) {
	m := NewMarkov2Predictor(1)
	m.Train([][]string{{"A", "B", "C"}})
	// Unseen order-2 context (Z, B) backs off to order-1 context B.
	got, ok := m.Predict("Z", "B")
	if !ok || got != "C" {
		t.Fatalf("backoff: %v %v", got, ok)
	}
	// Completely unknown context fails.
	if _, ok := m.Predict("Z", "Q"); ok {
		t.Fatal("unknown context should be !ok")
	}
}

func TestMarkov2EmptyAccuracy(t *testing.T) {
	m := NewMarkov2Predictor(0.5)
	if m.Accuracy([][]string{{"a"}}) != 0 {
		t.Fatal("empty accuracy")
	}
}
