package decide

import (
	"sort"

	"sidq/internal/geo"
)

// Task is a spatial task to be served at a location before a deadline
// horizon (expressed as a maximum useful travel distance).
type Task struct {
	ID       string
	Pos      geo.Point
	Reward   float64
	MaxRange float64 // assignments farther than this earn nothing
}

// Worker is a candidate with a reported position whose quality is
// quantified by an error stddev (meters): low-quality positions make
// the real travel distance uncertain.
type Worker struct {
	ID       string
	Reported geo.Point
	Sigma    float64 // positional uncertainty of the report
}

// Assignment pairs a worker with a task.
type Assignment struct {
	Worker, Task    string
	ExpectedUtility float64
}

// ghNodes are the 3-point Gauss-Hermite nodes/weights for N(0, 1),
// used to integrate utility over a worker's positional uncertainty.
var ghNodes = [3]struct{ x, w float64 }{
	{-1.7320508075688772, 1.0 / 6}, // -sqrt(3)
	{0, 2.0 / 3},
	{1.7320508075688772, 1.0 / 6},
}

// expectedUtility scores worker w on task t. A DQ-blind assigner
// trusts the reported position outright; the DQ-aware assigner
// integrates the realized utility max(0, 1 - d/range) over the
// worker's positional error distribution (3x3 Gauss-Hermite
// quadrature), so unreliable reports are neither trusted nor simply
// discarded — they are weighted by what they are actually worth.
func expectedUtility(w Worker, t Task, dqAware bool) float64 {
	if t.MaxRange <= 0 {
		return 0
	}
	utility := func(p geo.Point) float64 {
		d := p.Dist(t.Pos)
		if d >= t.MaxRange {
			return 0
		}
		return t.Reward * (1 - d/t.MaxRange)
	}
	if !dqAware || w.Sigma <= 0 {
		return utility(w.Reported)
	}
	var e float64
	for _, nx := range ghNodes {
		for _, ny := range ghNodes {
			p := w.Reported.Add(geo.Pt(nx.x*w.Sigma, ny.x*w.Sigma))
			e += nx.w * ny.w * utility(p)
		}
	}
	return e
}

// AssignTasks assigns workers to tasks one-to-one, greedily by
// expected utility. With dqAware set, positional uncertainty discounts
// utilities, which steers tasks with tight ranges toward workers with
// trustworthy reports (the DQ-aware task planning direction the paper
// advocates).
func AssignTasks(workers []Worker, tasks []Task, dqAware bool) []Assignment {
	type cand struct {
		w, t int
		u    float64
	}
	var cands []cand
	for i, w := range workers {
		for j, t := range tasks {
			if u := expectedUtility(w, t, dqAware); u > 0 {
				cands = append(cands, cand{i, j, u})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].u != cands[b].u {
			return cands[a].u > cands[b].u
		}
		if cands[a].w != cands[b].w {
			return cands[a].w < cands[b].w
		}
		return cands[a].t < cands[b].t
	})
	usedW := make([]bool, len(workers))
	usedT := make([]bool, len(tasks))
	var out []Assignment
	for _, c := range cands {
		if usedW[c.w] || usedT[c.t] {
			continue
		}
		usedW[c.w] = true
		usedT[c.t] = true
		out = append(out, Assignment{
			Worker:          workers[c.w].ID,
			Task:            tasks[c.t].ID,
			ExpectedUtility: c.u,
		})
	}
	return out
}

// RealizedUtility scores assignments against the workers' true
// positions: the utility actually obtained once workers travel.
func RealizedUtility(assignments []Assignment, workers []Worker, truePos map[string]geo.Point, tasks []Task) float64 {
	taskByID := map[string]Task{}
	for _, t := range tasks {
		taskByID[t.ID] = t
	}
	var total float64
	for _, a := range assignments {
		t, ok := taskByID[a.Task]
		if !ok {
			continue
		}
		pos, ok := truePos[a.Worker]
		if !ok {
			continue
		}
		d := pos.Dist(t.Pos)
		if t.MaxRange > 0 && d < t.MaxRange {
			total += t.Reward * (1 - d/t.MaxRange)
		}
	}
	return total
}
