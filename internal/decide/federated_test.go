package decide

import (
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

// federatedScenario splits one city's probe stream across k companies
// with different market shares; the true volume grid is returned for
// scoring.
func federatedScenario(k int, seed int64) (truth []float64, nodes []*VolumeGrid, rates []float64) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	rng := rand.New(rand.NewSource(seed))
	truthGrid := NewVolumeGrid(bounds, 8, 8)
	nodes = make([]*VolumeGrid, k)
	rates = make([]float64, k)
	var rateSum float64
	for i := range nodes {
		nodes[i] = NewVolumeGrid(bounds, 8, 8)
		rates[i] = 0.05 + rng.Float64()*0.15
		rateSum += rates[i]
	}
	for i := 0; i < 30000; i++ {
		var p geo.Point
		if rng.Float64() < 0.7 {
			p = geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*120)
		} else {
			p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		truthGrid.Add(p)
		r := rng.Float64()
		acc := 0.0
		for j := range nodes {
			acc += rates[j]
			if r < acc {
				nodes[j].Add(p)
				break
			}
		}
		_ = rateSum
	}
	return truthGrid.Counts(), nodes, rates
}

func TestFederatedAveragingApproachesCentralized(t *testing.T) {
	truth, nodes, rates := federatedScenario(5, 1)
	fed := NewFederatedVolume(64)
	var updates []LocalUpdate
	for i, g := range nodes {
		updates = append(updates, LocalEstimate(g, rates[i], 1))
	}
	if err := fed.Aggregate(updates); err != nil {
		t.Fatal(err)
	}
	global := fed.Global()
	// The federated model must beat every single node's local estimate.
	fedErr := MAE(global, truth)
	for i, g := range nodes {
		if local := MAE(g.InferVolumes(rates[i], 1), truth); local < fedErr {
			t.Fatalf("node %d local MAE %v beats federated %v", i, local, fedErr)
		}
	}
	if fed.Rounds() != 1 {
		t.Fatalf("rounds = %d", fed.Rounds())
	}
}

func TestFederatedShapeMismatchAndEmpty(t *testing.T) {
	fed := NewFederatedVolume(4)
	if err := fed.Aggregate([]LocalUpdate{{Estimate: []float64{1, 2}, Samples: 5}}); err != ErrShapeMismatch {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
	for _, v := range fed.Global() {
		if v != 0 {
			t.Fatal("empty model should be zero")
		}
	}
	// Zero-sample updates are ignored, not divided by.
	if err := fed.Aggregate([]LocalUpdate{{Estimate: make([]float64, 4), Samples: 0}}); err != nil {
		t.Fatal(err)
	}
	for _, v := range fed.Global() {
		if v != 0 {
			t.Fatal("zero-sample update should not move the model")
		}
	}
}

func TestFederatedWeightsBySamples(t *testing.T) {
	fed := NewFederatedVolume(1)
	err := fed.Aggregate([]LocalUpdate{
		{Estimate: []float64{10}, Samples: 90},
		{Estimate: []float64{20}, Samples: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := fed.Global()[0]
	if got < 10.9 || got > 11.1 { // 0.9*10 + 0.1*20 = 11
		t.Fatalf("weighted average = %v", got)
	}
}
