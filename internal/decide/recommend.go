package decide

import (
	"sort"
)

// UncertainVisit is one uncertain check-in: candidate POIs with
// probabilities.
type UncertainVisit []POIProb

// POIProb is one candidate of an uncertain visit.
type POIProb struct {
	POI  string
	Prob float64
}

// Recommender scores POIs from uncertain check-in histories using
// expected visit counts: each uncertain visit contributes its
// probability mass to every candidate, so positioning uncertainty
// attenuates rather than corrupts the preference signal (the
// probabilistic-modeling approach to uncertain check-ins).
type Recommender struct {
	userCounts map[string]map[string]float64 // user -> poi -> expected visits
	popularity map[string]float64            // global expected visits
	blend      float64                       // weight of global popularity
}

// NewRecommender returns a recommender; blend in [0, 1] mixes global
// popularity into personal scores (0.2 is a reasonable default).
func NewRecommender(blend float64) *Recommender {
	if blend < 0 {
		blend = 0
	}
	if blend > 1 {
		blend = 1
	}
	return &Recommender{
		userCounts: map[string]map[string]float64{},
		popularity: map[string]float64{},
		blend:      blend,
	}
}

// Observe folds one uncertain visit of a user into the model.
func (r *Recommender) Observe(user string, visit UncertainVisit) {
	row, ok := r.userCounts[user]
	if !ok {
		row = map[string]float64{}
		r.userCounts[user] = row
	}
	for _, c := range visit {
		row[c.POI] += c.Prob
		r.popularity[c.POI] += c.Prob
	}
}

// Scored is a recommendation entry.
type Scored struct {
	POI   string
	Score float64
}

// Recommend returns the top-k POIs for the user, excluding the given
// set (typically the user's recent visits).
func (r *Recommender) Recommend(user string, k int, exclude map[string]bool) []Scored {
	if k <= 0 {
		return nil
	}
	personal := r.userCounts[user]
	var maxPop float64
	for _, p := range r.popularity {
		if p > maxPop {
			maxPop = p
		}
	}
	var out []Scored
	for poi, pop := range r.popularity {
		if exclude[poi] {
			continue
		}
		score := r.blend * pop / maxPossible(maxPop)
		if personal != nil {
			var maxPers float64
			for _, v := range personal {
				if v > maxPers {
					maxPers = v
				}
			}
			score += (1 - r.blend) * personal[poi] / maxPossible(maxPers)
		}
		out = append(out, Scored{POI: poi, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].POI < out[j].POI
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func maxPossible(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// HitRate evaluates recommendations: for each (user, truth) pair it
// checks whether the true next POI appears in the user's top-k.
func (r *Recommender) HitRate(tests []struct {
	User string
	POI  string
}, k int) float64 {
	if len(tests) == 0 {
		return 0
	}
	hits := 0
	for _, tc := range tests {
		for _, s := range r.Recommend(tc.User, k, nil) {
			if s.POI == tc.POI {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(tests))
}
