package decide

import (
	"math"

	"sidq/internal/geo"
)

// VolumeGrid estimates region traffic volumes from incomplete probe
// data: only a fraction (penetration rate) of vehicles report
// trajectories, so observed cell counts underestimate true volumes and
// are noisy where counts are small. Estimation inverts the sampling
// rate and then shrinks low-count cells toward their spatial
// neighborhood (the spatiotemporal-dependency prior that makes joint
// modeling of dense and incomplete trajectories work).
type VolumeGrid struct {
	Bounds geo.Rect
	NX, NY int
	counts []float64
}

// NewVolumeGrid returns an empty volume grid.
func NewVolumeGrid(bounds geo.Rect, nx, ny int) *VolumeGrid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &VolumeGrid{Bounds: bounds, NX: nx, NY: ny, counts: make([]float64, nx*ny)}
}

// CellOf returns the cell index of p (clamped into range).
func (v *VolumeGrid) CellOf(p geo.Point) int {
	cx := int(float64(v.NX) * (p.X - v.Bounds.Min.X) / v.Bounds.Width())
	cy := int(float64(v.NY) * (p.Y - v.Bounds.Min.Y) / v.Bounds.Height())
	if cx < 0 {
		cx = 0
	}
	if cx >= v.NX {
		cx = v.NX - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= v.NY {
		cy = v.NY - 1
	}
	return cy*v.NX + cx
}

// Add increments the count of p's cell.
func (v *VolumeGrid) Add(p geo.Point) { v.counts[v.CellOf(p)]++ }

// Counts returns a copy of the raw observed counts.
func (v *VolumeGrid) Counts() []float64 { return append([]float64(nil), v.counts...) }

// InferVolumes returns per-cell volume estimates given the probe
// penetration rate: scale-up by 1/rate, then shrink each cell toward
// its 8-neighborhood mean with weight proportional to how little data
// the cell has (credibility shrinkage). smoothing in [0, 1] scales the
// neighborhood pull.
func (v *VolumeGrid) InferVolumes(penetrationRate, smoothing float64) []float64 {
	if penetrationRate <= 0 {
		penetrationRate = 1
	}
	if smoothing < 0 {
		smoothing = 0
	}
	if smoothing > 1 {
		smoothing = 1
	}
	scaled := make([]float64, len(v.counts))
	for i, c := range v.counts {
		scaled[i] = c / penetrationRate
	}
	out := make([]float64, len(scaled))
	for cy := 0; cy < v.NY; cy++ {
		for cx := 0; cx < v.NX; cx++ {
			i := cy*v.NX + cx
			var nbSum float64
			var nb int
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					x, y := cx+dx, cy+dy
					if x < 0 || x >= v.NX || y < 0 || y >= v.NY {
						continue
					}
					nbSum += scaled[y*v.NX+x]
					nb++
				}
			}
			if nb == 0 {
				out[i] = scaled[i]
				continue
			}
			nbMean := nbSum / float64(nb)
			// Credibility: cells with many observations trust themselves;
			// sparse cells borrow strength from the neighborhood.
			cred := v.counts[i] / (v.counts[i] + 4)
			w := smoothing * (1 - cred)
			out[i] = (1-w)*scaled[i] + w*nbMean
		}
	}
	return out
}

// MAE returns the mean absolute error between two equal-length volume
// vectors (math.Inf(1) on length mismatch).
func MAE(got, want []float64) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := range got {
		sum += math.Abs(got[i] - want[i])
	}
	return sum / float64(len(got))
}
