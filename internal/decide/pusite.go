package decide

import (
	"math"
	"sort"

	"sidq/internal/geo"
)

// PUSite is a candidate location with its PU-learning score.
type PUSite struct {
	Pos   geo.Point
	Score float64
}

// PUSiteSelection ranks candidate sites with positive-unlabeled
// learning, the label-scarcity scheme the paper surveys for site
// selection (only existing facilities are labeled — there are no
// negatives). The score contrasts a kernel density around known
// positives (captures what successful sites look like spatially, e.g.
// demand proximity) against the density of the unlabeled background
// (penalizes already-saturated areas):
//
//	score(c) = density_pos(c) / (density_unlabeled(c) + eps)
//
// which is the classical PU density-ratio estimator. Candidates are
// returned sorted by score, descending.
func PUSiteSelection(positives, unlabeled, candidates []geo.Point, bandwidth float64) []PUSite {
	if bandwidth <= 0 {
		bandwidth = 100
	}
	density := func(p geo.Point, data []geo.Point) float64 {
		var sum float64
		inv := 1 / (2 * bandwidth * bandwidth)
		for _, d := range data {
			sum += math.Exp(-p.DistSq(d) * inv)
		}
		if len(data) == 0 {
			return 0
		}
		return sum / float64(len(data))
	}
	out := make([]PUSite, 0, len(candidates))
	for _, c := range candidates {
		pos := density(c, positives)
		bg := density(c, unlabeled)
		out = append(out, PUSite{Pos: c, Score: pos / (bg + 1e-6)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Pos.X != out[j].Pos.X {
			return out[i].Pos.X < out[j].Pos.X
		}
		return out[i].Pos.Y < out[j].Pos.Y
	})
	return out
}
