package decide

import (
	"math"
	"testing"
)

// rewardModel simulates a node's energy/quality trade-off: sampling
// every dt seconds costs energy ~ 1/dt and incurs reconstruction error
// ~ dt; the optimum sits at the balance point.
func rewardModel(dt float64) float64 {
	energy := 10 / dt
	errCost := 0.5 * dt
	return -(energy + errCost)
}

func TestAdaptiveSamplerConvergesToOptimum(t *testing.T) {
	intervals := []float64{1, 2, 4, 8, 16, 32}
	// Analytic optimum of 10/dt + 0.5 dt is dt = sqrt(20) ≈ 4.47, so the
	// best arm is 4.
	best, bestR := 0.0, math.Inf(-1)
	for _, dt := range intervals {
		if r := rewardModel(dt); r > bestR {
			best, bestR = dt, r
		}
	}
	if best != 4 {
		t.Fatalf("test setup: analytic best arm = %v", best)
	}
	s := NewAdaptiveSampler(intervals, 0.1, 1)
	for round := 0; round < 2000; round++ {
		dt := s.Choose()
		s.Reward(rewardModel(dt))
	}
	if got := s.Best(); got != 4 {
		t.Fatalf("converged to %v, want 4 (pulls %v)", got, s.Pulls())
	}
	// The best arm dominates the pulls.
	pulls := s.Pulls()
	bestPulls := pulls[2]
	var total int
	for _, p := range pulls {
		total += p
	}
	if float64(bestPulls)/float64(total) < 0.5 {
		t.Fatalf("best arm pulled only %d/%d times", bestPulls, total)
	}
}

func TestAdaptiveSamplerExplores(t *testing.T) {
	s := NewAdaptiveSampler([]float64{1, 2, 3}, 0.2, 2)
	for round := 0; round < 300; round++ {
		dt := s.Choose()
		s.Reward(-dt) // arm 1 is best
	}
	for i, p := range s.Pulls() {
		if p == 0 {
			t.Fatalf("arm %d never explored", i)
		}
	}
	if s.Best() != 1 {
		t.Fatalf("best = %v", s.Best())
	}
}

func TestAdaptiveSamplerDegenerate(t *testing.T) {
	s := NewAdaptiveSampler(nil, -1, 3)
	if dt := s.Choose(); dt != 1 {
		t.Fatalf("default interval = %v", dt)
	}
	s.Reward(1) // must not panic
	// Reward before any choice is ignored.
	s2 := NewAdaptiveSampler([]float64{5}, 0.1, 4)
	s2.Reward(100)
	if s2.Pulls()[0] != 0 {
		t.Fatal("reward without choice recorded")
	}
}
