// Package decide implements the paper's §2.3.3: decision-making over
// low-quality SID. It provides next-location prediction with
// incremental (drift-tracking) Markov models, traffic-volume inference
// from incomplete probe trajectories, POI recommendation under
// uncertain check-ins, and data-quality-aware spatial task assignment.
// Each component addresses one of the DQ issue groups the tutorial
// organizes the literature by (incompleteness, uncertainty, dynamics,
// DQ-awareness).
package decide

import (
	"sort"
)

// MarkovPredictor is an order-1 Markov next-symbol model with optional
// exponential decay, which lets it track drifting behaviour (the
// incremental-learning requirement of dynamic SID).
type MarkovPredictor struct {
	counts map[string]map[string]float64
	decay  float64 // multiplier applied to old counts on each update (1 = none)
}

// NewMarkovPredictor returns a predictor; decay in (0, 1] discounts old
// transitions on every observation (1 disables discounting).
func NewMarkovPredictor(decay float64) *MarkovPredictor {
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	return &MarkovPredictor{counts: map[string]map[string]float64{}, decay: decay}
}

// Observe records a transition from -> to.
func (m *MarkovPredictor) Observe(from, to string) {
	row, ok := m.counts[from]
	if !ok {
		row = map[string]float64{}
		m.counts[from] = row
	}
	if m.decay < 1 {
		for k := range row {
			row[k] *= m.decay
		}
	}
	row[to]++
}

// Train folds in whole symbol sequences.
func (m *MarkovPredictor) Train(sequences [][]string) {
	for _, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			m.Observe(seq[i-1], seq[i])
		}
	}
}

// Predict returns the most likely next symbol after from; ok is false
// when the context was never seen.
func (m *MarkovPredictor) Predict(from string) (string, bool) {
	row, ok := m.counts[from]
	if !ok || len(row) == 0 {
		return "", false
	}
	best, bestN := "", -1.0
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	for _, k := range keys {
		if row[k] > bestN {
			best, bestN = k, row[k]
		}
	}
	return best, true
}

// PredictTopK returns the k most likely next symbols, ordered.
func (m *MarkovPredictor) PredictTopK(from string, k int) []string {
	row, ok := m.counts[from]
	if !ok || k <= 0 {
		return nil
	}
	type kv struct {
		s string
		n float64
	}
	all := make([]kv, 0, len(row))
	for s, n := range row {
		all = append(all, kv{s, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].s < all[j].s
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].s
	}
	return out
}

// Accuracy evaluates next-symbol prediction over test sequences.
func (m *MarkovPredictor) Accuracy(sequences [][]string) float64 {
	correct, total := 0, 0
	for _, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			pred, ok := m.Predict(seq[i-1])
			if !ok {
				continue
			}
			total++
			if pred == seq[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
