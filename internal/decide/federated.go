package decide

import (
	"errors"
)

// ErrShapeMismatch is returned when federated updates disagree on
// model dimensions.
var ErrShapeMismatch = errors.New("decide: federated update shape mismatch")

// FederatedVolume coordinates privacy-preserving traffic-volume
// estimation across decentralized nodes, the paper's federated-learning
// trend (e.g. privacy-preserving traffic flow prediction): each edge
// node observes only its own probe trips and shares *model updates*
// (per-cell count vectors), never raw trajectories. The coordinator
// aggregates with federated averaging weighted by local sample counts.
type FederatedVolume struct {
	cells   int
	sum     []float64
	samples float64
	rounds  int
}

// NewFederatedVolume returns a coordinator for models with the given
// cell count.
func NewFederatedVolume(cells int) *FederatedVolume {
	if cells < 1 {
		cells = 1
	}
	return &FederatedVolume{cells: cells, sum: make([]float64, cells)}
}

// LocalUpdate is a node's contribution: its locally-scaled volume
// estimate and how many observations back it.
type LocalUpdate struct {
	Estimate []float64
	Samples  float64
}

// LocalEstimate builds a node's update from its own grid and probe
// penetration rate — this runs on the node; only the result leaves it.
func LocalEstimate(g *VolumeGrid, penetrationRate, smoothing float64) LocalUpdate {
	counts := g.Counts()
	var n float64
	for _, c := range counts {
		n += c
	}
	return LocalUpdate{
		Estimate: g.InferVolumes(penetrationRate, smoothing),
		Samples:  n,
	}
}

// Aggregate folds node updates into the global model via federated
// averaging (weighted by sample counts).
func (f *FederatedVolume) Aggregate(updates []LocalUpdate) error {
	for _, u := range updates {
		if len(u.Estimate) != f.cells {
			return ErrShapeMismatch
		}
		if u.Samples <= 0 {
			continue
		}
		for i, v := range u.Estimate {
			f.sum[i] += v * u.Samples
		}
		f.samples += u.Samples
	}
	f.rounds++
	return nil
}

// Global returns the current global model (zeros before any data).
func (f *FederatedVolume) Global() []float64 {
	out := make([]float64, f.cells)
	if f.samples == 0 {
		return out
	}
	for i, s := range f.sum {
		out[i] = s / f.samples
	}
	return out
}

// Rounds returns the number of aggregation rounds performed.
func (f *FederatedVolume) Rounds() int { return f.rounds }
