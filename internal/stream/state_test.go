package stream

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// TestReordererStateRoundTrip: snapshot mid-stream (through gob, as
// the server's WAL snapshots do), then feed both the original and the
// restored reorderer an identical suffix — releases, late drops, and
// counters must match exactly at every cut point.
func TestReordererStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	events := make([]Event[int], 200)
	now := 0.0
	for i := range events {
		now += rng.Float64() * 2
		// Jittered event times create both reordering and late drops.
		events[i] = Event[int]{Time: now + (rng.Float64()-0.5)*8, Value: i}
	}
	for cut := 0; cut <= len(events); cut += 17 {
		orig := NewReorderer[int](3)
		for _, e := range events[:cut] {
			orig.Push(e)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(orig.State()); err != nil {
			t.Fatalf("cut %d: encode: %v", cut, err)
		}
		var st ReordererState[int]
		if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		restored := NewReordererFromState(st)
		if restored.Watermark() != orig.Watermark() || restored.Pending() != orig.Pending() ||
			restored.LateCount() != orig.LateCount() || restored.Emitted() != orig.Emitted() {
			t.Fatalf("cut %d: restored counters diverge", cut)
		}
		var a, b []Event[int]
		for _, e := range events[cut:] {
			a = append(a, orig.Push(e)...)
			b = append(b, restored.Push(e)...)
		}
		a = append(a, orig.Flush()...)
		b = append(b, restored.Flush()...)
		if len(a) != len(b) {
			t.Fatalf("cut %d: released %d vs %d events", cut, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cut %d: release %d diverged: %+v vs %+v", cut, i, a[i], b[i])
			}
		}
		if restored.LateCount() != orig.LateCount() || restored.Emitted() != orig.Emitted() {
			t.Fatalf("cut %d: final counters diverge", cut)
		}
	}
}

// TestReordererStateEmpty: a fresh reorderer round-trips, including
// the -Inf initial watermark.
func TestReordererStateEmpty(t *testing.T) {
	r := NewReorderer[string](5)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r.State()); err != nil {
		t.Fatal(err)
	}
	var st ReordererState[string]
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2 := NewReordererFromState(st)
	if r2.Watermark() != r.Watermark() {
		t.Fatalf("watermark %v != %v", r2.Watermark(), r.Watermark())
	}
	out := r2.Push(Event[string]{Time: -1e12, Value: "x"})
	if r2.LateCount() != 0 || len(out) != 0 || r2.Pending() != 1 {
		t.Fatal("restored empty reorderer mishandled a very old first event")
	}
}

// TestReordererStateIsolation: mutating the snapshot buffer must not
// affect the live reorderer.
func TestReordererStateIsolation(t *testing.T) {
	r := NewReorderer[int](10)
	r.Push(Event[int]{Time: 1, Value: 1})
	r.Push(Event[int]{Time: 2, Value: 2})
	st := r.State()
	st.Buf[0].Value = 99
	if r.buf[0].Value == 99 {
		t.Fatal("snapshot aliases the live buffer")
	}
}
