package stream

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// Regression: Flush must advance the watermark past the flushed
// events. Before the fix, a post-Flush Push with an event time between
// the old watermark and the flushed maximum was accepted and later
// emitted behind events already released, breaking the global-order
// guarantee.
func TestFlushAdvancesWatermark(t *testing.T) {
	r := NewReorderer[int](10)
	r.Push(Event[int]{Time: 0})
	r.Push(Event[int]{Time: 5}) // watermark now -5; both events buffered
	out := r.Flush()            // releases t=0 and t=5
	if len(out) != 2 {
		t.Fatalf("flushed %d events, want 2", len(out))
	}
	if wm := r.Watermark(); wm != 5 {
		t.Fatalf("post-flush watermark = %v, want 5 (max flushed time)", wm)
	}
	// t=2 sits between the old watermark (-5) and the flushed max (5):
	// accepting it would emit it behind the already-released t=5.
	if got := r.Push(Event[int]{Time: 2}); len(got) != 0 {
		t.Fatalf("pre-watermark event released: %v", got)
	}
	if r.Pending() != 0 {
		t.Fatalf("pre-watermark event buffered (pending=%d)", r.Pending())
	}
	if r.LateCount() != 1 {
		t.Fatalf("late = %d, want 1", r.LateCount())
	}
	// Global order must hold across the flush boundary: everything
	// emitted after the flush is at or after the flushed maximum.
	for _, tm := range []float64{6, 9, 30} {
		for _, e := range r.Push(Event[int]{Time: tm}) {
			if e.Time < 5 {
				t.Fatalf("event t=%v emitted behind flushed max 5", e.Time)
			}
		}
	}
	for _, e := range r.Flush() {
		if e.Time < 5 {
			t.Fatalf("event t=%v flushed behind earlier flush max 5", e.Time)
		}
	}
}

// Flushing an empty reorderer must not move the watermark.
func TestFlushEmptyKeepsWatermark(t *testing.T) {
	r := NewReorderer[int](3)
	r.Push(Event[int]{Time: 10}) // watermark 7
	r.Push(Event[int]{Time: 11}) // watermark 8, t=10 buffered... released? 10 > 8 so buffered
	r.Flush()
	wm := r.Watermark()
	if got := r.Flush(); len(got) != 0 {
		t.Fatalf("second flush released %v", got)
	}
	if r.Watermark() != wm {
		t.Fatalf("empty flush moved watermark %v -> %v", wm, r.Watermark())
	}
}

// The inlined FNV-1a loop must assign every key to exactly the lane
// the old hash/fnv-based implementation chose.
func TestLaneForMatchesStdlibFNV(t *testing.T) {
	oldLane := func(key string, lanes int) int {
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return int(h.Sum32() % uint32(lanes))
	}
	keys := []string{"", "a", "veh-0", "sensor/12", "日本語キー", "\x00\xff"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		keys = append(keys, string(b))
	}
	for _, lanes := range []int{1, 2, 3, 4, 7, 16, 64} {
		for _, k := range keys {
			if got, want := LaneFor(k, lanes), oldLane(k, lanes); got != want {
				t.Fatalf("LaneFor(%q, %d) = %d, old hasher = %d", k, lanes, got, want)
			}
		}
	}
}

// The hash itself must be allocation-free; per-event hasher allocation
// was the bug this pins.
func TestLaneForZeroAlloc(t *testing.T) {
	keys := []string{"veh-0", "veh-1", "sensor/12"}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			_ = LaneFor(k, 8)
		}
	})
	if allocs != 0 {
		t.Fatalf("LaneFor allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkFanOut(b *testing.B) {
	events := make([]Event[int], 4096)
	keys := make([]string, len(events))
	for i := range events {
		events[i] = Event[int]{Time: float64(i), Value: i}
		keys[i] = fmt.Sprintf("src-%d", i%97)
	}
	key := func(e Event[int]) string { return keys[e.Value] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FanOut(events, 8, key)
	}
}
