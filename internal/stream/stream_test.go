package stream

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReordererRestoresOrder(t *testing.T) {
	r := NewReorderer[int](5)
	times := []float64{1, 3, 2, 6, 4, 5, 10, 8, 9, 12, 11, 20}
	var got []float64
	for i, tm := range times {
		for _, e := range r.Push(Event[int]{Time: tm, Value: i}) {
			got = append(got, e.Time)
		}
	}
	for _, e := range r.Flush() {
		got = append(got, e.Time)
	}
	if len(got) != len(times) {
		t.Fatalf("emitted %d of %d", len(got), len(times))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
	if r.LateCount() != 0 {
		t.Fatalf("late = %d", r.LateCount())
	}
}

func TestReordererDropsLate(t *testing.T) {
	r := NewReorderer[string](2)
	r.Push(Event[string]{Time: 100, Value: "a"}) // watermark -> 98
	if out := r.Push(Event[string]{Time: 50, Value: "late"}); out != nil {
		t.Fatalf("late event emitted: %v", out)
	}
	if r.LateCount() != 1 {
		t.Fatalf("late = %d", r.LateCount())
	}
	if r.Watermark() != 98 {
		t.Fatalf("watermark = %v", r.Watermark())
	}
}

func TestReordererWatermarkReleases(t *testing.T) {
	r := NewReorderer[int](3)
	if out := r.Push(Event[int]{Time: 10}); len(out) != 0 {
		t.Fatal("event released before watermark passed it")
	}
	out := r.Push(Event[int]{Time: 14}) // watermark 11 > 10
	if len(out) != 1 || out[0].Time != 10 {
		t.Fatalf("release = %v", out)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestReordererPropertySortedOutput(t *testing.T) {
	f := func(raw []float64, latenessRaw float64) bool {
		lateness := 1 + mod(latenessRaw, 10)
		r := NewReorderer[int](lateness)
		var got []float64
		for i, v := range raw {
			tm := mod(v, 1000)
			for _, e := range r.Push(Event[int]{Time: tm, Value: i}) {
				got = append(got, e.Time)
			}
		}
		for _, e := range r.Flush() {
			got = append(got, e.Time)
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mod(v float64, m float64) float64 {
	if v != v || v > 1e12 || v < -1e12 {
		return 0
	}
	x := v - float64(int64(v/m))*m
	if x < 0 {
		x += m
	}
	return x
}

func TestTumblingWindows(t *testing.T) {
	w := NewTumblingWindows[int](10)
	var closed []Window[int]
	for _, tm := range []float64{1, 4, 9, 12, 15, 31} {
		closed = append(closed, w.Push(Event[int]{Time: tm})...)
	}
	closed = append(closed, w.Flush()...)
	// Windows: [0,10) with 3 events, [10,20) with 2, [20,30) empty, [30,40) with 1.
	if len(closed) != 4 {
		t.Fatalf("windows = %d: %+v", len(closed), closed)
	}
	wantCounts := []int{3, 2, 0, 1}
	wantStarts := []float64{0, 10, 20, 30}
	for i, win := range closed {
		if len(win.Events) != wantCounts[i] {
			t.Fatalf("window %d count = %d", i, len(win.Events))
		}
		if win.Start != wantStarts[i] || win.End != wantStarts[i]+10 {
			t.Fatalf("window %d span = [%v,%v)", i, win.Start, win.End)
		}
	}
	if w.Flush() != nil {
		t.Fatal("double flush should be empty")
	}
}

func TestTumblingWindowsNegativeTimes(t *testing.T) {
	w := NewTumblingWindows[int](10)
	w.Push(Event[int]{Time: -15})
	closed := w.Push(Event[int]{Time: -2})
	if len(closed) != 1 || closed[0].Start != -20 || closed[0].End != -10 {
		t.Fatalf("negative window = %+v", closed)
	}
}

func TestSlidingAggregate(t *testing.T) {
	s := NewSlidingAggregate(10)
	s.Push(0, 1)
	s.Push(5, 2)
	s.Push(9, 3)
	if s.Count() != 3 || s.Sum() != 6 {
		t.Fatalf("count %d sum %v", s.Count(), s.Sum())
	}
	s.Push(12, 4) // evicts t=0 (0 <= 12-10=2)
	if s.Count() != 3 || s.Sum() != 9 {
		t.Fatalf("after evict: count %d sum %v", s.Count(), s.Sum())
	}
	if m := s.Mean(); m != 3 {
		t.Fatalf("mean = %v", m)
	}
	min, ok := s.Min()
	if !ok || min != 2 {
		t.Fatalf("min = %v", min)
	}
	max, ok := s.Max()
	if !ok || max != 4 {
		t.Fatalf("max = %v", max)
	}
	s.Push(100, 7) // evicts all
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	empty := NewSlidingAggregate(5)
	if _, ok := empty.Min(); ok {
		t.Fatal("empty min should be !ok")
	}
	if empty.Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestReordererStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := NewReorderer[int](20)
	var emitted []float64
	base := 0.0
	total := 0
	for i := 0; i < 5000; i++ {
		base += rng.Float64() * 2
		tm := base + rng.Float64()*15 // disorder within 15 < lateness 20
		total++
		for _, e := range r.Push(Event[int]{Time: tm}) {
			emitted = append(emitted, e.Time)
		}
	}
	for _, e := range r.Flush() {
		emitted = append(emitted, e.Time)
	}
	if len(emitted)+r.LateCount() != total {
		t.Fatalf("lost events: %d + %d != %d", len(emitted), r.LateCount(), total)
	}
	if !sort.Float64sAreSorted(emitted) {
		t.Fatal("stress output not sorted")
	}
	if r.LateCount() != 0 {
		t.Fatalf("unexpected lates: %d", r.LateCount())
	}
}
