package stream

import (
	"fmt"
	"strings"
	"testing"

	"sidq/internal/obs"
)

func TestInstrumentToTracksReordererAndWindows(t *testing.T) {
	reg := obs.NewRegistry()
	InstrumentTo(reg)
	lateBefore := pkgObs.late.Load()
	emittedBefore := pkgObs.emitted.Load()
	windowsBefore := pkgObs.windows.Load()

	r := NewReorderer[int](1)
	r.Push(Event[int]{Time: 0, Value: 1})
	r.Push(Event[int]{Time: 5, Value: 2})  // watermark 4, releases t=0
	r.Push(Event[int]{Time: 2, Value: 3})  // below watermark: late
	r.Push(Event[int]{Time: 10, Value: 4}) // releases t=5
	r.Flush()                              // releases t=10

	if got := pkgObs.late.Load() - lateBefore; got != 1 {
		t.Errorf("late total delta = %d, want 1", got)
	}
	if got := pkgObs.emitted.Load() - emittedBefore; got != 3 {
		t.Errorf("emitted total delta = %d, want 3", got)
	}

	w := NewTumblingWindows[int](10)
	w.Push(Event[int]{Time: 1})
	w.Push(Event[int]{Time: 25}) // closes windows [0,10) and [10,20)
	w.Flush()                    // closes [20,30)
	if got := pkgObs.windows.Load() - windowsBefore; got != 3 {
		t.Errorf("windows closed delta = %d, want 3", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, fam := range []string{
		"sidq_stream_late_total",
		"sidq_stream_emitted_total",
		"sidq_stream_windows_closed_total",
		"sidq_stream_reorder_pending",
	} {
		if !strings.Contains(expo, fam+" ") {
			t.Errorf("exposition missing %s:\n%s", fam, expo)
		}
	}
}

func TestReorderPendingGaugeTracksBuffer(t *testing.T) {
	reg := obs.NewRegistry()
	InstrumentTo(reg)
	before := pkgObs.pending.Load()

	r := NewReorderer[int](100) // large lateness: nothing releases
	for i := 0; i < 5; i++ {
		r.Push(Event[int]{Time: float64(i)})
	}
	if got := pkgObs.pending.Load() - before; got != 5 {
		t.Errorf("pending delta after pushes = %d, want 5", got)
	}
	r.Flush()
	if got := pkgObs.pending.Load() - before; got != 0 {
		t.Errorf("pending delta after flush = %d, want 0", got)
	}
}

func TestObserveLanes(t *testing.T) {
	reg := obs.NewRegistry()
	events := make([]Event[int], 20)
	for i := range events {
		events[i] = Event[int]{Time: float64(i), Value: i}
	}
	lanes := FanOut(events, 4, func(e Event[int]) string { return fmt.Sprint(e.Value % 7) })
	ObserveLanes(reg, lanes)

	if got := reg.Histogram("sidq_stream_lane_depth").Snapshot().Count(); got != 4 {
		t.Errorf("lane depth observations = %d, want 4", got)
	}
	if got := reg.Gauge("sidq_stream_lanes").Value(); got != 4 {
		t.Errorf("lanes gauge = %d, want 4", got)
	}
	maxDepth := 0
	total := 0
	for _, l := range lanes {
		total += len(l)
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	if total != len(events) {
		t.Fatalf("fanout lost events: %d != %d", total, len(events))
	}
	if got := reg.Gauge("sidq_stream_lane_depth_max").Value(); got != int64(maxDepth) {
		t.Errorf("lane depth max gauge = %d, want %d", got, maxDepth)
	}

	// nil registry must be a safe no-op.
	ObserveLanes[int](nil, lanes)
}
