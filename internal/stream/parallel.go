package stream

import (
	"runtime"
	"sync"
)

// FNV-1a 32-bit parameters (FNV-0 offset basis and prime).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv32a hashes s with 32-bit FNV-1a, bit-identical to
// hash/fnv.New32a but with no hasher allocation and no byte-slice
// conversion — FanOut sits on the per-event ingest hot path.
func fnv32a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime32
	}
	return h
}

// LaneFor returns the lane a key is assigned to among lanes lanes —
// the pure function FanOut partitions by, exported so keyed-session
// callers can locate a key's lane (and its per-lane state) without
// building a batch. lanes <= 0 selects 1.
func LaneFor(key string, lanes int) int {
	if lanes <= 0 {
		return 0
	}
	return int(fnv32a(key) % uint32(lanes))
}

// FanOut partitions an event stream into lane sub-streams by a key
// function (typically the source sensor or trajectory id), using an
// FNV-1a hash so the lane assignment is a pure function of the key:
// the same key always lands in the same lane, in every run and at
// every lane count change of other keys. Within a lane, events keep
// their arrival order, so per-key order — the only order a keyed
// stream guarantees — is preserved exactly. lanes <= 0 selects 1.
func FanOut[T any](events []Event[T], lanes int, key func(Event[T]) string) [][]Event[T] {
	if lanes <= 0 {
		lanes = 1
	}
	out := make([][]Event[T], lanes)
	for _, e := range events {
		l := LaneFor(key(e), lanes)
		out[l] = append(out[l], e)
	}
	return out
}

// ProcessLanes runs fn over every lane on a pool of at most workers
// goroutines (workers <= 0 selects runtime.NumCPU()) and returns the
// results indexed by lane — deterministic output order regardless of
// which lane finishes first. fn must not touch other lanes' data; the
// lanes produced by FanOut are disjoint, so any per-lane processor
// (a Reorderer, a window operator, an aggregate) satisfies this.
func ProcessLanes[T, R any](lanes [][]Event[T], workers int, fn func(lane int, events []Event[T]) R) []R {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]R, len(lanes))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range lanes {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(i, lanes[i])
		}()
	}
	wg.Wait()
	return out
}
