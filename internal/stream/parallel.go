package stream

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// FanOut partitions an event stream into lane sub-streams by a key
// function (typically the source sensor or trajectory id), using an
// FNV-1a hash so the lane assignment is a pure function of the key:
// the same key always lands in the same lane, in every run and at
// every lane count change of other keys. Within a lane, events keep
// their arrival order, so per-key order — the only order a keyed
// stream guarantees — is preserved exactly. lanes <= 0 selects 1.
func FanOut[T any](events []Event[T], lanes int, key func(Event[T]) string) [][]Event[T] {
	if lanes <= 0 {
		lanes = 1
	}
	out := make([][]Event[T], lanes)
	for _, e := range events {
		h := fnv.New32a()
		_, _ = h.Write([]byte(key(e)))
		l := int(h.Sum32() % uint32(lanes))
		out[l] = append(out[l], e)
	}
	return out
}

// ProcessLanes runs fn over every lane on a pool of at most workers
// goroutines (workers <= 0 selects runtime.NumCPU()) and returns the
// results indexed by lane — deterministic output order regardless of
// which lane finishes first. fn must not touch other lanes' data; the
// lanes produced by FanOut are disjoint, so any per-lane processor
// (a Reorderer, a window operator, an aggregate) satisfies this.
func ProcessLanes[T, R any](lanes [][]Event[T], workers int, fn func(lane int, events []Event[T]) R) []R {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]R, len(lanes))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range lanes {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(i, lanes[i])
		}()
	}
	wg.Wait()
	return out
}
