package stream

// Snapshot/restore support for stream-session durability: the server
// checkpoints reorderer state into its WAL so a crash-restarted
// session resumes with an identical watermark and pending buffer (see
// DESIGN.md "Durability & recovery").

// ReordererState is a serializable snapshot of a Reorderer. All fields
// are exported so encoding/gob round-trips it.
type ReordererState[T any] struct {
	Lateness  float64
	Buf       []Event[T] // pending events, time-sorted
	Watermark float64
	Late      int
	Emitted   int
}

// State captures the reorderer's complete state. The buffer is copied;
// mutating the snapshot does not affect the live reorderer.
func (r *Reorderer[T]) State() ReordererState[T] {
	return ReordererState[T]{
		Lateness:  r.lateness,
		Buf:       append([]Event[T](nil), r.buf...),
		Watermark: r.watermark,
		Late:      r.late,
		Emitted:   r.emitted,
	}
}

// NewReordererFromState rebuilds a reorderer that behaves identically
// to the one State was called on: same watermark, same pending events,
// same counters.
func NewReordererFromState[T any](st ReordererState[T]) *Reorderer[T] {
	r := NewReorderer[T](st.Lateness)
	r.buf = append([]Event[T](nil), st.Buf...)
	if st.Watermark > r.watermark {
		r.watermark = st.Watermark
	}
	r.late = st.Late
	r.emitted = st.Emitted
	obsPending(int64(len(r.buf)))
	return r
}
