package stream

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func keyedEvents(n, keys int) []Event[string] {
	out := make([]Event[string], n)
	for i := range out {
		out[i] = Event[string]{Time: float64(i), Value: fmt.Sprintf("k%d", i%keys)}
	}
	return out
}

func TestFanOutPreservesPerKeyOrderAndIsDeterministic(t *testing.T) {
	events := keyedEvents(1000, 13)
	key := func(e Event[string]) string { return e.Value }
	a := FanOut(events, 4, key)
	b := FanOut(events, 4, key)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same input fanned out differently across runs")
	}

	// Every event lands in exactly one lane, same-key events share a
	// lane, and each key's events keep their original (time) order.
	total := 0
	laneOf := map[string]int{}
	for l, lane := range a {
		total += len(lane)
		lastPerKey := map[string]float64{}
		for _, e := range lane {
			if prev, ok := laneOf[e.Value]; ok && prev != l {
				t.Fatalf("key %s split across lanes %d and %d", e.Value, prev, l)
			}
			laneOf[e.Value] = l
			if last, ok := lastPerKey[e.Value]; ok && e.Time < last {
				t.Fatalf("key %s reordered within lane %d", e.Value, l)
			}
			lastPerKey[e.Value] = e.Time
		}
	}
	if total != len(events) {
		t.Fatalf("fan-out lost events: %d of %d", total, len(events))
	}
	if len(laneOf) != 13 {
		t.Fatalf("saw %d keys, want 13", len(laneOf))
	}
}

func TestFanOutDegenerateLaneCounts(t *testing.T) {
	events := keyedEvents(50, 5)
	key := func(e Event[string]) string { return e.Value }
	one := FanOut(events, 0, key)
	if len(one) != 1 || !reflect.DeepEqual(one[0], events) {
		t.Fatal("lanes <= 0 must collapse to the identity single lane")
	}
	many := FanOut(events, 64, key)
	total := 0
	for _, lane := range many {
		total += len(lane)
	}
	if len(many) != 64 || total != len(events) {
		t.Fatalf("64-lane fan-out: %d lanes, %d events", len(many), total)
	}
}

// TestProcessLanesOrderedResults checks that lane results come back by
// lane index regardless of worker count or completion order, and that
// per-lane stream operators compose: reordering a disordered keyed
// stream lane-by-lane in parallel equals doing it serially.
func TestProcessLanesOrderedResults(t *testing.T) {
	events := keyedEvents(600, 7)
	// Disorder within each key's sequence deterministically.
	for i := 0; i+3 < len(events); i += 4 {
		events[i], events[i+3] = events[i+3], events[i]
	}
	lanes := FanOut(events, 5, func(e Event[string]) string { return e.Value })

	process := func(workers int) [][]Event[string] {
		return ProcessLanes(lanes, workers, func(_ int, in []Event[string]) []Event[string] {
			re := NewReorderer[string](10)
			var out []Event[string]
			for _, e := range in {
				out = append(out, re.Push(e)...)
			}
			out = append(out, re.Flush()...)
			return out
		})
	}
	serial := process(1)
	for _, w := range []int{2, 4, 8} {
		if got := process(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d produced different lane results than serial", w)
		}
	}
	for l, lane := range serial {
		times := make([]float64, len(lane))
		for i, e := range lane {
			times[i] = e.Time
		}
		if !sort.Float64sAreSorted(times) {
			t.Fatalf("lane %d not time-ordered after reordering", l)
		}
	}
}
