// Package stream provides a small event-time stream-processing engine:
// out-of-order reordering under a bounded-lateness watermark, tumbling
// and sliding windows, and running aggregates. It is the substrate for
// sidq's continuous queries and online cleaning over SID streams, whose
// deferred and disordered arrival is one of the quality issues the
// paper highlights.
package stream

import (
	"sort"
)

// Event is a timestamped element flowing through the engine.
type Event[T any] struct {
	Time  float64
	Value T
}

// Reorderer restores event-time order for a stream with bounded
// disorder: events are buffered until the watermark (max event time
// seen minus the allowed lateness) passes them. Events older than the
// watermark on arrival are counted as late and dropped.
type Reorderer[T any] struct {
	lateness  float64
	buf       []Event[T]
	watermark float64
	late      int
	emitted   int
}

// NewReorderer returns a reorderer tolerating the given lateness
// (seconds, >= 0).
func NewReorderer[T any](lateness float64) *Reorderer[T] {
	if lateness < 0 {
		lateness = 0
	}
	return &Reorderer[T]{lateness: lateness, watermark: negInf}
}

const negInf = -1.797693134862315708145274237317043567981e308

// Push feeds one event and returns any events released in order by the
// advanced watermark.
func (r *Reorderer[T]) Push(e Event[T]) []Event[T] {
	if e.Time < r.watermark {
		r.late++
		obsCount(&pkgObs.late, 1)
		return nil
	}
	r.insert(e)
	if wm := e.Time - r.lateness; wm > r.watermark {
		r.watermark = wm
	}
	return r.release(r.watermark)
}

func (r *Reorderer[T]) insert(e Event[T]) {
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Time > e.Time })
	r.buf = append(r.buf, Event[T]{})
	copy(r.buf[i+1:], r.buf[i:])
	r.buf[i] = e
	obsPending(1)
}

func (r *Reorderer[T]) release(upTo float64) []Event[T] {
	n := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Time > upTo })
	if n == 0 {
		return nil
	}
	out := append([]Event[T](nil), r.buf[:n]...)
	r.buf = r.buf[:copy(r.buf, r.buf[n:])]
	r.emitted += len(out)
	obsCount(&pkgObs.emitted, uint64(len(out)))
	obsPending(-int64(len(out)))
	return out
}

// Flush releases all remaining buffered events in order and advances
// the watermark past them: a Push after Flush with an event time at or
// before the flushed maximum is late by definition (it would otherwise
// be emitted behind events already released, breaking the engine's
// global-order guarantee).
func (r *Reorderer[T]) Flush() []Event[T] {
	out := append([]Event[T](nil), r.buf...)
	if n := len(out); n > 0 {
		// buf is kept time-sorted, so the maximum is the last element.
		if t := out[n-1].Time; t > r.watermark {
			r.watermark = t
		}
	}
	r.buf = r.buf[:0]
	r.emitted += len(out)
	obsCount(&pkgObs.emitted, uint64(len(out)))
	obsPending(-int64(len(out)))
	return out
}

// Watermark returns the current watermark.
func (r *Reorderer[T]) Watermark() float64 { return r.watermark }

// LateCount returns the number of events dropped as too late.
func (r *Reorderer[T]) LateCount() int { return r.late }

// Emitted returns the number of events released in order so far
// (including flushed ones); every pushed event ends up counted by
// exactly one of Emitted, LateCount, or Pending.
func (r *Reorderer[T]) Emitted() int { return r.emitted }

// Pending returns the number of buffered (not yet released) events.
func (r *Reorderer[T]) Pending() int { return len(r.buf) }

// Window is a closed time window with the events assigned to it.
type Window[T any] struct {
	Start, End float64 // [Start, End)
	Events     []Event[T]
}

// TumblingWindows assigns in-order events to fixed-width windows and
// emits each window when an event at or past its end arrives. Feed it
// events in event-time order (e.g. downstream of a Reorderer).
type TumblingWindows[T any] struct {
	width   float64
	current int64 // active window index
	buf     []Event[T]
	started bool
}

// NewTumblingWindows returns a tumbling windower of the given width in
// seconds (must be positive; defaults to 1 otherwise).
func NewTumblingWindows[T any](width float64) *TumblingWindows[T] {
	if width <= 0 {
		width = 1
	}
	return &TumblingWindows[T]{width: width}
}

func (w *TumblingWindows[T]) indexOf(t float64) int64 {
	i := int64(t / w.width)
	if t < 0 && float64(i)*w.width > t {
		i--
	}
	return i
}

// Push feeds one in-order event and returns any windows closed by it.
func (w *TumblingWindows[T]) Push(e Event[T]) []Window[T] {
	idx := w.indexOf(e.Time)
	var closed []Window[T]
	if !w.started {
		w.started = true
		w.current = idx
	}
	for idx > w.current {
		closed = append(closed, w.closeCurrent())
		w.current++
	}
	w.buf = append(w.buf, e)
	return closed
}

func (w *TumblingWindows[T]) closeCurrent() Window[T] {
	obsCount(&pkgObs.windows, 1)
	win := Window[T]{
		Start:  float64(w.current) * w.width,
		End:    float64(w.current+1) * w.width,
		Events: w.buf,
	}
	w.buf = nil
	return win
}

// Flush closes and returns the active window if it holds any events.
func (w *TumblingWindows[T]) Flush() []Window[T] {
	if len(w.buf) == 0 {
		return nil
	}
	return []Window[T]{w.closeCurrent()}
}

// SlidingAggregate maintains an aggregate over the trailing window of
// the given width for a numeric stream: push in-order samples, read the
// count/sum/mean/min/max of the samples within (t-width, t].
type SlidingAggregate struct {
	width float64
	times []float64
	vals  []float64
}

// NewSlidingAggregate returns a sliding aggregate of the given window
// width in seconds.
func NewSlidingAggregate(width float64) *SlidingAggregate {
	if width <= 0 {
		width = 1
	}
	return &SlidingAggregate{width: width}
}

// Push adds an in-order sample and evicts samples that fell out of the
// window.
func (s *SlidingAggregate) Push(t, v float64) {
	s.times = append(s.times, t)
	s.vals = append(s.vals, v)
	cut := t - s.width
	i := 0
	for i < len(s.times) && s.times[i] <= cut {
		i++
	}
	if i > 0 {
		s.times = s.times[:copy(s.times, s.times[i:])]
		s.vals = s.vals[:copy(s.vals, s.vals[i:])]
	}
}

// Count returns the number of samples in the window.
func (s *SlidingAggregate) Count() int { return len(s.vals) }

// Sum returns the sum of samples in the window.
func (s *SlidingAggregate) Sum() float64 {
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// Mean returns the mean of samples in the window (0 if empty).
func (s *SlidingAggregate) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.vals))
}

// Min returns the minimum sample in the window; ok is false if empty.
func (s *SlidingAggregate) Min() (float64, bool) {
	if len(s.vals) == 0 {
		return 0, false
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

// Max returns the maximum sample in the window; ok is false if empty.
func (s *SlidingAggregate) Max() (float64, bool) {
	if len(s.vals) == 0 {
		return 0, false
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}
