package stream

// Stream observability. The operators here are single-goroutine by
// design (one Reorderer per lane), so per-instance counters stay plain
// ints; process-wide totals are aggregated into gated package atomics
// mirroring the roadnet pattern: until InstrumentTo flips the gate,
// every hook is one atomic bool load.

import (
	"sync/atomic"

	"sidq/internal/obs"
)

// pkgObs aggregates stream activity across every operator instance in
// the process once InstrumentTo has enabled it.
var pkgObs struct {
	enabled atomic.Bool

	late    atomic.Uint64 // events dropped as later than the watermark
	emitted atomic.Uint64 // events released in order (incl. flushes)
	windows atomic.Uint64 // tumbling windows closed
	pending atomic.Int64  // reorder-buffer occupancy, summed over reorderers
}

// obsCount bumps a gated package total by n.
func obsCount(c *atomic.Uint64, n uint64) {
	if pkgObs.enabled.Load() {
		c.Add(n)
	}
}

// obsPending moves the process-wide reorder-buffer occupancy by delta.
func obsPending(delta int64) {
	if pkgObs.enabled.Load() {
		pkgObs.pending.Add(delta)
	}
}

// InstrumentTo enables process-wide stream aggregation and registers
// the sidq_stream_* families in reg as callback series. Totals cover
// every Reorderer and TumblingWindows in the process from the first
// call on; the occupancy gauge counts only buffering activity after
// enablement (and clamps at zero for events buffered before it).
func InstrumentTo(reg *obs.Registry) {
	pkgObs.enabled.Store(true)
	reg.Help("sidq_stream_late_total", "Events dropped as later than the reorder watermark.")
	reg.Help("sidq_stream_emitted_total", "Events released in event-time order (including flushes).")
	reg.Help("sidq_stream_windows_closed_total", "Tumbling windows closed.")
	reg.Help("sidq_stream_reorder_pending", "Events currently buffered awaiting the watermark, across all reorderers.")
	reg.Func("sidq_stream_late_total", obs.FuncCounter, func() float64 { return float64(pkgObs.late.Load()) })
	reg.Func("sidq_stream_emitted_total", obs.FuncCounter, func() float64 { return float64(pkgObs.emitted.Load()) })
	reg.Func("sidq_stream_windows_closed_total", obs.FuncCounter, func() float64 { return float64(pkgObs.windows.Load()) })
	reg.Func("sidq_stream_reorder_pending", obs.FuncGauge, func() float64 {
		v := pkgObs.pending.Load()
		if v < 0 {
			v = 0
		}
		return float64(v)
	})
}

// ObserveLanes records the shape of a FanOut partition into reg: one
// sidq_stream_lane_depth observation per lane plus the lane count and
// the deepest lane, so skewed key distributions show up as a spread
// histogram. A nil registry is a no-op, so callers can pass their
// (possibly absent) registry straight through.
func ObserveLanes[T any](reg *obs.Registry, lanes [][]Event[T]) {
	if reg == nil {
		return
	}
	h := reg.Histogram("sidq_stream_lane_depth")
	maxDepth := 0
	for _, l := range lanes {
		h.Observe(int64(len(l)))
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	reg.Gauge("sidq_stream_lanes").Set(int64(len(lanes)))
	reg.Gauge("sidq_stream_lane_depth_max").Set(int64(maxDepth))
}
