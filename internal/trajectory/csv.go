package trajectory

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"sidq/internal/geo"
)

// WriteCSV encodes trajectories as CSV rows "id,t,x,y" with a header.
// Points are written in trajectory order.
func WriteCSV(w io.Writer, trs []*Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "t", "x", "y"}); err != nil {
		return fmt.Errorf("trajectory: write csv header: %w", err)
	}
	for _, tr := range trs {
		for _, p := range tr.Points {
			rec := []string{
				tr.ID,
				strconv.FormatFloat(p.T, 'g', -1, 64),
				strconv.FormatFloat(p.Pos.X, 'g', -1, 64),
				strconv.FormatFloat(p.Pos.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trajectory: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes trajectories written by WriteCSV. Rows are grouped by
// id; each group is returned time-sorted. Group order is by first
// appearance, then id for ties, making the output deterministic.
func ReadCSV(r io.Reader) ([]*Trajectory, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trajectory: read csv header: %w", err)
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("trajectory: unexpected csv header %v", header)
	}
	groups := map[string][]Point{}
	order := map[string]int{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trajectory: read csv row: %w", err)
		}
		t, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad t %q: %w", rec[1], err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad x %q: %w", rec[2], err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad y %q: %w", rec[3], err)
		}
		id := rec[0]
		if _, seen := order[id]; !seen {
			order[id] = len(order)
		}
		groups[id] = append(groups[id], Point{T: t, Pos: geo.Pt(x, y)})
	}
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return order[ids[i]] < order[ids[j]] })
	out := make([]*Trajectory, 0, len(ids))
	for _, id := range ids {
		out = append(out, New(id, groups[id]))
	}
	return out, nil
}
