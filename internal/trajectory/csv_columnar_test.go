package trajectory

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sidq/internal/geo"
)

// equalTrajectorySets compares two decode results bit for bit.
func equalTrajectorySets(t *testing.T, got, want []*Trajectory) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d trajectories, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("trajectory %d: id %q want %q", i, got[i].ID, want[i].ID)
		}
		if got[i].Len() != want[i].Len() {
			t.Fatalf("trajectory %q: %d points want %d", want[i].ID, got[i].Len(), want[i].Len())
		}
		for j := range want[i].Points {
			a, b := got[i].Points[j], want[i].Points[j]
			if math.Float64bits(a.T) != math.Float64bits(b.T) ||
				math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
				math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) {
				t.Fatalf("trajectory %q point %d diverged: %+v vs %+v", want[i].ID, j, a, b)
			}
		}
	}
}

// TestReadCSVColumnsMatchesReadCSV pins the columnar decoder against
// the csv.Reader-based one across random inputs: interleaved ids,
// out-of-order timestamps (exercising the stable-sort path), NaN/±Inf
// coordinates, and ids that force csv quoting (exercising the
// fallback).
func TestReadCSVColumnsMatchesReadCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ids := []string{"a", "veh-2", "long-identifier-3", `quo"ted`, "comma,id"}
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(200)
		trs := map[string]*Trajectory{}
		var order []string
		for i := 0; i < n; i++ {
			id := ids[rng.Intn(len(ids))]
			if trial%3 != 0 {
				id = ids[rng.Intn(3)] // plain ids: fast path
			}
			tr, ok := trs[id]
			if !ok {
				tr = &Trajectory{ID: id}
				trs[id] = tr
				order = append(order, id)
			}
			tt := float64(i)
			if rng.Intn(5) == 0 {
				tt = rng.Float64() * 100 // out-of-order stamp
			}
			x, y := rng.NormFloat64()*50, rng.NormFloat64()*50
			if rng.Intn(30) == 0 {
				x = []float64{math.NaN(), math.Inf(1), math.Inf(-1)}[rng.Intn(3)]
			}
			tr.Points = append(tr.Points, Point{T: tt, Pos: geo.Pt(x, y)})
		}
		var sb strings.Builder
		all := make([]*Trajectory, 0, len(order))
		for _, id := range order {
			all = append(all, trs[id])
		}
		if err := WriteCSV(&sb, all); err != nil {
			t.Fatal(err)
		}
		csvText := sb.String()
		want, err := ReadCSV(strings.NewReader(csvText))
		if err != nil {
			t.Fatalf("trial %d: ReadCSV: %v", trial, err)
		}
		got, err := ReadCSVColumns(strings.NewReader(csvText))
		if err != nil {
			t.Fatalf("trial %d: ReadCSVColumns: %v", trial, err)
		}
		equalTrajectorySets(t, got, want)
	}
}

// TestReadCSVColumnsLineEndings covers the scanner's framing cases:
// CRLF endings, blank lines, and a missing trailing newline.
func TestReadCSVColumnsLineEndings(t *testing.T) {
	for name, text := range map[string]string{
		"crlf":                "id,t,x,y\r\na,1,2,3\r\na,2,3,4\r\n",
		"blank-lines":         "id,t,x,y\n\na,1,2,3\n\n\na,2,3,4\n",
		"no-trailing-newline": "id,t,x,y\na,1,2,3\na,2,3,4",
		"blank-before-header": "\nid,t,x,y\na,1,2,3\na,2,3,4\n",
	} {
		want, err := ReadCSV(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: ReadCSV: %v", name, err)
		}
		got, err := ReadCSVColumns(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: ReadCSVColumns: %v", name, err)
		}
		equalTrajectorySets(t, got, want)
	}
}

// TestReadCSVColumnsErrors mirrors ReadCSV's rejection of malformed
// input: both decoders must fail on the same documents.
func TestReadCSVColumnsErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":        "",
		"bad-header":   "nope,t,x,y\na,1,2,3\n",
		"short-row":    "id,t,x,y\na,1,2\n",
		"long-row":     "id,t,x,y\na,1,2,3,4\n",
		"bad-float":    "id,t,x,y\na,zzz,2,3\n",
		"short-header": "id,t\n",
	} {
		if _, err := ReadCSV(strings.NewReader(text)); err == nil {
			t.Fatalf("%s: ReadCSV accepted malformed input", name)
		}
		if _, err := ReadCSVColumns(strings.NewReader(text)); err == nil {
			t.Fatalf("%s: ReadCSVColumns accepted malformed input", name)
		}
	}
}

// TestColumnsBuilderOrder pins the builder contract: Trajectories()
// groups in first-appearance order and time-sorts each group, while
// Trajectory(id) preserves as-added order (the stream drain semantics).
func TestColumnsBuilderOrder(t *testing.T) {
	b := NewColumnsBuilder()
	b.Add("b", 2, 0, 0)
	b.Add("a", 5, 1, 1)
	b.Add("b", 1, 2, 2)
	b.Add("a", 3, 3, 3)

	trs := b.Trajectories()
	if len(trs) != 2 || trs[0].ID != "b" || trs[1].ID != "a" {
		t.Fatalf("group order wrong: %v", []string{trs[0].ID, trs[1].ID})
	}
	if trs[0].Points[0].T != 1 || trs[0].Points[1].T != 2 {
		t.Fatalf("group b not time-sorted: %+v", trs[0].Points)
	}

	raw := b.Trajectory("b")
	if raw.Points[0].T != 2 || raw.Points[1].T != 1 {
		t.Fatalf("Trajectory(id) reordered samples: %+v", raw.Points)
	}
	if b.Trajectory("missing") != nil {
		t.Fatal("Trajectory of unknown id should be nil")
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if got := b.IDs(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("IDs = %v", got)
	}
}

// BenchmarkReadCSV compares the csv.Reader decode against the columnar
// decode on identical input (not gated; documents the load-path win).
func BenchmarkReadCSV(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var sb strings.Builder
	var trs []*Trajectory
	for k := 0; k < 20; k++ {
		tr := &Trajectory{ID: fmt.Sprintf("veh-%d", k)}
		for i := 0; i < 500; i++ {
			tr.Points = append(tr.Points, Point{
				T:   float64(i),
				Pos: geo.Pt(rng.NormFloat64()*100, rng.NormFloat64()*100),
			})
		}
		trs = append(trs, tr)
	}
	if err := WriteCSV(&sb, trs); err != nil {
		b.Fatal(err)
	}
	text := sb.String()
	b.Run("aos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadCSV(strings.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadCSVColumns(strings.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
