package trajectory

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unsafe"
)

// ColumnsBuilder groups samples by trajectory id into columnar form,
// preserving first-appearance order — the incremental half of the
// columnar decode path. The CSV decoder feeds it row by row, and the
// stream drain path feeds it result by result; either way points land
// directly in flat T/X/Y slices instead of per-id []Point groups.
type ColumnsBuilder struct {
	idx  map[string]int
	ids  []string
	cols []*Columns
}

// NewColumnsBuilder returns an empty builder.
func NewColumnsBuilder() *ColumnsBuilder {
	return &ColumnsBuilder{idx: map[string]int{}}
}

// Add appends one sample to id's column group, creating the group on
// first appearance.
func (b *ColumnsBuilder) Add(id string, t, x, y float64) {
	i, ok := b.idx[id]
	if !ok {
		i = len(b.cols)
		b.idx[id] = i
		b.ids = append(b.ids, id)
		b.cols = append(b.cols, &Columns{})
	}
	b.cols[i].Append(t, x, y)
}

// addView is Add for an id that aliases a larger decode buffer: the map
// lookup on string(view) does not allocate, and only a first appearance
// clones the id so the builder never pins the caller's buffer.
func (b *ColumnsBuilder) addView(view string, t, x, y float64) {
	if i, ok := b.idx[view]; ok {
		b.cols[i].Append(t, x, y)
		return
	}
	b.Add(strings.Clone(view), t, x, y)
}

// Len returns the total number of samples added.
func (b *ColumnsBuilder) Len() int {
	n := 0
	for _, c := range b.cols {
		n += c.Len()
	}
	return n
}

// IDs returns the group ids in first-appearance order. The slice is the
// builder's own; callers must not modify it.
func (b *ColumnsBuilder) IDs() []string { return b.ids }

// Columns returns id's column group in as-added order, or nil if the id
// was never added. The returned value is the builder's live group.
func (b *ColumnsBuilder) Columns(id string) *Columns {
	if i, ok := b.idx[id]; ok {
		return b.cols[i]
	}
	return nil
}

// Trajectory materializes id's group in as-added order (no sorting —
// the stream drain path appends in emission order and must preserve
// it). It returns nil when the id has no samples.
func (b *ColumnsBuilder) Trajectory(id string) *Trajectory {
	c := b.Columns(id)
	if c == nil || c.Len() == 0 {
		return nil
	}
	return c.Trajectory(id)
}

// Trajectories materializes every group in first-appearance order with
// each trajectory time-sorted — exactly ReadCSV's grouping semantics.
// Already-ordered groups (the common case) are detected with one linear
// pass and materialized without the stable sort, mirroring
// trajectory.New's fast path without its extra copy.
func (b *ColumnsBuilder) Trajectories() []*Trajectory {
	out := make([]*Trajectory, len(b.cols))
	for i, c := range b.cols {
		pts := c.ToPoints(make([]Point, 0, c.Len()))
		if !pointsSorted(pts) {
			sort.SliceStable(pts, func(a, b int) bool { return pts[a].T < pts[b].T })
		}
		out[i] = &Trajectory{ID: b.ids[i], Points: pts}
	}
	return out
}

// ReadCSVColumns decodes the same "id,t,x,y" CSV as ReadCSV but through
// the columnar path: the input is read once into a single buffer, every
// field is a zero-copy view into it (float parsing and id map lookups
// allocate nothing per row), and samples accumulate straight into
// per-id columns. The result is identical to ReadCSV — same grouping,
// same ordering, same time-sort semantics — for any input without
// quoted fields; inputs containing quotes fall back to ReadCSV for full
// csv-escaping fidelity.
func ReadCSVColumns(r io.Reader) ([]*Trajectory, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trajectory: read csv: %w", err)
	}
	if bytes.IndexByte(data, '"') >= 0 {
		return ReadCSV(bytes.NewReader(data))
	}
	// Zero-copy view of the input: data is owned by this function and
	// never written after this point, which is exactly the immutability
	// a string view requires. Every field below is a slice of s; only a
	// group's first appearance clones its id out of the buffer.
	s := unsafe.String(unsafe.SliceData(data), len(data))
	// Header: the first non-blank line (csv.Reader skips empty lines).
	var line string
	rest, lineNo := s, 0
	for {
		if rest == "" {
			return nil, fmt.Errorf("trajectory: read csv header: %w", io.EOF)
		}
		line, rest, lineNo = nextCSVLine(rest, lineNo)
		if line != "" {
			break
		}
	}
	var f [4]string
	if err := splitCSVLine(line, lineNo, &f); err != nil {
		return nil, fmt.Errorf("trajectory: read csv header: %w", err)
	}
	if f[0] != "id" {
		return nil, fmt.Errorf("trajectory: unexpected csv header %v", []string{f[0], f[1], f[2], f[3]})
	}
	b := NewColumnsBuilder()
	for rest != "" {
		line, rest, lineNo = nextCSVLine(rest, lineNo)
		if line == "" {
			continue // blank line, as csv.Reader skips
		}
		if err := splitCSVLine(line, lineNo, &f); err != nil {
			return nil, fmt.Errorf("trajectory: read csv row: %w", err)
		}
		t, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad t %q: %w", f[1], err)
		}
		x, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad x %q: %w", f[2], err)
		}
		y, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: bad y %q: %w", f[3], err)
		}
		b.addView(f[0], t, x, y)
	}
	return b.Trajectories(), nil
}

// nextCSVLine returns the next line of s (without its terminator, with
// a trailing \r stripped as csv.Reader does), the remainder, and the
// new line number.
func nextCSVLine(s string, lineNo int) (line, rest string, n int) {
	n = lineNo + 1
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		line, rest = s[:i], s[i+1:]
	} else {
		line = s
	}
	line = strings.TrimSuffix(line, "\r")
	return line, rest, n
}

// splitCSVLine splits an unquoted CSV line into exactly 4 fields.
func splitCSVLine(line string, lineNo int, f *[4]string) error {
	for k := 0; k < 3; k++ {
		i := strings.IndexByte(line, ',')
		if i < 0 {
			return fmt.Errorf("record on line %d: wrong number of fields", lineNo)
		}
		f[k], line = line[:i], line[i+1:]
	}
	if strings.IndexByte(line, ',') >= 0 {
		return fmt.Errorf("record on line %d: wrong number of fields", lineNo)
	}
	f[3] = line
	return nil
}
