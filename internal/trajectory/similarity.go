package trajectory

import (
	"math"

	"sidq/internal/geo"
)

// SED returns the synchronized Euclidean distance of point p from the
// straight movement between anchor points a and b: the distance between
// p's position and where the object would be at p.T under constant
// speed from a to b. SED is the standard error measure for
// error-bounded trajectory simplification.
func SED(a, b, p Point) float64 {
	if b.T == a.T {
		return p.Pos.Dist(a.Pos)
	}
	f := (p.T - a.T) / (b.T - a.T)
	expected := a.Pos.Lerp(b.Pos, f)
	return p.Pos.Dist(expected)
}

// MaxSED returns the maximum SED of the points strictly between indices
// i and j against the chord from point i to point j.
func MaxSED(tr *Trajectory, i, j int) float64 {
	var worst float64
	a, b := tr.Points[i], tr.Points[j]
	for k := i + 1; k < j; k++ {
		if d := SED(a, b, tr.Points[k]); d > worst {
			worst = d
		}
	}
	return worst
}

// PerpendicularError returns the maximum perpendicular (shape-only)
// distance of the points strictly between i and j from the chord i-j.
func PerpendicularError(tr *Trajectory, i, j int) float64 {
	var worst float64
	seg := geo.Segment{A: tr.Points[i].Pos, B: tr.Points[j].Pos}
	for k := i + 1; k < j; k++ {
		if d := seg.Dist(tr.Points[k].Pos); d > worst {
			worst = d
		}
	}
	return worst
}

// SyncDistance returns the mean synchronized Euclidean distance between
// two trajectories evaluated at n evenly spaced times across their
// overlapping span. It returns +Inf if the spans do not overlap or
// either trajectory is empty.
func SyncDistance(a, b *Trajectory, n int) float64 {
	a0, a1, okA := a.TimeBounds()
	b0, b1, okB := b.TimeBounds()
	if !okA || !okB || n < 1 {
		return math.Inf(1)
	}
	t0, t1 := math.Max(a0, b0), math.Min(a1, b1)
	if t1 < t0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var t float64
		if n == 1 {
			t = (t0 + t1) / 2
		} else {
			t = t0 + (t1-t0)*float64(i)/float64(n-1)
		}
		pa, _ := a.LocationAt(t)
		pb, _ := b.LocationAt(t)
		sum += pa.Dist(pb)
	}
	return sum / float64(n)
}

// DTW returns the dynamic-time-warping distance between the spatial
// footprints of a and b, using Euclidean point distance as the local
// cost. It returns +Inf if either trajectory is empty.
func DTW(a, b *Trajectory) float64 {
	n, m := len(a.Points), len(b.Points)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	// Rolling two-row DP to bound memory at O(m).
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			cost := a.Points[i-1].Pos.Dist(b.Points[j-1].Pos)
			cur[j] = cost + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Hausdorff returns the symmetric Hausdorff distance between the vertex
// sets of the two trajectories.
func Hausdorff(a, b *Trajectory) float64 {
	return geo.Hausdorff(a.Polyline(), b.Polyline())
}

// RMSEAgainst returns the root-mean-square positional error of tr
// against a ground-truth trajectory, evaluated at tr's own sample times
// via interpolation of the truth. It returns +Inf if truth is empty.
func RMSEAgainst(tr, truth *Trajectory) float64 {
	if len(truth.Points) == 0 || len(tr.Points) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range tr.Points {
		tp, _ := truth.LocationAt(p.T)
		d := p.Pos.Dist(tp)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(tr.Points)))
}

// MeanErrorAgainst is like RMSEAgainst but returns the mean absolute
// positional error.
func MeanErrorAgainst(tr, truth *Trajectory) float64 {
	if len(truth.Points) == 0 || len(tr.Points) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range tr.Points {
		tp, _ := truth.LocationAt(p.T)
		sum += p.Pos.Dist(tp)
	}
	return sum / float64(len(tr.Points))
}
