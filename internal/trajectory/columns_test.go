package trajectory

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sidq/internal/geo"
)

// randPoints draws n points whose coordinates occasionally degenerate
// to NaN/±Inf — the round-trip must preserve them bit for bit.
func randPoints(rng *rand.Rand, n int, withSpecials bool) []Point {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	draw := func() float64 {
		if withSpecials && rng.Intn(8) == 0 {
			return specials[rng.Intn(len(specials))]
		}
		return rng.NormFloat64() * 1e3
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{T: draw(), Pos: geo.Point{X: draw(), Y: draw()}}
	}
	return pts
}

func bitsEqualPoints(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].T) != math.Float64bits(b[i].T) ||
			math.Float64bits(a[i].Pos.X) != math.Float64bits(b[i].Pos.X) ||
			math.Float64bits(a[i].Pos.Y) != math.Float64bits(b[i].Pos.Y) {
			return false
		}
	}
	return true
}

func TestColumnsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		pts := randPoints(rng, rng.Intn(50), true)
		var c Columns
		c.FromPoints(pts)
		if c.Len() != len(pts) {
			t.Fatalf("trial %d: Len=%d want %d", trial, c.Len(), len(pts))
		}
		back := c.ToPoints(nil)
		if !bitsEqualPoints(pts, back) {
			t.Fatalf("trial %d: ToPoints(FromPoints(pts)) != pts (specials must survive)", trial)
		}
		var c2 Columns
		c2.FromPoints(back)
		if !c.Equal(&c2) {
			t.Fatalf("trial %d: FromPoints(ToPoints(c)) != c", trial)
		}
		// Per-sample accessor agrees with the AoS form.
		for i := range pts {
			if got := c.At(i); math.Float64bits(got.T) != math.Float64bits(pts[i].T) ||
				math.Float64bits(got.Pos.X) != math.Float64bits(pts[i].Pos.X) ||
				math.Float64bits(got.Pos.Y) != math.Float64bits(pts[i].Pos.Y) {
				t.Fatalf("trial %d: At(%d) mismatch", trial, i)
			}
		}
	}
}

func TestColumnsReuseDoesNotAllocate(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(1)), 256, false)
	var c Columns
	c.FromPoints(pts) // warm the capacity
	allocs := testing.AllocsPerRun(50, func() {
		c.FromPoints(pts)
	})
	if allocs != 0 {
		t.Fatalf("FromPoints on warm Columns allocated %.1f times/op, want 0", allocs)
	}
}

func TestColumnsIsSorted(t *testing.T) {
	var c Columns
	if !c.IsSorted() {
		t.Fatal("empty columns must report sorted")
	}
	c.Append(1, 0, 0)
	c.Append(1, 1, 1) // equal stamps are in order
	c.Append(2, 2, 2)
	if !c.IsSorted() {
		t.Fatal("non-decreasing stamps must report sorted")
	}
	c.Append(1.5, 3, 3)
	if c.IsSorted() {
		t.Fatal("regressing stamp must report unsorted")
	}
	var n Columns
	n.Append(math.NaN(), 0, 0)
	if n.IsSorted() {
		t.Fatal("NaN stamp must report unsorted (sorting path owns NaN order)")
	}
}

// TestNewFastPathMatchesSort pins the satellite contract: New on
// already-ordered input must produce exactly what the historical
// copy-then-stable-sort produced, and unsorted/NaN input must still be
// sorted.
func TestNewFastPathMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		pts := randPoints(rng, 1+rng.Intn(40), trial%3 == 0)
		if trial%2 == 0 {
			// Pre-sort (NaNs removed) to exercise the fast path.
			for i := range pts {
				if math.IsNaN(pts[i].T) {
					pts[i].T = float64(i)
				}
			}
			sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		}
		want := append([]Point(nil), pts...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].T < want[j].T })
		got := New("t", pts)
		if !bitsEqualPoints(got.Points, want) {
			t.Fatalf("trial %d: New output diverged from copy-then-stable-sort", trial)
		}
	}
}

func TestColumnsSpeedsInto(t *testing.T) {
	tr := New("s", []Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 1, Pos: geo.Pt(3, 4)},
		{T: 1, Pos: geo.Pt(6, 8)}, // zero dt -> +Inf
		{T: 3, Pos: geo.Pt(6, 8)},
	})
	var c Columns
	c.FromTrajectory(tr)
	got := make([]float64, c.Len()-1)
	c.SpeedsInto(got)
	want := tr.Speeds()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("speed[%d]: got %v want %v", i, got[i], want[i])
		}
	}
}
