package trajectory

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"sidq/internal/geo"
)

func line(id string, n int, dt, speed float64) *Trajectory {
	pts := make([]Point, n)
	for i := range pts {
		t := float64(i) * dt
		pts[i] = Point{T: t, Pos: geo.Pt(speed*t, 0)}
	}
	return New(id, pts)
}

func TestNewSortsByTime(t *testing.T) {
	tr := New("a", []Point{
		{T: 2, Pos: geo.Pt(2, 0)},
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 1, Pos: geo.Pt(1, 0)},
	})
	for i, want := range []float64{0, 1, 2} {
		if tr.Points[i].T != want {
			t.Fatalf("point %d time = %v", i, tr.Points[i].T)
		}
	}
}

func TestDurationLengthSpeeds(t *testing.T) {
	tr := line("a", 11, 1, 5) // 10 s at 5 m/s
	if tr.Duration() != 10 {
		t.Fatalf("duration = %v", tr.Duration())
	}
	if math.Abs(tr.Length()-50) > 1e-9 {
		t.Fatalf("length = %v", tr.Length())
	}
	for _, s := range tr.Speeds() {
		if math.Abs(s-5) > 1e-9 {
			t.Fatalf("speed = %v", s)
		}
	}
	ms, bad := tr.MaxSpeed()
	if bad || math.Abs(ms-5) > 1e-9 {
		t.Fatalf("max speed = %v bad=%v", ms, bad)
	}
}

func TestSpeedsBadTimestamps(t *testing.T) {
	tr := &Trajectory{Points: []Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 0, Pos: geo.Pt(5, 0)},
	}}
	s := tr.Speeds()
	if !math.IsInf(s[0], 1) {
		t.Fatalf("zero-dt speed = %v", s[0])
	}
	_, bad := tr.MaxSpeed()
	if !bad {
		t.Fatal("bad timestamps not flagged")
	}
}

func TestLocationAt(t *testing.T) {
	tr := line("a", 3, 10, 1) // points at t=0,10,20 at x=0,10,20
	p, ok := tr.LocationAt(5)
	if !ok || p != geo.Pt(5, 0) {
		t.Fatalf("LocationAt(5) = %v %v", p, ok)
	}
	if p, _ := tr.LocationAt(-5); p != geo.Pt(0, 0) {
		t.Fatalf("clamp low = %v", p)
	}
	if p, _ := tr.LocationAt(100); p != geo.Pt(20, 0) {
		t.Fatalf("clamp high = %v", p)
	}
	if _, ok := (&Trajectory{}).LocationAt(0); ok {
		t.Fatal("empty trajectory should report !ok")
	}
}

func TestResample(t *testing.T) {
	tr := line("a", 3, 10, 1)
	rs, err := tr.Resample(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Points[0].T != 0 || rs.Points[len(rs.Points)-1].T != 20 {
		t.Fatalf("endpoints: %v..%v", rs.Points[0].T, rs.Points[len(rs.Points)-1].T)
	}
	for _, p := range rs.Points {
		if math.Abs(p.Pos.X-p.T) > 1e-9 {
			t.Fatalf("interpolation wrong at t=%v: %v", p.T, p.Pos)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Fatal("zero interval should error")
	}
	if _, err := (&Trajectory{}).Resample(1); err != ErrTooShort {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
}

func TestThin(t *testing.T) {
	tr := line("a", 10, 1, 1)
	th := tr.Thin(3)
	// Keeps 0,3,6,9 -> 4 points; last original (t=9) already kept.
	if th.Len() != 4 {
		t.Fatalf("thin len = %d", th.Len())
	}
	if th.Points[len(th.Points)-1].T != 9 {
		t.Fatal("last point not preserved")
	}
	tr2 := line("b", 11, 1, 1)
	th2 := tr2.Thin(3) // keeps 0,3,6,9 plus last 10
	if th2.Points[len(th2.Points)-1].T != 10 {
		t.Fatal("last point not appended")
	}
	if got := tr.Thin(1); got.Len() != tr.Len() {
		t.Fatal("k=1 should clone")
	}
}

func TestSliceAndTimeBounds(t *testing.T) {
	tr := line("a", 11, 1, 1)
	s := tr.Slice(2.5, 6.5)
	if s.Len() != 4 { // t=3,4,5,6
		t.Fatalf("slice len = %d", s.Len())
	}
	t0, t1, ok := tr.TimeBounds()
	if !ok || t0 != 0 || t1 != 10 {
		t.Fatalf("bounds %v %v %v", t0, t1, ok)
	}
}

func TestStayPoints(t *testing.T) {
	var pts []Point
	// Move, then dwell 60 s within 5 m, then move on.
	for i := 0; i < 10; i++ {
		pts = append(pts, Point{T: float64(i) * 10, Pos: geo.Pt(float64(i)*50, 0)})
	}
	base := pts[len(pts)-1]
	for i := 1; i <= 6; i++ {
		pts = append(pts, Point{T: base.T + float64(i)*10, Pos: base.Pos.Add(geo.Pt(float64(i%3), 1))})
	}
	for i := 1; i <= 5; i++ {
		pts = append(pts, Point{T: base.T + 60 + float64(i)*10, Pos: base.Pos.Add(geo.Pt(float64(i)*50, 0))})
	}
	tr := New("a", pts)
	sps := tr.StayPoints(10, 30)
	if len(sps) != 1 {
		t.Fatalf("stay points = %d, want 1", len(sps))
	}
	if sps[0].Duration() < 30 {
		t.Fatalf("stay duration = %v", sps[0].Duration())
	}
	if d := sps[0].Center.Dist(base.Pos); d > 10 {
		t.Fatalf("stay center off by %v", d)
	}
	if got := tr.StayPoints(10, 3600); len(got) != 0 {
		t.Fatal("impossible min duration should yield none")
	}
}

func TestSED(t *testing.T) {
	a := Point{T: 0, Pos: geo.Pt(0, 0)}
	b := Point{T: 10, Pos: geo.Pt(10, 0)}
	p := Point{T: 5, Pos: geo.Pt(5, 3)}
	if got := SED(a, b, p); math.Abs(got-3) > 1e-12 {
		t.Fatalf("SED = %v", got)
	}
	// Zero-duration chord falls back to distance from a.
	if got := SED(a, Point{T: 0, Pos: geo.Pt(9, 0)}, p); math.Abs(got-math.Hypot(5, 3)) > 1e-12 {
		t.Fatalf("degenerate SED = %v", got)
	}
}

func TestMaxSEDAndPerpendicular(t *testing.T) {
	tr := New("a", []Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 5, Pos: geo.Pt(5, 4)},
		{T: 10, Pos: geo.Pt(10, 0)},
	})
	if got := MaxSED(tr, 0, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MaxSED = %v", got)
	}
	if got := PerpendicularError(tr, 0, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("PerpendicularError = %v", got)
	}
	if MaxSED(tr, 0, 1) != 0 {
		t.Fatal("adjacent MaxSED should be 0")
	}
}

func TestSyncDistance(t *testing.T) {
	a := line("a", 11, 1, 1)
	b := New("b", nil)
	for _, p := range a.Points {
		b.Points = append(b.Points, Point{T: p.T, Pos: p.Pos.Add(geo.Pt(0, 2))})
	}
	if got := SyncDistance(a, b, 21); math.Abs(got-2) > 1e-9 {
		t.Fatalf("SyncDistance = %v", got)
	}
	if !math.IsInf(SyncDistance(a, &Trajectory{}, 5), 1) {
		t.Fatal("empty should be +Inf")
	}
	c := line("c", 5, 1, 1)
	c.Points[0].T += 100 // disjoint span
	for i := range c.Points {
		c.Points[i].T += 100
	}
	if !math.IsInf(SyncDistance(a, New("c", c.Points), 5), 1) {
		t.Fatal("disjoint spans should be +Inf")
	}
}

func TestDTWIdentityAndShift(t *testing.T) {
	a := line("a", 20, 1, 2)
	if got := DTW(a, a); got != 0 {
		t.Fatalf("DTW self = %v", got)
	}
	b := New("b", nil)
	for _, p := range a.Points {
		b.Points = append(b.Points, Point{T: p.T, Pos: p.Pos.Add(geo.Pt(0, 1))})
	}
	got := DTW(a, b)
	if got < 19 || got > 21 { // 20 matched pairs at distance 1 (warping may skip a bit)
		t.Fatalf("DTW shifted = %v", got)
	}
	if !math.IsInf(DTW(a, &Trajectory{}), 1) {
		t.Fatal("empty DTW should be +Inf")
	}
}

func TestRMSEAndMeanError(t *testing.T) {
	truth := line("t", 11, 1, 1)
	noisy := truth.Clone()
	for i := range noisy.Points {
		noisy.Points[i].Pos = noisy.Points[i].Pos.Add(geo.Pt(0, 3))
	}
	if got := RMSEAgainst(noisy, truth); math.Abs(got-3) > 1e-9 {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MeanErrorAgainst(noisy, truth); math.Abs(got-3) > 1e-9 {
		t.Fatalf("mean error = %v", got)
	}
	if !math.IsInf(RMSEAgainst(noisy, &Trajectory{}), 1) {
		t.Fatal("empty truth should be +Inf")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := line("veh-1", 5, 1.5, 3)
	b := line("veh-2", 3, 2, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Trajectory{a, b}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != "veh-1" || back[1].ID != "veh-2" {
		t.Fatalf("round trip ids: %+v", back)
	}
	for i, p := range back[0].Points {
		if p != a.Points[i] {
			t.Fatalf("point %d mismatch: %v vs %v", i, p, a.Points[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("nope,this,is,bad\n")); err == nil {
		t.Fatal("bad header should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("id,t,x,y\na,notanumber,0,0\n")); err == nil {
		t.Fatal("bad float should error")
	}
}

func TestLocationAtInterpolationProperty(t *testing.T) {
	tr := line("a", 50, 1, 2)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		tm := math.Mod(math.Abs(raw), 49)
		p, ok := tr.LocationAt(tm)
		// On a constant-velocity line, interpolation must be exact.
		return ok && math.Abs(p.X-2*tm) < 1e-6 && p.Y == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
