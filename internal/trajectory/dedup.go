package trajectory

import "math"

// DeduplicateCols compacts src into dst, keeping the first occurrence
// of each exact (T, X, Y) sample. Equality is Go map-key float
// equality — the semantics deduplicating through a map[Point]bool has,
// which the columnar DeduplicateStage must reproduce bit for bit:
//
//   - NaN compares unequal to everything, itself included, so any
//     sample with a NaN field is always kept.
//   - +0 equals -0, so the first spelling encountered wins and later
//     ones are dropped regardless of sign bit.
//
// Kept samples are copied with their original bits (a -0 surviving as
// the first occurrence stays -0). dst is reset first; src is untouched.
func DeduplicateCols(dst, src *Columns) {
	n := src.Len()
	dst.Reset()
	dst.Grow(n)
	seen := make(map[[3]uint64]struct{}, n)
	for i := 0; i < n; i++ {
		t, x, y := src.T[i], src.X[i], src.Y[i]
		if t != t || x != x || y != y { // NaN field: never a duplicate
			dst.Append(t, x, y)
			continue
		}
		key := [3]uint64{dedupBits(t), dedupBits(x), dedupBits(y)}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		dst.Append(t, x, y)
	}
}

// dedupBits canonicalizes a non-NaN float for equality keying: both
// zeros share one key, everything else keys on its exact bits.
func dedupBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}
