// Package trajectory defines the core moving-object data model used
// throughout sidq: timestamped location sequences, kinematic
// derivations (speed, heading), resampling and thinning, stay-point
// detection, and trajectory similarity measures.
//
// Time is represented as float64 seconds since an arbitrary epoch; all
// generators and cleaners in this repository use the same convention,
// which keeps the math simple and the tests deterministic.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sidq/internal/geo"
)

// ErrTooShort is returned by operations that need a minimum number of points.
var ErrTooShort = errors.New("trajectory: too few points")

// Point is one timestamped location sample of a moving object.
type Point struct {
	T   float64   // seconds since epoch
	Pos geo.Point // planar meters
}

// Trajectory is a time-ordered sequence of location samples for one object.
type Trajectory struct {
	ID     string
	Points []Point
}

// New returns a trajectory with the given id and points, sorted by time.
// Already-ordered input (the common case on every CSV decode and stream
// flush) is detected with one linear pass and copied without the
// stable-sort; out-of-order or NaN-stamped input takes the sorting
// path, whose output is identical to what the fast path produces for
// sorted input (a stable sort of sorted data is the identity).
func New(id string, pts []Point) *Trajectory {
	tr := &Trajectory{ID: id, Points: append([]Point(nil), pts...)}
	if !pointsSorted(tr.Points) {
		sort.SliceStable(tr.Points, func(i, j int) bool { return tr.Points[i].T < tr.Points[j].T })
	}
	return tr
}

// Len returns the number of samples.
func (tr *Trajectory) Len() int { return len(tr.Points) }

// Clone returns a deep copy of the trajectory.
func (tr *Trajectory) Clone() *Trajectory {
	return &Trajectory{ID: tr.ID, Points: append([]Point(nil), tr.Points...)}
}

// Duration returns the covered time span in seconds (0 if < 2 points).
func (tr *Trajectory) Duration() float64 {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T - tr.Points[0].T
}

// Length returns the total traveled planar distance in meters.
func (tr *Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(tr.Points); i++ {
		sum += tr.Points[i-1].Pos.Dist(tr.Points[i].Pos)
	}
	return sum
}

// Polyline returns the spatial footprint of the trajectory.
func (tr *Trajectory) Polyline() geo.Polyline {
	pl := make(geo.Polyline, len(tr.Points))
	for i, p := range tr.Points {
		pl[i] = p.Pos
	}
	return pl
}

// Bounds returns the minimal bounding rectangle of the trajectory.
func (tr *Trajectory) Bounds() geo.Rect { return tr.Polyline().Bounds() }

// TimeBounds returns the first and last sample times. ok is false for
// an empty trajectory.
func (tr *Trajectory) TimeBounds() (t0, t1 float64, ok bool) {
	if len(tr.Points) == 0 {
		return 0, 0, false
	}
	return tr.Points[0].T, tr.Points[len(tr.Points)-1].T, true
}

// Speeds returns the per-segment speeds in m/s: element i is the speed
// between points i and i+1. Segments with non-increasing timestamps
// report +Inf speed so constraint checks can flag them.
func (tr *Trajectory) Speeds() []float64 {
	if len(tr.Points) < 2 {
		return nil
	}
	out := make([]float64, len(tr.Points)-1)
	for i := 1; i < len(tr.Points); i++ {
		dt := tr.Points[i].T - tr.Points[i-1].T
		d := tr.Points[i-1].Pos.Dist(tr.Points[i].Pos)
		if dt <= 0 {
			out[i-1] = math.Inf(1)
		} else {
			out[i-1] = d / dt
		}
	}
	return out
}

// LocationAt returns the linearly interpolated position at time t.
// Times outside the covered span clamp to the endpoints. ok is false
// for an empty trajectory.
func (tr *Trajectory) LocationAt(t float64) (geo.Point, bool) {
	n := len(tr.Points)
	if n == 0 {
		return geo.Point{}, false
	}
	if t <= tr.Points[0].T {
		return tr.Points[0].Pos, true
	}
	if t >= tr.Points[n-1].T {
		return tr.Points[n-1].Pos, true
	}
	// Binary search for the surrounding pair.
	i := sort.Search(n, func(i int) bool { return tr.Points[i].T >= t })
	a, b := tr.Points[i-1], tr.Points[i]
	if b.T == a.T {
		return b.Pos, true
	}
	f := (t - a.T) / (b.T - a.T)
	return a.Pos.Lerp(b.Pos, f), true
}

// Slice returns the sub-trajectory with sample times in [t0, t1].
func (tr *Trajectory) Slice(t0, t1 float64) *Trajectory {
	out := &Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		if p.T >= t0 && p.T <= t1 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Resample returns a new trajectory sampled every dt seconds across the
// covered span using linear interpolation. The last original timestamp
// is always included.
func (tr *Trajectory) Resample(dt float64) (*Trajectory, error) {
	if len(tr.Points) < 2 {
		return nil, ErrTooShort
	}
	if dt <= 0 {
		return nil, fmt.Errorf("trajectory: non-positive resample interval %v", dt)
	}
	t0, t1, _ := tr.TimeBounds()
	out := &Trajectory{ID: tr.ID}
	for t := t0; t < t1; t += dt {
		pos, _ := tr.LocationAt(t)
		out.Points = append(out.Points, Point{T: t, Pos: pos})
	}
	last := tr.Points[len(tr.Points)-1]
	out.Points = append(out.Points, last)
	return out, nil
}

// Thin returns a copy keeping every k-th point (and always the last),
// simulating low-sampling-rate collection.
func (tr *Trajectory) Thin(k int) *Trajectory {
	if k <= 1 || len(tr.Points) == 0 {
		return tr.Clone()
	}
	out := &Trajectory{ID: tr.ID}
	for i := 0; i < len(tr.Points); i += k {
		out.Points = append(out.Points, tr.Points[i])
	}
	if lastKept := out.Points[len(out.Points)-1]; lastKept.T != tr.Points[len(tr.Points)-1].T {
		out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	}
	return out
}

// StayPoint is a detected dwell: the object stayed within Radius meters
// of Center between Start and End.
type StayPoint struct {
	Center     geo.Point
	Start, End float64
	Count      int // number of samples merged
}

// Duration returns the dwell duration in seconds.
func (s StayPoint) Duration() float64 { return s.End - s.Start }

// StayPoints detects dwells: maximal runs of samples that stay within
// radius meters of the run's anchor and last at least minDuration
// seconds. This is the classic stay-point detection used by semantic
// trajectory annotation.
func (tr *Trajectory) StayPoints(radius, minDuration float64) []StayPoint {
	var out []StayPoint
	pts := tr.Points
	i := 0
	for i < len(pts) {
		j := i + 1
		for j < len(pts) && pts[i].Pos.Dist(pts[j].Pos) <= radius {
			j++
		}
		// Run is pts[i:j].
		if dur := pts[j-1].T - pts[i].T; j-i >= 2 && dur >= minDuration {
			var cx, cy float64
			for _, p := range pts[i:j] {
				cx += p.Pos.X
				cy += p.Pos.Y
			}
			n := float64(j - i)
			out = append(out, StayPoint{
				Center: geo.Pt(cx/n, cy/n),
				Start:  pts[i].T,
				End:    pts[j-1].T,
				Count:  j - i,
			})
			i = j
			continue
		}
		i++
	}
	return out
}

// MeanSampleInterval returns the mean time gap between consecutive
// samples (0 if < 2 points).
func (tr *Trajectory) MeanSampleInterval() float64 {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Duration() / float64(len(tr.Points)-1)
}

// MaxSpeed returns the maximum finite per-segment speed, and whether
// any segment had a non-increasing timestamp (reported separately so
// callers can distinguish data faults from fast motion).
func (tr *Trajectory) MaxSpeed() (maxSpeed float64, hasBadTimestamps bool) {
	for _, s := range tr.Speeds() {
		if math.IsInf(s, 1) {
			hasBadTimestamps = true
			continue
		}
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	return maxSpeed, hasBadTimestamps
}
