package trajectory

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"sidq/internal/geo"
)

// TestColumnsConversionHammer round-trips shared source trajectories
// through pooled Columns from many goroutines at once. The sources are
// read concurrently and the scratch columns are recycled across
// goroutines, so under -race (make race-hammer) this catches any write
// into shared point slices or pool misuse in the conversion path; the
// bit-compare catches cross-goroutine buffer mixups that happen to be
// race-silent.
func TestColumnsConversionHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var srcs []*Trajectory
	for k := 0; k < 6; k++ {
		tr := &Trajectory{ID: "h"}
		for i := 0; i < 300; i++ {
			tr.Points = append(tr.Points, Point{
				T:   float64(i) + rng.Float64(),
				Pos: geo.Pt(rng.NormFloat64()*100, rng.NormFloat64()*100),
			})
		}
		srcs = append(srcs, tr)
	}

	pool := sync.Pool{New: func() any { return new(Columns) }}
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				src := srcs[(w+r)%len(srcs)]
				c := pool.Get().(*Columns)
				c.FromTrajectory(src)
				got := c.Trajectory(src.ID)
				pool.Put(c)
				if got.Len() != src.Len() {
					errs <- "round-trip changed length"
					return
				}
				for i := range src.Points {
					a, b := got.Points[i], src.Points[i]
					if math.Float64bits(a.T) != math.Float64bits(b.T) ||
						math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
						math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) {
						errs <- "round-trip diverged under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
