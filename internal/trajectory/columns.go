package trajectory

import (
	"math"

	"sidq/internal/geo"
)

// Columns is the struct-of-arrays form of a timestamped point sequence:
// parallel T/X/Y slices instead of a []Point. The hot cleaning kernels
// (speed gate, outlier scans, simplification, motion refinement) run
// their inner loops over these flat slices — one contiguous stream per
// coordinate, no per-point pointer chasing — while conversion to and
// from the []Point form is lossless (NaN and ±Inf coordinates survive
// a round trip bit for bit; the float values are copied, never
// re-derived).
//
// The three slices always have equal length. A Columns value is cheap
// to reuse: Reset keeps capacity, and every From*/append helper grows
// all three slices together.
type Columns struct {
	T, X, Y []float64
}

// Len returns the number of samples.
func (c *Columns) Len() int { return len(c.T) }

// Reset empties the columns, retaining capacity for reuse.
func (c *Columns) Reset() {
	c.T = c.T[:0]
	c.X = c.X[:0]
	c.Y = c.Y[:0]
}

// Grow ensures capacity for at least n additional samples.
func (c *Columns) Grow(n int) {
	if need := len(c.T) + n; cap(c.T) < need {
		t := make([]float64, len(c.T), need)
		x := make([]float64, len(c.X), need)
		y := make([]float64, len(c.Y), need)
		copy(t, c.T)
		copy(x, c.X)
		copy(y, c.Y)
		c.T, c.X, c.Y = t, x, y
	}
}

// Append adds one sample.
func (c *Columns) Append(t, x, y float64) {
	c.T = append(c.T, t)
	c.X = append(c.X, x)
	c.Y = append(c.Y, y)
}

// AppendPoint adds one Point sample.
func (c *Columns) AppendPoint(p Point) { c.Append(p.T, p.Pos.X, p.Pos.Y) }

// At returns sample i in Point form.
func (c *Columns) At(i int) Point {
	return Point{T: c.T[i], Pos: geo.Point{X: c.X[i], Y: c.Y[i]}}
}

// FromPoints replaces the columns' contents with pts. The receiver's
// capacity is reused when possible, so a pooled Columns converts a
// trajectory without allocating in steady state.
func (c *Columns) FromPoints(pts []Point) {
	n := len(pts)
	c.Reset()
	c.Grow(n)
	c.T = c.T[:n]
	c.X = c.X[:n]
	c.Y = c.Y[:n]
	for i := range pts {
		c.T[i] = pts[i].T
		c.X[i] = pts[i].Pos.X
		c.Y[i] = pts[i].Pos.Y
	}
}

// ToPoints appends the columns' samples to dst in Point form and
// returns it (pass nil to allocate exactly).
func (c *Columns) ToPoints(dst []Point) []Point {
	n := c.Len()
	if cap(dst)-len(dst) < n {
		grown := make([]Point, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Point{T: c.T[i], Pos: geo.Point{X: c.X[i], Y: c.Y[i]}})
	}
	return dst
}

// FromTrajectory fills the columns from tr's points.
func (c *Columns) FromTrajectory(tr *Trajectory) { c.FromPoints(tr.Points) }

// Trajectory materializes the columns as a fresh trajectory with the
// given id.
func (c *Columns) Trajectory(id string) *Trajectory {
	return &Trajectory{ID: id, Points: c.ToPoints(make([]Point, 0, c.Len()))}
}

// Equal reports whether c and o hold bit-identical samples (NaN
// compares equal to NaN here: equality is on the bit pattern of every
// float64, which is what lossless round-tripping means).
func (c *Columns) Equal(o *Columns) bool {
	if c.Len() != o.Len() {
		return false
	}
	eq := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(c.T, o.T) && eq(c.X, o.X) && eq(c.Y, o.Y)
}

// IsSorted reports whether the samples are in non-decreasing time
// order — one linear pass, the fast-path check trajectory.New and the
// decode/stream-flush paths use to skip the copy-then-stable-sort.
// NaN timestamps report false so such inputs keep taking the sorting
// path (sort order with NaNs is what sort.SliceStable made it, and
// only that path reproduces it).
func (c *Columns) IsSorted() bool { return timesSorted(c.T) }

func timesSorted(ts []float64) bool {
	for i := 1; i < len(ts); i++ {
		// Not ">=": equal stamps are fine (stable sort keeps their
		// order). A NaN comparison is always false, which would wrongly
		// pass, so test NaN explicitly.
		if ts[i] < ts[i-1] || math.IsNaN(ts[i]) {
			return false
		}
	}
	if len(ts) > 0 && math.IsNaN(ts[0]) {
		return false
	}
	return true
}

// pointsSorted is timesSorted over the AoS form.
func pointsSorted(pts []Point) bool {
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T || math.IsNaN(pts[i].T) {
			return false
		}
	}
	if len(pts) > 0 && math.IsNaN(pts[0].T) {
		return false
	}
	return true
}

// SpeedsInto writes the per-segment speeds (m/s) into dst, which must
// have length Len()-1 (Len() < 2 writes nothing). Element i is the
// speed between samples i and i+1; non-increasing timestamps report
// +Inf, mirroring Trajectory.Speeds.
func (c *Columns) SpeedsInto(dst []float64) {
	n := c.Len()
	if n < 2 {
		return
	}
	ts, xs, ys := c.T, c.X, c.Y
	for i := 1; i < n; i++ {
		dt := ts[i] - ts[i-1]
		d := math.Hypot(xs[i-1]-xs[i], ys[i-1]-ys[i])
		if dt <= 0 {
			dst[i-1] = math.Inf(1)
		} else {
			dst[i-1] = d / dt
		}
	}
}
