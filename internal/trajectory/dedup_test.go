package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

// aosDedup is the map[Point]bool reference the kernel must match bit
// for bit: Go map-key float equality decides what is a duplicate.
func aosDedup(pts []Point) []Point {
	seen := make(map[Point]bool, len(pts))
	var out []Point
	for _, p := range pts {
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// dedupSpecials draws coordinates that exercise every equality edge:
// NaN (never equal), ±0 (equal across signs), ±Inf, and a tiny value
// pool so exact duplicates are frequent.
func dedupSpecials(rng *rand.Rand) float64 {
	switch rng.Intn(12) {
	case 0:
		return math.NaN()
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return 0
	case 3:
		return math.Inf(1)
	case 4:
		return math.Inf(-1)
	default:
		return float64(rng.Intn(4))
	}
}

func TestDeduplicateColsMatchesMapSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	var src, dst Columns
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				T:   dedupSpecials(rng),
				Pos: geo.Point{X: dedupSpecials(rng), Y: dedupSpecials(rng)},
			}
		}
		want := aosDedup(pts)

		src.FromPoints(pts)
		DeduplicateCols(&dst, &src)
		if dst.Len() != len(want) {
			t.Fatalf("trial %d: %d samples, want %d", trial, dst.Len(), len(want))
		}
		for j, w := range want {
			if g := dst.At(j); !samePointBits(g, w) {
				t.Fatalf("trial %d sample %d: %+v, want %+v", trial, j, g, w)
			}
		}
		// src must be untouched.
		if src.Len() != n {
			t.Fatalf("trial %d: src mutated to %d samples", trial, src.Len())
		}
	}
}

// samePointBits compares points by bit pattern, so NaN == NaN and
// +0 != -0: kept samples must preserve their exact input bits.
func samePointBits(a, b Point) bool {
	return math.Float64bits(a.T) == math.Float64bits(b.T) &&
		math.Float64bits(a.Pos.X) == math.Float64bits(b.Pos.X) &&
		math.Float64bits(a.Pos.Y) == math.Float64bits(b.Pos.Y)
}

func TestDeduplicateColsKeepsFirstZeroSpelling(t *testing.T) {
	var src, dst Columns
	negZero := math.Copysign(0, -1)
	src.Append(1, negZero, 2)
	src.Append(1, 0, 2) // +0 duplicates -0: dropped
	src.Append(math.NaN(), 0, 0)
	src.Append(math.NaN(), 0, 0) // NaN never duplicates: kept
	DeduplicateCols(&dst, &src)
	if dst.Len() != 3 {
		t.Fatalf("kept %d samples, want 3", dst.Len())
	}
	if math.Signbit(dst.X[0]) != true {
		t.Fatal("first occurrence's -0 bit pattern was not preserved")
	}
	if !math.IsNaN(dst.T[1]) || !math.IsNaN(dst.T[2]) {
		t.Fatal("NaN samples were deduplicated")
	}
}
