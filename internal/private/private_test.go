package private

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

func outsourced(t *testing.T, n int, cell float64, seed int64) (*Client, *Server, []geo.Point) {
	t.Helper()
	scheme := NewScheme([]byte("a-long-and-secret-key"), cell)
	server := NewServer()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	var recs []Record
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		recs = append(recs, scheme.Encrypt(uint64(i), pts[i], []byte(fmt.Sprintf("payload-%d", i))))
	}
	server.Store(recs)
	return &Client{Scheme: scheme}, server, pts
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	s := NewScheme([]byte("key"), 50)
	p := geo.Pt(123.456, -789.01)
	rec := s.Encrypt(7, p, []byte("hello"))
	got, data, err := s.Decrypt(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got != p || !bytes.Equal(data, []byte("hello")) {
		t.Fatalf("round trip: %v %q", got, data)
	}
	// Empty payload round-trips too.
	rec2 := s.Encrypt(8, p, nil)
	_, data2, err := s.Decrypt(rec2)
	if err != nil || len(data2) != 0 {
		t.Fatalf("empty payload: %v %q", err, data2)
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	s := NewScheme([]byte("key"), 50)
	if _, _, err := s.Decrypt(Record{Ciphertext: []byte{1, 2, 3}}); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("short ciphertext: %v", err)
	}
}

func TestPrivateRangeQueryMatchesPlaintext(t *testing.T) {
	client, server, pts := outsourced(t, 1000, 80, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rect := geo.RectFromCenter(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			rng.Float64()*150, rng.Float64()*150,
		)
		got, err := client.RangeQuery(server, rect)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if rect.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), want)
		}
		for _, r := range got {
			if !rect.Contains(r.Pos) {
				t.Fatal("refinement leak: result outside rect")
			}
		}
	}
}

func TestCiphertextHidesCoordinates(t *testing.T) {
	s := NewScheme([]byte("key"), 50)
	p := geo.Pt(100, 100)
	a := s.Encrypt(1, p, []byte("x"))
	b := s.Encrypt(2, p, []byte("x"))
	// Same plaintext, different nonce -> different ciphertexts.
	if bytes.Equal(a.Ciphertext, b.Ciphertext) {
		t.Fatal("deterministic encryption leaks equality")
	}
	// The raw coordinate bytes never appear in the ciphertext.
	if bytes.Contains(a.Ciphertext[8:], []byte("payload")) {
		t.Fatal("plaintext visible")
	}
}

func TestTokensDecorrelatedFromSpace(t *testing.T) {
	s := NewScheme([]byte("key"), 100)
	// Adjacent cells must not produce adjacent/related tokens: check
	// that common prefixes between neighboring cells' tokens are no
	// longer than random pairs' (compare first byte equality rates).
	same := 0
	const n = 500
	for i := 0; i < n; i++ {
		a := s.Token(int64(i), 0)
		b := s.Token(int64(i+1), 0) // spatially adjacent
		if a[0] == b[0] {
			same++
		}
	}
	// 1/16 expected by chance on a hex digit; allow generous slack.
	if float64(same)/n > 0.2 {
		t.Fatalf("adjacent cells share token prefixes too often: %d/%d", same, n)
	}
	// Different keys give different tokens.
	s2 := NewScheme([]byte("other"), 100)
	if s.Token(3, 4) == s2.Token(3, 4) {
		t.Fatal("token independent of key")
	}
}

func TestOverfetchTradeoff(t *testing.T) {
	// Larger cells over-fetch more (server returns whole cells).
	rect := geo.RectFromCenter(geo.Pt(500, 500), 60, 60)
	fetchWith := func(cell float64) int {
		client, server, _ := outsourced(t, 2000, cell, 3)
		if _, err := client.RangeQuery(server, rect); err != nil {
			t.Fatal(err)
		}
		return server.Fetched()
	}
	small := fetchWith(50)
	large := fetchWith(400)
	if large <= small {
		t.Fatalf("larger cells should over-fetch more: %d vs %d", large, small)
	}
}

func TestServerSeesOnlyTokens(t *testing.T) {
	// Structural check: the server's store keys are the opaque tokens,
	// and the client query is a token list (no geometry crosses the
	// boundary in the types).
	client, server, _ := outsourced(t, 10, 100, 4)
	tokens := client.Scheme.CoverTokens(geo.RectFromCenter(geo.Pt(500, 500), 100, 100))
	if len(tokens) == 0 {
		t.Fatal("no tokens")
	}
	for _, tok := range tokens {
		if len(tok) != 32 { // 16 bytes hex
			t.Fatalf("token %q not opaque", tok)
		}
	}
	_ = server
}

func TestCoverTokensEmptyRect(t *testing.T) {
	s := NewScheme([]byte("k"), 100)
	if s.CoverTokens(geo.EmptyRect()) != nil {
		t.Fatal("empty rect should cover nothing")
	}
}
