// Package private implements the paper's §2.4 "privacy-preserving
// computing" trend for SID: outsourcing spatial data to an untrusted
// server such that the server can answer range queries without
// learning locations, in the spirit of the spatial-transformation
// schemes the paper cites (Yiu et al., The VLDB Journal 2010).
//
// The scheme is cell-based: the data owner keys a pseudorandom
// transformation that maps each spatial cell to an opaque token and
// encrypts each record's payload (including its exact coordinates)
// with a keyed stream. The server indexes records by token only. To
// query, the client derives the tokens of the cells covering its
// range, the server returns the matching ciphertexts, and the client
// decrypts and refines locally. The server observes tokens and result
// sizes but no coordinates, and nearby cells map to unrelated tokens.
//
// The cryptography here is intentionally lightweight (HMAC-SHA256
// tokens, SHA256-CTR-style keystream) — the point reproduced is the
// *architecture* and its efficiency/privacy trade-off, not a new
// cipher.
package private

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sidq/internal/geo"
)

// ErrBadCiphertext is returned when decryption fails structurally.
var ErrBadCiphertext = errors.New("private: bad ciphertext")

// Scheme is the client-side key material and spatial quantization.
type Scheme struct {
	key  []byte
	cell float64
}

// NewScheme returns a scheme with the given secret key and cell size
// in meters (the privacy/efficiency knob: larger cells leak less via
// access patterns but over-fetch more).
func NewScheme(key []byte, cellSize float64) *Scheme {
	if cellSize <= 0 {
		cellSize = 100
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Scheme{key: k, cell: cellSize}
}

// CellOf returns the cell coordinates of p.
func (s *Scheme) CellOf(p geo.Point) (int64, int64) {
	return int64(math.Floor(p.X / s.cell)), int64(math.Floor(p.Y / s.cell))
}

// Token derives the opaque server-side token of a cell.
func (s *Scheme) Token(cx, cy int64) string {
	mac := hmac.New(sha256.New, s.key)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(cx))
	binary.BigEndian.PutUint64(buf[8:], uint64(cy))
	mac.Write(buf[:])
	return fmt.Sprintf("%x", mac.Sum(nil)[:16])
}

// Record is one outsourced item: an opaque cell token plus an
// encrypted payload containing the exact position and the client data.
type Record struct {
	Token      string
	Ciphertext []byte
}

// plaintext layout: 8 bytes X | 8 bytes Y | data...

// Encrypt seals a point and payload into a Record.
func (s *Scheme) Encrypt(id uint64, p geo.Point, data []byte) Record {
	cx, cy := s.CellOf(p)
	plain := make([]byte, 16+len(data))
	binary.BigEndian.PutUint64(plain[:8], math.Float64bits(p.X))
	binary.BigEndian.PutUint64(plain[8:16], math.Float64bits(p.Y))
	copy(plain[16:], data)
	ct := make([]byte, 8+len(plain))
	binary.BigEndian.PutUint64(ct[:8], id) // nonce
	s.xorStream(id, ct[8:], plain)
	return Record{Token: s.Token(cx, cy), Ciphertext: ct}
}

// Decrypt opens a Record produced by Encrypt.
func (s *Scheme) Decrypt(r Record) (geo.Point, []byte, error) {
	if len(r.Ciphertext) < 24 {
		return geo.Point{}, nil, fmt.Errorf("private: ciphertext %d bytes: %w", len(r.Ciphertext), ErrBadCiphertext)
	}
	id := binary.BigEndian.Uint64(r.Ciphertext[:8])
	plain := make([]byte, len(r.Ciphertext)-8)
	s.xorStream(id, plain, r.Ciphertext[8:])
	p := geo.Pt(
		math.Float64frombits(binary.BigEndian.Uint64(plain[:8])),
		math.Float64frombits(binary.BigEndian.Uint64(plain[8:16])),
	)
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		return geo.Point{}, nil, fmt.Errorf("private: implausible plaintext: %w", ErrBadCiphertext)
	}
	return p, append([]byte(nil), plain[16:]...), nil
}

// xorStream XORs src into dst with a keyed SHA256 counter stream
// bound to the record nonce.
func (s *Scheme) xorStream(nonce uint64, dst, src []byte) {
	var counter uint64
	var block [sha256.Size]byte
	off := 0
	for off < len(src) {
		mac := hmac.New(sha256.New, s.key)
		var hdr [16]byte
		binary.BigEndian.PutUint64(hdr[:8], nonce)
		binary.BigEndian.PutUint64(hdr[8:], counter)
		mac.Write(hdr[:])
		copy(block[:], mac.Sum(nil))
		for i := 0; i < len(block) && off < len(src); i++ {
			dst[off] = src[off] ^ block[i]
			off++
		}
		counter++
	}
}

// CoverTokens returns the tokens of every cell intersecting rect —
// what the client sends to the server as its (obfuscated) query.
func (s *Scheme) CoverTokens(rect geo.Rect) []string {
	if rect.IsEmpty() {
		return nil
	}
	lox, loy := s.CellOf(rect.Min)
	hix, hiy := s.CellOf(rect.Max)
	var out []string
	for cy := loy; cy <= hiy; cy++ {
		for cx := lox; cx <= hix; cx++ {
			out = append(out, s.Token(cx, cy))
		}
	}
	return out
}

// Server is the untrusted host: it stores records keyed by token and
// never sees key material or coordinates.
type Server struct {
	byToken map[string][]Record
	fetched int
}

// NewServer returns an empty server.
func NewServer() *Server { return &Server{byToken: map[string][]Record{}} }

// Store ingests outsourced records.
func (sv *Server) Store(records []Record) {
	for _, r := range records {
		sv.byToken[r.Token] = append(sv.byToken[r.Token], r)
	}
}

// Fetch returns all records under the given tokens.
func (sv *Server) Fetch(tokens []string) []Record {
	var out []Record
	for _, t := range tokens {
		out = append(out, sv.byToken[t]...)
	}
	sv.fetched += len(out)
	return out
}

// Fetched returns the cumulative number of records served (the
// over-fetch measurement for the efficiency/privacy trade-off).
func (sv *Server) Fetched() int { return sv.fetched }

// Client bundles the scheme with result refinement.
type Client struct {
	Scheme *Scheme
}

// Result is one decrypted query answer.
type Result struct {
	Pos  geo.Point
	Data []byte
}

// RangeQuery runs the private protocol: derive cover tokens, fetch,
// decrypt, and refine to the exact rectangle locally.
func (c *Client) RangeQuery(sv *Server, rect geo.Rect) ([]Result, error) {
	records := sv.Fetch(c.Scheme.CoverTokens(rect))
	var out []Result
	for _, r := range records {
		p, data, err := c.Scheme.Decrypt(r)
		if err != nil {
			return nil, err
		}
		if rect.Contains(p) {
			out = append(out, Result{Pos: p, Data: data})
		}
	}
	return out, nil
}
