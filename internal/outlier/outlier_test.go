package outlier

import (
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func corruptedWalk(seed int64, rate float64) (*trajectory.Trajectory, *trajectory.Trajectory, []bool) {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(2000, 2000)}
	truth := simulate.RandomWalk("w", region, 600, 3, 1, seed)
	noisy := simulate.AddGaussianNoise(truth, 2, seed+1)
	corrupted, flags := simulate.InjectOutliers(noisy, rate, 150, seed+2)
	return truth, corrupted, flags
}

func TestSpeedConstraintDetects(t *testing.T) {
	_, corrupted, truth := corruptedWalk(1, 0.05)
	flags := SpeedConstraint(corrupted, 15)
	s := Evaluate(flags, truth)
	if s.Precision() < 0.8 {
		t.Fatalf("precision = %v (%+v)", s.Precision(), s)
	}
	if s.Recall() < 0.6 {
		t.Fatalf("recall = %v (%+v)", s.Recall(), s)
	}
}

func TestSpeedConstraintDegenerate(t *testing.T) {
	short := trajectory.New("s", []trajectory.Point{{T: 0}, {T: 1}})
	for _, f := range SpeedConstraint(short, 10) {
		if f {
			t.Fatal("short trajectory flagged")
		}
	}
	_, corrupted, _ := corruptedWalk(2, 0.05)
	for _, f := range SpeedConstraint(corrupted, 0) {
		if f {
			t.Fatal("zero max speed should disable")
		}
	}
}

func TestStatisticalDetects(t *testing.T) {
	_, corrupted, truth := corruptedWalk(3, 0.05)
	flags := Statistical(corrupted, StatisticalOptions{})
	s := Evaluate(flags, truth)
	if s.Precision() < 0.7 || s.Recall() < 0.6 {
		t.Fatalf("statistical P=%v R=%v (%+v)", s.Precision(), s.Recall(), s)
	}
}

func TestStatisticalCleanDataLowFalsePositives(t *testing.T) {
	truth, _, _ := corruptedWalk(4, 0)
	flags := Statistical(truth, StatisticalOptions{})
	fp := 0
	for _, f := range flags {
		if f {
			fp++
		}
	}
	if float64(fp)/float64(truth.Len()) > 0.02 {
		t.Fatalf("clean data false positives: %d of %d", fp, truth.Len())
	}
}

func TestPredictionDetectsAndRepairs(t *testing.T) {
	truthTr, corrupted, truth := corruptedWalk(5, 0.05)
	repaired, flags := Prediction(corrupted, PredictionOptions{
		ProcessNoise: 1, MeasNoise: 4, Threshold: 6, Repair: true,
	})
	s := Evaluate(flags, truth)
	if s.Precision() < 0.7 || s.Recall() < 0.6 {
		t.Fatalf("prediction P=%v R=%v (%+v)", s.Precision(), s.Recall(), s)
	}
	// Repair must reduce positional error versus the corrupted input.
	rawErr := trajectory.RMSEAgainst(corrupted, truthTr)
	repErr := trajectory.RMSEAgainst(repaired, truthTr)
	if repErr >= rawErr {
		t.Fatalf("repair: raw %v -> repaired %v", rawErr, repErr)
	}
	// Length preserved (repair, not removal).
	if repaired.Len() != corrupted.Len() {
		t.Fatal("repair changed length")
	}
}

func TestPredictionEmpty(t *testing.T) {
	out, flags := Prediction(&trajectory.Trajectory{}, PredictionOptions{})
	if out.Len() != 0 || len(flags) != 0 {
		t.Fatal("empty prediction")
	}
}

func TestRemove(t *testing.T) {
	tr := trajectory.New("x", []trajectory.Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 1, Pos: geo.Pt(1, 0)},
		{T: 2, Pos: geo.Pt(2, 0)},
	})
	out := Remove(tr, []bool{false, true, false})
	if out.Len() != 2 || out.Points[1].T != 2 {
		t.Fatalf("remove: %+v", out.Points)
	}
	// Short flag slice keeps the tail.
	out = Remove(tr, []bool{true})
	if out.Len() != 2 {
		t.Fatal("short flags")
	}
}

func TestEvaluateScores(t *testing.T) {
	pred := []bool{true, false, true, false}
	truth := []bool{true, true, false, false}
	s := Evaluate(pred, truth)
	if s.TP != 1 || s.FP != 1 || s.FN != 1 {
		t.Fatalf("score = %+v", s)
	}
	if s.Precision() != 0.5 || s.Recall() != 0.5 || s.F1() != 0.5 {
		t.Fatalf("PRF = %v %v %v", s.Precision(), s.Recall(), s.F1())
	}
	// Perfect empty case.
	e := Evaluate([]bool{false}, []bool{false})
	if e.Precision() != 1 || e.Recall() != 1 || e.F1() != 1 {
		t.Fatal("empty score should be perfect")
	}
	// Truth longer than prediction counts as misses.
	m := Evaluate([]bool{false}, []bool{false, true})
	if m.FN != 1 {
		t.Fatalf("mismatched lengths: %+v", m)
	}
}

func stidWorkload(seed int64, rate float64) ([]stid.Reading, []bool, *simulate.Field) {
	f := simulate.NewField(simulate.FieldOptions{Seed: seed})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 30, Interval: 300, Duration: 7200, NoiseSigma: 1, Seed: seed + 1,
	})
	corrupted, flags := simulate.InjectValueOutliers(readings, rate, 60, seed+2)
	return corrupted, flags, f
}

func TestTemporalDetectsSpikes(t *testing.T) {
	readings, truth, _ := stidWorkload(10, 0.04)
	flags := Temporal(readings, TemporalOptions{})
	s := Evaluate(flags, truth)
	if s.Precision() < 0.8 || s.Recall() < 0.7 {
		t.Fatalf("temporal P=%v R=%v (%+v)", s.Precision(), s.Recall(), s)
	}
}

func TestSpatialDetectsSpikes(t *testing.T) {
	readings, truth, _ := stidWorkload(11, 0.04)
	flags := Spatial(readings, SpatialOptions{Neighbors: 6, TimeWindow: 10})
	s := Evaluate(flags, truth)
	if s.Precision() < 0.5 || s.Recall() < 0.5 {
		t.Fatalf("spatial P=%v R=%v (%+v)", s.Precision(), s.Recall(), s)
	}
}

func TestSpatioTemporalHigherPrecision(t *testing.T) {
	readings, truth, _ := stidWorkload(12, 0.04)
	st := SpatioTemporal(readings, TemporalOptions{}, SpatialOptions{Neighbors: 6, TimeWindow: 10})
	sScore := Evaluate(Spatial(readings, SpatialOptions{Neighbors: 6, TimeWindow: 10}), truth)
	stScore := Evaluate(st, truth)
	// Requiring both signals should not lower precision.
	if stScore.Precision() < sScore.Precision()-1e-9 {
		t.Fatalf("ST precision %v < spatial precision %v", stScore.Precision(), sScore.Precision())
	}
}

func TestTemporalCleanDataFewFalsePositives(t *testing.T) {
	readings, _, _ := stidWorkload(13, 0)
	flags := Temporal(readings, TemporalOptions{})
	fp := 0
	for _, f := range flags {
		if f {
			fp++
		}
	}
	if float64(fp)/float64(len(readings)) > 0.03 {
		t.Fatalf("clean-data false positives: %d / %d", fp, len(readings))
	}
}

func TestRemoveReadings(t *testing.T) {
	rs := []stid.Reading{{SensorID: "a"}, {SensorID: "b"}, {SensorID: "c"}}
	out := RemoveReadings(rs, []bool{true, false, true})
	if len(out) != 1 || out[0].SensorID != "b" {
		t.Fatalf("remove readings: %+v", out)
	}
}

func TestRemovalImprovesDownstreamAccuracy(t *testing.T) {
	readings, flags, f := stidWorkload(14, 0.05)
	detected := Temporal(readings, TemporalOptions{})
	cleaned := RemoveReadings(readings, detected)
	errOf := func(rs []stid.Reading) float64 {
		var sum float64
		for _, r := range rs {
			d := r.Value - f.Value(r.Pos, r.T)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(rs))
	}
	if errOf(cleaned) >= errOf(readings) {
		t.Fatalf("cleaning did not reduce error: %v vs %v", errOf(cleaned), errOf(readings))
	}
	_ = flags
}
