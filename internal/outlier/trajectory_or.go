// Package outlier implements the paper's §2.2.3 Outlier Removal task
// family, covering the tutorial's three trajectory-point method
// categories (constraint-based, statistics-based, prediction-based)
// and the temporal / spatial / spatiotemporal STID outlier detectors.
//
// Detectors return boolean flags aligned to the input so experiments
// can score precision and recall against injected ground truth;
// Remove/Repair helpers turn flags into cleaned datasets.
package outlier

import (
	"math"
	"sync"

	"sidq/internal/refine"
	"sidq/internal/stats"
	"sidq/internal/trajectory"
)

// floatPool recycles feature buffers across Statistical calls — the
// detector runs once per trajectory per pipeline attempt, so the
// buffers are the dominant steady-state garbage in cleaning loops.
var floatPool = sync.Pool{New: func() any { return new([]float64) }}

func getFloats(n int) *[]float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// SpeedConstraint flags points that cannot be reached under the given
// maximum speed: a point is an outlier when the speeds both into and
// out of it violate the bound while its neighbors agree with each
// other. This is the classic constraint-based detector; it needs no
// training data but assumes locally valid neighbors.
func SpeedConstraint(tr *trajectory.Trajectory, maxSpeed float64) []bool {
	n := tr.Len()
	flags := make([]bool, n)
	if n < 3 || maxSpeed <= 0 {
		return flags
	}
	speed := func(i, j int) float64 {
		dt := tr.Points[j].T - tr.Points[i].T
		if dt <= 0 {
			return math.Inf(1)
		}
		return tr.Points[i].Pos.Dist(tr.Points[j].Pos) / dt
	}
	for i := 1; i < n-1; i++ {
		in := speed(i-1, i)
		out := speed(i, i+1)
		skip := speed(i-1, i+1) // neighbor-to-neighbor, skipping i
		if in > maxSpeed && out > maxSpeed && skip <= maxSpeed {
			flags[i] = true
		}
	}
	// Endpoints: flag when the only adjacent segment is impossible and
	// the next interior point is consistent with its own neighbor.
	if n >= 3 {
		if speed(0, 1) > maxSpeed && speed(1, 2) <= maxSpeed {
			flags[0] = true
		}
		if speed(n-2, n-1) > maxSpeed && speed(n-3, n-2) <= maxSpeed {
			flags[n-1] = true
		}
	}
	return flags
}

// StatisticalOptions configures the statistics-based detector.
type StatisticalOptions struct {
	Window    int     // temporal neighbors each side (default 3)
	Threshold float64 // robust z-score cut (default 3.5)
}

// Statistical flags points whose deviation from their local
// neighborhood chord is extreme relative to the trajectory's robust
// deviation profile (median/MAD). It needs no physical bound but
// assumes most points are clean.
func Statistical(tr *trajectory.Trajectory, opt StatisticalOptions) []bool {
	n := tr.Len()
	flags := make([]bool, n)
	if n < 5 {
		return flags
	}
	if opt.Window <= 0 {
		opt.Window = 3
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 3.5
	}
	// Feature: median distance to the surrounding window's points. The
	// feature and window buffers are pooled/reused: this loop runs per
	// trajectory per pipeline attempt and used to dominate allocations.
	featP := getFloats(n)
	defer floatPool.Put(featP)
	feat := *featP
	ds := make([]float64, 0, 2*opt.Window)
	for i := range tr.Points {
		ds = ds[:0]
		for w := -opt.Window; w <= opt.Window; w++ {
			j := i + w
			if j < 0 || j >= n || j == i {
				continue
			}
			ds = append(ds, tr.Points[i].Pos.Dist(tr.Points[j].Pos))
		}
		m, _ := stats.MedianInPlace(ds)
		feat[i] = m
	}
	med, _ := stats.Median(feat)
	mad, _ := stats.MAD(feat)
	if mad < 1e-9 {
		mad = 1e-9
	}
	for i, f := range feat {
		if (f-med)/mad > opt.Threshold {
			flags[i] = true
		}
	}
	return flags
}

// PredictionOptions configures the prediction-based detector.
type PredictionOptions struct {
	ProcessNoise float64 // Kalman process noise (default 1)
	MeasNoise    float64 // measurement noise stddev (default 5)
	Threshold    float64 // innovation multiple of MeasNoise (default 5)
	Repair       bool    // replace outliers with the model prediction
}

// Prediction runs a Kalman filter over the trajectory and flags points
// whose innovation (distance from the motion prediction) exceeds
// Threshold * MeasNoise; flagged points do not update the filter. With
// Repair set, flagged points are replaced by the prediction, following
// the repair-with-predicted-value strategy. It returns the (possibly
// repaired) trajectory and the flags.
func Prediction(tr *trajectory.Trajectory, opt PredictionOptions) (*trajectory.Trajectory, []bool) {
	n := tr.Len()
	out := tr.Clone()
	flags := make([]bool, n)
	if n < 2 {
		return out, flags
	}
	if opt.ProcessNoise <= 0 {
		opt.ProcessNoise = 1
	}
	if opt.MeasNoise <= 0 {
		opt.MeasNoise = 5
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 5
	}
	k := refine.NewKalman(tr.Points[0].Pos, opt.ProcessNoise, opt.MeasNoise)
	k.Update(tr.Points[0].Pos)
	prevT := tr.Points[0].T
	warmup := 3
	consecutive := 0
	for i := 1; i < n; i++ {
		dt := math.Max(tr.Points[i].T-prevT, 1e-9)
		innov := k.Innovation(dt, tr.Points[i].Pos)
		// The innovation gate widens with the prediction horizon to
		// tolerate legitimate motion over long gaps.
		gate := opt.Threshold * opt.MeasNoise * math.Max(1, math.Sqrt(dt))
		if i > warmup && innov > gate && consecutive < 3 {
			// Outliers do not update the filter — but only for a bounded
			// run. A long disagreement means the filter itself diverged
			// (e.g. after a sharp legitimate turn), so trust the data
			// again rather than flag everything that follows.
			flags[i] = true
			consecutive++
			k.Predict(dt)
			if opt.Repair {
				out.Points[i].Pos = k.Position()
			}
		} else {
			if consecutive >= 3 {
				// Recover from divergence: rebuild around the data.
				k = refine.NewKalman(tr.Points[i].Pos, opt.ProcessNoise, opt.MeasNoise)
				k.Update(tr.Points[i].Pos)
			} else {
				k.Step(dt, tr.Points[i].Pos)
			}
			consecutive = 0
		}
		prevT = tr.Points[i].T
	}
	return out, flags
}

// Remove returns a copy of tr without the flagged points.
func Remove(tr *trajectory.Trajectory, flags []bool) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	for i, p := range tr.Points {
		if i < len(flags) && flags[i] {
			continue
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// Score is a detector evaluation against ground-truth flags.
type Score struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 1 when nothing was predicted.
func (s Score) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall returns TP/(TP+FN), 1 when nothing was to be found.
func (s Score) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate scores predicted flags against ground truth.
func Evaluate(predicted, truth []bool) Score {
	var s Score
	n := len(predicted)
	if len(truth) < n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		switch {
		case predicted[i] && truth[i]:
			s.TP++
		case predicted[i] && !truth[i]:
			s.FP++
		case !predicted[i] && truth[i]:
			s.FN++
		}
	}
	// Count truths beyond the shorter slice as misses.
	for i := n; i < len(truth); i++ {
		if truth[i] {
			s.FN++
		}
	}
	return s
}
