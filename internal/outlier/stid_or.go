package outlier

import (
	"math"

	"sidq/internal/stats"
	"sidq/internal/stid"
)

// TemporalOptions configures the per-sensor temporal detector.
type TemporalOptions struct {
	Window    int     // samples each side (default 4)
	Threshold float64 // robust z cut (default 3.5)
}

// Temporal flags readings whose value deviates from the robust local
// median of their own sensor's series — the classic temporal OR over
// time-series windows. The returned flags align with the input order.
func Temporal(readings []stid.Reading, opt TemporalOptions) []bool {
	if opt.Window <= 0 {
		opt.Window = 4
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 3.5
	}
	flags := make([]bool, len(readings))
	// Group indices by sensor, preserving input positions.
	bySensor := map[string][]int{}
	for i, r := range readings {
		bySensor[r.SensorID] = append(bySensor[r.SensorID], i)
	}
	for _, idxs := range bySensor {
		// Sort the sensor's indices by time.
		sortByTime(readings, idxs)
		// Pass 1: residual of each value against its local window median.
		// Pass 2: flag residuals against the sensor's global robust scale
		// — a per-window MAD over a handful of samples is too noisy and
		// produces spurious flags on clean data.
		res := make([]float64, len(idxs))
		usable := make([]bool, len(idxs))
		var all []float64
		for pos, idx := range idxs {
			var window []float64
			for w := -opt.Window; w <= opt.Window; w++ {
				j := pos + w
				if j < 0 || j >= len(idxs) || j == pos {
					continue
				}
				window = append(window, readings[idxs[j]].Value)
			}
			if len(window) < 3 {
				continue
			}
			med, _ := stats.Median(window)
			res[pos] = readings[idx].Value - med
			usable[pos] = true
			all = append(all, res[pos])
		}
		if len(all) < 4 {
			continue
		}
		sigma, _ := stats.MAD(all)
		if sigma < 1e-9 {
			sigma = 1e-9
		}
		for pos, idx := range idxs {
			if usable[pos] && math.Abs(res[pos])/sigma > opt.Threshold {
				flags[idx] = true
			}
		}
	}
	return flags
}

func sortByTime(readings []stid.Reading, idxs []int) {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && readings[idxs[j]].T < readings[idxs[j-1]].T; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}

// SpatialOptions configures the per-epoch spatial detector.
type SpatialOptions struct {
	Neighbors  int     // spatial neighbors consulted (default 5)
	Threshold  float64 // robust z cut (default 3.5)
	TimeWindow float64 // co-temporal tolerance in seconds (default 1)
}

// Spatial flags readings that deviate from the consensus of their
// co-temporal spatial neighbors — spatial OR with time as the
// contextual attribute.
func Spatial(readings []stid.Reading, opt SpatialOptions) []bool {
	if opt.Neighbors <= 0 {
		opt.Neighbors = 5
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 3.5
	}
	if opt.TimeWindow <= 0 {
		opt.TimeWindow = 1
	}
	flags := make([]bool, len(readings))
	// Bucket readings by epoch (quantized by the time window).
	buckets := map[int64][]int{}
	for i, r := range readings {
		buckets[int64(math.Floor(r.T/opt.TimeWindow))] = append(buckets[int64(math.Floor(r.T/opt.TimeWindow))], i)
	}
	// Pass 1: residual of each reading against its co-temporal spatial
	// neighborhood median. Pass 2: flag against the global robust scale
	// of those residuals, which absorbs the legitimate spread caused by
	// smooth spatial gradients.
	res := make([]float64, len(readings))
	usable := make([]bool, len(readings))
	var all []float64
	for _, idxs := range buckets {
		if len(idxs) < opt.Neighbors+1 {
			continue
		}
		for _, i := range idxs {
			// Collect the k nearest co-temporal readings from other sensors.
			var nds []distVal
			for _, j := range idxs {
				if i == j || readings[i].SensorID == readings[j].SensorID {
					continue
				}
				nds = append(nds, distVal{readings[i].Pos.Dist(readings[j].Pos), readings[j].Value})
			}
			if len(nds) < 3 {
				continue
			}
			partialSortByDist(nds, opt.Neighbors)
			k := opt.Neighbors
			if k > len(nds) {
				k = len(nds)
			}
			vals := make([]float64, k)
			for x := 0; x < k; x++ {
				vals[x] = nds[x].v
			}
			med, _ := stats.Median(vals)
			res[i] = readings[i].Value - med
			usable[i] = true
			all = append(all, res[i])
		}
	}
	if len(all) < 4 {
		return flags
	}
	sigma, _ := stats.MAD(all)
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	for i := range readings {
		if usable[i] && math.Abs(res[i])/sigma > opt.Threshold {
			flags[i] = true
		}
	}
	return flags
}

type distVal struct{ d, v float64 }

func partialSortByDist(nds []distVal, k int) {
	if k > len(nds) {
		k = len(nds)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(nds); j++ {
			if nds[j].d < nds[min].d {
				min = j
			}
		}
		nds[i], nds[min] = nds[min], nds[i]
	}
}

// SpatioTemporal flags readings that BOTH their own temporal context
// and their co-temporal spatial neighborhood reject — the
// neighborhood-based spatiotemporal outlier definition (a value that
// disagrees with its ST neighborhood, not merely with one dimension).
func SpatioTemporal(readings []stid.Reading, topt TemporalOptions, sopt SpatialOptions) []bool {
	tf := Temporal(readings, topt)
	sf := Spatial(readings, sopt)
	out := make([]bool, len(readings))
	for i := range out {
		out[i] = tf[i] && sf[i]
	}
	return out
}

// RemoveReadings returns readings without the flagged entries.
func RemoveReadings(readings []stid.Reading, flags []bool) []stid.Reading {
	out := make([]stid.Reading, 0, len(readings))
	for i, r := range readings {
		if i < len(flags) && flags[i] {
			continue
		}
		out = append(out, r)
	}
	return out
}
