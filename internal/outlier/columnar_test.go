package outlier

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// randTrack builds a dirty random walk: mostly smooth motion with
// occasional teleport spikes (speed violations), duplicate timestamps,
// and — when withSpecials — NaN/Inf coordinates.
func randTrack(rng *rand.Rand, n int, withSpecials bool) *trajectory.Trajectory {
	pts := make([]trajectory.Point, n)
	x, y, t := 0.0, 0.0, 0.0
	for i := range pts {
		switch {
		case rng.Intn(12) == 0:
			x += rng.NormFloat64() * 500 // teleport spike
			y += rng.NormFloat64() * 500
		default:
			x += rng.NormFloat64() * 3
			y += rng.NormFloat64() * 3
		}
		if rng.Intn(10) != 0 { // occasionally repeat a timestamp
			t += 1 + rng.Float64()
		}
		px, py := x, y
		if withSpecials && rng.Intn(25) == 0 {
			specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
			px = specials[rng.Intn(len(specials))]
		}
		pts[i] = trajectory.Point{T: t, Pos: geo.Pt(px, py)}
	}
	return trajectory.New(fmt.Sprintf("r%d", n), pts)
}

func TestSpeedConstraintColsMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var c trajectory.Columns
	var flags []bool
	for trial := 0; trial < 120; trial++ {
		tr := randTrack(rng, rng.Intn(60), trial%4 == 0)
		maxSpeed := []float64{0, 5, 10, 50}[rng.Intn(4)]
		want := SpeedConstraint(tr, maxSpeed)
		c.FromTrajectory(tr)
		flags = SpeedConstraintCols(&c, maxSpeed, flags)
		if len(flags) != len(want) {
			t.Fatalf("trial %d: flag length %d want %d", trial, len(flags), len(want))
		}
		for i := range want {
			if flags[i] != want[i] {
				t.Fatalf("trial %d: flag[%d] = %v, AoS says %v (maxSpeed=%v)",
					trial, i, flags[i], want[i], maxSpeed)
			}
		}
	}
}

func TestStatisticalColsMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var c trajectory.Columns
	var flags []bool
	for trial := 0; trial < 120; trial++ {
		tr := randTrack(rng, rng.Intn(80), false)
		opt := StatisticalOptions{
			Window:    []int{0, 2, 5}[rng.Intn(3)],
			Threshold: []float64{0, 2.5, 3.5}[rng.Intn(3)],
		}
		want := Statistical(tr, opt)
		c.FromTrajectory(tr)
		flags = StatisticalCols(&c, opt, flags)
		for i := range want {
			if flags[i] != want[i] {
				t.Fatalf("trial %d: flag[%d] = %v, AoS says %v", trial, i, flags[i], want[i])
			}
		}
	}
}

func TestRemoveColsMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var c, dst trajectory.Columns
	for trial := 0; trial < 60; trial++ {
		tr := randTrack(rng, rng.Intn(40), true)
		flags := make([]bool, rng.Intn(tr.Len()+4)) // may be shorter/longer than tr
		for i := range flags {
			flags[i] = rng.Intn(3) == 0
		}
		want := Remove(tr, flags)
		c.FromTrajectory(tr)
		RemoveCols(&dst, &c, flags)
		if dst.Len() != want.Len() {
			t.Fatalf("trial %d: kept %d want %d", trial, dst.Len(), want.Len())
		}
		for i, p := range want.Points {
			got := dst.At(i)
			if math.Float64bits(got.T) != math.Float64bits(p.T) ||
				math.Float64bits(got.Pos.X) != math.Float64bits(p.Pos.X) ||
				math.Float64bits(got.Pos.Y) != math.Float64bits(p.Pos.Y) {
				t.Fatalf("trial %d: sample %d diverged", trial, i)
			}
		}
	}
}

// TestColumnarDetectorsReuseAllocFree pins the steady-state contract:
// with warm flag buffers and pooled scratch, the columnar detectors do
// not allocate.
func TestColumnarDetectorsReuseAllocFree(t *testing.T) {
	tr := randTrack(rand.New(rand.NewSource(24)), 256, false)
	var c trajectory.Columns
	c.FromTrajectory(tr)
	flags := SpeedConstraintCols(&c, 10, nil)
	flags2 := StatisticalCols(&c, StatisticalOptions{}, nil)
	allocs := testing.AllocsPerRun(30, func() {
		flags = SpeedConstraintCols(&c, 10, flags)
		flags2 = StatisticalCols(&c, StatisticalOptions{}, flags2)
	})
	if allocs != 0 {
		t.Fatalf("warm columnar detectors allocated %.1f times/op, want 0", allocs)
	}
}
