package outlier

import (
	"math"

	"sidq/internal/stats"
	"sidq/internal/trajectory"
)

// This file holds the columnar (struct-of-arrays) twins of the
// trajectory-point detectors. They consume trajectory.Columns — flat
// T/X/Y float64 slices — and run the same arithmetic in the same order
// as their []Point counterparts, so their flags are bit-identical; the
// golden fixtures and the property tests in columnar_test.go pin that
// equivalence. The wins are layout (three contiguous streams instead
// of 24-byte structs), reusable flag/feature buffers, and batch
// precomputation of per-segment speeds instead of recomputing each
// segment twice.

// FlagsInto returns a false-initialized flag slice of length n, reusing
// buf's capacity when possible. Detectors accept a reuse buffer so
// pipeline loops can run allocation-free in steady state.
func FlagsInto(buf []bool, n int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// SpeedConstraintCols is the columnar twin of SpeedConstraint: it flags
// samples unreachable under maxSpeed using one flat pass that
// precomputes every segment speed once (the AoS form recomputes each
// segment as "out" for one point and "in" for the next). flags is an
// optional reuse buffer; the returned slice holds the result.
func SpeedConstraintCols(c *trajectory.Columns, maxSpeed float64, flags []bool) []bool {
	n := c.Len()
	flags = FlagsInto(flags, n)
	if n < 3 || maxSpeed <= 0 {
		return flags
	}
	ts, xs, ys := c.T, c.X, c.Y
	segP := getFloats(n - 1)
	defer floatPool.Put(segP)
	seg := *segP
	for i := 1; i < n; i++ {
		dt := ts[i] - ts[i-1]
		if dt <= 0 {
			seg[i-1] = math.Inf(1)
		} else {
			seg[i-1] = math.Hypot(xs[i-1]-xs[i], ys[i-1]-ys[i]) / dt
		}
	}
	skip := func(i, j int) float64 {
		dt := ts[j] - ts[i]
		if dt <= 0 {
			return math.Inf(1)
		}
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j]) / dt
	}
	for i := 1; i < n-1; i++ {
		if seg[i-1] > maxSpeed && seg[i] > maxSpeed && skip(i-1, i+1) <= maxSpeed {
			flags[i] = true
		}
	}
	// Endpoint rules, identical to the AoS form.
	if seg[0] > maxSpeed && seg[1] <= maxSpeed {
		flags[0] = true
	}
	if seg[n-2] > maxSpeed && seg[n-3] <= maxSpeed {
		flags[n-1] = true
	}
	return flags
}

// StatisticalCols is the columnar twin of Statistical: the
// window-median deviation feature is computed over the flat coordinate
// slices and every scratch buffer (feature, window distances) is
// pooled. flags is an optional reuse buffer.
func StatisticalCols(c *trajectory.Columns, opt StatisticalOptions, flags []bool) []bool {
	n := c.Len()
	flags = FlagsInto(flags, n)
	if n < 5 {
		return flags
	}
	if opt.Window <= 0 {
		opt.Window = 3
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 3.5
	}
	xs, ys := c.X, c.Y
	featP := getFloats(n)
	defer floatPool.Put(featP)
	feat := *featP
	dsP := getFloats(2 * opt.Window)
	defer floatPool.Put(dsP)
	ds := (*dsP)[:0]
	for i := 0; i < n; i++ {
		ds = ds[:0]
		xi, yi := xs[i], ys[i]
		for w := -opt.Window; w <= opt.Window; w++ {
			j := i + w
			if j < 0 || j >= n || j == i {
				continue
			}
			ds = append(ds, math.Hypot(xi-xs[j], yi-ys[j]))
		}
		m, _ := stats.MedianInPlace(ds)
		feat[i] = m
	}
	// Median and MAD over pooled scratch: stats.Median/MAD copy-and-sort
	// internally, and MedianInPlace on a copy runs the identical
	// sort+quantile pipeline, so the values match the AoS form exactly.
	scrP := getFloats(n)
	defer floatPool.Put(scrP)
	scr := *scrP
	copy(scr, feat)
	med, _ := stats.MedianInPlace(scr)
	for i, f := range feat {
		scr[i] = math.Abs(f - med)
	}
	m, _ := stats.MedianInPlace(scr)
	mad := 1.4826 * m
	if mad < 1e-9 {
		mad = 1e-9
	}
	for i, f := range feat {
		if (f-med)/mad > opt.Threshold {
			flags[i] = true
		}
	}
	return flags
}

// RemoveCols compacts c into dst, dropping flagged samples — the
// columnar twin of Remove. dst's capacity is reused.
func RemoveCols(dst, c *trajectory.Columns, flags []bool) {
	dst.Reset()
	n := c.Len()
	dst.Grow(n)
	ts, xs, ys := c.T, c.X, c.Y
	for i := 0; i < n; i++ {
		if i < len(flags) && flags[i] {
			continue
		}
		dst.Append(ts[i], xs[i], ys[i])
	}
}
