package obs

import (
	"sync"
	"time"
)

// TraceEvent is one structured execution event emitted by an
// instrumented component — coarse-grained spans (a stage run) and the
// decisions around them (a retry, a panic recovery, a rollback). It is
// a flat value, not a tree: sidq pipelines are shallow enough that the
// (Name, Kind) pair plus ordering reconstructs the story, and a flat
// struct keeps emission allocation-free apart from the sink's own
// bookkeeping.
type TraceEvent struct {
	Name string        // subject, e.g. the stage name
	Kind string        // event kind: "stage", "retry", "panic", "skip", "rollback", "shard"
	Dur  time.Duration // span duration (zero for point events)
	N    int           // kind-specific count: attempt number, shard index, ...
	Err  string        // error text, "" on success
}

// Trace event kinds emitted by the core runner.
const (
	KindStage    = "stage"    // one stage completed (Dur = wall time, N = attempts)
	KindRetry    = "retry"    // an attempt failed and will be retried (N = failed attempt)
	KindPanic    = "panic"    // an attempt panicked and was recovered
	KindSkip     = "skip"     // the stage failed terminally and its work was discarded
	KindRollback = "rollback" // the stage succeeded but regressed quality and was reverted
	KindShard    = "shard"    // one shard of a data-parallel stage completed (N = shard index)
)

// Trace event kinds emitted by the server's streaming-session
// registry (Name = session id).
const (
	KindSessionOpen  = "session-open"  // a streaming session was created
	KindSessionClose = "session-close" // closed by the client (N = events emitted)
	KindSessionEvict = "session-evict" // reclaimed by the idle-TTL janitor (N = events still pending)
	KindSessionShed  = "session-shed"  // an open or chunk rejected with 429 (Err = reason)
)

// Trace event kinds emitted by the durability layer (server WAL).
const (
	KindSessionSnapshot = "session-snapshot" // state checkpointed into the WAL (N = events pending)
	KindSessionRestore  = "session-restore"  // rebuilt from a WAL snapshot (N = chunks folded in)
	KindWALReplay       = "wal-replay"       // recovery replay finished (Dur = wall time, N = records)
	KindSessionCompact  = "session-compact"  // retention force-snapshotted a lagging session (N = chunks folded)
	KindRetention       = "retention"        // a retention pass truncated the WAL (N = segments removed)
)

// TraceSink receives trace events. Implementations must be safe for
// concurrent use: a data-parallel runner records from every shard
// worker.
type TraceSink interface {
	Record(ev TraceEvent)
}

// FuncSink adapts a function to a TraceSink. The function must be
// safe for concurrent use.
type FuncSink func(TraceEvent)

// Record implements TraceSink.
func (f FuncSink) Record(ev TraceEvent) { f(ev) }

// MemSink is a TraceSink that collects every event in memory — the
// assertion surface for tests and chaos scenarios ("exactly N retries
// were recorded"). Safe for concurrent use.
type MemSink struct {
	mu  sync.Mutex
	evs []TraceEvent
}

// Record implements TraceSink.
func (m *MemSink) Record(ev TraceEvent) {
	m.mu.Lock()
	m.evs = append(m.evs, ev)
	m.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (m *MemSink) Events() []TraceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TraceEvent(nil), m.evs...)
}

// Count returns the number of recorded events of the given kind.
func (m *MemSink) Count(kind string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ev := range m.evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// CountName returns the number of recorded events of the given kind
// for the given subject name.
func (m *MemSink) CountName(kind, name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ev := range m.evs {
		if ev.Kind == kind && ev.Name == name {
			n++
		}
	}
	return n
}

// Reset discards all recorded events.
func (m *MemSink) Reset() {
	m.mu.Lock()
	m.evs = nil
	m.mu.Unlock()
}
