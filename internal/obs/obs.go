// Package obs is sidq's dependency-free observability substrate: a
// metrics registry of atomic counters, gauges, and lock-free sharded
// histograms with fixed log-scale buckets, a Prometheus-text exposition
// writer, and a lightweight structured trace API.
//
// Design rules (see DESIGN.md "Observability"):
//
//   - Zero overhead when unobserved. Hot paths guard every metric and
//     trace emission behind a nil check (or a single atomic.Bool load
//     for package-level totals), so a process that never attaches a
//     registry or sink pays nothing beyond those checks.
//   - Series are identified by their full Prometheus series name,
//     labels included — e.g. `sidq_runner_stage_total{stage="smoothing",
//     outcome="ok"}`. The registry get-or-creates by that exact string;
//     callers on hot paths resolve once and keep the pointer.
//   - Cardinality is bounded by construction: label values come from
//     closed sets (stage names in a pipeline, the server's route table,
//     outcome enums), never from user input or unbounded ids.
//   - Durations are recorded in nanoseconds into `*_ns` histograms;
//     bucket upper bounds are 2^i-1 so the exposition stays integral.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FuncKind is the exposition TYPE of a callback series.
type FuncKind string

// Callback series kinds.
const (
	FuncCounter FuncKind = "counter"
	FuncGauge   FuncKind = "gauge"
)

type funcSeries struct {
	kind FuncKind
	fn   func() float64
}

// Registry holds named metric series. Series are get-or-created by
// their full name (family plus optional {label="value",...} suffix);
// looking the same name up twice returns the same metric, so
// components can resolve their series once at setup and share them.
// All methods are safe for concurrent use; reads on the hot path take
// only an RWMutex read lock (and callers are expected to cache the
// returned pointer anyway).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcSeries
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]funcSeries{},
		help:     map[string]string{},
	}
}

// checkName panics on a series name the exposition writer could not
// render: the family must be a valid Prometheus metric name and any
// label block must close.
func checkName(name string) {
	fam := familyOf(name)
	if fam == "" {
		panic("obs: empty metric name")
	}
	for i, r := range fam {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric family %q", fam))
		}
	}
	if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
		panic(fmt.Sprintf("obs: unterminated label block in %q", name))
	}
}

// Counter returns the counter series with the given full name,
// creating it on first use. Panics if the name is already registered
// as a different metric type.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkFree(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge series with the given full name, creating it
// on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkFree(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram series with the given full name,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	r.checkFree(name, "histogram")
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Func registers a callback series evaluated at exposition time — the
// bridge for components that keep their own atomic totals (the roadnet
// engine, the stream package). Registering the same name again
// replaces the callback.
func (r *Registry) Func(name string, kind FuncKind, fn func() float64) {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.funcs[name]; !exists {
		r.checkFree(name, "func")
	}
	r.funcs[name] = funcSeries{kind: kind, fn: fn}
}

// checkFree panics when name is already held by another metric type.
// Caller holds r.mu.
func (r *Registry) checkFree(name, want string) {
	have := ""
	switch {
	case r.counters[name] != nil:
		have = "counter"
	case r.gauges[name] != nil:
		have = "gauge"
	case r.hists[name] != nil:
		have = "histogram"
	default:
		if _, ok := r.funcs[name]; ok {
			have = "func"
		}
	}
	if have != "" && have != want {
		panic(fmt.Sprintf("obs: series %q already registered as a %s", name, have))
	}
}

// Help sets the HELP text for a metric family (the name before any
// label block). Families without help render no HELP line, which is
// valid exposition.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// familyOf returns the metric family of a full series name: the prefix
// before the label block.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelsOf returns the inner label block of a series name ("" when the
// name is bare), without the surrounding braces.
func labelsOf(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// sortedKeys returns the map's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
