package obs

import "testing"

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter(`x_total{a="b"}`)
	c1.Inc()
	if c2 := r.Counter(`x_total{a="b"}`); c2 != c1 {
		t.Fatal("same series name returned a different counter")
	}
	if c3 := r.Counter(`x_total{a="c"}`); c3 == c1 {
		t.Fatal("different labels returned the same counter")
	}
	if r.Histogram("h_ns") == nil || r.Gauge("g") == nil {
		t.Fatal("nil metric")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("dual")
}

func TestRegistryBadNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "sp ace", `x{unterminated="y"`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for name %q", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestMemSink(t *testing.T) {
	var m MemSink
	m.Record(TraceEvent{Name: "a", Kind: KindRetry, N: 1})
	m.Record(TraceEvent{Name: "a", Kind: KindRetry, N: 2})
	m.Record(TraceEvent{Name: "b", Kind: KindStage})
	if got := m.Count(KindRetry); got != 2 {
		t.Fatalf("Count(retry) = %d, want 2", got)
	}
	if got := m.CountName(KindRetry, "a"); got != 2 {
		t.Fatalf("CountName(retry, a) = %d, want 2", got)
	}
	if got := m.CountName(KindRetry, "b"); got != 0 {
		t.Fatalf("CountName(retry, b) = %d, want 0", got)
	}
	if got := len(m.Events()); got != 3 {
		t.Fatalf("Events len = %d, want 3", got)
	}
	m.Reset()
	if got := len(m.Events()); got != 0 {
		t.Fatalf("after Reset: %d events", got)
	}
}

func TestFuncSink(t *testing.T) {
	n := 0
	s := FuncSink(func(TraceEvent) { n++ })
	s.Record(TraceEvent{})
	s.Record(TraceEvent{})
	if n != 2 {
		t.Fatalf("FuncSink calls = %d, want 2", n)
	}
}
