package obs

import (
	"sync"
	"testing"
)

// TestHammerConcurrentWrites drives counters, gauges, and a histogram
// from many goroutines at once so the race detector can vouch for the
// lock-free write paths, then checks that no increment was lost.
func TestHammerConcurrentWrites(t *testing.T) {
	const (
		goroutines = 16 // >= 8 per the observability test contract
		perG       = 2000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_inflight")
	h := r.Histogram("hammer_ns")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				h.Observe(int64(id*perG + j))
				g.Dec()
				// Interleave registry lookups with writes: the read path
				// must be safe against concurrent get-or-create.
				if j%100 == 0 {
					r.Counter("hammer_total").Add(0)
				}
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d (lost increments)", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	s := h.Snapshot()
	if got := s.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var wantSum int64
	for i := 0; i < goroutines; i++ {
		for j := 0; j < perG; j++ {
			wantSum += int64(i*perG + j)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("histogram sum = %d, want %d", s.Sum, wantSum)
	}
}

// TestHammerSnapshotDuringWrites takes snapshots while writers are
// active: counts must be monotone non-decreasing across snapshots.
func TestHammerSnapshotDuringWrites(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(42)
				}
			}
		}()
	}
	var prev uint64
	for i := 0; i < 200; i++ {
		n := h.Snapshot().Count()
		if n < prev {
			t.Errorf("snapshot count went backwards: %d -> %d", prev, n)
			break
		}
		prev = n
	}
	close(stop)
	wg.Wait()
}
