package obs

import (
	"math/bits"
	randv2 "math/rand/v2"
	"sync/atomic"
)

// Histogram bucket layout: fixed log-scale (base-2) buckets chosen so
// recording never allocates, never locks, and bucket assignment is a
// single bits.Len64.
//
//	bucket 0               holds v <= 0            (upper bound 0)
//	bucket i, 1..maxFinite holds 2^(i-1) <= v < 2^i (upper bound 2^i-1)
//	bucket overflowBucket  holds v >= 2^maxFinite   (rendered as +Inf)
//
// With maxFinite = 47 the finite range covers 1ns..~39h when values
// are nanoseconds, which is every duration sidq can produce.
const (
	maxFinite      = 47
	overflowBucket = maxFinite + 1
	numBuckets     = overflowBucket + 1
	histShards     = 8
)

// BucketBound returns the inclusive upper bound of finite bucket i
// (2^i - 1; bound 0 for bucket 0). It panics for the overflow bucket,
// whose bound is +Inf.
func BucketBound(i int) int64 {
	if i < 0 || i > maxFinite {
		panic("obs: BucketBound of non-finite bucket")
	}
	return int64(1)<<uint(i) - 1
}

// bucketIndex maps a recorded value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i > maxFinite {
		return overflowBucket
	}
	return i
}

// histShard is one independently updated slice of the histogram.
// Padding keeps concurrent writers on different shards off each
// other's cache lines.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [6]uint64
}

// Histogram is a lock-free sharded log-scale histogram. Observe picks
// a shard pseudo-randomly (per-P cheap randomness, no lock, no
// goroutine affinity needed — any spread reduces contention) and does
// two atomic adds; Snapshot merges the shards. The zero value is ready
// to use.
type Histogram struct {
	shards [histShards]histShard
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	s := &h.shards[randv2.Uint32()&(histShards-1)]
	s.counts[bucketIndex(v)].Add(1)
	s.sum.Add(v)
}

// HistogramSnapshot is a merged point-in-time view of a histogram.
type HistogramSnapshot struct {
	Counts [numBuckets]uint64 // per-bucket counts (last = overflow)
	Sum    int64              // sum of observed values
}

// Snapshot merges the shards. Concurrent Observes may land on either
// side of the snapshot, but every completed Observe before the call is
// included and counts/sum never go backwards between snapshots of a
// quiescent histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := 0; b < numBuckets; b++ {
			out.Counts[b] += s.counts[b].Load()
		}
		out.Sum += s.sum.Load()
	}
	return out
}

// Merge adds the other snapshot's buckets and sum into s — the same
// fold Snapshot performs across shards, exposed so callers can combine
// histograms from multiple sources (e.g. per-lane recorders).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for b := 0; b < numBuckets; b++ {
		s.Counts[b] += other.Counts[b]
	}
	s.Sum += other.Sum
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// QuantileEst returns a linearly interpolated estimate of the
// q-quantile (q in [0, 1]). Where Quantile reports the landing
// bucket's upper bound — a guaranteed bound that can only move in
// power-of-two steps — QuantileEst interpolates within the landing
// bucket by cumulative position, assuming a uniform spread across the
// bucket. The estimate varies smoothly as the underlying distribution
// shifts, which is what a latency regression gate needs: a p99 sitting
// near a bucket boundary must not flap between 2^i and 2^(i+1) from
// run to run. Returns 0 for an empty snapshot and the overflow
// bucket's lower bound when the quantile lands there.
func (s HistogramSnapshot) QuantileEst(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Same rank convention as Quantile, so both land in the same bucket.
	need := float64(uint64(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum float64
	for b := 0; b <= maxFinite; b++ {
		c := float64(s.Counts[b])
		if c == 0 {
			continue
		}
		if cum+c >= need {
			if b == 0 {
				return 0
			}
			lo := float64(int64(1) << uint(b-1))
			frac := (need - cum) / c
			return lo + frac*lo // bucket b spans [lo, 2*lo)
		}
		cum += c
	}
	return float64(int64(1) << maxFinite)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the bound of the first bucket at which the cumulative count reaches
// q of the total. Returns 0 for an empty snapshot and the top finite
// bound when the quantile lands in the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(q * float64(total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for b := 0; b <= maxFinite; b++ {
		cum += s.Counts[b]
		if cum >= need {
			return BucketBound(b)
		}
	}
	return BucketBound(maxFinite)
}
