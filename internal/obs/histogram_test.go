package obs

import (
	"math"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1<<46 + 5, maxFinite},
		{1<<47 - 1, maxFinite},
		{1 << 47, overflowBucket},
		{math.MaxInt64, overflowBucket},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundContainsBucketValues(t *testing.T) {
	// Every finite bucket's values must be <= its bound and > the
	// previous bound — the invariant the cumulative exposition relies on.
	for i := 1; i <= maxFinite; i++ {
		lo, hi := int64(1)<<uint(i-1), int64(1)<<uint(i)-1
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Fatalf("bucket %d: lo/hi %d/%d map to %d/%d", i, lo, hi, bucketIndex(lo), bucketIndex(hi))
		}
		if hi != BucketBound(i) {
			t.Fatalf("bucket %d: bound %d != hi %d", i, BucketBound(i), hi)
		}
		if lo <= BucketBound(i-1) {
			t.Fatalf("bucket %d: lo %d not above previous bound %d", i, lo, BucketBound(i-1))
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	vals := []int64{-3, 0, 1, 1, 2, 3, 100, 1 << 50}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if got := s.Count(); got != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", got, len(vals))
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %d, want %d", s.Sum, sum)
	}
	want := map[int]uint64{
		0:                2, // -3, 0
		1:                2, // 1, 1
		2:                2, // 2, 3
		bucketIndex(100): 1,
		overflowBucket:   1,
	}
	for b, n := range want {
		if s.Counts[b] != n {
			t.Errorf("bucket %d: count %d, want %d", b, s.Counts[b], n)
		}
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if got, want := merged.Count(), sa.Count()+sb.Count(); got != want {
		t.Fatalf("merged Count = %d, want %d", got, want)
	}
	if got, want := merged.Sum, sa.Sum+sb.Sum; got != want {
		t.Fatalf("merged Sum = %d, want %d", got, want)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != sa.Counts[i]+sb.Counts[i] {
			t.Fatalf("bucket %d: merged %d != %d + %d", i, merged.Counts[i], sa.Counts[i], sb.Counts[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 1000 observations of value 100 (bucket 7, bound 127): every
	// quantile must land on that bucket's bound.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 127 {
			t.Fatalf("Quantile(%v) = %d, want 127", q, got)
		}
	}
	// Add a far larger population: the high quantile must move up.
	for i := 0; i < 9000; i++ {
		h.Observe(1 << 20)
	}
	s = h.Snapshot()
	if got := s.Quantile(0.99); got <= 127 {
		t.Fatalf("Quantile(0.99) after heavy tail = %d, want > 127", got)
	}
	if got := s.Quantile(0.05); got != 127 {
		t.Fatalf("Quantile(0.05) = %d, want 127", got)
	}
}

func TestQuantileEstInterpolates(t *testing.T) {
	// Fill one bucket uniformly: 1024..2047 (bucket 11). The estimated
	// median should land near the bucket's middle, not at its bound.
	var h Histogram
	for v := int64(1024); v < 2048; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.QuantileEst(0.5); math.Abs(got-1536) > 8 {
		t.Errorf("QuantileEst(0.5) = %v, want ~1536", got)
	}
	if got := s.QuantileEst(0); got < 1024 || got > 1028 {
		t.Errorf("QuantileEst(0) = %v, want bucket floor ~1024", got)
	}
	if got := s.QuantileEst(1); math.Abs(got-2048) > 1e-9 {
		t.Errorf("QuantileEst(1) = %v, want 2048", got)
	}
}

func TestQuantileEstMonotoneAndBounded(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 3, 3, 7, 100, 5000, 5000, 5000, 1 << 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := s.QuantileEst(q)
		if got < prev {
			t.Fatalf("QuantileEst not monotone: q=%v gave %v after %v", q, got, prev)
		}
		prev = got
	}
	// The estimate must stay within the bucketed upper bound.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if est, ub := s.QuantileEst(q), s.Quantile(q); est > float64(ub)+1 {
			t.Errorf("QuantileEst(%v) = %v above bucket bound %d", q, est, ub)
		}
	}
}

func TestQuantileEstEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.QuantileEst(0.99); got != 0 {
		t.Errorf("empty QuantileEst = %v, want 0", got)
	}
	var h Histogram
	h.Observe(-5)
	h.Observe(0)
	if got := h.Snapshot().QuantileEst(0.9); got != 0 {
		t.Errorf("non-positive-only QuantileEst = %v, want 0", got)
	}
	var ho Histogram
	ho.Observe(1 << 50) // overflow bucket
	if got := ho.Snapshot().QuantileEst(0.5); got != float64(int64(1)<<maxFinite) {
		t.Errorf("overflow QuantileEst = %v, want %v", got, float64(int64(1)<<maxFinite))
	}
}
