package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// family ordering, HELP/TYPE placement, label handling, cumulative
// histogram buckets, and value formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("sidq_demo_requests_total", "Requests served.")
	r.Counter(`sidq_demo_requests_total{route="/v1/assess",code="200"}`).Add(3)
	r.Counter(`sidq_demo_requests_total{route="/v1/clean",code="400"}`).Inc()
	r.Gauge("sidq_demo_in_flight").Set(2)
	h := r.Histogram(`sidq_demo_latency_ns{route="/v1/assess"}`)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	r.Func("sidq_demo_uptime_seconds", FuncGauge, func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE sidq_demo_in_flight gauge
sidq_demo_in_flight 2
# TYPE sidq_demo_latency_ns histogram
sidq_demo_latency_ns_bucket{route="/v1/assess",le="0"} 0
sidq_demo_latency_ns_bucket{route="/v1/assess",le="1"} 1
sidq_demo_latency_ns_bucket{route="/v1/assess",le="3"} 2
sidq_demo_latency_ns_bucket{route="/v1/assess",le="7"} 2
sidq_demo_latency_ns_bucket{route="/v1/assess",le="15"} 2
sidq_demo_latency_ns_bucket{route="/v1/assess",le="31"} 2
sidq_demo_latency_ns_bucket{route="/v1/assess",le="63"} 2
sidq_demo_latency_ns_bucket{route="/v1/assess",le="127"} 3
sidq_demo_latency_ns_bucket{route="/v1/assess",le="+Inf"} 3
sidq_demo_latency_ns_sum{route="/v1/assess"} 104
sidq_demo_latency_ns_count{route="/v1/assess"} 3
# HELP sidq_demo_requests_total Requests served.
# TYPE sidq_demo_requests_total counter
sidq_demo_requests_total{route="/v1/assess",code="200"} 3
sidq_demo_requests_total{route="/v1/clean",code="400"} 1
# TYPE sidq_demo_uptime_seconds gauge
sidq_demo_uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var seriesLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9][0-9.e+-]*|\+Inf|-Inf|NaN)$`)

// TestWritePrometheusWellFormed checks that every emitted line is
// either a comment or a parseable series line, and that histogram
// buckets are cumulative (monotone non-decreasing).
func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	h := r.Histogram("b_ns")
	for i := int64(1); i < 10000; i *= 3 {
		h.Observe(i)
	}
	r.Gauge(`c{x="1"}`).Set(-4)
	r.Func("d_total", FuncCounter, func() float64 { return 12 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prevBucket uint64
	inBuckets := false
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !seriesLine.MatchString(line) {
			t.Errorf("malformed series line: %q", line)
		}
		if strings.HasPrefix(line, "b_ns_bucket") {
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse bucket line %q: %v", line, err)
			}
			if inBuckets && v < prevBucket {
				t.Errorf("bucket counts not cumulative: %d after %d in %q", v, prevBucket, line)
			}
			prevBucket, inBuckets = v, true
		} else {
			inBuckets = false
		}
	}
}
