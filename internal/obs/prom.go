package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// families are sorted, one HELP/TYPE header per family, series sorted
// within a family. Histograms render cumulative `_bucket` lines up to
// their highest populated finite bucket plus `+Inf`, then `_sum` and
// `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type series struct {
		name string
		kind string // "counter", "gauge", "histogram", "func"
	}
	families := map[string][]series{}
	kindOf := map[string]string{} // family -> TYPE
	add := func(name, kind, typ string) {
		fam := familyOf(name)
		families[fam] = append(families[fam], series{name: name, kind: kind})
		kindOf[fam] = typ
	}
	for name := range r.counters {
		add(name, "counter", "counter")
	}
	for name := range r.gauges {
		add(name, "gauge", "gauge")
	}
	for name := range r.hists {
		add(name, "histogram", "histogram")
	}
	for name, f := range r.funcs {
		add(name, "func", string(f.kind))
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	for _, fam := range sortedKeys(families) {
		if h := help[fam]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kindOf[fam]); err != nil {
			return err
		}
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		for _, s := range ss {
			if err := r.writeSeries(w, s.name, s.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Registry) writeSeries(w io.Writer, name, kind string) error {
	switch kind {
	case "counter":
		r.mu.RLock()
		c := r.counters[name]
		r.mu.RUnlock()
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	case "gauge":
		r.mu.RLock()
		g := r.gauges[name]
		r.mu.RUnlock()
		_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
		return err
	case "func":
		r.mu.RLock()
		f := r.funcs[name]
		r.mu.RUnlock()
		_, err := fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(f.fn(), 'g', -1, 64))
		return err
	case "histogram":
		r.mu.RLock()
		h := r.hists[name]
		r.mu.RUnlock()
		return writeHistogram(w, name, h.Snapshot())
	}
	return fmt.Errorf("obs: unknown series kind %q", kind)
}

// writeHistogram renders one histogram series: cumulative buckets up
// to the highest populated finite bucket, +Inf, sum, and count.
func writeHistogram(w io.Writer, name string, snap HistogramSnapshot) error {
	fam := familyOf(name)
	labels := labelsOf(name)
	bucketName := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", fam, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", fam, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return fam + suffix
		}
		return fmt.Sprintf("%s%s{%s}", fam, suffix, labels)
	}
	top := 0
	for b := 0; b <= maxFinite; b++ {
		if snap.Counts[b] > 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b <= top; b++ {
		cum += snap.Counts[b]
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(strconv.FormatInt(BucketBound(b), 10)), cum); err != nil {
			return err
		}
	}
	total := snap.Count()
	if _, err := fmt.Fprintf(w, "%s %d\n", bucketName("+Inf"), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", suffixed("_sum"), snap.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), total)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition
// format's HELP rules.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
