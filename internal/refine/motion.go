package refine

import (
	"math"
	"math/rand"
	"sync"

	"sidq/internal/geo"
	"sidq/internal/stats"
	"sidq/internal/trajectory"
)

// Kalman is a constant-velocity Kalman filter over planar position
// observations: state [x y vx vy], position-only measurements. It is
// the canonical Bayes-filter instance of motion-based LR.
//
// All per-step temporaries live in a scratch block allocated once with
// the filter, so Predict/Update run allocation-free in steady state. A
// Kalman value is not safe for concurrent use (create one per
// trajectory, as the trajectory-level helpers do).
type Kalman struct {
	x   *stats.Matrix // 4x1 state
	p   *stats.Matrix // 4x4 covariance
	q   float64       // process-noise intensity (acceleration PSD)
	r   float64       // measurement noise stddev (meters)
	scr kalmanScratch
}

// kalmanScratch holds the constant model matrices and reusable
// temporaries for one filter.
type kalmanScratch struct {
	f, ft      *stats.Matrix // 4x4 transition and its transpose
	qn         *stats.Matrix // 4x4 process noise
	i4         *stats.Matrix // 4x4 identity
	t44a, t44b *stats.Matrix // 4x4 temporaries
	h          *stats.Matrix // 2x4 measurement model (constant)
	ht         *stats.Matrix // 4x2 its transpose (constant)
	hp         *stats.Matrix // 2x4 h*p
	pht, gain  *stats.Matrix // 4x2
	rm         *stats.Matrix // 2x2 measurement noise (constant)
	s, sInv    *stats.Matrix // 2x2 innovation covariance and inverse
	t22        *stats.Matrix // 2x2 inversion workspace
	y, gy      *stats.Matrix // 2x1 residual, 4x1 correction
	x1         *stats.Matrix // 4x1 temporary
}

// NewKalman returns a filter initialized at pos with zero velocity,
// the given process-noise intensity q (m/s^2 scale) and measurement
// noise stddev r (meters).
func NewKalman(pos geo.Point, q, r float64) *Kalman {
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	x := stats.NewMatrix(4, 1)
	x.Set(0, 0, pos.X)
	x.Set(1, 0, pos.Y)
	p := stats.Identity(4).ScaleBy(100)
	k := &Kalman{x: x, p: p, q: q, r: r}
	s := &k.scr
	s.f = stats.NewMatrix(4, 4)
	s.ft = stats.NewMatrix(4, 4)
	s.qn = stats.NewMatrix(4, 4)
	s.i4 = stats.Identity(4)
	s.t44a = stats.NewMatrix(4, 4)
	s.t44b = stats.NewMatrix(4, 4)
	s.h = stats.MatrixFrom(2, 4,
		1, 0, 0, 0,
		0, 1, 0, 0,
	)
	s.ht = s.h.Transpose()
	s.hp = stats.NewMatrix(2, 4)
	s.pht = stats.NewMatrix(4, 2)
	s.gain = stats.NewMatrix(4, 2)
	s.rm = stats.Identity(2).ScaleBy(r * r)
	s.s = stats.NewMatrix(2, 2)
	s.sInv = stats.NewMatrix(2, 2)
	s.t22 = stats.NewMatrix(2, 2)
	s.y = stats.NewMatrix(2, 1)
	s.gy = stats.NewMatrix(4, 1)
	s.x1 = stats.NewMatrix(4, 1)
	return k
}

// cvTransitionInto fills f with the constant-velocity transition for a
// dt-second step.
func cvTransitionInto(f *stats.Matrix, dt float64) {
	copy(f.Data, []float64{
		1, 0, dt, 0,
		0, 1, 0, dt,
		0, 0, 1, 0,
		0, 0, 0, 1,
	})
}

// cvProcessNoiseInto fills qn with the white-acceleration process
// noise for a dt-second step at intensity q.
func cvProcessNoiseInto(qn *stats.Matrix, dt, q float64) {
	dt2 := dt * dt
	dt3 := dt2 * dt / 3
	half := dt2 / 2
	copy(qn.Data, []float64{
		dt3, 0, half, 0,
		0, dt3, 0, half,
		half, 0, dt, 0,
		0, half, 0, dt,
	})
	for i := range qn.Data {
		qn.Data[i] *= q
	}
}

// Predict advances the state dt seconds without a measurement.
func (k *Kalman) Predict(dt float64) {
	if dt <= 0 {
		return
	}
	s := &k.scr
	cvTransitionInto(s.f, dt)
	stats.MulInto(s.x1, s.f, k.x)
	k.x.CopyFrom(s.x1)
	// p = f*p*f' + Q, evaluated in the same order as the allocating
	// form so results stay bit-identical.
	stats.MulInto(s.t44a, s.f, k.p)
	stats.TransposeInto(s.ft, s.f)
	stats.MulInto(s.t44b, s.t44a, s.ft)
	cvProcessNoiseInto(s.qn, dt, k.q)
	stats.AddInto(k.p, s.t44b, s.qn)
}

// Update folds in a position observation.
func (k *Kalman) Update(obs geo.Point) {
	s := &k.scr
	s.y.Data[0] = obs.X - k.x.At(0, 0)
	s.y.Data[1] = obs.Y - k.x.At(1, 0)
	stats.MulInto(s.hp, s.h, k.p)
	stats.MulInto(s.s, s.hp, s.ht)
	stats.AddInto(s.s, s.s, s.rm)
	if err := stats.InverseInto(s.sInv, s.s, s.t22); err != nil {
		return // degenerate covariance: skip the update
	}
	stats.MulInto(s.pht, k.p, s.ht)
	stats.MulInto(s.gain, s.pht, s.sInv)
	stats.MulInto(s.gy, s.gain, s.y)
	stats.AddInto(k.x, k.x, s.gy)
	// p = (I - gain*h) * p
	stats.MulInto(s.t44a, s.gain, s.h)
	stats.SubInto(s.t44a, s.i4, s.t44a)
	stats.MulInto(s.t44b, s.t44a, k.p)
	k.p.CopyFrom(s.t44b)
}

// Step performs Predict(dt) then Update(obs) and returns the position.
func (k *Kalman) Step(dt float64, obs geo.Point) geo.Point {
	k.Predict(dt)
	k.Update(obs)
	return k.Position()
}

// Position returns the current position estimate.
func (k *Kalman) Position() geo.Point { return geo.Pt(k.x.At(0, 0), k.x.At(1, 0)) }

// Velocity returns the current velocity estimate.
func (k *Kalman) Velocity() geo.Point { return geo.Pt(k.x.At(2, 0), k.x.At(3, 0)) }

// Innovation returns the distance between a prospective observation and
// the predicted position dt seconds ahead, without mutating the filter.
// Prediction-based outlier detection uses this as its test statistic.
func (k *Kalman) Innovation(dt float64, obs geo.Point) float64 {
	s := &k.scr
	cvTransitionInto(s.f, dt)
	pred := stats.MulInto(s.x1, s.f, k.x)
	return obs.Dist(geo.Pt(pred.At(0, 0), pred.At(1, 0)))
}

// KalmanFilterTrajectory runs the filter forward over a trajectory and
// returns the filtered (causal) trajectory.
func KalmanFilterTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	out.Points = make([]trajectory.Point, 0, tr.Len())
	for i, p := range tr.Points {
		if i == 0 {
			k.Update(p.Pos)
		} else {
			k.Step(math.Max(p.T-prevT, 1e-9), p.Pos)
		}
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: k.Position()})
	}
	return out
}

// rtsStep is one time step of the forward Kalman pass retained for the
// backward RTS smoother. State and covariance snapshots are stored in
// inline arrays (state dimension is fixed at 4), so retaining a step
// allocates nothing beyond the pooled step slice itself.
type rtsStep struct {
	xPred, xFilt [4]float64
	pPred, pFilt [16]float64
	f            [16]float64
}

// The smoother's per-call scratch (one step record per point plus the
// smoothed state/covariance buffers) is pooled: smoothing runs once
// per trajectory per pipeline attempt. rtsStep holds no pointers, so
// pooled slices pin nothing between uses.
var (
	stepsPool  = sync.Pool{New: func() any { return new([]rtsStep) }}
	floatsPool = sync.Pool{New: func() any { return new([]float64) }}
)

func getSteps(n int) *[]rtsStep {
	p := stepsPool.Get().(*[]rtsStep)
	if cap(*p) < n {
		*p = make([]rtsStep, n)
	}
	*p = (*p)[:n]
	return p
}

func putSteps(p *[]rtsStep) {
	stepsPool.Put(p)
}

func getFloats(n int) *[]float64 {
	p := floatsPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putFloats(p *[]float64) {
	floatsPool.Put(p)
}

// mat41 and mat44 wrap a scratch slice as a fixed-shape matrix view.
func mat41(d []float64) stats.Matrix { return stats.Matrix{Rows: 4, Cols: 1, Data: d} }
func mat44(d []float64) stats.Matrix { return stats.Matrix{Rows: 4, Cols: 4, Data: d} }

// KalmanSmoothTrajectory runs a forward pass followed by a
// Rauch-Tung-Striebel backward smoother, producing the non-causal MAP
// trajectory. This is the smoothing-based uncertainty eliminator built
// on the same motion model.
func KalmanSmoothTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	stepsP := getSteps(n)
	defer putSteps(stepsP)
	steps := *stepsP
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		st := &steps[i]
		if i == 0 {
			f := mat44(st.f[:])
			stats.IdentityInto(&f)
		} else {
			dt := math.Max(p.T-prevT, 1e-9)
			f := mat44(st.f[:])
			cvTransitionInto(&f, dt)
			k.Predict(dt)
		}
		copy(st.xPred[:], k.x.Data)
		copy(st.pPred[:], k.p.Data)
		k.Update(p.Pos)
		copy(st.xFilt[:], k.x.Data)
		copy(st.pFilt[:], k.p.Data)
		prevT = p.T
	}
	// Backward RTS pass. Smoothed states/covariances live in pooled
	// flat buffers viewed as 4x1 / 4x4 matrices; the loop temporaries
	// are allocated once per call.
	xsP, psP := getFloats(n*4), getFloats(n*16)
	defer putFloats(xsP)
	defer putFloats(psP)
	xs, ps := *xsP, *psP
	xrow := func(i int) []float64 { return xs[i*4 : (i+1)*4] }
	prow := func(i int) []float64 { return ps[i*16 : (i+1)*16] }
	copy(xrow(n-1), steps[n-1].xFilt[:])
	copy(prow(n-1), steps[n-1].pFilt[:])
	predInv := stats.NewMatrix(4, 4)
	invScratch := stats.NewMatrix(4, 4)
	ft := stats.NewMatrix(4, 4)
	c := stats.NewMatrix(4, 4)
	ct := stats.NewMatrix(4, 4)
	t44a := stats.NewMatrix(4, 4)
	t44b := stats.NewMatrix(4, 4)
	d41 := stats.NewMatrix(4, 1)
	e41 := stats.NewMatrix(4, 1)
	for i := n - 2; i >= 0; i-- {
		next := &steps[i+1]
		st := &steps[i]
		pPred := mat44(next.pPred[:])
		if err := stats.InverseInto(predInv, &pPred, invScratch); err != nil {
			copy(xrow(i), st.xFilt[:])
			copy(prow(i), st.pFilt[:])
			continue
		}
		// c = pFilt * f' * predInv
		f := mat44(next.f[:])
		pFilt := mat44(st.pFilt[:])
		stats.TransposeInto(ft, &f)
		stats.MulInto(t44a, &pFilt, ft)
		stats.MulInto(c, t44a, predInv)
		// xs[i] = xFilt + c * (xs[i+1] - xPred)
		xNext := mat41(xrow(i + 1))
		xPred := mat41(next.xPred[:])
		stats.SubInto(d41, &xNext, &xPred)
		stats.MulInto(e41, c, d41)
		xFilt := mat41(st.xFilt[:])
		xCur := mat41(xrow(i))
		stats.AddInto(&xCur, &xFilt, e41)
		// ps[i] = pFilt + c * (ps[i+1] - pPred) * c'
		pNext := mat44(prow(i + 1))
		stats.SubInto(t44a, &pNext, &pPred)
		stats.MulInto(t44b, c, t44a)
		stats.TransposeInto(ct, c)
		stats.MulInto(t44a, t44b, ct)
		pCur := mat44(prow(i))
		stats.AddInto(&pCur, &pFilt, t44a)
	}
	out.Points = make([]trajectory.Point, 0, n)
	for i, p := range tr.Points {
		out.Points = append(out.Points, trajectory.Point{
			T:   p.T,
			Pos: geo.Pt(xs[i*4], xs[i*4+1]),
		})
	}
	return out
}

// ParticleFilter is a sequential Monte Carlo motion-based locator with
// a random-walk-velocity dynamics model and Gaussian position
// likelihood. It handles non-linear/non-Gaussian settings the Kalman
// filter cannot.
//
// All per-particle state lives in one contiguous float64 arena sliced
// into columns (px|py|vx|vy|w plus a spare set for resampling), so the
// propagate/weight/resample loops stream flat memory and Step runs
// allocation-free: resampling writes into the spare columns and swaps
// them in instead of allocating fresh slices every step.
type ParticleFilter struct {
	arena          []float64 // the 9n backing block (owned, poolable)
	px, py, vx, vy []float64
	w              []float64
	// spare columns the systematic resampler scatters into before the
	// swap (double buffering; contents are dead between steps).
	spx, spy, svx, svy []float64
	q                  float64 // velocity diffusion (m/s per sqrt(s))
	r                  float64 // measurement stddev (m)
	rng                *rand.Rand
}

// pfArena pools particle-state arenas across trajectory runs: the
// filter is rebuilt per trajectory per pipeline attempt, and its
// backing block is the only steady-state allocation left.
var pfArena = sync.Pool{New: func() any { return new([]float64) }}

// NewParticleFilter returns a filter with n particles spread with
// stddev spread around pos.
func NewParticleFilter(n int, pos geo.Point, spread, q, r float64, seed int64) *ParticleFilter {
	return newParticleFilter(nil, n, pos, spread, q, r, seed)
}

// newParticleFilter initializes the filter inside arena when it is
// large enough (9n floats), allocating otherwise.
func newParticleFilter(arena []float64, n int, pos geo.Point, spread, q, r float64, seed int64) *ParticleFilter {
	if n < 10 {
		n = 10
	}
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	if cap(arena) < 9*n {
		arena = make([]float64, 9*n)
	}
	arena = arena[:9*n]
	pf := &ParticleFilter{
		arena: arena,
		px:    arena[0*n : 1*n],
		py:    arena[1*n : 2*n],
		vx:    arena[2*n : 3*n],
		vy:    arena[3*n : 4*n],
		w:     arena[4*n : 5*n],
		spx:   arena[5*n : 6*n],
		spy:   arena[6*n : 7*n],
		svx:   arena[7*n : 8*n],
		svy:   arena[8*n : 9*n],
		q:     q, r: r,
		rng: rand.New(rand.NewSource(seed)),
	}
	// A pooled arena may carry stale velocities; the zero state is part
	// of the filter contract.
	for i := range pf.vx {
		pf.vx[i] = 0
		pf.vy[i] = 0
	}
	for i := 0; i < n; i++ {
		pf.px[i] = pos.X + pf.rng.NormFloat64()*spread
		pf.py[i] = pos.Y + pf.rng.NormFloat64()*spread
		pf.w[i] = 1 / float64(n)
	}
	return pf
}

// Step propagates dt seconds, weights against obs, resamples, and
// returns the posterior mean position.
func (pf *ParticleFilter) Step(dt float64, obs geo.Point) geo.Point {
	if dt <= 0 {
		dt = 1e-3
	}
	sq := math.Sqrt(dt) * pf.q
	den := 2 * pf.r * pf.r
	px, py, vx, vy, w := pf.px, pf.py, pf.vx, pf.vy, pf.w
	rng := pf.rng
	var wsum float64
	for i := range px {
		vx[i] += rng.NormFloat64() * sq
		vy[i] += rng.NormFloat64() * sq
		px[i] += vx[i] * dt
		py[i] += vy[i] * dt
		dx := px[i] - obs.X
		dy := py[i] - obs.Y
		w[i] = math.Exp(-(dx*dx + dy*dy) / den)
		wsum += w[i]
	}
	if wsum <= 0 {
		// All particles far away: reinitialize around the observation.
		for i := range px {
			px[i] = obs.X + rng.NormFloat64()*pf.r
			py[i] = obs.Y + rng.NormFloat64()*pf.r
			w[i] = 1 / float64(len(w))
		}
		wsum = 1
	}
	var mx, my float64
	for i := range w {
		w[i] /= wsum
		mx += w[i] * px[i]
		my += w[i] * py[i]
	}
	pf.resample()
	return geo.Pt(mx, my)
}

// resample performs systematic resampling into the spare columns and
// swaps them in — no allocation, same draws and copy order as the
// historical allocating form.
func (pf *ParticleFilter) resample() {
	n := len(pf.w)
	w, px, py, vx, vy := pf.w, pf.px, pf.py, pf.vx, pf.vy
	npx, npy, nvx, nvy := pf.spx, pf.spy, pf.svx, pf.svy
	step := 1 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+w[j] < target && j < n-1 {
			cum += w[j]
			j++
		}
		npx[i], npy[i] = px[j], py[j]
		nvx[i], nvy[i] = vx[j], vy[j]
	}
	pf.spx, pf.spy, pf.svx, pf.svy = px, py, vx, vy
	pf.px, pf.py, pf.vx, pf.vy = npx, npy, nvx, nvy
	for i := range w {
		w[i] = step
	}
}

// ParticleFilterTrajectory runs the particle filter over a trajectory.
// The particle arena is drawn from a pool shared across calls, so
// repeated pipeline attempts reuse one block instead of reallocating
// per trajectory.
func ParticleFilterTrajectory(tr *trajectory.Trajectory, n int, q, r float64, seed int64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	arenaP := pfArena.Get().(*[]float64)
	pf := newParticleFilter(*arenaP, n, tr.Points[0].Pos, r, q, r, seed)
	*arenaP = pf.arena
	defer pfArena.Put(arenaP)
	prevT := tr.Points[0].T
	out.Points = make([]trajectory.Point, 0, tr.Len())
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 1e-3
		}
		pos := pf.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}

// HMMGrid is a discrete Bayes (histogram) filter: the region is tiled
// into cells, motion diffuses probability to neighboring cells, and
// observations reweight by a Gaussian likelihood. It is the
// probabilistic-graph-model representative of motion-based LR.
//
// The grid is stored struct-of-arrays style: the posterior lives in one
// flat row-major probs slice, and the cell-center coordinates are
// precomputed per axis (cxs/cys) so no inner loop ever does the i%nx /
// i/nx index arithmetic of the old per-cell center lookup. The filter
// additionally tracks the active window — the bounding box of cells
// whose probability is not exactly +0 — and restricts every pass to it.
// Outside that box the old full-grid loops only ever computed 0*k
// products and +0 additions, so skipping them changes no output bit.
type HMMGrid struct {
	region     geo.Rect
	cell       float64
	nx, ny     int
	probs      []float64
	speedSigma float64 // motion diffusion, m/s
	measSigma  float64

	cxs, cys []float64 // per-axis cell-center coordinates
	ex2      []float64 // per-step scratch: squared x-distance to the observation
	// Active window (inclusive): every cell outside
	// [x0,x1]x[y0,y1] holds exactly +0.
	x0, x1, y0, y1 int
}

// expZero is a conservative underflow bound: math.Exp returns exactly
// +0 for every argument below it (the library cutoff is ~-745.134;
// TestExpUnderflowCutoff pins the guarantee). Skipping the Exp call for
// such arguments and writing 0 directly is bit-identical, because for
// the non-negative probabilities a grid holds p*0 is +0 and sum+=0
// leaves the accumulator unchanged.
const expZero = -746.0

// NewHMMGrid returns a uniform-prior grid filter.
func NewHMMGrid(region geo.Rect, cell, speedSigma, measSigma float64) *HMMGrid {
	if cell <= 0 {
		cell = 10
	}
	if speedSigma <= 0 {
		speedSigma = 2
	}
	if measSigma <= 0 {
		measSigma = 5
	}
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	h := &HMMGrid{
		region: region, cell: cell, nx: nx, ny: ny,
		probs:      make([]float64, nx*ny),
		speedSigma: speedSigma, measSigma: measSigma,
		cxs: make([]float64, nx),
		cys: make([]float64, ny),
		ex2: make([]float64, nx),
		x0:  0, x1: nx - 1, y0: 0, y1: ny - 1,
	}
	for x := range h.cxs {
		h.cxs[x] = region.Min.X + (float64(x)+0.5)*cell
	}
	for y := range h.cys {
		h.cys[y] = region.Min.Y + (float64(y)+0.5)*cell
	}
	u := 1 / float64(nx*ny)
	for i := range h.probs {
		h.probs[i] = u
	}
	return h
}

// Step advances the filter dt seconds and folds in an observation,
// returning the posterior-mean position estimate.
func (h *HMMGrid) Step(dt float64, obs geo.Point) geo.Point {
	if dt > 0 {
		h.diffuse(dt)
	}
	nx := h.nx
	den := 2 * h.measSigma * h.measSigma
	// Any cell with d2 > d2Zero has -d2/den < expZero even after
	// division rounding (the 1.0001 margin dominates a 1-ulp error), so
	// its emission weight is exactly +0 and the Exp call can be skipped.
	d2Zero := -expZero * den * 1.0001
	ex2 := h.ex2
	for x := h.x0; x <= h.x1; x++ {
		dx := h.cxs[x] - obs.X
		ex2[x] = dx * dx
	}
	// Shrink the active window to the columns/rows that can survive the
	// emission. ex2 is a discrete parabola in x, so {x: ex2[x] <= d2Zero}
	// is an interval and trimming from both ends finds it exactly; same
	// for y.
	nx0, nx1 := h.x0, h.x1
	for nx0 <= nx1 && ex2[nx0] > d2Zero {
		nx0++
	}
	for nx1 >= nx0 && ex2[nx1] > d2Zero {
		nx1--
	}
	ny0, ny1 := h.y0, h.y1
	for ny0 <= ny1 {
		dy := h.cys[ny0] - obs.Y
		if dy*dy > d2Zero {
			ny0++
		} else {
			break
		}
	}
	for ny1 >= ny0 {
		dy := h.cys[ny1] - obs.Y
		if dy*dy > d2Zero {
			ny1--
		} else {
			break
		}
	}
	// Cells of the old window that fall outside the survivable box get
	// weight exactly 0 (p *= +0 for non-negative p).
	for y := h.y0; y <= h.y1; y++ {
		row := h.probs[y*nx : (y+1)*nx]
		if y < ny0 || y > ny1 {
			for x := h.x0; x <= h.x1; x++ {
				row[x] = 0
			}
			continue
		}
		for x := h.x0; x < nx0; x++ {
			row[x] = 0
		}
		for x := nx1 + 1; x <= h.x1; x++ {
			row[x] = 0
		}
	}
	// Emission update over the surviving window, in the same row-major
	// cell order as the full-grid loop. d2 = ex2[x] + dy*dy is the same
	// two-products-one-add as the old inline DistSq.
	var sum float64
	for y := ny0; y <= ny1; y++ {
		dy := h.cys[y] - obs.Y
		dy2 := dy * dy
		row := h.probs[y*nx : (y+1)*nx]
		for x := nx0; x <= nx1; x++ {
			p := row[x]
			if p == 0 {
				// p stays +0 without the Exp call: p*e is +0 for any
				// finite weight and sum += +0 is a no-op.
				continue
			}
			d2 := ex2[x] + dy2
			if d2 > d2Zero {
				row[x] = 0
				continue
			}
			p *= math.Exp(-d2 / den)
			row[x] = p
			sum += p
		}
	}
	if sum <= 0 {
		u := 1 / float64(len(h.probs))
		for i := range h.probs {
			h.probs[i] = u
		}
		sum = 1
		nx0, nx1, ny0, ny1 = 0, nx-1, 0, h.ny-1
	}
	// Normalize and take the posterior mean. Outside the window every
	// term is +0/sum = +0 and mx += ±0 never changes the accumulator
	// (it can never be -0: it starts at +0 and only exact -0+-0 could
	// produce -0), so the restriction is bit-identical.
	var mx, my float64
	for y := ny0; y <= ny1; y++ {
		cy := h.cys[y]
		row := h.probs[y*nx : (y+1)*nx]
		for x := nx0; x <= nx1; x++ {
			p := row[x]
			if p == 0 {
				// +0/sum is +0 and mx += ±0 never changes the
				// accumulator (it starts at +0 and only -0 + -0 could
				// make it -0), so skipping zero cells is bit-identical.
				continue
			}
			p /= sum
			row[x] = p
			mx += p * h.cxs[x]
			my += p * cy
		}
	}
	h.x0, h.x1, h.y0, h.y1 = nx0, nx1, ny0, ny1
	return geo.Pt(mx, my)
}

// diffuseScratch pools the per-step kernel and intermediate grid used
// by HMMGrid.diffuse, mirroring how KalmanSmoothTrajectory pools its
// rtsStep slices: each Step would otherwise allocate a full grid copy.
type diffuseScratch struct {
	kernel []float64
	tmp    []float64
}

var diffusePool = sync.Pool{New: func() any { return new(diffuseScratch) }}

// diffuse spreads probability to neighbors with a Gaussian kernel of
// stddev speedSigma*dt, truncated at 3 sigma.
func (h *HMMGrid) diffuse(dt float64) {
	sigma := h.speedSigma * dt
	radius := int(math.Ceil(3 * sigma / h.cell))
	if radius < 1 {
		radius = 1
	}
	if radius > 6 {
		radius = 6
	}
	scr := diffusePool.Get().(*diffuseScratch)
	defer diffusePool.Put(scr)
	// Separable 1D kernel.
	if cap(scr.kernel) < 2*radius+1 {
		scr.kernel = make([]float64, 2*radius+1)
	}
	kernel := scr.kernel[:2*radius+1]
	var ksum float64
	for k := -radius; k <= radius; k++ {
		d := float64(k) * h.cell
		kernel[k+radius] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[k+radius]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	// Horizontal then vertical pass, restricted to the active window
	// expanded by the kernel radius. A tap that lands outside the
	// window reads an exact +0 (window invariant) and a tap outside the
	// grid was skipped by the old bounds check; clamping the tap range
	// to the window drops only +0 contributions, and each surviving
	// cell still accumulates its taps in ascending-k order, so the
	// output is bit-identical to the full-grid form.
	if cap(scr.tmp) < len(h.probs) {
		scr.tmp = make([]float64, len(h.probs))
	}
	tmp := scr.tmp[:len(h.probs)]
	nx := h.nx
	x0, x1, y0, y1 := h.x0, h.x1, h.y0, h.y1
	ex0, ex1 := max(0, x0-radius), min(nx-1, x1+radius)
	ey0, ey1 := max(0, y0-radius), min(h.ny-1, y1+radius)
	if radius == 1 {
		// The common small-sigma shape (every E1 configuration lands
		// here): fully unrolled 3-tap expressions. Left-to-right
		// evaluation ((a+b)+c) matches the generic loop's
		// ((0+a)+b)+c because 0+a == a for the non-negative taps a
		// probability grid produces.
		k0, k1, k2 := kernel[0], kernel[1], kernel[2]
		for y := y0; y <= y1; y++ {
			src := h.probs[y*nx : (y+1)*nx]
			dst := tmp[y*nx : (y+1)*nx]
			if x0 == x1 {
				dst[x0] = src[x0] * k1
				if x0 > 0 {
					dst[x0-1] = src[x0] * k2
				}
				if x1 < nx-1 {
					dst[x1+1] = src[x1] * k0
				}
				continue
			}
			if ex0 < x0 {
				dst[ex0] = src[x0] * k2
			}
			lo, hi := max(x0, 1), min(x1, nx-2)
			if x0 == 0 {
				dst[0] = src[0]*k1 + src[1]*k2
			}
			for x := lo; x <= hi; x++ {
				dst[x] = src[x-1]*k0 + src[x]*k1 + src[x+1]*k2
			}
			if x1 == nx-1 {
				dst[nx-1] = src[nx-2]*k0 + src[nx-1]*k1
			}
			if ex1 > x1 {
				dst[ex1] = src[x1] * k0
			}
		}
		for y := ey0; y <= ey1; y++ {
			out := h.probs[y*nx : (y+1)*nx]
			switch {
			case y > y0 && y < y1:
				a := tmp[(y-1)*nx : y*nx]
				b := tmp[y*nx : (y+1)*nx]
				c := tmp[(y+1)*nx : (y+2)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = a[x]*k0 + b[x]*k1 + c[x]*k2
				}
			case y < y0: // one row above the window: only the k=+1 tap
				c := tmp[y0*nx : (y0+1)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = c[x] * k2
				}
			case y > y1: // one row below: only the k=-1 tap
				a := tmp[y1*nx : (y1+1)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = a[x] * k0
				}
			case y0 == y1: // single-row window
				b := tmp[y*nx : (y+1)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = b[x] * k1
				}
			case y == y0: // top row of a taller window
				b := tmp[y*nx : (y+1)*nx]
				c := tmp[(y+1)*nx : (y+2)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = b[x]*k1 + c[x]*k2
				}
			default: // y == y1: bottom row
				a := tmp[(y-1)*nx : y*nx]
				b := tmp[y*nx : (y+1)*nx]
				for x := ex0; x <= ex1; x++ {
					out[x] = a[x]*k0 + b[x]*k1
				}
			}
		}
		h.x0, h.x1, h.y0, h.y1 = ex0, ex1, ey0, ey1
		return
	}
	for y := y0; y <= y1; y++ {
		src := h.probs[y*nx : (y+1)*nx]
		dst := tmp[y*nx : (y+1)*nx]
		for x := ex0; x <= ex1; x++ {
			kmin := max(-radius, x0-x)
			kmax := min(radius, x1-x)
			var v float64
			for k := kmin; k <= kmax; k++ {
				v += src[x+k] * kernel[k+radius]
			}
			dst[x] = v
		}
	}
	// Vertical pass, row-streaming: the valid tap rows are uniform
	// across a whole output row, so the k loop hoists out of the x loop
	// and the inner loop walks contiguous rows.
	for y := ey0; y <= ey1; y++ {
		kmin := max(-radius, y0-y)
		kmax := min(radius, y1-y)
		out := h.probs[y*nx : (y+1)*nx]
		for x := ex0; x <= ex1; x++ {
			out[x] = 0
		}
		for k := kmin; k <= kmax; k++ {
			row := tmp[(y+k)*nx : (y+k+1)*nx]
			kv := kernel[k+radius]
			for x := ex0; x <= ex1; x++ {
				out[x] += row[x] * kv
			}
		}
	}
	h.x0, h.x1, h.y0, h.y1 = ex0, ex1, ey0, ey1
}

// HMMGridTrajectory runs the grid filter over a trajectory.
func HMMGridTrajectory(tr *trajectory.Trajectory, region geo.Rect, cell, speedSigma, measSigma float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	h := NewHMMGrid(region, cell, speedSigma, measSigma)
	prevT := tr.Points[0].T
	out.Points = make([]trajectory.Point, 0, tr.Len())
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 0
		}
		pos := h.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}
