package refine

import (
	"math"
	"math/rand"
	"sync"

	"sidq/internal/geo"
	"sidq/internal/stats"
	"sidq/internal/trajectory"
)

// Kalman is a constant-velocity Kalman filter over planar position
// observations: state [x y vx vy], position-only measurements. It is
// the canonical Bayes-filter instance of motion-based LR.
//
// All per-step temporaries live in a scratch block allocated once with
// the filter, so Predict/Update run allocation-free in steady state. A
// Kalman value is not safe for concurrent use (create one per
// trajectory, as the trajectory-level helpers do).
type Kalman struct {
	x   *stats.Matrix // 4x1 state
	p   *stats.Matrix // 4x4 covariance
	q   float64       // process-noise intensity (acceleration PSD)
	r   float64       // measurement noise stddev (meters)
	scr kalmanScratch
}

// kalmanScratch holds the constant model matrices and reusable
// temporaries for one filter.
type kalmanScratch struct {
	f, ft      *stats.Matrix // 4x4 transition and its transpose
	qn         *stats.Matrix // 4x4 process noise
	i4         *stats.Matrix // 4x4 identity
	t44a, t44b *stats.Matrix // 4x4 temporaries
	h          *stats.Matrix // 2x4 measurement model (constant)
	ht         *stats.Matrix // 4x2 its transpose (constant)
	hp         *stats.Matrix // 2x4 h*p
	pht, gain  *stats.Matrix // 4x2
	rm         *stats.Matrix // 2x2 measurement noise (constant)
	s, sInv    *stats.Matrix // 2x2 innovation covariance and inverse
	t22        *stats.Matrix // 2x2 inversion workspace
	y, gy      *stats.Matrix // 2x1 residual, 4x1 correction
	x1         *stats.Matrix // 4x1 temporary
}

// NewKalman returns a filter initialized at pos with zero velocity,
// the given process-noise intensity q (m/s^2 scale) and measurement
// noise stddev r (meters).
func NewKalman(pos geo.Point, q, r float64) *Kalman {
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	x := stats.NewMatrix(4, 1)
	x.Set(0, 0, pos.X)
	x.Set(1, 0, pos.Y)
	p := stats.Identity(4).ScaleBy(100)
	k := &Kalman{x: x, p: p, q: q, r: r}
	s := &k.scr
	s.f = stats.NewMatrix(4, 4)
	s.ft = stats.NewMatrix(4, 4)
	s.qn = stats.NewMatrix(4, 4)
	s.i4 = stats.Identity(4)
	s.t44a = stats.NewMatrix(4, 4)
	s.t44b = stats.NewMatrix(4, 4)
	s.h = stats.MatrixFrom(2, 4,
		1, 0, 0, 0,
		0, 1, 0, 0,
	)
	s.ht = s.h.Transpose()
	s.hp = stats.NewMatrix(2, 4)
	s.pht = stats.NewMatrix(4, 2)
	s.gain = stats.NewMatrix(4, 2)
	s.rm = stats.Identity(2).ScaleBy(r * r)
	s.s = stats.NewMatrix(2, 2)
	s.sInv = stats.NewMatrix(2, 2)
	s.t22 = stats.NewMatrix(2, 2)
	s.y = stats.NewMatrix(2, 1)
	s.gy = stats.NewMatrix(4, 1)
	s.x1 = stats.NewMatrix(4, 1)
	return k
}

// cvTransitionInto fills f with the constant-velocity transition for a
// dt-second step.
func cvTransitionInto(f *stats.Matrix, dt float64) {
	copy(f.Data, []float64{
		1, 0, dt, 0,
		0, 1, 0, dt,
		0, 0, 1, 0,
		0, 0, 0, 1,
	})
}

// cvProcessNoiseInto fills qn with the white-acceleration process
// noise for a dt-second step at intensity q.
func cvProcessNoiseInto(qn *stats.Matrix, dt, q float64) {
	dt2 := dt * dt
	dt3 := dt2 * dt / 3
	half := dt2 / 2
	copy(qn.Data, []float64{
		dt3, 0, half, 0,
		0, dt3, 0, half,
		half, 0, dt, 0,
		0, half, 0, dt,
	})
	for i := range qn.Data {
		qn.Data[i] *= q
	}
}

// Predict advances the state dt seconds without a measurement.
func (k *Kalman) Predict(dt float64) {
	if dt <= 0 {
		return
	}
	s := &k.scr
	cvTransitionInto(s.f, dt)
	stats.MulInto(s.x1, s.f, k.x)
	k.x.CopyFrom(s.x1)
	// p = f*p*f' + Q, evaluated in the same order as the allocating
	// form so results stay bit-identical.
	stats.MulInto(s.t44a, s.f, k.p)
	stats.TransposeInto(s.ft, s.f)
	stats.MulInto(s.t44b, s.t44a, s.ft)
	cvProcessNoiseInto(s.qn, dt, k.q)
	stats.AddInto(k.p, s.t44b, s.qn)
}

// Update folds in a position observation.
func (k *Kalman) Update(obs geo.Point) {
	s := &k.scr
	s.y.Data[0] = obs.X - k.x.At(0, 0)
	s.y.Data[1] = obs.Y - k.x.At(1, 0)
	stats.MulInto(s.hp, s.h, k.p)
	stats.MulInto(s.s, s.hp, s.ht)
	stats.AddInto(s.s, s.s, s.rm)
	if err := stats.InverseInto(s.sInv, s.s, s.t22); err != nil {
		return // degenerate covariance: skip the update
	}
	stats.MulInto(s.pht, k.p, s.ht)
	stats.MulInto(s.gain, s.pht, s.sInv)
	stats.MulInto(s.gy, s.gain, s.y)
	stats.AddInto(k.x, k.x, s.gy)
	// p = (I - gain*h) * p
	stats.MulInto(s.t44a, s.gain, s.h)
	stats.SubInto(s.t44a, s.i4, s.t44a)
	stats.MulInto(s.t44b, s.t44a, k.p)
	k.p.CopyFrom(s.t44b)
}

// Step performs Predict(dt) then Update(obs) and returns the position.
func (k *Kalman) Step(dt float64, obs geo.Point) geo.Point {
	k.Predict(dt)
	k.Update(obs)
	return k.Position()
}

// Position returns the current position estimate.
func (k *Kalman) Position() geo.Point { return geo.Pt(k.x.At(0, 0), k.x.At(1, 0)) }

// Velocity returns the current velocity estimate.
func (k *Kalman) Velocity() geo.Point { return geo.Pt(k.x.At(2, 0), k.x.At(3, 0)) }

// Innovation returns the distance between a prospective observation and
// the predicted position dt seconds ahead, without mutating the filter.
// Prediction-based outlier detection uses this as its test statistic.
func (k *Kalman) Innovation(dt float64, obs geo.Point) float64 {
	s := &k.scr
	cvTransitionInto(s.f, dt)
	pred := stats.MulInto(s.x1, s.f, k.x)
	return obs.Dist(geo.Pt(pred.At(0, 0), pred.At(1, 0)))
}

// KalmanFilterTrajectory runs the filter forward over a trajectory and
// returns the filtered (causal) trajectory.
func KalmanFilterTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	out.Points = make([]trajectory.Point, 0, tr.Len())
	for i, p := range tr.Points {
		if i == 0 {
			k.Update(p.Pos)
		} else {
			k.Step(math.Max(p.T-prevT, 1e-9), p.Pos)
		}
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: k.Position()})
	}
	return out
}

// rtsStep is one time step of the forward Kalman pass retained for the
// backward RTS smoother. State and covariance snapshots are stored in
// inline arrays (state dimension is fixed at 4), so retaining a step
// allocates nothing beyond the pooled step slice itself.
type rtsStep struct {
	xPred, xFilt [4]float64
	pPred, pFilt [16]float64
	f            [16]float64
}

// The smoother's per-call scratch (one step record per point plus the
// smoothed state/covariance buffers) is pooled: smoothing runs once
// per trajectory per pipeline attempt. rtsStep holds no pointers, so
// pooled slices pin nothing between uses.
var (
	stepsPool  = sync.Pool{New: func() any { return new([]rtsStep) }}
	floatsPool = sync.Pool{New: func() any { return new([]float64) }}
)

func getSteps(n int) *[]rtsStep {
	p := stepsPool.Get().(*[]rtsStep)
	if cap(*p) < n {
		*p = make([]rtsStep, n)
	}
	*p = (*p)[:n]
	return p
}

func putSteps(p *[]rtsStep) {
	stepsPool.Put(p)
}

func getFloats(n int) *[]float64 {
	p := floatsPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putFloats(p *[]float64) {
	floatsPool.Put(p)
}

// mat41 and mat44 wrap a scratch slice as a fixed-shape matrix view.
func mat41(d []float64) stats.Matrix { return stats.Matrix{Rows: 4, Cols: 1, Data: d} }
func mat44(d []float64) stats.Matrix { return stats.Matrix{Rows: 4, Cols: 4, Data: d} }

// KalmanSmoothTrajectory runs a forward pass followed by a
// Rauch-Tung-Striebel backward smoother, producing the non-causal MAP
// trajectory. This is the smoothing-based uncertainty eliminator built
// on the same motion model.
func KalmanSmoothTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	stepsP := getSteps(n)
	defer putSteps(stepsP)
	steps := *stepsP
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		st := &steps[i]
		if i == 0 {
			f := mat44(st.f[:])
			stats.IdentityInto(&f)
		} else {
			dt := math.Max(p.T-prevT, 1e-9)
			f := mat44(st.f[:])
			cvTransitionInto(&f, dt)
			k.Predict(dt)
		}
		copy(st.xPred[:], k.x.Data)
		copy(st.pPred[:], k.p.Data)
		k.Update(p.Pos)
		copy(st.xFilt[:], k.x.Data)
		copy(st.pFilt[:], k.p.Data)
		prevT = p.T
	}
	// Backward RTS pass. Smoothed states/covariances live in pooled
	// flat buffers viewed as 4x1 / 4x4 matrices; the loop temporaries
	// are allocated once per call.
	xsP, psP := getFloats(n*4), getFloats(n*16)
	defer putFloats(xsP)
	defer putFloats(psP)
	xs, ps := *xsP, *psP
	xrow := func(i int) []float64 { return xs[i*4 : (i+1)*4] }
	prow := func(i int) []float64 { return ps[i*16 : (i+1)*16] }
	copy(xrow(n-1), steps[n-1].xFilt[:])
	copy(prow(n-1), steps[n-1].pFilt[:])
	predInv := stats.NewMatrix(4, 4)
	invScratch := stats.NewMatrix(4, 4)
	ft := stats.NewMatrix(4, 4)
	c := stats.NewMatrix(4, 4)
	ct := stats.NewMatrix(4, 4)
	t44a := stats.NewMatrix(4, 4)
	t44b := stats.NewMatrix(4, 4)
	d41 := stats.NewMatrix(4, 1)
	e41 := stats.NewMatrix(4, 1)
	for i := n - 2; i >= 0; i-- {
		next := &steps[i+1]
		st := &steps[i]
		pPred := mat44(next.pPred[:])
		if err := stats.InverseInto(predInv, &pPred, invScratch); err != nil {
			copy(xrow(i), st.xFilt[:])
			copy(prow(i), st.pFilt[:])
			continue
		}
		// c = pFilt * f' * predInv
		f := mat44(next.f[:])
		pFilt := mat44(st.pFilt[:])
		stats.TransposeInto(ft, &f)
		stats.MulInto(t44a, &pFilt, ft)
		stats.MulInto(c, t44a, predInv)
		// xs[i] = xFilt + c * (xs[i+1] - xPred)
		xNext := mat41(xrow(i + 1))
		xPred := mat41(next.xPred[:])
		stats.SubInto(d41, &xNext, &xPred)
		stats.MulInto(e41, c, d41)
		xFilt := mat41(st.xFilt[:])
		xCur := mat41(xrow(i))
		stats.AddInto(&xCur, &xFilt, e41)
		// ps[i] = pFilt + c * (ps[i+1] - pPred) * c'
		pNext := mat44(prow(i + 1))
		stats.SubInto(t44a, &pNext, &pPred)
		stats.MulInto(t44b, c, t44a)
		stats.TransposeInto(ct, c)
		stats.MulInto(t44a, t44b, ct)
		pCur := mat44(prow(i))
		stats.AddInto(&pCur, &pFilt, t44a)
	}
	out.Points = make([]trajectory.Point, 0, n)
	for i, p := range tr.Points {
		out.Points = append(out.Points, trajectory.Point{
			T:   p.T,
			Pos: geo.Pt(xs[i*4], xs[i*4+1]),
		})
	}
	return out
}

// ParticleFilter is a sequential Monte Carlo motion-based locator with
// a random-walk-velocity dynamics model and Gaussian position
// likelihood. It handles non-linear/non-Gaussian settings the Kalman
// filter cannot.
type ParticleFilter struct {
	px, py, vx, vy []float64
	w              []float64
	q              float64 // velocity diffusion (m/s per sqrt(s))
	r              float64 // measurement stddev (m)
	rng            *rand.Rand
}

// NewParticleFilter returns a filter with n particles spread with
// stddev spread around pos.
func NewParticleFilter(n int, pos geo.Point, spread, q, r float64, seed int64) *ParticleFilter {
	if n < 10 {
		n = 10
	}
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	pf := &ParticleFilter{
		px: make([]float64, n), py: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
		w: make([]float64, n),
		q: q, r: r,
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		pf.px[i] = pos.X + pf.rng.NormFloat64()*spread
		pf.py[i] = pos.Y + pf.rng.NormFloat64()*spread
		pf.w[i] = 1 / float64(n)
	}
	return pf
}

// Step propagates dt seconds, weights against obs, resamples, and
// returns the posterior mean position.
func (pf *ParticleFilter) Step(dt float64, obs geo.Point) geo.Point {
	if dt <= 0 {
		dt = 1e-3
	}
	sq := math.Sqrt(dt) * pf.q
	var wsum float64
	for i := range pf.px {
		pf.vx[i] += pf.rng.NormFloat64() * sq
		pf.vy[i] += pf.rng.NormFloat64() * sq
		pf.px[i] += pf.vx[i] * dt
		pf.py[i] += pf.vy[i] * dt
		dx := pf.px[i] - obs.X
		dy := pf.py[i] - obs.Y
		pf.w[i] = math.Exp(-(dx*dx + dy*dy) / (2 * pf.r * pf.r))
		wsum += pf.w[i]
	}
	if wsum <= 0 {
		// All particles far away: reinitialize around the observation.
		for i := range pf.px {
			pf.px[i] = obs.X + pf.rng.NormFloat64()*pf.r
			pf.py[i] = obs.Y + pf.rng.NormFloat64()*pf.r
			pf.w[i] = 1 / float64(len(pf.w))
		}
		wsum = 1
	}
	var mx, my float64
	for i := range pf.w {
		pf.w[i] /= wsum
		mx += pf.w[i] * pf.px[i]
		my += pf.w[i] * pf.py[i]
	}
	pf.resample()
	return geo.Pt(mx, my)
}

// resample performs systematic resampling.
func (pf *ParticleFilter) resample() {
	n := len(pf.w)
	npx := make([]float64, n)
	npy := make([]float64, n)
	nvx := make([]float64, n)
	nvy := make([]float64, n)
	step := 1 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+pf.w[j] < target && j < n-1 {
			cum += pf.w[j]
			j++
		}
		npx[i], npy[i] = pf.px[j], pf.py[j]
		nvx[i], nvy[i] = pf.vx[j], pf.vy[j]
	}
	pf.px, pf.py, pf.vx, pf.vy = npx, npy, nvx, nvy
	for i := range pf.w {
		pf.w[i] = step
	}
}

// ParticleFilterTrajectory runs the particle filter over a trajectory.
func ParticleFilterTrajectory(tr *trajectory.Trajectory, n int, q, r float64, seed int64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	pf := NewParticleFilter(n, tr.Points[0].Pos, r, q, r, seed)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 1e-3
		}
		pos := pf.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}

// HMMGrid is a discrete Bayes (histogram) filter: the region is tiled
// into cells, motion diffuses probability to neighboring cells, and
// observations reweight by a Gaussian likelihood. It is the
// probabilistic-graph-model representative of motion-based LR.
type HMMGrid struct {
	region     geo.Rect
	cell       float64
	nx, ny     int
	probs      []float64
	speedSigma float64 // motion diffusion, m/s
	measSigma  float64
}

// NewHMMGrid returns a uniform-prior grid filter.
func NewHMMGrid(region geo.Rect, cell, speedSigma, measSigma float64) *HMMGrid {
	if cell <= 0 {
		cell = 10
	}
	if speedSigma <= 0 {
		speedSigma = 2
	}
	if measSigma <= 0 {
		measSigma = 5
	}
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	h := &HMMGrid{
		region: region, cell: cell, nx: nx, ny: ny,
		probs:      make([]float64, nx*ny),
		speedSigma: speedSigma, measSigma: measSigma,
	}
	u := 1 / float64(nx*ny)
	for i := range h.probs {
		h.probs[i] = u
	}
	return h
}

func (h *HMMGrid) center(i int) geo.Point {
	cx, cy := i%h.nx, i/h.nx
	return geo.Pt(
		h.region.Min.X+(float64(cx)+0.5)*h.cell,
		h.region.Min.Y+(float64(cy)+0.5)*h.cell,
	)
}

// Step advances the filter dt seconds and folds in an observation,
// returning the posterior-mean position estimate.
func (h *HMMGrid) Step(dt float64, obs geo.Point) geo.Point {
	if dt > 0 {
		h.diffuse(dt)
	}
	// Emission update.
	var sum float64
	for i := range h.probs {
		d2 := h.center(i).DistSq(obs)
		h.probs[i] *= math.Exp(-d2 / (2 * h.measSigma * h.measSigma))
		sum += h.probs[i]
	}
	if sum <= 0 {
		u := 1 / float64(len(h.probs))
		for i := range h.probs {
			h.probs[i] = u
		}
		sum = 1
	}
	var mx, my float64
	for i := range h.probs {
		h.probs[i] /= sum
		c := h.center(i)
		mx += h.probs[i] * c.X
		my += h.probs[i] * c.Y
	}
	return geo.Pt(mx, my)
}

// diffuseScratch pools the per-step kernel and intermediate grid used
// by HMMGrid.diffuse, mirroring how KalmanSmoothTrajectory pools its
// rtsStep slices: each Step would otherwise allocate a full grid copy.
type diffuseScratch struct {
	kernel []float64
	tmp    []float64
}

var diffusePool = sync.Pool{New: func() any { return new(diffuseScratch) }}

// diffuse spreads probability to neighbors with a Gaussian kernel of
// stddev speedSigma*dt, truncated at 3 sigma.
func (h *HMMGrid) diffuse(dt float64) {
	sigma := h.speedSigma * dt
	radius := int(math.Ceil(3 * sigma / h.cell))
	if radius < 1 {
		radius = 1
	}
	if radius > 6 {
		radius = 6
	}
	scr := diffusePool.Get().(*diffuseScratch)
	defer diffusePool.Put(scr)
	// Separable 1D kernel.
	if cap(scr.kernel) < 2*radius+1 {
		scr.kernel = make([]float64, 2*radius+1)
	}
	kernel := scr.kernel[:2*radius+1]
	var ksum float64
	for k := -radius; k <= radius; k++ {
		d := float64(k) * h.cell
		kernel[k+radius] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[k+radius]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	// Horizontal then vertical pass.
	if cap(scr.tmp) < len(h.probs) {
		scr.tmp = make([]float64, len(h.probs))
	}
	tmp := scr.tmp[:len(h.probs)]
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				xx := x + k
				if xx < 0 || xx >= h.nx {
					continue
				}
				v += h.probs[y*h.nx+xx] * kernel[k+radius]
			}
			tmp[y*h.nx+x] = v
		}
	}
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				yy := y + k
				if yy < 0 || yy >= h.ny {
					continue
				}
				v += tmp[yy*h.nx+x] * kernel[k+radius]
			}
			h.probs[y*h.nx+x] = v
		}
	}
}

// HMMGridTrajectory runs the grid filter over a trajectory.
func HMMGridTrajectory(tr *trajectory.Trajectory, region geo.Rect, cell, speedSigma, measSigma float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	h := NewHMMGrid(region, cell, speedSigma, measSigma)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 0
		}
		pos := h.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}
