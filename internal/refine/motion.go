package refine

import (
	"math"
	"math/rand"
	"sync"

	"sidq/internal/geo"
	"sidq/internal/stats"
	"sidq/internal/trajectory"
)

// Kalman is a constant-velocity Kalman filter over planar position
// observations: state [x y vx vy], position-only measurements. It is
// the canonical Bayes-filter instance of motion-based LR.
type Kalman struct {
	x *stats.Matrix // 4x1 state
	p *stats.Matrix // 4x4 covariance
	q float64       // process-noise intensity (acceleration PSD)
	r float64       // measurement noise stddev (meters)
}

// NewKalman returns a filter initialized at pos with zero velocity,
// the given process-noise intensity q (m/s^2 scale) and measurement
// noise stddev r (meters).
func NewKalman(pos geo.Point, q, r float64) *Kalman {
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	x := stats.NewMatrix(4, 1)
	x.Set(0, 0, pos.X)
	x.Set(1, 0, pos.Y)
	p := stats.Identity(4).ScaleBy(100)
	return &Kalman{x: x, p: p, q: q, r: r}
}

func cvTransition(dt float64) *stats.Matrix {
	return stats.MatrixFrom(4, 4,
		1, 0, dt, 0,
		0, 1, 0, dt,
		0, 0, 1, 0,
		0, 0, 0, 1,
	)
}

func cvProcessNoise(dt, q float64) *stats.Matrix {
	dt2 := dt * dt
	dt3 := dt2 * dt / 3
	half := dt2 / 2
	return stats.MatrixFrom(4, 4,
		dt3, 0, half, 0,
		0, dt3, 0, half,
		half, 0, dt, 0,
		0, half, 0, dt,
	).ScaleBy(q)
}

// Predict advances the state dt seconds without a measurement.
func (k *Kalman) Predict(dt float64) {
	if dt <= 0 {
		return
	}
	f := cvTransition(dt)
	k.x = f.Mul(k.x)
	k.p = f.Mul(k.p).Mul(f.Transpose()).Add(cvProcessNoise(dt, k.q))
}

// Update folds in a position observation.
func (k *Kalman) Update(obs geo.Point) {
	h := stats.MatrixFrom(2, 4,
		1, 0, 0, 0,
		0, 1, 0, 0,
	)
	rm := stats.Identity(2).ScaleBy(k.r * k.r)
	y := stats.MatrixFrom(2, 1, obs.X-k.x.At(0, 0), obs.Y-k.x.At(1, 0))
	s := h.Mul(k.p).Mul(h.Transpose()).Add(rm)
	sInv, err := s.Inverse()
	if err != nil {
		return // degenerate covariance: skip the update
	}
	gain := k.p.Mul(h.Transpose()).Mul(sInv)
	k.x = k.x.Add(gain.Mul(y))
	k.p = stats.Identity(4).Sub(gain.Mul(h)).Mul(k.p)
}

// Step performs Predict(dt) then Update(obs) and returns the position.
func (k *Kalman) Step(dt float64, obs geo.Point) geo.Point {
	k.Predict(dt)
	k.Update(obs)
	return k.Position()
}

// Position returns the current position estimate.
func (k *Kalman) Position() geo.Point { return geo.Pt(k.x.At(0, 0), k.x.At(1, 0)) }

// Velocity returns the current velocity estimate.
func (k *Kalman) Velocity() geo.Point { return geo.Pt(k.x.At(2, 0), k.x.At(3, 0)) }

// Innovation returns the distance between a prospective observation and
// the predicted position dt seconds ahead, without mutating the filter.
// Prediction-based outlier detection uses this as its test statistic.
func (k *Kalman) Innovation(dt float64, obs geo.Point) float64 {
	f := cvTransition(dt)
	pred := f.Mul(k.x)
	return obs.Dist(geo.Pt(pred.At(0, 0), pred.At(1, 0)))
}

// KalmanFilterTrajectory runs the filter forward over a trajectory and
// returns the filtered (causal) trajectory.
func KalmanFilterTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		if i == 0 {
			k.Update(p.Pos)
		} else {
			k.Step(math.Max(p.T-prevT, 1e-9), p.Pos)
		}
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: k.Position()})
	}
	return out
}

// rtsStep is one time step of the forward Kalman pass retained for the
// backward RTS smoother.
type rtsStep struct {
	xPred, pPred *stats.Matrix
	xFilt, pFilt *stats.Matrix
	f            *stats.Matrix
}

// The smoother's per-call scratch (one step record and two smoothed
// state slots per point) is pooled: smoothing runs once per trajectory
// per pipeline attempt. Entries are cleared on return so pooled slices
// never pin matrices.
var (
	stepsPool = sync.Pool{New: func() any { return new([]rtsStep) }}
	matsPool  = sync.Pool{New: func() any { return new([]*stats.Matrix) }}
)

func getSteps(n int) *[]rtsStep {
	p := stepsPool.Get().(*[]rtsStep)
	if cap(*p) < n {
		*p = make([]rtsStep, n)
	}
	*p = (*p)[:n]
	return p
}

func putSteps(p *[]rtsStep) {
	for i := range *p {
		(*p)[i] = rtsStep{}
	}
	stepsPool.Put(p)
}

func getMats(n int) *[]*stats.Matrix {
	p := matsPool.Get().(*[]*stats.Matrix)
	if cap(*p) < n {
		*p = make([]*stats.Matrix, n)
	}
	*p = (*p)[:n]
	return p
}

func putMats(p *[]*stats.Matrix) {
	for i := range *p {
		(*p)[i] = nil
	}
	matsPool.Put(p)
}

// KalmanSmoothTrajectory runs a forward pass followed by a
// Rauch-Tung-Striebel backward smoother, producing the non-causal MAP
// trajectory. This is the smoothing-based uncertainty eliminator built
// on the same motion model.
func KalmanSmoothTrajectory(tr *trajectory.Trajectory, q, r float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	stepsP := getSteps(n)
	defer putSteps(stepsP)
	steps := *stepsP
	k := NewKalman(tr.Points[0].Pos, q, r)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		var f *stats.Matrix
		if i == 0 {
			f = stats.Identity(4)
		} else {
			dt := math.Max(p.T-prevT, 1e-9)
			f = cvTransition(dt)
			k.Predict(dt)
		}
		steps[i].xPred = k.x.Clone()
		steps[i].pPred = k.p.Clone()
		steps[i].f = f
		k.Update(p.Pos)
		steps[i].xFilt = k.x.Clone()
		steps[i].pFilt = k.p.Clone()
		prevT = p.T
	}
	// Backward RTS pass.
	xsP, psP := getMats(n), getMats(n)
	defer putMats(xsP)
	defer putMats(psP)
	xs, ps := *xsP, *psP
	xs[n-1] = steps[n-1].xFilt
	ps[n-1] = steps[n-1].pFilt
	for i := n - 2; i >= 0; i-- {
		predInv, err := steps[i+1].pPred.Inverse()
		if err != nil {
			xs[i] = steps[i].xFilt
			ps[i] = steps[i].pFilt
			continue
		}
		c := steps[i].pFilt.Mul(steps[i+1].f.Transpose()).Mul(predInv)
		xs[i] = steps[i].xFilt.Add(c.Mul(xs[i+1].Sub(steps[i+1].xPred)))
		ps[i] = steps[i].pFilt.Add(c.Mul(ps[i+1].Sub(steps[i+1].pPred)).Mul(c.Transpose()))
	}
	for i, p := range tr.Points {
		out.Points = append(out.Points, trajectory.Point{
			T:   p.T,
			Pos: geo.Pt(xs[i].At(0, 0), xs[i].At(1, 0)),
		})
	}
	return out
}

// ParticleFilter is a sequential Monte Carlo motion-based locator with
// a random-walk-velocity dynamics model and Gaussian position
// likelihood. It handles non-linear/non-Gaussian settings the Kalman
// filter cannot.
type ParticleFilter struct {
	px, py, vx, vy []float64
	w              []float64
	q              float64 // velocity diffusion (m/s per sqrt(s))
	r              float64 // measurement stddev (m)
	rng            *rand.Rand
}

// NewParticleFilter returns a filter with n particles spread with
// stddev spread around pos.
func NewParticleFilter(n int, pos geo.Point, spread, q, r float64, seed int64) *ParticleFilter {
	if n < 10 {
		n = 10
	}
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 1
	}
	pf := &ParticleFilter{
		px: make([]float64, n), py: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
		w: make([]float64, n),
		q: q, r: r,
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		pf.px[i] = pos.X + pf.rng.NormFloat64()*spread
		pf.py[i] = pos.Y + pf.rng.NormFloat64()*spread
		pf.w[i] = 1 / float64(n)
	}
	return pf
}

// Step propagates dt seconds, weights against obs, resamples, and
// returns the posterior mean position.
func (pf *ParticleFilter) Step(dt float64, obs geo.Point) geo.Point {
	if dt <= 0 {
		dt = 1e-3
	}
	sq := math.Sqrt(dt) * pf.q
	var wsum float64
	for i := range pf.px {
		pf.vx[i] += pf.rng.NormFloat64() * sq
		pf.vy[i] += pf.rng.NormFloat64() * sq
		pf.px[i] += pf.vx[i] * dt
		pf.py[i] += pf.vy[i] * dt
		dx := pf.px[i] - obs.X
		dy := pf.py[i] - obs.Y
		pf.w[i] = math.Exp(-(dx*dx + dy*dy) / (2 * pf.r * pf.r))
		wsum += pf.w[i]
	}
	if wsum <= 0 {
		// All particles far away: reinitialize around the observation.
		for i := range pf.px {
			pf.px[i] = obs.X + pf.rng.NormFloat64()*pf.r
			pf.py[i] = obs.Y + pf.rng.NormFloat64()*pf.r
			pf.w[i] = 1 / float64(len(pf.w))
		}
		wsum = 1
	}
	var mx, my float64
	for i := range pf.w {
		pf.w[i] /= wsum
		mx += pf.w[i] * pf.px[i]
		my += pf.w[i] * pf.py[i]
	}
	pf.resample()
	return geo.Pt(mx, my)
}

// resample performs systematic resampling.
func (pf *ParticleFilter) resample() {
	n := len(pf.w)
	npx := make([]float64, n)
	npy := make([]float64, n)
	nvx := make([]float64, n)
	nvy := make([]float64, n)
	step := 1 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+pf.w[j] < target && j < n-1 {
			cum += pf.w[j]
			j++
		}
		npx[i], npy[i] = pf.px[j], pf.py[j]
		nvx[i], nvy[i] = pf.vx[j], pf.vy[j]
	}
	pf.px, pf.py, pf.vx, pf.vy = npx, npy, nvx, nvy
	for i := range pf.w {
		pf.w[i] = step
	}
}

// ParticleFilterTrajectory runs the particle filter over a trajectory.
func ParticleFilterTrajectory(tr *trajectory.Trajectory, n int, q, r float64, seed int64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	pf := NewParticleFilter(n, tr.Points[0].Pos, r, q, r, seed)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 1e-3
		}
		pos := pf.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}

// HMMGrid is a discrete Bayes (histogram) filter: the region is tiled
// into cells, motion diffuses probability to neighboring cells, and
// observations reweight by a Gaussian likelihood. It is the
// probabilistic-graph-model representative of motion-based LR.
type HMMGrid struct {
	region     geo.Rect
	cell       float64
	nx, ny     int
	probs      []float64
	speedSigma float64 // motion diffusion, m/s
	measSigma  float64
}

// NewHMMGrid returns a uniform-prior grid filter.
func NewHMMGrid(region geo.Rect, cell, speedSigma, measSigma float64) *HMMGrid {
	if cell <= 0 {
		cell = 10
	}
	if speedSigma <= 0 {
		speedSigma = 2
	}
	if measSigma <= 0 {
		measSigma = 5
	}
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	h := &HMMGrid{
		region: region, cell: cell, nx: nx, ny: ny,
		probs:      make([]float64, nx*ny),
		speedSigma: speedSigma, measSigma: measSigma,
	}
	u := 1 / float64(nx*ny)
	for i := range h.probs {
		h.probs[i] = u
	}
	return h
}

func (h *HMMGrid) center(i int) geo.Point {
	cx, cy := i%h.nx, i/h.nx
	return geo.Pt(
		h.region.Min.X+(float64(cx)+0.5)*h.cell,
		h.region.Min.Y+(float64(cy)+0.5)*h.cell,
	)
}

// Step advances the filter dt seconds and folds in an observation,
// returning the posterior-mean position estimate.
func (h *HMMGrid) Step(dt float64, obs geo.Point) geo.Point {
	if dt > 0 {
		h.diffuse(dt)
	}
	// Emission update.
	var sum float64
	for i := range h.probs {
		d2 := h.center(i).DistSq(obs)
		h.probs[i] *= math.Exp(-d2 / (2 * h.measSigma * h.measSigma))
		sum += h.probs[i]
	}
	if sum <= 0 {
		u := 1 / float64(len(h.probs))
		for i := range h.probs {
			h.probs[i] = u
		}
		sum = 1
	}
	var mx, my float64
	for i := range h.probs {
		h.probs[i] /= sum
		c := h.center(i)
		mx += h.probs[i] * c.X
		my += h.probs[i] * c.Y
	}
	return geo.Pt(mx, my)
}

// diffuse spreads probability to neighbors with a Gaussian kernel of
// stddev speedSigma*dt, truncated at 3 sigma.
func (h *HMMGrid) diffuse(dt float64) {
	sigma := h.speedSigma * dt
	radius := int(math.Ceil(3 * sigma / h.cell))
	if radius < 1 {
		radius = 1
	}
	if radius > 6 {
		radius = 6
	}
	// Separable 1D kernel.
	kernel := make([]float64, 2*radius+1)
	var ksum float64
	for k := -radius; k <= radius; k++ {
		d := float64(k) * h.cell
		kernel[k+radius] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[k+radius]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	// Horizontal then vertical pass.
	tmp := make([]float64, len(h.probs))
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				xx := x + k
				if xx < 0 || xx >= h.nx {
					continue
				}
				v += h.probs[y*h.nx+xx] * kernel[k+radius]
			}
			tmp[y*h.nx+x] = v
		}
	}
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				yy := y + k
				if yy < 0 || yy >= h.ny {
					continue
				}
				v += tmp[yy*h.nx+x] * kernel[k+radius]
			}
			h.probs[y*h.nx+x] = v
		}
	}
}

// HMMGridTrajectory runs the grid filter over a trajectory.
func HMMGridTrajectory(tr *trajectory.Trajectory, region geo.Rect, cell, speedSigma, measSigma float64) *trajectory.Trajectory {
	out := &trajectory.Trajectory{ID: tr.ID}
	if tr.Len() == 0 {
		return out
	}
	h := NewHMMGrid(region, cell, speedSigma, measSigma)
	prevT := tr.Points[0].T
	for i, p := range tr.Points {
		dt := p.T - prevT
		if i == 0 {
			dt = 0
		}
		pos := h.Step(dt, p.Pos)
		prevT = p.T
		out.Points = append(out.Points, trajectory.Point{T: p.T, Pos: pos})
	}
	return out
}
