package refine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// TestExpUnderflowCutoff pins the guarantee the HMM emission skip
// relies on: math.Exp returns exactly +0 for every argument at or
// below expZero. If a toolchain ever changed that cutoff, the skip
// would stop being bit-identical, and this test (plus the goldens)
// must fail before the kernels ship.
func TestExpUnderflowCutoff(t *testing.T) {
	for _, x := range []float64{expZero, -746.5, -750, -800, -1000, -1e6, math.Inf(-1)} {
		got := math.Exp(x)
		if got != 0 || math.Signbit(got) {
			t.Fatalf("math.Exp(%v) = %v, want exactly +0", x, got)
		}
	}
	// The margin in d2Zero assumes the true cutoff is above expZero:
	// nearby arguments may legitimately return a denormal, never a
	// negative or NaN.
	if v := math.Exp(-745.0); !(v > 0) {
		t.Fatalf("math.Exp(-745) = %v, want a positive denormal", v)
	}
}

// naiveHMMGrid is the pre-optimization reference implementation: full
// per-cell center computation, full-grid emission and diffusion, no
// active window. The optimized HMMGrid must match it bit for bit.
type naiveHMMGrid struct {
	region     geo.Rect
	cell       float64
	nx, ny     int
	probs      []float64
	speedSigma float64
	measSigma  float64
}

func newNaiveHMMGrid(region geo.Rect, cell, speedSigma, measSigma float64) *naiveHMMGrid {
	if cell <= 0 {
		cell = 10
	}
	if speedSigma <= 0 {
		speedSigma = 2
	}
	if measSigma <= 0 {
		measSigma = 5
	}
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	h := &naiveHMMGrid{
		region: region, cell: cell, nx: nx, ny: ny,
		probs:      make([]float64, nx*ny),
		speedSigma: speedSigma, measSigma: measSigma,
	}
	u := 1 / float64(nx*ny)
	for i := range h.probs {
		h.probs[i] = u
	}
	return h
}

func (h *naiveHMMGrid) center(i int) geo.Point {
	cx, cy := i%h.nx, i/h.nx
	return geo.Pt(
		h.region.Min.X+(float64(cx)+0.5)*h.cell,
		h.region.Min.Y+(float64(cy)+0.5)*h.cell,
	)
}

func (h *naiveHMMGrid) step(dt float64, obs geo.Point) geo.Point {
	if dt > 0 {
		h.diffuse(dt)
	}
	var sum float64
	for i := range h.probs {
		d2 := h.center(i).DistSq(obs)
		h.probs[i] *= math.Exp(-d2 / (2 * h.measSigma * h.measSigma))
		sum += h.probs[i]
	}
	if sum <= 0 {
		u := 1 / float64(len(h.probs))
		for i := range h.probs {
			h.probs[i] = u
		}
		sum = 1
	}
	var mx, my float64
	for i := range h.probs {
		h.probs[i] /= sum
		c := h.center(i)
		mx += h.probs[i] * c.X
		my += h.probs[i] * c.Y
	}
	return geo.Pt(mx, my)
}

func (h *naiveHMMGrid) diffuse(dt float64) {
	sigma := h.speedSigma * dt
	radius := int(math.Ceil(3 * sigma / h.cell))
	if radius < 1 {
		radius = 1
	}
	if radius > 6 {
		radius = 6
	}
	kernel := make([]float64, 2*radius+1)
	var ksum float64
	for k := -radius; k <= radius; k++ {
		d := float64(k) * h.cell
		kernel[k+radius] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[k+radius]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	tmp := make([]float64, len(h.probs))
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				xx := x + k
				if xx < 0 || xx >= h.nx {
					continue
				}
				v += h.probs[y*h.nx+xx] * kernel[k+radius]
			}
			tmp[y*h.nx+x] = v
		}
	}
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			var v float64
			for k := -radius; k <= radius; k++ {
				yy := y + k
				if yy < 0 || yy >= h.ny {
					continue
				}
				v += tmp[yy*h.nx+x] * kernel[k+radius]
			}
			h.probs[y*h.nx+x] = v
		}
	}
}

// TestHMMGridMatchesNaiveReference drives the windowed, unrolled
// HMMGrid and the naive full-grid reference through identical random
// observation sequences across grid shapes the E1 goldens do not
// cover — large diffusion radii, single-row/column grids, observations
// far outside the region — and requires bit-identical posterior state
// and estimates at every step.
func TestHMMGridMatchesNaiveReference(t *testing.T) {
	cases := []struct {
		name                        string
		region                      geo.Rect
		cell, speedSigma, measSigma float64
	}{
		{"e1-shape", geo.Rect{Min: geo.Pt(-50, -50), Max: geo.Pt(650, 650)}, 12, 3, 8},
		{"tight-sigma", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(200, 200)}, 5, 2, 2},
		{"wide-kernel", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(300, 300)}, 4, 40, 15},
		{"single-row", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(500, 8)}, 10, 5, 6},
		{"single-col", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(8, 500)}, 10, 5, 6},
		{"single-cell", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(5, 5)}, 10, 3, 4},
		{"huge-meas", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(400, 400)}, 8, 3, 500},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + ci)))
			opt := NewHMMGrid(tc.region, tc.cell, tc.speedSigma, tc.measSigma)
			ref := newNaiveHMMGrid(tc.region, tc.cell, tc.speedSigma, tc.measSigma)
			// A wandering observer that occasionally teleports far
			// outside the region (forcing total underflow and the
			// uniform-reset path) and occasionally stalls (dt == 0).
			obs := tc.region.Center()
			for step := 0; step < 120; step++ {
				dt := []float64{0, 0.5, 1, 3}[rng.Intn(4)]
				switch rng.Intn(10) {
				case 0:
					obs = geo.Pt(tc.region.Min.X-1e5, tc.region.Min.Y-1e5)
				case 1:
					obs = tc.region.Center()
				default:
					obs = obs.Add(geo.Pt(rng.NormFloat64()*tc.cell, rng.NormFloat64()*tc.cell))
				}
				got := opt.Step(dt, obs)
				want := ref.step(dt, obs)
				if math.Float64bits(got.X) != math.Float64bits(want.X) ||
					math.Float64bits(got.Y) != math.Float64bits(want.Y) {
					t.Fatalf("step %d: estimate diverged: got %v want %v", step, got, want)
				}
				for i := range ref.probs {
					if math.Float64bits(opt.probs[i]) != math.Float64bits(ref.probs[i]) {
						t.Fatalf("step %d: posterior cell %d diverged: got %v want %v",
							step, i, opt.probs[i], ref.probs[i])
					}
				}
			}
		})
	}
}

// TestHMMWindowInvariant checks the active-window contract directly:
// after every step, all probability mass lies inside the window box.
func TestHMMWindowInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(400, 400)}
	h := NewHMMGrid(region, 10, 3, 4)
	obs := region.Center()
	for step := 0; step < 200; step++ {
		obs = obs.Add(geo.Pt(rng.NormFloat64()*8, rng.NormFloat64()*8))
		h.Step(1, obs)
		for y := 0; y < h.ny; y++ {
			for x := 0; x < h.nx; x++ {
				p := h.probs[y*h.nx+x]
				inside := x >= h.x0 && x <= h.x1 && y >= h.y0 && y <= h.y1
				if !inside && p != 0 {
					t.Fatalf("step %d: cell (%d,%d) outside window [%d,%d]x[%d,%d] holds %v",
						step, x, y, h.x0, h.x1, h.y0, h.y1, p)
				}
			}
		}
	}
}

// TestParticleFilterStepAllocFree pins the arena contract: after
// construction, Step (propagate + weight + resample) performs zero
// heap allocations.
func TestParticleFilterStepAllocFree(t *testing.T) {
	pf := NewParticleFilter(400, geo.Pt(10, 10), 5, 1, 5, 42)
	obs := geo.Pt(11, 11)
	allocs := testing.AllocsPerRun(50, func() {
		obs = pf.Step(1, obs)
	})
	if allocs != 0 {
		t.Fatalf("ParticleFilter.Step allocated %.1f times/op, want 0", allocs)
	}
}

// TestParticleFilterPooledArenaMatchesFresh verifies that running a
// trajectory through a pooled (reused, dirty) arena yields the exact
// output of a fresh filter: the run must not depend on stale state.
func TestParticleFilterPooledArenaMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(seed int64) *trajectory.Trajectory {
		pts := make([]trajectory.Point, 120)
		x, y := 50.0, 50.0
		for i := range pts {
			x += rng.NormFloat64() * 3
			y += rng.NormFloat64() * 3
			pts[i] = trajectory.Point{T: float64(i), Pos: geo.Pt(x, y)}
		}
		return trajectory.New(fmt.Sprintf("p%d", seed), pts)
	}
	trs := []*trajectory.Trajectory{mk(1), mk(2), mk(3)}
	// First pass warms the pool; second pass reuses dirty arenas.
	first := make([]*trajectory.Trajectory, len(trs))
	for i, tr := range trs {
		first[i] = ParticleFilterTrajectory(tr, 400, 1, 5, 7+int64(i))
	}
	for i, tr := range trs {
		again := ParticleFilterTrajectory(tr, 400, 1, 5, 7+int64(i))
		if len(again.Points) != len(first[i].Points) {
			t.Fatalf("trajectory %d: length changed on pooled rerun", i)
		}
		for j := range again.Points {
			a, b := again.Points[j], first[i].Points[j]
			if math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
				math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) {
				t.Fatalf("trajectory %d point %d: pooled rerun diverged", i, j)
			}
		}
	}
}
