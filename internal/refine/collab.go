package refine

import (
	"math"

	"sidq/internal/geo"
	"sidq/internal/stats"
)

// JointDenoise removes common-mode (system) noise from simultaneous
// observations of a fleet: obs[t][i] is object i's observed position at
// epoch t, modeled as truth[i](t) + bias[t] + noise. The per-epoch
// shared bias (e.g. a GNSS atmospheric error affecting every receiver
// equally) is estimated and subtracted by alternating estimation of the
// per-object tracks and the per-epoch offsets. Objects are assumed to
// move smoothly relative to the epoch spacing.
//
// It returns the corrected observations and the estimated per-epoch
// biases.
func JointDenoise(obs [][]geo.Point, iterations int) ([][]geo.Point, []geo.Point) {
	nT := len(obs)
	if nT == 0 {
		return nil, nil
	}
	nObj := len(obs[0])
	if iterations <= 0 {
		iterations = 5
	}
	bias := make([]geo.Point, nT)
	corrected := make([][]geo.Point, nT)
	for t := range corrected {
		corrected[t] = append([]geo.Point(nil), obs[t]...)
	}
	for iter := 0; iter < iterations; iter++ {
		// Estimate each object's smooth track from the corrected data:
		// local average over a small temporal window.
		est := make([][]geo.Point, nT)
		for t := 0; t < nT; t++ {
			est[t] = make([]geo.Point, nObj)
			for i := 0; i < nObj; i++ {
				var sx, sy float64
				var n int
				for w := -2; w <= 2; w++ {
					tt := t + w
					if tt < 0 || tt >= nT {
						continue
					}
					sx += corrected[tt][i].X
					sy += corrected[tt][i].Y
					n++
				}
				est[t][i] = geo.Pt(sx/float64(n), sy/float64(n))
			}
		}
		// Re-estimate per-epoch bias as the robust mean residual across
		// objects (median per axis to resist individual outliers).
		for t := 0; t < nT; t++ {
			rx := make([]float64, nObj)
			ry := make([]float64, nObj)
			for i := 0; i < nObj; i++ {
				rx[i] = obs[t][i].X - est[t][i].X
				ry[i] = obs[t][i].Y - est[t][i].Y
			}
			mx, _ := stats.Median(rx)
			my, _ := stats.Median(ry)
			bias[t] = geo.Pt(mx, my)
			for i := 0; i < nObj; i++ {
				corrected[t][i] = obs[t][i].Sub(bias[t])
			}
		}
	}
	return corrected, bias
}

// PairRange is a measured distance between two objects in a batch,
// e.g. from device-to-device ranging.
type PairRange struct {
	I, J int
	Dist float64
}

// IterativeOptimize refines a batch of noisy positions against pairwise
// range measurements by gradient descent on the stress function
// sum((|pi-pj| - dij)^2), anchored softly to the initial estimates.
// This is the iterative-optimization flavor of collaborative LR: random
// errors shrink because the accurate inter-object geometry constrains
// every position simultaneously.
func IterativeOptimize(initial []geo.Point, ranges []PairRange, iterations int, anchorWeight float64) []geo.Point {
	n := len(initial)
	pos := append([]geo.Point(nil), initial...)
	if n == 0 || len(ranges) == 0 {
		return pos
	}
	if iterations <= 0 {
		iterations = 100
	}
	if anchorWeight < 0 {
		anchorWeight = 0
	}
	deg := make([]int, n)
	for _, r := range ranges {
		if r.I >= 0 && r.J >= 0 && r.I < n && r.J < n && r.I != r.J {
			deg[r.I]++
			deg[r.J]++
		}
	}
	lr := 0.2
	for iter := 0; iter < iterations; iter++ {
		grad := make([]geo.Point, n)
		for _, r := range ranges {
			if r.I < 0 || r.J < 0 || r.I >= n || r.J >= n || r.I == r.J {
				continue
			}
			d := pos[r.I].Dist(pos[r.J])
			if d < 1e-9 {
				continue
			}
			// d/dpi (d - dij)^2 = 2 (d - dij) * (pi - pj)/d
			coef := 2 * (d - r.Dist) / d
			diff := pos[r.I].Sub(pos[r.J])
			grad[r.I] = grad[r.I].Add(diff.Scale(coef))
			grad[r.J] = grad[r.J].Sub(diff.Scale(coef))
		}
		for i := 0; i < n; i++ {
			// Soft anchor to the initial estimate keeps the solution in
			// the absolute frame (ranging alone is translation/rotation
			// invariant).
			anchor := pos[i].Sub(initial[i]).Scale(2 * anchorWeight)
			step := grad[i].Add(anchor).Scale(lr / math.Max(1, float64(deg[i])))
			pos[i] = pos[i].Sub(step)
		}
	}
	return pos
}
