// Package refine implements the paper's §2.2.1 Location Refinement
// task family: adjusting initial location estimates to reduce system
// and random errors.
//
// Three method categories are provided, following the tutorial's
// taxonomy:
//
//   - Ensemble LR: single-source weighted-kNN fingerprinting and
//     multi-source fusion (weighted least-squares multilateration and
//     inverse-variance estimate fusion).
//   - Motion-based LR: Kalman filtering/smoothing, particle filtering,
//     and an HMM grid filter over sequential observations.
//   - Collaborative LR: joint denoising of a fleet's shared
//     (common-mode) error and iterative batch optimization against
//     pairwise range constraints.
package refine

import (
	"errors"
	"math"
	"sort"

	"sidq/internal/geo"
	"sidq/internal/stats"
)

// ErrInsufficient is returned when a method has too few observations.
var ErrInsufficient = errors.New("refine: insufficient observations")

// Fingerprint is a labeled radio observation: the signal vector
// measured at a known position during a site survey.
type Fingerprint struct {
	Pos  geo.Point
	RSSI []float64
}

// WkNN is a single-source ensemble locator: it aggregates the k survey
// fingerprints nearest in signal space, weighted by inverse signal
// distance. This is the classic weighted-kNN fingerprinting method.
type WkNN struct {
	fps []Fingerprint
	k   int
}

// NewWkNN returns a WkNN locator over the survey database (k clamps to
// the database size; k <= 0 defaults to 4).
func NewWkNN(fps []Fingerprint, k int) (*WkNN, error) {
	if len(fps) == 0 {
		return nil, ErrInsufficient
	}
	if k <= 0 {
		k = 4
	}
	if k > len(fps) {
		k = len(fps)
	}
	return &WkNN{fps: fps, k: k}, nil
}

// Locate estimates the position producing the observed signal vector.
func (w *WkNN) Locate(rssi []float64) (geo.Point, error) {
	type scored struct {
		pos geo.Point
		d   float64
	}
	cands := make([]scored, 0, len(w.fps))
	for _, fp := range w.fps {
		if len(fp.RSSI) != len(rssi) {
			return geo.Point{}, errors.New("refine: signal dimension mismatch")
		}
		var d2 float64
		for i := range rssi {
			diff := rssi[i] - fp.RSSI[i]
			d2 += diff * diff
		}
		cands = append(cands, scored{fp.Pos, math.Sqrt(d2)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	var wx, wy, wsum float64
	for _, c := range cands[:w.k] {
		wt := 1 / (c.d + 1e-6)
		wx += wt * c.pos.X
		wy += wt * c.pos.Y
		wsum += wt
	}
	return geo.Pt(wx/wsum, wy/wsum), nil
}

// RangeObs is one anchor range measurement for multilateration.
type RangeObs struct {
	Anchor geo.Point
	Range  float64
}

// Multilaterate estimates a position from >= 3 anchor ranges using
// linearized weighted least squares (weights 1/range^2, so nearer
// anchors count more). This is the multi-source ensemble method: each
// anchor is an independent measurement process.
func Multilaterate(obs []RangeObs) (geo.Point, error) {
	n := len(obs)
	if n < 3 {
		return geo.Point{}, ErrInsufficient
	}
	// Linearize against the last anchor.
	ref := obs[n-1]
	refC := ref.Anchor.X*ref.Anchor.X + ref.Anchor.Y*ref.Anchor.Y - ref.Range*ref.Range
	a := stats.NewMatrix(n-1, 2)
	b := stats.NewMatrix(n-1, 1)
	wgt := stats.NewMatrix(n-1, n-1)
	for i := 0; i < n-1; i++ {
		o := obs[i]
		a.Set(i, 0, 2*(o.Anchor.X-ref.Anchor.X))
		a.Set(i, 1, 2*(o.Anchor.Y-ref.Anchor.Y))
		c := o.Anchor.X*o.Anchor.X + o.Anchor.Y*o.Anchor.Y - o.Range*o.Range
		b.Set(i, 0, c-refC)
		w := 1 / math.Max(o.Range*o.Range, 1e-6)
		wgt.Set(i, i, w)
	}
	at := a.Transpose()
	atw := at.Mul(wgt)
	lhs := atw.Mul(a)
	inv, err := lhs.Inverse()
	if err != nil {
		return geo.Point{}, err
	}
	sol := inv.Mul(atw.Mul(b))
	return geo.Pt(sol.At(0, 0), sol.At(1, 0)), nil
}

// Estimate is one independent location estimate with its error
// variance, as produced by a single positioning process.
type Estimate struct {
	Pos geo.Point
	Var float64 // isotropic error variance (m^2)
}

// Fuse combines independent estimates by inverse-variance weighting —
// the optimal linear fusion for unbiased Gaussian estimates. It returns
// the fused position and its variance.
func Fuse(ests []Estimate) (Estimate, error) {
	if len(ests) == 0 {
		return Estimate{}, ErrInsufficient
	}
	var wx, wy, wsum float64
	for _, e := range ests {
		v := e.Var
		if v <= 0 {
			v = 1e-9
		}
		w := 1 / v
		wx += w * e.Pos.X
		wy += w * e.Pos.Y
		wsum += w
	}
	return Estimate{Pos: geo.Pt(wx/wsum, wy/wsum), Var: 1 / wsum}, nil
}
