package refine

import (
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func TestWkNNLocatesOnGrid(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	env := simulate.NewRadioEnv(bounds, 9, 2.5, 1.5, 1)
	raw := env.FingerprintMap(bounds, 10, 5, 2)
	fps := make([]Fingerprint, len(raw))
	for i, f := range raw {
		fps[i] = Fingerprint{Pos: f.Pos, RSSI: f.RSSI}
	}
	loc, err := NewWkNN(fps, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var errSum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		truth := geo.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		obs := env.Observe(truth, rng)
		est, err := loc.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		errSum += est.Dist(truth)
	}
	if mean := errSum / trials; mean > 12 {
		t.Fatalf("WkNN mean error = %v m (survey spacing 10 m)", mean)
	}
}

func TestWkNNErrors(t *testing.T) {
	if _, err := NewWkNN(nil, 3); err != ErrInsufficient {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	loc, _ := NewWkNN([]Fingerprint{{Pos: geo.Pt(0, 0), RSSI: []float64{-50}}}, 10)
	if _, err := loc.Locate([]float64{-50, -60}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	// k > len clamps.
	if est, err := loc.Locate([]float64{-55}); err != nil || est != geo.Pt(0, 0) {
		t.Fatalf("single fingerprint locate: %v %v", est, err)
	}
}

func TestMultilaterateExact(t *testing.T) {
	truth := geo.Pt(30, 40)
	anchors := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}}
	var obs []RangeObs
	for _, a := range anchors {
		obs = append(obs, RangeObs{Anchor: a, Range: a.Dist(truth)})
	}
	est, err := Multilaterate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if est.Dist(truth) > 1e-6 {
		t.Fatalf("exact multilateration off by %v", est.Dist(truth))
	}
}

func TestMultilaterateNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	env := simulate.NewRadioEnv(bounds, 6, 2.5, 0, 5)
	var errSum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		truth := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ranges := env.ObserveRanges(truth, 2, rng)
		obs := make([]RangeObs, len(ranges))
		for j, r := range ranges {
			obs[j] = RangeObs{Anchor: r.Anchor, Range: r.Range}
		}
		est, err := Multilaterate(obs)
		if err != nil {
			t.Fatal(err)
		}
		errSum += est.Dist(truth)
	}
	if mean := errSum / trials; mean > 6 {
		t.Fatalf("noisy multilateration mean error = %v", mean)
	}
	if _, err := Multilaterate(nil); err != ErrInsufficient {
		t.Fatal("want ErrInsufficient")
	}
	// Collinear anchors are singular.
	col := []RangeObs{
		{Anchor: geo.Pt(0, 0), Range: 10},
		{Anchor: geo.Pt(10, 0), Range: 10},
		{Anchor: geo.Pt(20, 0), Range: 10},
	}
	if _, err := Multilaterate(col); err == nil {
		t.Fatal("collinear anchors should error")
	}
}

func TestFuseWeightsByVariance(t *testing.T) {
	a := Estimate{Pos: geo.Pt(0, 0), Var: 1}
	b := Estimate{Pos: geo.Pt(10, 0), Var: 9}
	fused, err := Fuse([]Estimate{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mean: (0*1 + 10*(1/9))/(1+1/9) = 1.0.
	if math.Abs(fused.Pos.X-1) > 1e-9 {
		t.Fatalf("fused x = %v", fused.Pos.X)
	}
	if fused.Var >= a.Var {
		t.Fatal("fusion should shrink variance")
	}
	if _, err := Fuse(nil); err != ErrInsufficient {
		t.Fatal("want ErrInsufficient")
	}
	// Zero variance degenerates to near-total trust.
	f2, _ := Fuse([]Estimate{{Pos: geo.Pt(5, 5), Var: 0}, {Pos: geo.Pt(100, 100), Var: 10}})
	if f2.Pos.Dist(geo.Pt(5, 5)) > 0.01 {
		t.Fatalf("zero-variance estimate should dominate: %v", f2.Pos)
	}
}

func noisyLine(n int, sigma float64, seed int64) (truth, noisy *trajectory.Trajectory) {
	pts := make([]trajectory.Point, n)
	for i := range pts {
		pts[i] = trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*3, float64(i)*1.5)}
	}
	truth = trajectory.New("t", pts)
	noisy = simulate.AddGaussianNoise(truth, sigma, seed)
	return truth, noisy
}

func TestKalmanFilterReducesError(t *testing.T) {
	truth, noisy := noisyLine(300, 8, 5)
	filtered := KalmanFilterTrajectory(noisy, 0.5, 8)
	rawErr := trajectory.RMSEAgainst(noisy, truth)
	filtErr := trajectory.RMSEAgainst(filtered, truth)
	if filtErr >= rawErr*0.8 {
		t.Fatalf("kalman filter: raw %v -> filtered %v", rawErr, filtErr)
	}
}

func TestKalmanSmootherBeatsFilter(t *testing.T) {
	truth, noisy := noisyLine(300, 8, 6)
	filtered := KalmanFilterTrajectory(noisy, 0.5, 8)
	smoothed := KalmanSmoothTrajectory(noisy, 0.5, 8)
	filtErr := trajectory.RMSEAgainst(filtered, truth)
	smoothErr := trajectory.RMSEAgainst(smoothed, truth)
	if smoothErr >= filtErr {
		t.Fatalf("RTS should beat causal filter: filter %v smoother %v", filtErr, smoothErr)
	}
}

func TestKalmanVelocityEstimate(t *testing.T) {
	truth, noisy := noisyLine(200, 2, 7)
	_ = truth
	// A small process noise keeps the steady-state velocity estimate
	// tight enough to verify against the true (3, 1.5) m/s.
	k := NewKalman(noisy.Points[0].Pos, 0.05, 2)
	for i := 1; i < noisy.Len(); i++ {
		k.Step(1, noisy.Points[i].Pos)
	}
	v := k.Velocity()
	if math.Abs(v.X-3) > 0.5 || math.Abs(v.Y-1.5) > 0.5 {
		t.Fatalf("velocity = %v, want (3, 1.5)", v)
	}
}

func TestKalmanInnovationDetectsJumps(t *testing.T) {
	_, noisy := noisyLine(100, 2, 8)
	k := NewKalman(noisy.Points[0].Pos, 0.5, 2)
	for i := 1; i < 50; i++ {
		k.Step(1, noisy.Points[i].Pos)
	}
	normal := k.Innovation(1, noisy.Points[50].Pos)
	jump := k.Innovation(1, noisy.Points[50].Pos.Add(geo.Pt(100, 0)))
	if jump < normal+50 {
		t.Fatalf("innovation: normal %v jump %v", normal, jump)
	}
}

func TestKalmanEmptyAndDegenerate(t *testing.T) {
	if got := KalmanFilterTrajectory(&trajectory.Trajectory{}, 1, 1); got.Len() != 0 {
		t.Fatal("empty filter")
	}
	if got := KalmanSmoothTrajectory(&trajectory.Trajectory{}, 1, 1); got.Len() != 0 {
		t.Fatal("empty smoother")
	}
	one := trajectory.New("x", []trajectory.Point{{T: 0, Pos: geo.Pt(1, 2)}})
	if got := KalmanSmoothTrajectory(one, 1, 1); got.Len() != 1 {
		t.Fatal("single-point smoother")
	}
}

func TestParticleFilterReducesError(t *testing.T) {
	truth, noisy := noisyLine(300, 8, 9)
	filtered := ParticleFilterTrajectory(noisy, 500, 1, 8, 10)
	rawErr := trajectory.RMSEAgainst(noisy, truth)
	filtErr := trajectory.RMSEAgainst(filtered, truth)
	if filtErr >= rawErr {
		t.Fatalf("particle filter: raw %v -> filtered %v", rawErr, filtErr)
	}
}

func TestParticleFilterRecoversFromDivergence(t *testing.T) {
	pf := NewParticleFilter(100, geo.Pt(0, 0), 1, 1, 2, 11)
	// Observation very far from every particle forces reinitialization.
	est := pf.Step(1, geo.Pt(1e6, 1e6))
	if est.Dist(geo.Pt(1e6, 1e6)) > 1e5 {
		t.Fatalf("did not recover: %v", est)
	}
}

func TestHMMGridReducesError(t *testing.T) {
	truth, noisy := noisyLine(150, 8, 12)
	region := geo.Rect{Min: geo.Pt(-50, -50), Max: geo.Pt(500, 300)}
	filtered := HMMGridTrajectory(noisy, region, 10, 4, 8)
	rawErr := trajectory.RMSEAgainst(noisy, truth)
	filtErr := trajectory.RMSEAgainst(filtered, truth)
	if filtErr >= rawErr {
		t.Fatalf("hmm grid: raw %v -> filtered %v", rawErr, filtErr)
	}
}

func TestJointDenoiseRemovesCommonMode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const nObj, nT = 8, 60
	truth := make([][]geo.Point, nT)
	obs := make([][]geo.Point, nT)
	biases := make([]geo.Point, nT)
	starts := make([]geo.Point, nObj)
	vels := make([]geo.Point, nObj)
	for i := range starts {
		starts[i] = geo.Pt(rng.Float64()*500, rng.Float64()*500)
		vels[i] = geo.Pt(rng.NormFloat64(), rng.NormFloat64())
	}
	for t := 0; t < nT; t++ {
		biases[t] = geo.Pt(rng.NormFloat64()*15, rng.NormFloat64()*15)
		truth[t] = make([]geo.Point, nObj)
		obs[t] = make([]geo.Point, nObj)
		for i := 0; i < nObj; i++ {
			truth[t][i] = starts[i].Add(vels[i].Scale(float64(t)))
			obs[t][i] = truth[t][i].Add(biases[t]).Add(geo.Pt(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	corrected, estBias := JointDenoise(obs, 8)
	var rawErr, corErr float64
	for t := 0; t < nT; t++ {
		for i := 0; i < nObj; i++ {
			rawErr += obs[t][i].Dist(truth[t][i])
			corErr += corrected[t][i].Dist(truth[t][i])
		}
	}
	if corErr >= rawErr*0.6 {
		t.Fatalf("joint denoise: raw %v -> corrected %v", rawErr, corErr)
	}
	if len(estBias) != nT {
		t.Fatal("bias length")
	}
	if got, _ := JointDenoise(nil, 3); got != nil {
		t.Fatal("empty input")
	}
}

func TestIterativeOptimizeShrinksRandomError(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n = 15
	truth := make([]geo.Point, n)
	noisy := make([]geo.Point, n)
	for i := range truth {
		truth[i] = geo.Pt(rng.Float64()*200, rng.Float64()*200)
		noisy[i] = truth[i].Add(geo.Pt(rng.NormFloat64()*8, rng.NormFloat64()*8))
	}
	var ranges []PairRange
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ranges = append(ranges, PairRange{I: i, J: j, Dist: truth[i].Dist(truth[j])})
		}
	}
	refined := IterativeOptimize(noisy, ranges, 300, 0.01)
	var rawErr, refErr float64
	for i := range truth {
		rawErr += noisy[i].Dist(truth[i])
		refErr += refined[i].Dist(truth[i])
	}
	if refErr >= rawErr*0.7 {
		t.Fatalf("iterative optimize: raw %v -> refined %v", rawErr, refErr)
	}
	// Degenerate inputs are safe.
	if got := IterativeOptimize(nil, ranges, 10, 0.1); len(got) != 0 {
		t.Fatal("empty positions")
	}
	if got := IterativeOptimize(noisy, nil, 10, 0.1); len(got) != n {
		t.Fatal("no ranges should return input")
	}
	bad := []PairRange{{I: -1, J: 99, Dist: 5}, {I: 2, J: 2, Dist: 0}}
	IterativeOptimize(noisy, bad, 10, 0.1) // must not panic
}
