package server

// Retention subsystem tests: the churn scenario behind ISSUE 10's
// acceptance criteria (disk bounded under -retain while history over
// the retained window stays byte-identical to an un-truncated run),
// plus the background loop's lifecycle under live traffic.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sidq/internal/faults"
	"sidq/internal/store"
)

// retentionConfig is a durable config with small segments so a short
// test churns through many of them.
func retentionConfig(fs store.FS, retain, every time.Duration, snapEvery int) Config {
	return Config{
		Logger: DiscardLogger(),
		Durability: DurabilityConfig{
			Dir: "wal", Fsync: store.FsyncAlways, SnapshotEvery: snapEvery,
			SegmentBytes: 512, FS: fs, Retain: retain, RetainEvery: every,
		},
	}
}

func historyGet(t *testing.T, srv *httptest.Server, params string) (string, http.Header, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/history/range?" + params)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body), resp.Header, resp.StatusCode
}

// TestDurableRetentionBoundsDiskAndPreservesWindow is the churn
// scenario: one long-lived session ingests steadily while deterministic
// retention passes (driven through RunRetentionOnce with an explicit
// clock; the background ticker is parked at an hour) age out the old
// segments. A control service ingests the identical feed with no
// retention. The retained run must hold a fraction of the control's
// disk, have compacted the lagging session and trimmed the history
// index, and still answer a query over the retained window
// byte-identically to the control — in both ndjson and CSV.
func TestDurableRetentionBoundsDiskAndPreservesWindow(t *testing.T) {
	const chunks = 60
	row := func(i int) string { return chunkRow("probe", float64(i), float64(i*10), 0) }

	ctrl, err := OpenService(retentionConfig(faults.NewCrashFS(), 0, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrlSrv := httptest.NewServer(ctrl)
	defer ctrlSrv.Close()
	ctrlID := openStream(t, ctrlSrv, "lateness=0&lanes=1")

	// SnapshotEvery 1000: the session never checkpoints on its own, so
	// every floor advance must come from retention forcing a compaction.
	fs := faults.NewCrashFS()
	svc, err := OpenService(retentionConfig(fs, 10*time.Second, time.Hour, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()
	id := openStream(t, srv, "lateness=0&lanes=1")

	base := time.Unix(1_000_000, 0)
	var total RetentionStats
	for i := 1; i <= chunks; i++ {
		for _, target := range []struct {
			srv *httptest.Server
			id  string
		}{{ctrlSrv, ctrlID}, {srv, id}} {
			if _, resp := ingestChunkSeq(t, target.srv, target.id, uint64(i), row(i)); resp.StatusCode != http.StatusOK {
				t.Fatalf("chunk %d status %d", i, resp.StatusCode)
			}
		}
		if i%5 == 0 { // one ingest per simulated second, a pass every 5
			st := svc.RunRetentionOnce(base.Add(time.Duration(i) * time.Second))
			total.Compacted += st.Compacted
			total.SegmentsRemoved += st.SegmentsRemoved
			total.HistoryTrimmed += st.HistoryTrimmed
			total.RetainedSeq = st.RetainedSeq
		}
	}
	if total.SegmentsRemoved == 0 {
		t.Fatal("retention never removed a segment")
	}
	if total.Compacted == 0 {
		t.Fatal("the lagging session was never compacted: its open record pinned every segment")
	}
	if total.HistoryTrimmed == 0 {
		t.Fatal("history index never trimmed below the retained floor")
	}
	if total.RetainedSeq <= 1 {
		t.Fatalf("retained seq %d: the WAL still starts at the beginning", total.RetainedSeq)
	}
	if v := svc.Metrics().Counter(mStoreCompactions).Value(); v < 1 {
		t.Fatalf("compactions counter %v, want >= 1", v)
	}
	if v := svc.Metrics().Counter(mHistoryTrimmed).Value(); v < 1 {
		t.Fatalf("history-trimmed counter %v, want >= 1", v)
	}

	diskBytes := func(s *Service) (b int64) {
		for _, seg := range s.streams.wal.Segments() {
			b += seg.Bytes
		}
		return b
	}
	if got, full := diskBytes(svc), diskBytes(ctrl); got*2 >= full {
		t.Fatalf("disk not bounded: retained run holds %d bytes, control %d", got, full)
	}

	// Retain is 10 simulated seconds and the clock ended at +60s, so
	// everything from t=50.5 on is comfortably inside the retained
	// window (truncation is segment-granular: the cut only ever keeps
	// MORE than the window). The retained run must answer it exactly
	// like the never-truncated control.
	for _, format := range []string{"ndjson", "csv"} {
		params := "mint=50.5&format=" + format
		want, ctrlHdr, code := historyGet(t, ctrlSrv, params)
		if code != http.StatusOK {
			t.Fatalf("%s: control status %d", format, code)
		}
		got, hdr, code := historyGet(t, srv, params)
		if code != http.StatusOK {
			t.Fatalf("%s: retained status %d", format, code)
		}
		if got != want {
			t.Fatalf("%s: retained window differs from un-truncated run:\nwant:\n%s\ngot:\n%s", format, want, got)
		}
		if !strings.Contains(got, "600") { // x of the t=60 point
			t.Fatalf("%s: latest point missing:\n%s", format, got)
		}
		if hdr.Get("X-Sidq-Chunks") != ctrlHdr.Get("X-Sidq-Chunks") {
			t.Fatalf("%s: chunk counts diverge: %s vs %s", format, hdr.Get("X-Sidq-Chunks"), ctrlHdr.Get("X-Sidq-Chunks"))
		}
		minSeq, err := strconv.ParseUint(hdr.Get("X-Sidq-History-Min-Seq"), 10, 64)
		if err != nil || minSeq <= 1 {
			t.Fatalf("%s: retained min-seq header %q, want > 1", format, hdr.Get("X-Sidq-History-Min-Seq"))
		}
		if ctrlHdr.Get("X-Sidq-History-Min-Seq") != "1" {
			t.Fatalf("%s: control min-seq header %q, want 1", format, ctrlHdr.Get("X-Sidq-History-Min-Seq"))
		}
	}

	// A full-window query on the retained run still answers 200 — aged
	// data is absent, not an error — and the min-seq header is how a
	// client tells the difference.
	if _, _, code := historyGet(t, srv, ""); code != http.StatusOK {
		t.Fatalf("full-window query on retained run: status %d", code)
	}
}

// TestDurableRetentionBackgroundLoop runs retention the way sidqserve
// does — on its own ticker against the real clock — under concurrent
// history readers. The WAL floor must advance on its own, no reader
// may ever see a 5xx while segments vanish underneath it, and Close
// must tear the loop down without tripping the race detector.
func TestDurableRetentionBackgroundLoop(t *testing.T) {
	fs := faults.NewCrashFS()
	svc, err := OpenService(retentionConfig(fs, 50*time.Millisecond, 10*time.Millisecond, 4))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=0&lanes=1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var readerErr string
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/v1/history/range")
				if err != nil {
					return // listener closing at test end
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					mu.Lock()
					readerErr = "history reader saw " + resp.Status + " during retention"
					mu.Unlock()
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(10 * time.Second)
	for i := 1; ; i++ {
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i), chunkRow("probe", float64(i), float64(i*10), 0)); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
		if svc.streams.wal.FirstSeq() > 1 {
			break // the background loop truncated on its own
		}
		if time.Now().After(deadline) {
			t.Fatal("background retention never advanced the WAL floor")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if readerErr != "" {
		t.Fatal(readerErr)
	}
	srv.Close()
	svc.Close() // must stop the loop; -race catches a use-after-close
}
