package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// BenchmarkStreamIngest measures the streaming ingest path end to end:
// one session per op, chunked CSV posts through the real handler stack
// (body decode, lane fan-in, watermarking, incremental cleaning), then
// a full drain. This is the row that guards the server-side cost of a
// chunk — the columnar CSV decode and the columnar result drain both
// land here.
func BenchmarkStreamIngest(b *testing.B) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Pre-render in-order chunks: 3 sources x 240 points split into 12
	// chunks, clean data so the planner stays out of the way and the
	// measurement isolates ingest mechanics.
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	var trs []*trajectory.Trajectory
	for i := 0; i < 3; i++ {
		trs = append(trs, simulate.RandomWalk(fmt.Sprintf("veh-%d", i), region, 240, 2, 1, int64(i+1)))
	}
	const chunks = 12
	chunkCSV := make([]string, chunks)
	for c := 0; c < chunks; c++ {
		var sb strings.Builder
		sb.WriteString("id,t,x,y\n")
		for _, tr := range trs {
			per := tr.Len() / chunks
			for _, p := range tr.Points[c*per : (c+1)*per] {
				fmt.Fprintf(&sb, "%s,%g,%g,%g\n", tr.ID, p.T, p.Pos.X, p.Pos.Y)
			}
		}
		chunkCSV[c] = sb.String()
	}

	post := func(url, body string) (*http.Response, error) {
		return http.Post(url, "text/csv", strings.NewReader(body))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := post(srv.URL+"/v1/stream/open", "")
		if err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("open: %v %v", err, resp.StatusCode)
		}
		var out struct {
			Session string `json:"session"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for _, chunk := range chunkCSV {
			resp, err := post(srv.URL+"/v1/stream/ingest?session="+out.Session, chunk)
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("ingest: %v %v", err, resp.StatusCode)
			}
			drainBody(resp)
		}
		resp, err = http.Get(srv.URL + "/v1/stream/" + out.Session + "/results?flush=1&format=csv")
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("drain: %v %v", err, resp.StatusCode)
		}
		drainBody(resp)
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/stream/"+out.Session, nil)
		resp, err = http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("close: %v %v", err, resp.StatusCode)
		}
		drainBody(resp)
	}
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
