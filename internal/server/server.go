// Package server exposes the sidq quality middleware over HTTP — the
// paper's "quality management middleware for SID" open issue as a
// runnable service. Endpoints accept the same CSV formats as the CLI
// tools and return JSON assessments or cleaned CSV:
//
//	POST /v1/assess           trajectory CSV -> JSON quality assessment
//	POST /v1/clean            trajectory CSV -> cleaned CSV (plan in headers)
//	POST /v1/readings/assess  readings CSV   -> JSON quality assessment
//	POST /v1/readings/clean   readings CSV   -> cleaned CSV
//	GET  /v1/taxonomy         Figure-2 coverage matrix (text)
//	GET  /v1/healthz          liveness probe
//
// Query parameters on the trajectory endpoints: maxspeed (m/s,
// default 20) and interval (s, default 1) feed the assessment context;
// the planner uses the default quality targets.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"sidq/internal/core"
	"sidq/internal/quality"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// New returns the middleware service handler.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", handleHealth)
	mux.HandleFunc("/v1/taxonomy", handleTaxonomy)
	mux.HandleFunc("/v1/assess", handleAssess)
	mux.HandleFunc("/v1/clean", handleClean)
	mux.HandleFunc("/v1/readings/assess", handleReadingsAssess)
	mux.HandleFunc("/v1/readings/clean", handleReadingsClean)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, core.RenderFigure2())
}

// trajectoryDataset parses the request body and assessment parameters.
func trajectoryDataset(r *http.Request) (*core.Dataset, error) {
	trs, err := trajectory.ReadCSV(r.Body)
	if err != nil {
		return nil, fmt.Errorf("parse trajectory csv: %w", err)
	}
	ds := &core.Dataset{
		Trajectories:     trs,
		MaxSpeed:         queryFloat(r, "maxspeed", 20),
		ExpectedInterval: queryFloat(r, "interval", 1),
	}
	return ds, nil
}

func queryFloat(r *http.Request, key string, def float64) float64 {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// assessmentJSON renders an Assessment as a stable JSON object.
func assessmentJSON(a quality.Assessment) map[string]float64 {
	out := map[string]float64{}
	for _, d := range quality.AllDimensions() {
		if v, ok := a[d]; ok {
			out[d.String()] = v
		}
	}
	return out
}

func handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ds, err := trajectoryDataset(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]interface{}{
		"trajectories": len(ds.Trajectories),
		"assessment":   assessmentJSON(ds.Assess()),
	})
}

func handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ds, err := trajectoryDataset(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cleaned, stages, _ := core.PlanAndRunIterative(ds, core.DefaultTargets(), 3)
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name()
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Sidq-Stages", strings.Join(names, ","))
	if err := trajectory.WriteCSV(w, cleaned.Trajectories); err != nil {
		// Headers are gone; nothing more we can do but log via the error
		// path of the connection.
		return
	}
}

func handleReadingsAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rs, err := stid.ReadCSV(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse readings csv: %v", err), http.StatusBadRequest)
		return
	}
	ds := &core.Dataset{Readings: rs}
	_, rd := ds.AssessParts()
	writeJSON(w, map[string]interface{}{
		"readings":   len(rs),
		"assessment": assessmentJSON(rd),
	})
}

func handleReadingsClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rs, err := stid.ReadCSV(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse readings csv: %v", err), http.StatusBadRequest)
		return
	}
	ds := &core.Dataset{Readings: rs}
	p := core.NewPipeline(core.DeduplicateStage{CellSize: 1, TimeBucket: 1}, core.ThematicRepairStage{})
	cleaned, _ := p.Run(ds)
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Sidq-Stages", "deduplicate,thematic-repair")
	_ = stid.WriteCSV(w, cleaned.Readings)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
