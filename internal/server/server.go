// Package server exposes the sidq quality middleware over HTTP — the
// paper's "quality management middleware for SID" open issue as a
// runnable service. Endpoints accept the same CSV formats as the CLI
// tools and return JSON assessments or cleaned CSV:
//
//	POST /v1/assess           trajectory CSV -> JSON quality assessment
//	POST /v1/clean            trajectory CSV -> cleaned CSV (plan in headers)
//	POST /v1/readings/assess  readings CSV   -> JSON quality assessment
//	POST /v1/readings/clean   readings CSV   -> cleaned CSV
//	GET  /v1/taxonomy         Figure-2 coverage matrix (text)
//	GET  /v1/healthz          liveness probe
//	GET  /v1/readyz           readiness probe (503 while draining)
//	GET  /v1/metrics          Prometheus text exposition
//
// Streaming ingestion (see sessions.go for the session model):
//
//	POST   /v1/stream/open          create a session -> JSON {session: id}
//	POST   /v1/stream/ingest?session=ID   chunked point CSV -> JSON ack
//	GET    /v1/stream/{id}/results  drain cleaned points (NDJSON or CSV)
//	DELETE /v1/stream/{id}          close the session -> JSON summary
//
// Query parameters on the trajectory endpoints: maxspeed (m/s,
// default 20) and interval (s, default 1) feed the assessment context;
// the planner uses the default quality targets.
//
// Every request passes through the hardening middleware stack:
// panic recovery, X-Request-ID assignment + access logging, a body
// cap (MaxBodyBytes), an in-flight concurrency limiter shedding load
// with 503, and a per-request timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sidq/internal/core"
	"sidq/internal/obs"
	"sidq/internal/quality"
	"sidq/internal/stid"
	"sidq/internal/store"
	"sidq/internal/trajectory"
)

// Config tunes the service's resilience limits. Zero fields take the
// defaults noted on each field.
type Config struct {
	MaxBodyBytes   int64            // request body cap (default 32 MiB)
	MaxInFlight    int              // concurrent requests before 503 (default 64)
	RequestTimeout time.Duration    // per-request deadline (default 30s; <0 disables)
	Logger         *log.Logger      // access/panic log (default log.Default())
	Metrics        *obs.Registry    // metrics registry (default: a fresh registry)
	Trace          obs.TraceSink    // optional sink for session lifecycle trace events
	Stream         StreamConfig     // streaming ingestion limits (see sessions.go)
	Durability     DurabilityConfig // durable WAL settings; honored by OpenService (see durability.go)
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	c.Stream = c.Stream.withDefaults()
	c.Durability = c.Durability.withDefaults()
	return c
}

// Service is the hardened middleware service: the HTTP handler plus
// the readiness switch used for graceful shutdown.
type Service struct {
	cfg      Config
	handler  http.Handler
	ready    atomic.Bool
	draining atomic.Bool
	inflight chan struct{}
	reqSeq   atomic.Uint64
	metrics  *obs.Registry
	streams  *sessionRegistry
}

// NewService builds the service with the given limits. It starts
// ready.
func NewService(cfg Config) *Service {
	s := &Service{cfg: cfg.withDefaults()}
	s.inflight = make(chan struct{}, s.cfg.MaxInFlight)
	s.ready.Store(true)
	s.metrics = s.cfg.Metrics
	s.initMetrics()
	s.streams = newSessionRegistry(s)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", handleHealth)
	mux.HandleFunc("/v1/readyz", s.handleReady)
	mux.HandleFunc("/v1/taxonomy", handleTaxonomy)
	mux.HandleFunc("/v1/assess", handleAssess)
	mux.HandleFunc("/v1/clean", s.handleClean)
	mux.HandleFunc("/v1/readings/assess", handleReadingsAssess)
	mux.HandleFunc("/v1/readings/clean", s.handleReadingsClean)
	mux.HandleFunc("/v1/stream/", s.handleStream)
	mux.HandleFunc("/v1/history/range", s.handleHistoryRange)

	// Innermost first: limits apply around the handlers; recovery and
	// request IDs wrap everything so even limiter rejections are
	// logged and tagged. Probes (and the metrics scrape) bypass the
	// limiter and timeout so a saturated service still answers its
	// orchestrator.
	limited := s.withTimeout(s.withConcurrencyLimit(s.withBodyLimit(mux)))
	probes := http.NewServeMux()
	probes.HandleFunc("/v1/healthz", handleHealth)
	probes.HandleFunc("/v1/readyz", s.handleReady)
	probes.HandleFunc("/v1/metrics", s.handleMetrics)
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/healthz", "/v1/readyz", "/v1/metrics":
			probes.ServeHTTP(w, r)
		default:
			// A draining service answers new work with 503 while the
			// listener stays open, so clients see an orderly rejection
			// (and retry elsewhere) instead of a connection reset. The
			// check sits outside the limiter: drained requests never take
			// an in-flight slot, so AwaitIdle only waits for work that was
			// accepted before the drain began.
			if s.draining.Load() {
				s.metrics.Counter(mDrainRejected).Inc()
				w.Header().Set("Connection", "close")
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			limited.ServeHTTP(w, r)
		}
	})
	s.handler = s.withRecovery(s.withRequestID(root))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// SetReady flips the readiness probe; SetReady(false) makes /v1/readyz
// return 503 so load balancers drain the instance ahead of shutdown.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// StartDrain puts the service into drain mode ahead of shutdown:
// /v1/readyz flips to 503 and every new work request is rejected with
// 503 "draining" while requests already in flight run to completion.
// Probes and the metrics scrape keep answering. Use AwaitIdle to wait
// for the in-flight work, then shut the http.Server down — in that
// order, in-flight acks complete and late clients see an orderly 503
// instead of a connection reset.
func (s *Service) StartDrain() {
	s.ready.Store(false)
	s.draining.Store(true)
}

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// AwaitIdle blocks until no requests hold an in-flight slot or ctx is
// done, reporting whether the service went idle. Callers drain with
// StartDrain first so new work cannot keep the count forever non-zero.
func (s *Service) AwaitIdle(ctx context.Context) bool {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if len(s.inflight) == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return len(s.inflight) == 0
		case <-t.C:
		}
	}
}

// Close releases the service's background resources: the streaming
// session janitor stops, and with durability enabled every live
// session is checkpointed into the WAL before the log is closed, so a
// restart resumes from the snapshots. The handler stays functional
// afterwards for in-memory operation, but durable ingests fail.
func (s *Service) Close() {
	if err := s.streams.Close(); err != nil {
		s.logf("close: %v", err)
	}
}

// OpenService builds the service and, when cfg.Durability.Dir is set,
// opens the durable trajectory store: the WAL is recovered (torn tail
// truncated, sessions rebuilt from snapshots and chunk replay, history
// index repopulated) before the service accepts traffic. NewService
// remains the memory-only constructor.
func OpenService(cfg Config) (*Service, error) {
	s := NewService(cfg)
	d := s.cfg.Durability
	if d.Dir == "" {
		return s, nil
	}
	l, info, err := store.Open(d.Dir, store.Options{
		FS:           d.FS,
		Fsync:        d.Fsync,
		SegmentBytes: d.SegmentBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("open durable store %s: %w", d.Dir, err)
	}
	if info.TornBytes > 0 || info.AdoptedSegments > 0 || info.DiscardedSegments > 0 || info.StaleFiles > 0 {
		s.logf("wal %s: recovery truncated %d torn bytes, adopted %d / discarded %d segments, swept %d stale files",
			d.Dir, info.TornBytes, info.AdoptedSegments, info.DiscardedSegments, info.StaleFiles)
	}
	if err := s.streams.recoverFrom(l); err != nil {
		l.Close()
		return nil, err
	}
	s.streams.startRetention()
	return s, nil
}

// New returns the middleware service handler with default limits
// (kept for existing callers; NewService exposes the limits and the
// readiness switch).
func New() http.Handler {
	return NewService(Config{Logger: DiscardLogger()})
}

// requestIDKey carries the request ID through the context.
type requestIDKey struct{}

func withRequestIDContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestID returns the request's assigned ID ("" outside the
// middleware stack).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, core.RenderFigure2())
}

// trajectoryDataset parses the request body and assessment parameters.
// A malformed query parameter is reported as a *paramError (a 400), not
// silently defaulted.
func trajectoryDataset(r *http.Request) (*core.Dataset, error) {
	maxSpeed, err := queryFloat(r, "maxspeed", 20)
	if err != nil {
		return nil, err
	}
	interval, err := queryFloat(r, "interval", 1)
	if err != nil {
		return nil, err
	}
	trs, err := trajectory.ReadCSVColumns(r.Body)
	if err != nil {
		return nil, fmt.Errorf("parse trajectory csv: %w", err)
	}
	ds := &core.Dataset{
		Trajectories:     trs,
		MaxSpeed:         maxSpeed,
		ExpectedInterval: interval,
	}
	return ds, nil
}

// paramError reports a malformed query parameter, naming the offender
// so the client can tell `maxspeed=abc` apart from a body problem.
type paramError struct {
	key, value string
}

func (e *paramError) Error() string {
	return fmt.Sprintf("invalid query parameter %s=%q: want a positive number", e.key, e.value)
}

// queryFloat parses a positive float query parameter. An empty or
// absent parameter selects the default; anything unparsable or
// non-positive is a *paramError so callers answer 400 rather than
// silently substituting the default.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}

// assessmentJSON renders an Assessment as a stable JSON object.
func assessmentJSON(a quality.Assessment) map[string]float64 {
	out := map[string]float64{}
	for _, d := range quality.AllDimensions() {
		if v, ok := a[d]; ok {
			out[d.String()] = v
		}
	}
	return out
}

// bodyError maps a parse failure to the right status: 413 when the
// body cap was hit, 400 otherwise. The cap is detected by type alone —
// errors.As unwraps the parsers' fmt %w chains down to the
// *http.MaxBytesError the MaxBytesReader injects, so no fragile
// message matching is needed (or correct: a translated or coincidental
// "request body too large" message must not turn a 400 into a 413).
func bodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ds, err := trajectoryDataset(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"trajectories": len(ds.Trajectories),
		"assessment":   assessmentJSON(ds.Assess()),
	})
}

func (s *Service) handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ds, err := trajectoryDataset(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	cleaned, stages, _, err := core.PlanAndRunIterativeWith(r.Context(), s.cleaningRunner(), ds, core.DefaultTargets(), 3)
	if err != nil {
		// Only context cancellation surfaces here under SkipStage; the
		// client is gone or the deadline passed.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name()
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Sidq-Stages", strings.Join(names, ","))
	if err := trajectory.WriteCSV(w, cleaned.Trajectories); err != nil {
		// Headers are gone, so the status cannot change — but a
		// mid-stream write failure (client hung up, connection reset)
		// must not vanish: it is the signal that clients are receiving
		// truncated cleaned data.
		s.writeError(r, err)
	}
}

// writeError records a mid-stream response write failure: one log line
// tagged with the request ID and a bump of the write-errors counter.
func (s *Service) writeError(r *http.Request, err error) {
	s.metrics.Counter(mWriteErrs).Inc()
	s.logf("request %s: response write failed: %v", requestID(r), err)
}

func handleReadingsAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rs, err := stid.ReadCSV(r.Body)
	if err != nil {
		bodyError(w, fmt.Errorf("parse readings csv: %w", err))
		return
	}
	ds := &core.Dataset{Readings: rs}
	_, rd := ds.AssessParts()
	writeJSON(w, map[string]interface{}{
		"readings":   len(rs),
		"assessment": assessmentJSON(rd),
	})
}

func (s *Service) handleReadingsClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rs, err := stid.ReadCSV(r.Body)
	if err != nil {
		bodyError(w, fmt.Errorf("parse readings csv: %w", err))
		return
	}
	ds := &core.Dataset{Readings: rs}
	p := core.NewPipeline(core.DeduplicateStage{CellSize: 1, TimeBucket: 1}, core.ThematicRepairStage{})
	cleaned, _, err := p.RunContext(r.Context(), s.cleaningRunner(), ds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Sidq-Stages", "deduplicate,thematic-repair")
	if err := stid.WriteCSV(w, cleaned.Readings); err != nil {
		s.writeError(r, err)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
