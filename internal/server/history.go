package server

// Historical range queries over the durable chunk log:
//
//	GET /v1/history/range?minx=&miny=&maxx=&maxy=&mint=&maxt=
//
// Every persisted ingest chunk is indexed by its spatio-temporal
// extent in an R-tree (internal/index — the same index layer the batch
// query paths use). A range query searches the R-tree for candidate
// chunks, reads exactly those records back from the on-disk segments
// via the WAL's seq-range reader, and filters points to the requested
// window. History covers closed and evicted sessions too: the log
// outlives the session state.

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/store"
	"sidq/internal/trajectory"
)

// chunkExtent is the time bounds companion to a chunk's R-tree rect.
type chunkExtent struct {
	minT, maxT float64
}

// historyIndex maps WAL chunk records to their spatio-temporal
// extents. Safe for concurrent use (replay is single-threaded, but
// live ingests on different sessions index concurrently).
type historyIndex struct {
	mu  sync.Mutex
	rt  *index.RTree
	ext map[string]chunkExtent // R-tree entry id (decimal WAL seq) -> time bounds
}

func newHistoryIndex() *historyIndex {
	return &historyIndex{rt: index.NewRTree(), ext: map[string]chunkExtent{}}
}

// add indexes one chunk record's extent. Idempotent per seq.
func (h *historyIndex) add(seq uint64, evs []walEvent) {
	if len(evs) == 0 {
		return
	}
	rect := geo.RectFromPoints(geo.Pt(evs[0].X, evs[0].Y))
	ext := chunkExtent{minT: evs[0].T, maxT: evs[0].T}
	for _, e := range evs[1:] {
		rect = rect.ExtendPoint(geo.Pt(e.X, e.Y))
		ext.minT = math.Min(ext.minT, e.T)
		ext.maxT = math.Max(ext.maxT, e.T)
	}
	id := strconv.FormatUint(seq, 10)
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.ext[id]; ok {
		return
	}
	h.ext[id] = ext
	h.rt.Insert(index.RectEntry{ID: id, Rect: rect})
}

// removeBelow drops every entry whose WAL seq is below minSeq —
// called by the retention loop after TruncateFront so the index never
// answers with seqs the disk no longer holds (and so a long-running
// server's index stops growing without bound). The R-tree has no
// delete, so the surviving entries are bulk-loaded into a fresh tree;
// retention passes are rare next to queries, and bulk load is the
// cheaper structure for the searches anyway. Returns how many entries
// were removed.
func (h *historyIndex) removeBelow(minSeq uint64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ext) == 0 {
		return 0
	}
	all := geo.Rect{
		Min: geo.Pt(math.Inf(-1), math.Inf(-1)),
		Max: geo.Pt(math.Inf(1), math.Inf(1)),
	}
	var kept []index.RectEntry
	removed := 0
	for _, e := range h.rt.Search(all) {
		seq, err := strconv.ParseUint(e.ID, 10, 64)
		if err == nil && seq < minSeq {
			delete(h.ext, e.ID)
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed > 0 {
		h.rt = index.BulkLoadRTree(kept)
	}
	return removed
}

// search returns the WAL seqs of chunks whose extent intersects the
// window, in seq (= ingestion) order.
func (h *historyIndex) search(rect geo.Rect, minT, maxT float64) []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var seqs []uint64
	for _, e := range h.rt.Search(rect) {
		ext := h.ext[e.ID]
		if ext.maxT < minT || ext.minT > maxT {
			continue
		}
		seq, err := strconv.ParseUint(e.ID, 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// queryFloatAny parses a float query parameter admitting any finite
// value (range bounds are signed coordinates).
func queryFloatAny(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}

func (s *Service) handleHistoryRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	reg := s.streams
	if reg.wal == nil {
		http.Error(w, "history disabled: start the server with a -data directory", http.StatusNotFound)
		return
	}
	var bounds [6]float64
	for i, p := range []struct {
		key string
		def float64
	}{
		{"minx", math.Inf(-1)}, {"miny", math.Inf(-1)}, {"mint", math.Inf(-1)},
		{"maxx", math.Inf(1)}, {"maxy", math.Inf(1)}, {"maxt", math.Inf(1)},
	} {
		v, err := queryFloatAny(r, p.key, p.def)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		bounds[i] = v
	}
	minX, minY, minT, maxX, maxY, maxT := bounds[0], bounds[1], bounds[2], bounds[3], bounds[4], bounds[5]
	if minX > maxX || minY > maxY || minT > maxT {
		http.Error(w, "empty range: min bound exceeds max", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		http.Error(w, (&paramError{key: "format", value: format}).Error(), http.StatusBadRequest)
		return
	}
	rect := geo.Rect{Min: geo.Pt(minX, minY), Max: geo.Pt(maxX, maxY)}
	seqs := reg.hist.search(rect, minT, maxT)
	// X-Sidq-History-Min-Seq is the retained floor: the oldest WAL seq
	// still on disk. A client paging through time can tell "no data"
	// from "data aged out" by comparing it with the chunk seqs it saw.
	w.Header().Set("X-Sidq-Chunks", strconv.Itoa(len(seqs)))
	w.Header().Set("X-Sidq-History-Min-Seq", strconv.FormatUint(reg.wal.FirstSeq(), 10))
	inWindow := func(e walEvent) bool {
		return e.X >= minX && e.X <= maxX && e.Y >= minY && e.Y <= maxY && e.T >= minT && e.T <= maxT
	}
	want := map[uint64]bool{}
	for _, seq := range seqs {
		want[seq] = true
	}

	if format == "csv" {
		// CSV stays buffered: WriteCSV needs the rows grouped into
		// per-source trajectories, so the full result set (and the
		// source first-appearance order) must exist before the first
		// output byte. Use ndjson for wide windows.
		var results []streamResult
		var srcs []string
		srcSeen := map[string]bool{}
		if len(seqs) > 0 {
			err := reg.wal.ReadRange(seqs[0], seqs[len(seqs)-1], func(rec store.Record) error {
				if rec.Type != recChunk || !want[rec.Seq] {
					return nil
				}
				var c walChunk
				if err := decodeRec(rec.Payload, &c); err != nil {
					return err
				}
				for _, e := range c.Events {
					if !inWindow(e) {
						continue
					}
					results = append(results, streamResult{Source: e.Src, T: e.T, X: e.X, Y: e.Y})
					if !srcSeen[e.Src] {
						srcSeen[e.Src] = true
						srcs = append(srcs, e.Src)
					}
				}
				return nil
			})
			if err != nil {
				http.Error(w, "history read: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("X-Sidq-Points", strconv.Itoa(len(results)))
		w.Header().Set("Content-Type", "text/csv")
		if err := trajectory.WriteCSV(w, resultTrajectories(results, srcs)); err != nil {
			s.writeError(r, err)
		}
		return
	}

	// ndjson streams: each chunk's matching rows are encoded as
	// ReadRange emits the record, so a wide window holds one decoded
	// chunk in memory, never the whole result set. (That is also why
	// ndjson carries no X-Sidq-Points header — the count is unknown
	// when the headers are sent.)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	wrote := false
	if len(seqs) == 0 {
		return
	}
	err := reg.wal.ReadRange(seqs[0], seqs[len(seqs)-1], func(rec store.Record) error {
		if rec.Type != recChunk || !want[rec.Seq] {
			return nil
		}
		var c walChunk
		if err := decodeRec(rec.Payload, &c); err != nil {
			return err
		}
		for _, e := range c.Events {
			if !inWindow(e) {
				continue
			}
			if err := enc.Encode(streamResult{Source: e.Src, T: e.T, X: e.X, Y: e.Y}); err != nil {
				return err
			}
			wrote = true
		}
		return nil
	})
	if err != nil {
		if !wrote {
			http.Error(w, "history read: "+err.Error(), http.StatusInternalServerError)
			return
		}
		// Mid-stream failure: the status line is long gone, so report
		// it the way every other streaming handler does.
		s.writeError(r, err)
	}
}
