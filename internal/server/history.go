package server

// Historical range queries over the durable chunk log:
//
//	GET /v1/history/range?minx=&miny=&maxx=&maxy=&mint=&maxt=
//
// Every persisted ingest chunk is indexed by its spatio-temporal
// extent in an R-tree (internal/index — the same index layer the batch
// query paths use). A range query searches the R-tree for candidate
// chunks, reads exactly those records back from the on-disk segments
// via the WAL's seq-range reader, and filters points to the requested
// window. History covers closed and evicted sessions too: the log
// outlives the session state.

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/store"
	"sidq/internal/trajectory"
)

// chunkExtent is the time bounds companion to a chunk's R-tree rect.
type chunkExtent struct {
	minT, maxT float64
}

// historyIndex maps WAL chunk records to their spatio-temporal
// extents. Safe for concurrent use (replay is single-threaded, but
// live ingests on different sessions index concurrently).
type historyIndex struct {
	mu  sync.Mutex
	rt  *index.RTree
	ext map[string]chunkExtent // R-tree entry id (decimal WAL seq) -> time bounds
}

func newHistoryIndex() *historyIndex {
	return &historyIndex{rt: index.NewRTree(), ext: map[string]chunkExtent{}}
}

// add indexes one chunk record's extent. Idempotent per seq.
func (h *historyIndex) add(seq uint64, evs []walEvent) {
	if len(evs) == 0 {
		return
	}
	rect := geo.RectFromPoints(geo.Pt(evs[0].X, evs[0].Y))
	ext := chunkExtent{minT: evs[0].T, maxT: evs[0].T}
	for _, e := range evs[1:] {
		rect = rect.ExtendPoint(geo.Pt(e.X, e.Y))
		ext.minT = math.Min(ext.minT, e.T)
		ext.maxT = math.Max(ext.maxT, e.T)
	}
	id := strconv.FormatUint(seq, 10)
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.ext[id]; ok {
		return
	}
	h.ext[id] = ext
	h.rt.Insert(index.RectEntry{ID: id, Rect: rect})
}

// search returns the WAL seqs of chunks whose extent intersects the
// window, in seq (= ingestion) order.
func (h *historyIndex) search(rect geo.Rect, minT, maxT float64) []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var seqs []uint64
	for _, e := range h.rt.Search(rect) {
		ext := h.ext[e.ID]
		if ext.maxT < minT || ext.minT > maxT {
			continue
		}
		seq, err := strconv.ParseUint(e.ID, 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// queryFloatAny parses a float query parameter admitting any finite
// value (range bounds are signed coordinates).
func queryFloatAny(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}

func (s *Service) handleHistoryRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	reg := s.streams
	if reg.wal == nil {
		http.Error(w, "history disabled: start the server with a -data directory", http.StatusNotFound)
		return
	}
	var bounds [6]float64
	for i, p := range []struct {
		key string
		def float64
	}{
		{"minx", math.Inf(-1)}, {"miny", math.Inf(-1)}, {"mint", math.Inf(-1)},
		{"maxx", math.Inf(1)}, {"maxy", math.Inf(1)}, {"maxt", math.Inf(1)},
	} {
		v, err := queryFloatAny(r, p.key, p.def)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		bounds[i] = v
	}
	minX, minY, minT, maxX, maxY, maxT := bounds[0], bounds[1], bounds[2], bounds[3], bounds[4], bounds[5]
	if minX > maxX || minY > maxY || minT > maxT {
		http.Error(w, "empty range: min bound exceeds max", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		http.Error(w, (&paramError{key: "format", value: format}).Error(), http.StatusBadRequest)
		return
	}
	rect := geo.Rect{Min: geo.Pt(minX, minY), Max: geo.Pt(maxX, maxY)}
	seqs := reg.hist.search(rect, minT, maxT)
	var results []streamResult
	var srcs []string
	srcSeen := map[string]bool{}
	if len(seqs) > 0 {
		want := map[uint64]bool{}
		for _, seq := range seqs {
			want[seq] = true
		}
		err := reg.wal.ReadRange(seqs[0], seqs[len(seqs)-1], func(rec store.Record) error {
			if rec.Type != recChunk || !want[rec.Seq] {
				return nil
			}
			var c walChunk
			if err := decodeRec(rec.Payload, &c); err != nil {
				return err
			}
			for _, e := range c.Events {
				if e.X < minX || e.X > maxX || e.Y < minY || e.Y > maxY || e.T < minT || e.T > maxT {
					continue
				}
				results = append(results, streamResult{Source: e.Src, T: e.T, X: e.X, Y: e.Y})
				if !srcSeen[e.Src] {
					srcSeen[e.Src] = true
					srcs = append(srcs, e.Src)
				}
			}
			return nil
		})
		if err != nil {
			http.Error(w, "history read: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("X-Sidq-Chunks", strconv.Itoa(len(seqs)))
	w.Header().Set("X-Sidq-Points", strconv.Itoa(len(results)))
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := trajectory.WriteCSV(w, resultTrajectories(results, srcs)); err != nil {
			s.writeError(r, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, res := range results {
		if err := enc.Encode(res); err != nil {
			s.writeError(r, err)
			return
		}
	}
}
