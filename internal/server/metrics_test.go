package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const metricsTrajCSV = "id,t,x,y\n" +
	"a,0,0,0\n" +
	"a,1,1,0\n" +
	"a,2,2,0\n" +
	"a,3,900,0\n" + // gross outlier: guarantees the planner schedules work
	"a,4,4,0\n"

func TestMetricsEndpointCoversAllFamilies(t *testing.T) {
	svc := NewService(Config{Logger: DiscardLogger()})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Drive a cleaning request so runner and server families have data.
	resp, err := http.Post(ts.URL+"/v1/clean", "text/csv", strings.NewReader(metricsTrajCSV))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(body)

	// One series from each instrumented layer: server, runner, roadnet,
	// stream — a single scrape covers the whole middleware.
	for _, want := range []string{
		`sidq_server_requests_total{route="/v1/clean",status="200"} 1`,
		`sidq_server_request_latency_ns_count{route="/v1/clean"} 1`,
		"sidq_server_in_flight 0",
		"# TYPE sidq_runner_retries_total counter",
		"sidq_runner_stage_total{",
		"# TYPE sidq_roadnet_dijkstra_total counter",
		"# TYPE sidq_stream_late_total counter",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q\n%s", want, expo)
		}
	}
}

func TestMetricsBypassesConcurrencyLimit(t *testing.T) {
	// MaxInFlight 1 with the slot artificially held: normal routes shed,
	// the scrape must still answer.
	svc := NewService(Config{Logger: DiscardLogger(), MaxInFlight: 1})
	svc.inflight <- struct{}{}
	defer func() { <-svc.inflight }()

	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics under saturation = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/taxonomy", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("taxonomy under saturation = %d, want 503", rec.Code)
	}
	if got := svc.Metrics().Counter(mShed).Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

func TestRouteLabelClosedSet(t *testing.T) {
	svc := NewService(Config{Logger: DiscardLogger()})
	for _, p := range []string{"/v1/unknown", "/v1/clean/x", "/evil/" + strings.Repeat("x", 200)} {
		rec := httptest.NewRecorder()
		svc.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
	}
	if got := svc.Metrics().Counter(`sidq_server_requests_total{route="other",status="404"}`).Value(); got != 3 {
		t.Errorf("other-route 404 counter = %d, want 3", got)
	}
}
