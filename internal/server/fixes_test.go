package server

// Regression tests for the correctness fixes riding along with the
// streaming subsystem: typed 413 detection, and the mid-stream
// write-failure counter.

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The body cap must be detected by error type alone. A wrapped
// *http.MaxBytesError — however deep the %w chain — is a 413; an error
// whose *message* merely resembles the cap (a coincidental or
// translated "request body too large" from a parser) must stay a 400.
func TestBodyErrorTypedDetection(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"direct max-bytes", &http.MaxBytesError{Limit: 64}, http.StatusRequestEntityTooLarge},
		{
			"wrapped max-bytes",
			fmt.Errorf("parse trajectory csv: %w", fmt.Errorf("record on line 3: %w", &http.MaxBytesError{Limit: 64})),
			http.StatusRequestEntityTooLarge,
		},
		{
			"coincidental message",
			fmt.Errorf("parse readings csv: http: request body too large"),
			http.StatusBadRequest,
		},
		{"plain parse failure", fmt.Errorf("parse trajectory csv: bad row"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		bodyError(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
}

// A mid-stream response write failure must bump the counter and log
// one line carrying the request ID, so truncated responses are visible
// in both the scrape and the logs.
func TestWriteErrorCountedAndLogged(t *testing.T) {
	var logBuf strings.Builder
	svc := NewService(Config{Logger: log.New(&logBuf, "", 0)})
	defer svc.Close()

	before := svc.metrics.Counter(mWriteErrs).Value()
	req := httptest.NewRequest(http.MethodPost, "/v1/clean", nil)
	req = req.WithContext(withRequestIDContext(req.Context(), "req-test-42"))
	svc.writeError(req, fmt.Errorf("write tcp: broken pipe"))

	if got := svc.metrics.Counter(mWriteErrs).Value(); got != before+1 {
		t.Fatalf("%s = %d, want %d", mWriteErrs, got, before+1)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "req-test-42") || !strings.Contains(logged, "broken pipe") {
		t.Fatalf("log line missing request id or cause: %q", logged)
	}
}
