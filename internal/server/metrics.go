package server

// HTTP-layer observability. Every service carries an obs.Registry
// (Config.Metrics, defaulted per service) that the middleware stack
// feeds: per-route request counters and latency histograms, the
// in-flight gauge, shed and panic counters. NewService also wires the
// runner/roadnet/stream families into the same registry so a single
// GET /v1/metrics scrape covers the whole middleware.

import (
	"net/http"
	"strconv"
	"strings"

	"sidq/internal/core"
	"sidq/internal/obs"
	"sidq/internal/roadnet"
	"sidq/internal/store"
	"sidq/internal/stream"
)

const (
	mRequests      = "sidq_server_requests_total"
	mLatency       = "sidq_server_request_latency_ns"
	mInFlight      = "sidq_server_in_flight"
	mShed          = "sidq_server_shed_total"
	mDrainRejected = "sidq_server_drain_rejected_total"
	mSrvPanics     = "sidq_server_panics_total"
	mWriteErrs     = "sidq_http_write_errors_total"

	// Streaming-session families (see sessions.go).
	mStreamOpen     = "sidq_stream_sessions_open"
	mStreamOpened   = "sidq_stream_session_opened_total"
	mStreamClosed   = "sidq_stream_session_closed_total"
	mStreamEvicted  = "sidq_stream_session_evicted_total"
	mStreamRejected = "sidq_stream_session_rejected_total"
	mStreamIngested = `sidq_stream_session_events_total{kind="ingested"}`
	mStreamEmitted  = `sidq_stream_session_events_total{kind="emitted"}`
	mStreamLate     = `sidq_stream_session_events_total{kind="late"}`
	mStreamOutlier  = `sidq_stream_session_events_total{kind="outlier"}`

	// Durability families (see durability.go); the sidq_store_* WAL
	// internals come from store.InstrumentTo.
	mStreamSnapshots = "sidq_stream_snapshots_total"
	mStreamRestored  = "sidq_stream_snapshot_restores_total"
	mStreamReplayed  = "sidq_stream_replayed_records_total"
	mStreamDup       = "sidq_stream_dup_chunks_total"

	// Retention families (see retention.go). sidq_store_compactions_total
	// lives in the store namespace because it counts WAL rewrites, but it
	// is driven (and registered) by the server's retention loop — the
	// store itself only truncates.
	mStoreCompactions = "sidq_store_compactions_total"
	mHistoryTrimmed   = "sidq_server_history_trimmed_total"
)

// knownRoutes is the closed label set for the route label; anything
// else (404 probes, scanners) collapses into "other" so request paths
// cannot explode series cardinality.
var knownRoutes = map[string]bool{
	"/v1/assess":          true,
	"/v1/clean":           true,
	"/v1/readings/assess": true,
	"/v1/readings/clean":  true,
	"/v1/taxonomy":        true,
	"/v1/healthz":         true,
	"/v1/readyz":          true,
	"/v1/metrics":         true,
	"/v1/stream/open":     true,
	"/v1/stream/ingest":   true,
	"/v1/history/range":   true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	// Streaming paths embed the session id; collapse them to the
	// per-operation labels so ids cannot explode series cardinality.
	if strings.HasPrefix(path, "/v1/stream/") {
		if strings.HasSuffix(path, "/results") {
			return "/v1/stream/results"
		}
		return "/v1/stream/session"
	}
	return "other"
}

// initMetrics registers HELP text and the cross-layer families so the
// very first scrape is complete even before any traffic.
func (s *Service) initMetrics() {
	reg := s.metrics
	reg.Help(mRequests, "HTTP requests served, by route and status.")
	reg.Help(mLatency, "HTTP request handling latency in nanoseconds, by route.")
	reg.Help(mInFlight, "Requests currently being handled.")
	reg.Help(mShed, "Requests shed with 503 by the concurrency limiter.")
	reg.Help(mDrainRejected, "New work requests rejected with 503 while draining for shutdown.")
	reg.Help(mSrvPanics, "Handler panics recovered by the middleware.")
	reg.Help(mWriteErrs, "Mid-stream response body write failures (client gone, connection reset).")
	reg.Help("sidq_stream_sessions_open", "Streaming ingestion sessions currently open.")
	reg.Help("sidq_stream_session_opened_total", "Streaming sessions opened.")
	reg.Help("sidq_stream_session_closed_total", "Streaming sessions closed by the client.")
	reg.Help("sidq_stream_session_evicted_total", "Streaming sessions evicted by the idle-TTL janitor.")
	reg.Help("sidq_stream_session_rejected_total", "Streaming opens/chunks shed with 429 (session limit or full buffers).")
	reg.Help("sidq_stream_session_events_total", "Streaming session events, by kind (ingested, emitted, late, outlier).")
	reg.Help(mStreamSnapshots, "Session state snapshots checkpointed into the WAL.")
	reg.Help(mStreamRestored, "Sessions rebuilt from WAL snapshots during recovery.")
	reg.Help(mStreamReplayed, "WAL records replayed during recovery.")
	reg.Help(mStreamDup, "Ingest chunks acknowledged as duplicates (?seq= retry dedup).")
	reg.Help(mStoreCompactions, "Live sessions force-snapshotted by retention so their old WAL tail becomes droppable.")
	reg.Help(mHistoryTrimmed, "History-index entries removed because retention truncated their WAL records.")
	reg.Gauge(mInFlight)
	reg.Counter(mShed)
	reg.Counter(mDrainRejected)
	reg.Counter(mSrvPanics)
	reg.Counter(mWriteErrs)
	reg.Gauge(mStreamOpen)
	for _, name := range []string{
		mStreamOpened, mStreamClosed, mStreamEvicted, mStreamRejected,
		mStreamIngested, mStreamEmitted, mStreamLate, mStreamOutlier,
		mStreamSnapshots, mStreamRestored, mStreamReplayed, mStreamDup,
		mStoreCompactions, mHistoryTrimmed,
	} {
		reg.Counter(name)
	}
	core.InitRunnerMetrics(reg)
	roadnet.InstrumentTo(reg)
	stream.InstrumentTo(reg)
	store.InstrumentTo(reg)
}

// observeRequest records one finished request.
func (s *Service) observeRequest(route string, status int, durNs int64) {
	s.metrics.Counter(mRequests + `{route="` + route + `",status="` + strconv.Itoa(status) + `"}`).Inc()
	s.metrics.Histogram(mLatency + `{route="` + route + `"}`).Observe(durNs)
}

// Metrics returns the service's registry, for embedding callers that
// want to add their own series or scrape programmatically.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// cleaningRunner is the per-request runner for the cleaning endpoints:
// skip-stage policy (one failing stage must not fail the request),
// reporting stage metrics into the service registry.
func (s *Service) cleaningRunner() *core.Runner {
	return &core.Runner{Policy: core.SkipStage, Obs: s.metrics}
}

// handleMetrics serves the Prometheus text exposition. It sits on the
// probes path, bypassing the limiter and timeout, so a saturated or
// wedged service can still be scraped — exactly when the numbers
// matter most.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = s.metrics.WritePrometheus(w)
}
