package server

// Background retention + snapshot-aware compaction for the durable
// store: the subsystem that keeps a long-running server's WAL bounded
// on disk (DurabilityConfig.Retain / sidqserve -retain).
//
// Each pass computes the lowest WAL seq still needed and hands it to
// store.TruncateFront:
//
//   - The age floor: the pass samples (now, wal.LastSeq()) into a small
//     ring; once a sample is older than Retain, every seq at or below
//     its LastSeq is older than Retain too, so ageFloor is the highest
//     such sampled seq + 1. Sampling makes the time->seq mapping free —
//     no per-record timestamps, and at worst one pass of lag.
//   - The session floor: a live session needs nothing below its last
//     snapshot record (the snapshot supersedes them), falling back to
//     its open record before the first snapshot. A session whose floor
//     lags the age floor is compacted first: a forced snapshot rewrites
//     its old tail into the fresh (active) segment chain, so the old
//     segments stop being pinned. That is what "snapshot-aware
//     compaction" means here — the snapshot IS the rewrite.
//
// keepSeq = min(ageFloor, every live session's floor). Truncation is
// segment-granular (TruncateFront never splits a segment), so the
// retained window is always a superset of the last Retain of data.
// After truncation the history index drops entries below the log's new
// FirstSeq — only entries whose records actually left the disk, so the
// index always matches what /v1/history/range can still read.

import (
	"time"

	"sidq/internal/obs"
)

// retentionState is the registry's retention-pass bookkeeping.
type retentionState struct {
	samples []retentionSample // (time, lastSeq) ring, append order = time order
}

type retentionSample struct {
	t   time.Time
	seq uint64 // wal.LastSeq() at t: every seq <= this existed by t
}

// observe records one (now, lastSeq) sample and returns the age floor:
// the first seq NOT yet known older than retain. Called only under the
// registry's retainMu — retainPass serializes passes, so the ticker
// and RunRetentionOnce cannot race on the ring.
func (rs *retentionState) observe(now time.Time, lastSeq uint64, retain time.Duration) uint64 {
	rs.samples = append(rs.samples, retentionSample{t: now, seq: lastSeq})
	cut := now.Add(-retain)
	ageFloor := uint64(1)
	boundary := -1
	for i, s := range rs.samples {
		if s.t.After(cut) {
			break
		}
		if s.seq+1 > ageFloor {
			ageFloor = s.seq + 1
		}
		boundary = i
	}
	// Drop samples older than the boundary one; the boundary itself
	// stays so the floor never regresses between passes.
	if boundary > 0 {
		rs.samples = append(rs.samples[:0], rs.samples[boundary:]...)
	}
	return ageFloor
}

// RetentionStats reports what one retention pass did.
type RetentionStats struct {
	AgeFloor        uint64 // first seq younger than the retention horizon
	KeepSeq         uint64 // floor handed to TruncateFront (min of age + session floors)
	Compacted       int    // live sessions force-snapshotted to unpin old segments
	SegmentsRemoved int    // sealed segments dropped from the manifest
	HistoryTrimmed  int    // history-index entries removed below the new floor
	RetainedSeq     uint64 // wal.FirstSeq() after the pass
}

// RunRetentionOnce executes one retention pass as of now and returns
// what it did. The background loop runs the same pass on a timer; this
// entry point exists for operational tooling and deterministic tests
// (pass a fake clock to control the age horizon). A no-op unless the
// service is durable and configured with a Retain duration.
func (s *Service) RunRetentionOnce(now time.Time) RetentionStats {
	return s.streams.retainPass(now)
}

// startRetention spawns the retention loop when configured. Called
// once from OpenService after recovery; reuses the janitor's stop
// channel so Close tears both down.
func (reg *sessionRegistry) startRetention() {
	d := reg.svc.cfg.Durability
	if reg.wal == nil || d.Retain <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(d.RetainEvery)
		defer t.Stop()
		for {
			select {
			case <-reg.stopCh:
				return
			case <-t.C:
				reg.retainPass(reg.now())
			}
		}
	}()
}

// retainPass is one retention tick: sample the clock->seq mapping,
// compact lagging sessions, truncate the WAL, trim the history index.
func (reg *sessionRegistry) retainPass(now time.Time) RetentionStats {
	var st RetentionStats
	wal := reg.wal
	d := reg.svc.cfg.Durability
	if wal == nil || d.Retain <= 0 {
		return st
	}
	reg.retainMu.Lock()
	defer reg.retainMu.Unlock()

	st.AgeFloor = reg.ret.observe(now, wal.LastSeq(), d.Retain)
	st.RetainedSeq = wal.FirstSeq()

	// Compact live sessions whose floor would pin segments the age
	// floor has released: a forced snapshot rewrites the session's old
	// tail into the active segment chain, after which nothing below the
	// snapshot seq is needed. Sessions already floored at or past the
	// age floor are left alone — compaction is work proportional to
	// lagging sessions, not to all sessions.
	reg.mu.Lock()
	sessions := make([]*streamSession, 0, len(reg.sessions))
	for _, ss := range reg.sessions {
		sessions = append(sessions, ss)
	}
	reg.mu.Unlock()
	keep := st.AgeFloor
	for _, ss := range sessions {
		ss.mu.Lock()
		floor := ss.floorLocked()
		if !ss.closed && floor < st.AgeFloor {
			ss.snapshotLocked()
			if f := ss.floorLocked(); f != floor { // snapshot persisted
				floor = f
				st.Compacted++
				reg.m.compactions.Inc()
				reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionCompact, N: int(ss.chunkIdx)})
			}
		}
		ss.mu.Unlock()
		if floor < keep {
			keep = floor
		}
	}
	st.KeepSeq = keep

	removed, err := wal.TruncateFront(keep)
	st.SegmentsRemoved = removed
	if err != nil {
		// The manifest may still have committed (removed > 0): stale
		// files are swept by the next Open. Log and carry on — the next
		// pass retries.
		reg.svc.logf("retention: truncate to %d: %v", keep, err)
	}
	st.RetainedSeq = wal.FirstSeq()

	// Trim the history index below what is actually left on disk (the
	// cut is segment-granular, so FirstSeq can be below keep) — the
	// index must keep answering for every record still readable.
	st.HistoryTrimmed = reg.hist.removeBelow(st.RetainedSeq)
	if st.HistoryTrimmed > 0 {
		reg.m.histTrimmed.Add(uint64(st.HistoryTrimmed))
	}
	if removed > 0 || st.HistoryTrimmed > 0 {
		reg.trace(obs.TraceEvent{Name: "wal", Kind: obs.KindRetention, N: removed})
		reg.svc.logf("retention: kept seq >= %d (age floor %d), removed %d segments, trimmed %d history entries, compacted %d sessions",
			st.RetainedSeq, st.AgeFloor, removed, st.HistoryTrimmed, st.Compacted)
	}
	return st
}

// floorLocked is the lowest WAL seq this session still needs for
// recovery. Caller holds ss.mu.
func (ss *streamSession) floorLocked() uint64 {
	if ss.snapSeq > 0 {
		return ss.snapSeq
	}
	return ss.openSeq
}
