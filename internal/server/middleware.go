package server

import (
	"fmt"
	"log"
	"net/http"
	"time"
)

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withRecovery converts handler panics into 500s instead of letting
// them kill the connection (and, under http.Server's default behavior,
// spam the log with stacks while aborting the response mid-write).
func (s *Service) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.Counter(mSrvPanics).Inc()
				s.logf("request %s: panic recovered: %v", requestID(r), p)
				// Best effort: if the handler already wrote, this is a no-op.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withRequestID assigns every request a unique ID (honouring an
// inbound X-Request-ID), echoes it on the response, and writes one
// access-log line per request.
func (s *Service) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		r = r.WithContext(withRequestIDContext(r.Context(), id))
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.observeRequest(routeLabel(r.URL.Path), rec.status, elapsed.Nanoseconds())
		s.logf("%s %s %s -> %d (%s)", id, r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond))
	})
}

// withBodyLimit caps request bodies; a reader crossing the limit makes
// the CSV parsers fail, which the handlers surface as 400s, and the
// net/http machinery additionally flags the connection to close.
func (s *Service) withBodyLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			if r.ContentLength > s.cfg.MaxBodyBytes {
				http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
				return
			}
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// withConcurrencyLimit bounds the number of in-flight requests;
// excess load is shed with 503 + Retry-After rather than queued
// without bound.
func (s *Service) withConcurrencyLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			g := s.metrics.Gauge(mInFlight)
			g.Inc()
			defer func() { g.Dec(); <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.metrics.Counter(mShed).Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "too many in-flight requests", http.StatusServiceUnavailable)
		}
	})
}

// withTimeout bounds each request's total handling time with 503 on
// expiry (http.TimeoutHandler buffers the response, which is fine for
// this service's payload sizes).
func (s *Service) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.TimeoutHandler(next, s.cfg.RequestTimeout, "request timed out")
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// DiscardLogger silences the access log (tests use it).
func DiscardLogger() *log.Logger { return log.New(discard{}, "", 0) }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
