package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func trajectoryCSV(t *testing.T) *bytes.Buffer {
	t.Helper()
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	truth := simulate.RandomWalk("veh-0", region, 300, 2, 1, 1)
	dirty := simulate.AddGaussianNoise(truth, 8, 2)
	dirty, _ = simulate.InjectOutliers(dirty, 0.05, 120, 3)
	var buf bytes.Buffer
	if err := trajectory.WriteCSV(&buf, []*trajectory.Trajectory{dirty}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func readingsCSV(t *testing.T) *bytes.Buffer {
	t.Helper()
	f := simulate.NewField(simulate.FieldOptions{Seed: 4})
	_, rs := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 15, Interval: 300, Duration: 3600, NoiseSigma: 1, Seed: 5,
	})
	rs, _ = simulate.InjectValueOutliers(rs, 0.05, 60, 6)
	var buf bytes.Buffer
	if err := stid.WriteCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthAndTaxonomy(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/v1/taxonomy")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("taxonomy: %v", err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "pre-processing layer") {
		t.Fatal("taxonomy content missing")
	}
}

func TestAssessEndpoint(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/assess?maxspeed=10", "text/csv", trajectoryCSV(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Trajectories int                `json:"trajectories"`
		Assessment   map[string]float64 `json:"assessment"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trajectories != 1 {
		t.Fatalf("trajectories = %d", out.Trajectories)
	}
	if out.Assessment["consistency"] >= 0.99 {
		t.Fatalf("dirty data assessed clean: %v", out.Assessment)
	}
	if out.Assessment["data_volume"] <= 0 {
		t.Fatal("no volume")
	}
}

func TestCleanEndpointImprovesData(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/clean?maxspeed=10", "text/csv", trajectoryCSV(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	stages := resp.Header.Get("X-Sidq-Stages")
	if !strings.Contains(stages, "outlier-removal") {
		t.Fatalf("stages = %q", stages)
	}
	trs, err := trajectory.ReadCSV(resp.Body)
	if err != nil || len(trs) != 1 {
		t.Fatalf("cleaned csv: %v (%d)", err, len(trs))
	}
	// Re-assess the cleaned output through the service.
	var buf bytes.Buffer
	if err := trajectory.WriteCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srv.URL+"/v1/assess?maxspeed=10", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out struct {
		Assessment map[string]float64 `json:"assessment"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Assessment["consistency"] < 0.99 {
		t.Fatalf("cleaned consistency = %v", out.Assessment["consistency"])
	}
}

func TestReadingsEndpoints(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/readings/assess", "text/csv", readingsCSV(t))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("assess: %v %v", err, resp.StatusCode)
	}
	var out struct {
		Readings   int                `json:"readings"`
		Assessment map[string]float64 `json:"assessment"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Readings == 0 || out.Assessment["consistency"] >= 0.999 {
		t.Fatalf("assess result: %+v", out)
	}
	resp, err = http.Post(srv.URL+"/v1/readings/clean", "text/csv", readingsCSV(t))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("clean: %v", err)
	}
	cleaned, err := stid.ReadCSV(resp.Body)
	resp.Body.Close()
	if err != nil || len(cleaned) == 0 {
		t.Fatalf("cleaned readings: %v (%d)", err, len(cleaned))
	}
}

func TestBadRequests(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// Wrong method.
	resp, _ := http.Get(srv.URL + "/v1/clean")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET clean status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Garbage body.
	resp, _ = http.Post(srv.URL+"/v1/assess", "text/csv", strings.NewReader("not,a,csv"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/v1/readings/assess", "text/csv", strings.NewReader("x"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage readings status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad query params are a client error naming the parameter, not a
	// silent fall-back to defaults.
	for _, q := range []string{"maxspeed=banana", "maxspeed=-3", "maxspeed=NaN", "interval=0"} {
		resp, _ = http.Post(srv.URL+"/v1/assess?"+q, "text/csv", trajectoryCSV(t))
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad param %q status %d", q, resp.StatusCode)
		}
		key := strings.SplitN(q, "=", 2)[0]
		if !strings.Contains(string(body), key) {
			t.Fatalf("bad param %q error does not name the parameter: %q", q, body)
		}
	}
	// Empty/absent params still take the documented defaults.
	resp, _ = http.Post(srv.URL+"/v1/assess?maxspeed=", "text/csv", trajectoryCSV(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty param status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func newTestService(cfg Config) *Service {
	cfg.Logger = DiscardLogger()
	return NewService(cfg)
}

func TestReadyz(t *testing.T) {
	svc := newTestService(Config{})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while ready: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	svc.SetReady(false)
	resp, err = http.Get(srv.URL + "/v1/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	// Liveness is unaffected by draining.
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestOversizedBodyRejected(t *testing.T) {
	svc := newTestService(Config{MaxBodyBytes: 64})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	big := strings.Repeat("veh-0,0,1,2\n", 100)
	// Known Content-Length over the cap: rejected before reading.
	resp, err := http.Post(srv.URL+"/v1/assess", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("content-length cap status = %d", resp.StatusCode)
	}
	// Chunked body (unknown length): the MaxBytesReader trips mid-parse.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/assess", io.LimitReader(neverEnding('a'), 10_000))
	req.Header.Set("Content-Type", "text/csv")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("chunked cap status = %d", resp.StatusCode)
	}
	// A small request still works.
	resp, err = http.Post(srv.URL+"/v1/assess", "text/csv", strings.NewReader("id,t,x,y\nveh-0,0,1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body status = %d", resp.StatusCode)
	}
}

type neverEnding byte

func (b neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(b)
	}
	return len(p), nil
}

func TestConcurrencyLimitSheds503(t *testing.T) {
	svc := newTestService(Config{MaxInFlight: 1})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Occupy the single slot with a request whose body never finishes.
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/assess", pr)
	req.Header.Set("Content-Type", "text/csv")
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte("id,t,x,y\nveh-0,0,1,2\n")); err != nil {
		t.Fatal(err)
	}
	// Wait for the slot to actually be taken.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/assess", "text/csv", strings.NewReader("id,t,x,y\nveh-0,0,1,2\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("limiter never engaged (last status %d)", resp.StatusCode)
		}
	}
	// Probes bypass the limiter even at full capacity.
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under load: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	pw.Close()
	<-firstDone
	// Slot released: traffic flows again.
	resp, err = http.Post(srv.URL+"/v1/assess", "text/csv", strings.NewReader("id,t,x,y\nveh-0,0,1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d", resp.StatusCode)
	}
}

func TestRequestTimeout(t *testing.T) {
	svc := newTestService(Config{RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/assess", pr)
	req.Header.Set("Content-Type", "text/csv")
	go func() {
		pw.Write([]byte("id,t,x,y\nveh-0,0,1,2\n"))
		time.Sleep(500 * time.Millisecond) // outlive the request deadline
		pw.Close()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d", resp.StatusCode)
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	srv := httptest.NewServer(newTestService(Config{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID assigned")
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("inbound id not honoured: %q", got)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	svc := newTestService(Config{})
	h := svc.withRecovery(svc.withRequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/anything")
	if err != nil {
		t.Fatalf("connection died on panic: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d", resp.StatusCode)
	}
}
