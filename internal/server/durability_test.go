package server

// Durability wiring tests: persist-before-ack, fsync-error ack
// failure, ?seq= retry dedup, snapshot/restore recovery, history
// range queries. The chaos-style kill -9 byte-identity scenarios live
// in store_chaos_test.go.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sidq/internal/faults"
	"sidq/internal/store"
)

// newDurableService opens a service over the given (usually CrashFS)
// filesystem.
func newDurableService(t *testing.T, fs store.FS, fsync store.FsyncMode, snapEvery int) *Service {
	t.Helper()
	svc, err := OpenService(Config{
		Logger: DiscardLogger(),
		Durability: DurabilityConfig{
			Dir: "wal", Fsync: fsync, SnapshotEvery: snapEvery, FS: fs,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// ingestChunkSeq is ingestChunk with a client retry sequence number.
func ingestChunkSeq(t *testing.T, srv *httptest.Server, id string, seq uint64, csvChunk string) (ingestAck, *http.Response) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/stream/ingest?session=%s&seq=%d", srv.URL, id, seq)
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvChunk))
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestAck
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return ack, resp
}

// chunkRow builds one "id,t,x,y" row.
func chunkRow(src string, tm, x, y float64) string {
	return fmt.Sprintf("%s,%g,%g,%g\n", src, tm, x, y)
}

// testChunks is a deterministic multi-source, mildly out-of-order
// chunk sequence exercising reordering and the speed gate.
func testChunks(n int) []string {
	chunks := make([]string, n)
	for c := 0; c < n; c++ {
		var b strings.Builder
		base := float64(c * 4)
		// Two sources; the second arrives one step behind (reordering
		// within lateness), plus one teleport outlier per 5th chunk.
		for i := 0; i < 4; i++ {
			tm := base + float64(i)
			b.WriteString(chunkRow("car-a", tm, 10*tm, 5))
			b.WriteString(chunkRow("car-b", tm-0.5, 8*tm, 100))
		}
		if c%5 == 3 {
			b.WriteString(chunkRow("car-a", base+2.25, 90000, 90000))
		}
		chunks[c] = b.String()
	}
	return chunks
}

// runSession opens a session, feeds chunks (with client seqs 1..n),
// draining mid-way at drainAt (when >= 0), and returns the mid-drain
// and final flush bodies.
func runSession(t *testing.T, srv *httptest.Server, chunks []string, drainAt int) (mid, final string) {
	t.Helper()
	id := openStream(t, srv, "lateness=2&maxspeed=50&lanes=3")
	for i, c := range chunks {
		if i == drainAt {
			body, resp := drainStream(t, srv, id, "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mid drain status %d", resp.StatusCode)
			}
			mid = body
		}
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i+1), c); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
	}
	body, resp := drainStream(t, srv, id, "flush=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final drain status %d", resp.StatusCode)
	}
	return mid, body
}

// TestDurableRestartResumesExactly: every chunk is acked under
// fsync=always, the process "dies" (crash image), and the restarted
// server's drain must be byte-identical to an uninterrupted run's.
func TestDurableRestartResumesExactly(t *testing.T) {
	chunks := testChunks(12)

	// Control: uninterrupted, memory-only.
	ctrl := newTestService(Config{})
	ctrlSrv := httptest.NewServer(ctrl)
	_, want := runSession(t, ctrlSrv, chunks, -1)
	ctrlSrv.Close()

	// Durable run: ingest everything, then crash without any shutdown.
	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncAlways, 4)
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=2&maxspeed=50&lanes=3")
	for i, c := range chunks {
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i+1), c); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
	}
	srv.Close() // kill -9: no drain, no session close, no WAL close

	for seed := int64(0); seed < 5; seed++ {
		img := fs.Crash(seed, true)
		svc2 := newDurableService(t, img, store.FsyncAlways, 4)
		srv2 := httptest.NewServer(svc2)
		got, resp := drainStream(t, srv2, id, "flush=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: drain status %d", seed, resp.StatusCode)
		}
		if got != want {
			t.Fatalf("seed %d: recovered drain differs from uninterrupted run:\nwant %d bytes\ngot  %d bytes\nwant:\n%s\ngot:\n%s",
				seed, len(want), len(got), want, got)
		}
		srv2.Close()
		svc2.Close()
	}
}

// TestDurableMidDrainRecovery: rows drained before the crash must not
// be delivered again after recovery — drain records replay and
// discard. The post-crash flush drain must equal the uninterrupted
// run's post-mid-drain output.
func TestDurableMidDrainRecovery(t *testing.T) {
	chunks := testChunks(10)
	const drainAt = 6

	ctrl := newTestService(Config{})
	ctrlSrv := httptest.NewServer(ctrl)
	ctrlMid, want := runSession(t, ctrlSrv, chunks, drainAt)
	ctrlSrv.Close()

	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncAlways, 100 /* no snapshots: force chunk+drain replay */)
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=2&maxspeed=50&lanes=3")
	var mid string
	for i, c := range chunks {
		if i == drainAt {
			mid, _ = drainStream(t, srv, id, "")
		}
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i+1), c); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
	}
	if mid != ctrlMid {
		t.Fatalf("mid-drain differs before any crash:\n%q\n%q", ctrlMid, mid)
	}
	srv.Close()

	img := fs.Crash(1, true)
	svc2 := newDurableService(t, img, store.FsyncAlways, 100)
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()
	got, resp := drainStream(t, srv2, id, "flush=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	if got != want {
		t.Fatalf("post-recovery drain re-delivered or lost rows:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestDurableFsyncErrorFailsAck: when the disk refuses the fsync, the
// ack must be a 503 and the chunk must NOT be applied — the client
// was told the data is not durable, so it must not surface later.
func TestDurableFsyncErrorFailsAck(t *testing.T) {
	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncAlways, 16)
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=0&lanes=1")
	if _, resp := ingestChunkSeq(t, srv, id, 1, chunkRow("a", 1, 1, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-fault chunk status %d", resp.StatusCode)
	}
	fs.FailFsyncAfter(0)
	_, resp := ingestChunkSeq(t, srv, id, 2, chunkRow("a", 2, 2, 2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fsync-failed ingest status %d, want 503", resp.StatusCode)
	}
	if !fs.Failed() {
		t.Fatal("injected fsync never fired")
	}
	// The log is poisoned: subsequent ingests keep failing loudly.
	_, resp = ingestChunkSeq(t, srv, id, 3, chunkRow("a", 3, 3, 3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-poison ingest status %d, want 503", resp.StatusCode)
	}
	srv.Close()

	// Recovery from the crash image: only the acked chunk survives.
	img := fs.Crash(0, false)
	svc2 := newDurableService(t, img, store.FsyncAlways, 16)
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()
	got, _ := drainStream(t, srv2, id, "flush=1")
	if !strings.Contains(got, `"t":1`) {
		t.Fatalf("acked chunk lost after recovery: %q", got)
	}
	if strings.Contains(got, `"t":2`) || strings.Contains(got, `"t":3`) {
		t.Fatalf("nacked chunk surfaced after recovery: %q", got)
	}
}

// TestDurableClientSeqDedup: re-sending an already-acked chunk with
// the same ?seq= must ack as a duplicate without double-applying —
// the client retry protocol after a lost response.
func TestDurableClientSeqDedup(t *testing.T) {
	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncAlways, 16)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	id := openStream(t, srv, "lateness=0&lanes=1")
	row := chunkRow("a", 1, 1, 1)
	ack1, _ := ingestChunkSeq(t, srv, id, 1, row)
	if ack1.Duplicate || ack1.Ingested != 1 {
		t.Fatalf("first send: %+v", ack1)
	}
	ack2, resp := ingestChunkSeq(t, srv, id, 1, row)
	if resp.StatusCode != http.StatusOK || !ack2.Duplicate || ack2.Ingested != 0 {
		t.Fatalf("retry: status %d ack %+v", resp.StatusCode, ack2)
	}
	got, _ := drainStream(t, srv, id, "flush=1")
	if n := strings.Count(got, `"t":1`); n != 1 {
		t.Fatalf("row applied %d times, want 1:\n%s", n, got)
	}
}

// TestDurableGracefulCloseSnapshots: Close checkpoints live sessions,
// and a reopen resumes them from snapshots alone.
func TestDurableGracefulCloseSnapshots(t *testing.T) {
	chunks := testChunks(6)

	ctrl := newTestService(Config{})
	ctrlSrv := httptest.NewServer(ctrl)
	_, want := runSession(t, ctrlSrv, chunks, -1)
	ctrlSrv.Close()

	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncBatch, 1000)
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=2&maxspeed=50&lanes=3")
	for i, c := range chunks {
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i+1), c); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
	}
	srv.Close()
	svc.Close() // graceful: final snapshot + WAL close

	svc2 := newDurableService(t, fs, store.FsyncBatch, 1000)
	if v := svc2.Metrics().Counter(mStreamRestored).Value(); v < 1 {
		t.Fatalf("expected a snapshot restore, counter %v", v)
	}
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()
	got, _ := drainStream(t, srv2, id, "flush=1")
	if got != want {
		t.Fatalf("post-restart drain differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestHistoryRange: persisted chunks are queryable by spatio-temporal
// range, including after a restart, and closed sessions stay visible.
func TestHistoryRange(t *testing.T) {
	fs := faults.NewCrashFS()
	svc := newDurableService(t, fs, store.FsyncAlways, 16)
	srv := httptest.NewServer(svc)
	id := openStream(t, srv, "lateness=0&lanes=1")
	// Points on a line: (i*10, 0) at t=i.
	for i := 1; i <= 9; i++ {
		if _, resp := ingestChunkSeq(t, srv, id, uint64(i), chunkRow("probe", float64(i), float64(i*10), 0)); resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d status %d", i, resp.StatusCode)
		}
	}
	// Close the session: history must survive it.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/stream/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("close failed: %v %v", err, resp)
	}

	query := func(s *httptest.Server, params string) (string, *http.Response) {
		resp, err := http.Get(s.URL + "/v1/history/range?" + params)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body), resp
	}
	got, resp := query(srv, "minx=25&maxx=65")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history status %d: %s", resp.StatusCode, got)
	}
	for _, x := range []string{`"x":30`, `"x":40`, `"x":50`, `"x":60`} {
		if !strings.Contains(got, x) {
			t.Fatalf("missing %s in:\n%s", x, got)
		}
	}
	if strings.Contains(got, `"x":20`) || strings.Contains(got, `"x":70`) {
		t.Fatalf("out-of-range point returned:\n%s", got)
	}
	// Temporal filter cuts the same line by t.
	got, _ = query(srv, "mint=7")
	if strings.Contains(got, `"t":6`) || !strings.Contains(got, `"t":8`) {
		t.Fatalf("temporal filter wrong:\n%s", got)
	}
	srv.Close()

	// Restart from a crash image: the index rebuilds from the WAL.
	img := fs.Crash(0, false)
	svc2 := newDurableService(t, img, store.FsyncAlways, 16)
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()
	got2, resp2 := query(srv2, "minx=25&maxx=65")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("history status %d after restart", resp2.StatusCode)
	}
	for _, x := range []string{`"x":30`, `"x":40`, `"x":50`, `"x":60`} {
		if !strings.Contains(got2, x) {
			t.Fatalf("missing %s after restart:\n%s", x, got2)
		}
	}
}

// TestHistoryDisabledWithoutData: the endpoint answers 404 on a
// memory-only service.
func TestHistoryDisabledWithoutData(t *testing.T) {
	svc := newTestService(Config{})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/history/range")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestRecoveredSessionsJanitored: a restart that restores sessions
// from the WAL must also start the idle janitor. Before the fix the
// janitor only started on a live open(); a registry restored at
// MaxSessions then 429'd every open, and with opens failing the
// janitor could never start — streaming stayed wedged until another
// restart with an empty WAL.
func TestRecoveredSessionsJanitored(t *testing.T) {
	cfg := func(fs store.FS) Config {
		return Config{
			Logger: DiscardLogger(),
			Stream: StreamConfig{
				MaxSessions:  1,
				IdleTTL:      500 * time.Millisecond,
				JanitorEvery: time.Millisecond,
			},
			Durability: DurabilityConfig{Dir: "wal", Fsync: store.FsyncAlways, FS: fs},
		}
	}
	fs := faults.NewCrashFS()
	svc, err := OpenService(cfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	openStream(t, srv, "")
	srv.Close() // kill -9: the open record is durable, no close record

	svc2, err := OpenService(cfg(fs.Crash(0, false)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	reg := svc2.streams
	reg.mu.Lock()
	n := len(reg.sessions)
	reg.mu.Unlock()
	if n != 1 {
		t.Fatalf("restored %d sessions, want 1 (the registry is at MaxSessions)", n)
	}
	srv2 := httptest.NewServer(svc2)
	defer srv2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(srv2.URL+"/v1/stream/open", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			return // the janitor evicted the restored idle session
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("open status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("restored-at-MaxSessions registry never unwedged: janitor not started by recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
