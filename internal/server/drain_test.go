package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDrainRejectsNewWorkKeepsProbes: a draining service answers new
// work with an orderly 503 (connection accepted, response written)
// while probes and the metrics scrape keep working — the contract the
// sidqserve shutdown sequence and the load harness's drain check rely
// on.
func TestDrainRejectsNewWorkKeepsProbes(t *testing.T) {
	svc := NewService(Config{Logger: DiscardLogger()})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/assess", "text/csv", strings.NewReader("id,t,x,y\na,0,0,0\na,1,1,1\n"))
	if err != nil {
		t.Fatalf("pre-drain assess: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain assess status %d", resp.StatusCode)
	}

	if svc.Draining() {
		t.Fatal("service draining before StartDrain")
	}
	svc.StartDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	resp, err = http.Post(ts.URL+"/v1/assess", "text/csv", strings.NewReader("id,t,x,y\na,0,0,0\n"))
	if err != nil {
		t.Fatalf("draining assess should answer, not reset: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining assess: status %d body %q, want 503 draining", resp.StatusCode, body)
	}
	if got := svc.Metrics().Counter(mDrainRejected).Value(); got != 1 {
		t.Fatalf("drain-rejected counter = %d, want 1", got)
	}

	for path, want := range map[string]int{
		"/v1/healthz": http.StatusOK,
		"/v1/metrics": http.StatusOK,
		"/v1/readyz":  http.StatusServiceUnavailable,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while draining: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s while draining: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestAwaitIdleWaitsForInFlight: AwaitIdle must not report idle while
// an accepted request is still being handled, and must report idle
// once it completes — the ordering that lets in-flight ingest acks
// finish before the listener closes.
func TestAwaitIdleWaitsForInFlight(t *testing.T) {
	svc := NewService(Config{Logger: DiscardLogger()})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Hold a request in flight by feeding its body through a pipe the
	// handler has to wait on.
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/assess", pr)
		req.Header.Set("Content-Type", "text/csv")
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	if _, err := io.WriteString(pw, "id,t,x,y\na,0,0,0\n"); err != nil {
		t.Fatalf("write body: %v", err)
	}
	// Wait until the request holds its in-flight slot.
	deadline := time.Now().Add(2 * time.Second)
	for svc.Metrics().Gauge(mInFlight).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if svc.AwaitIdle(shortCtx) {
		cancel()
		t.Fatal("AwaitIdle reported idle with a request in flight")
	}
	cancel()

	go func() {
		time.Sleep(30 * time.Millisecond)
		io.WriteString(pw, "a,1,1,1\n")
		pw.Close()
	}()
	longCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if !svc.AwaitIdle(longCtx) {
		t.Fatal("AwaitIdle never went idle after the request completed")
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
}
