package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestOverloadSheddingMatchesMetrics drives the bounded session
// registry past MaxSessions and past a lane's reorder budget, and
// asserts the 429 rate the sidq_stream_session_rejected_total family
// reports matches what the clients observed — the accounting the load
// harness's shed-rate gate trusts.
func TestOverloadSheddingMatchesMetrics(t *testing.T) {
	const maxSessions = 4
	svc := NewService(Config{
		Logger:      DiscardLogger(),
		MaxInFlight: 128,
		Stream:      StreamConfig{MaxSessions: maxSessions, MaxLanePending: 8},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Overload the session budget with concurrent opens.
	const opens = 32
	var opened, shed429 atomic.Uint64
	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for i := 0; i < opens; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/stream/open", "", nil)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated:
				opened.Add(1)
				var ack struct {
					Session string `json:"session"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&ack); err == nil {
					mu.Lock()
					ids = append(ids, ack.Session)
					mu.Unlock()
				}
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed429.Add(1)
			default:
				t.Errorf("open: unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if got := opened.Load(); got != maxSessions {
		t.Fatalf("opened %d sessions, want exactly %d", got, maxSessions)
	}
	if got := shed429.Load(); got != opens-maxSessions {
		t.Fatalf("client observed %d shed opens, want %d", got, opens-maxSessions)
	}

	// Free one session slot so the lane-overload session can open.
	if len(ids) == 0 {
		t.Fatal("no opened session ids recorded")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+ids[0], nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil || delResp.StatusCode != http.StatusOK {
		t.Fatalf("close session %s: %v status %v", ids[0], err, delResp.Status)
	}
	delResp.Body.Close()

	// Overload one session's lane budget: a single source always lands
	// in one lane, so a chunk larger than MaxLanePending with lateness
	// high enough to buffer everything must shed atomically.
	var rows strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&rows, "src,%d,%d,0\n", 1000-i, i)
	}
	openResp, err := http.Post(ts.URL+"/v1/stream/open?lateness=1e6&lanes=1", "", nil)
	if err != nil || openResp.StatusCode != http.StatusCreated {
		t.Fatalf("open for lane overload: %v status %v", err, openResp.Status)
	}
	var ack struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(openResp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode open ack: %v", err)
	}
	openResp.Body.Close()
	ingestShed := 0
	resp, err := http.Post(ts.URL+"/v1/stream/ingest?session="+ack.Session, "text/csv", strings.NewReader(rows.String()))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversize chunk status %d, want 429", resp.StatusCode)
	}
	ingestShed++

	wantRejected := shed429.Load() + uint64(ingestShed)
	if got := svc.Metrics().Counter(mStreamRejected).Value(); got != wantRejected {
		t.Fatalf("registry rejected counter = %d, client observed %d", got, wantRejected)
	}

	// The same number must round-trip through the Prometheus text
	// exposition the harness and dashboards scrape.
	if got := scrapeCounter(t, ts.URL, "sidq_stream_session_rejected_total"); got != wantRejected {
		t.Fatalf("scraped sidq_stream_session_rejected_total = %d, client observed %d", got, wantRejected)
	}
	// One of the original sessions was closed and one lane-overload
	// session opened, so the gauge must read exactly the budget.
	openGauge := scrapeCounter(t, ts.URL, "sidq_stream_sessions_open")
	if openGauge != maxSessions {
		t.Fatalf("scraped sidq_stream_sessions_open = %d, want %d", openGauge, maxSessions)
	}
}

// scrapeCounter fetches /v1/metrics and returns the value of the first
// sample whose name matches exactly.
func scrapeCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("scrape %s: bad value %q", name, fields[1])
			}
			return uint64(v)
		}
	}
	t.Fatalf("scrape: no sample named %s", name)
	return 0
}
