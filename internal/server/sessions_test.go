package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sidq/internal/geo"
	"sidq/internal/obs"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// cleanWalkCSV returns noise-free random-walk trajectories serialized
// as point CSV: data that already meets the default quality targets,
// so the batch planner runs zero stages and both paths are identity
// transforms over it.
func cleanWalkCSV(t *testing.T, ids ...string) *bytes.Buffer {
	t.Helper()
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	var trs []*trajectory.Trajectory
	for i, id := range ids {
		trs = append(trs, simulate.RandomWalk(id, region, 200, 2, 1, int64(i+1)))
	}
	var buf bytes.Buffer
	if err := trajectory.WriteCSV(&buf, trs); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// openStream opens a session against srv and returns its id.
func openStream(t *testing.T, srv *httptest.Server, params string) string {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/stream/open?"+params, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("open status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Session
}

func ingestChunk(t *testing.T, srv *httptest.Server, id, csvChunk string) (ingestAck, *http.Response) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/stream/ingest?session="+id, "text/csv", strings.NewReader(csvChunk))
	if err != nil {
		t.Fatal(err)
	}
	var ack ingestAck
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return ack, resp
}

func drainStream(t *testing.T, srv *httptest.Server, id, params string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stream/" + id + "/results?" + params)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body), resp
}

// The acceptance bar for the streaming path: streaming clean data
// in order and draining as CSV must reproduce POST /v1/clean on the
// same bytes exactly. The planner plans zero stages for data already
// meeting targets (asserted via X-Sidq-Stages), so both paths reduce
// to parse → regroup → serialize, and those must agree byte for byte.
func TestStreamInOrderMatchesBatchClean(t *testing.T) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	input := cleanWalkCSV(t, "veh-0", "veh-1", "veh-2").String()

	resp, err := http.Post(srv.URL+"/v1/clean", "text/csv", strings.NewReader(input))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("batch clean: %v %v", err, resp.StatusCode)
	}
	if stages := resp.Header.Get("X-Sidq-Stages"); stages != "" {
		t.Fatalf("planner ran stages %q on clean data; equivalence premise broken", stages)
	}
	batch, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	id := openStream(t, srv, "lateness=5")
	// Feed the same CSV in several chunks, splitting on row boundaries.
	rows := strings.SplitAfter(input, "\n")
	for start := 0; start < len(rows); start += 50 {
		end := start + 50
		if end > len(rows) {
			end = len(rows)
		}
		chunk := strings.Join(rows[start:end], "")
		if strings.TrimSpace(chunk) == "" {
			continue
		}
		if _, r := ingestChunk(t, srv, id, chunk); r.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", r.StatusCode)
		}
	}
	streamed, r := drainStream(t, srv, id, "flush=1&format=csv")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", r.StatusCode)
	}
	if streamed != string(batch) {
		t.Fatalf("stream/batch mismatch:\nstream %d bytes, batch %d bytes\nstream head: %.120s\nbatch head:  %.120s",
			len(streamed), len(batch), streamed, batch)
	}
}

// Events arriving out of order, but displaced less than the lateness
// bound, must come out exactly as if the input had been sorted.
func TestStreamOutOfOrderWithinLateness(t *testing.T) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	const n = 120
	type row struct {
		t, x, y float64
	}
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{t: float64(i), x: float64(i) * 2, y: 5}
	}
	// Scramble within disjoint blocks of 4: displacement is at most 3,
	// strictly inside the lateness bound of 5.
	shuffled := append([]row(nil), rows...)
	rng := rand.New(rand.NewSource(7))
	for start := 0; start < len(shuffled); start += 4 {
		end := start + 4
		if end > len(shuffled) {
			end = len(shuffled)
		}
		block := shuffled[start:end]
		rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
	}

	id := openStream(t, srv, "lateness=5&maxspeed=0")
	var chunk strings.Builder
	for i, rw := range shuffled {
		fmt.Fprintf(&chunk, "veh-0,%g,%g,%g\n", rw.t, rw.x, rw.y)
		if (i+1)%40 == 0 || i == len(shuffled)-1 {
			if _, r := ingestChunk(t, srv, id, chunk.String()); r.StatusCode != http.StatusOK {
				t.Fatalf("ingest status %d", r.StatusCode)
			}
			chunk.Reset()
		}
	}
	body, r := drainStream(t, srv, id, "flush=1")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", r.StatusCode)
	}
	var got []streamResult
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var res streamResult
		if err := dec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if len(got) != n {
		t.Fatalf("drained %d events, want %d (late drops within the lateness bound?)", len(got), n)
	}
	for i, res := range got {
		want := rows[i]
		if res.T != want.t || res.X != want.x || res.Y != want.y {
			t.Fatalf("event %d = %+v, want sorted-input row %+v", i, res, want)
		}
	}
}

// Concurrent ingest from many clients into one session must be safe
// (run under -race) and lose nothing: everything ingested is either
// emitted or still pending at flush time.
func TestStreamConcurrentIngest(t *testing.T) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	id := openStream(t, srv, "lateness=2&maxspeed=0")
	const (
		sources      = 8
		chunksPerSrc = 5
		rowsPerChunk = 20
	)
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for c := 0; c < chunksPerSrc; c++ {
				var chunk strings.Builder
				for i := 0; i < rowsPerChunk; i++ {
					tm := c*rowsPerChunk + i
					fmt.Fprintf(&chunk, "src-%d,%d,%d,%d\n", s, tm, tm*2, s)
				}
				resp, err := http.Post(srv.URL+"/v1/stream/ingest?session="+id, "text/csv", strings.NewReader(chunk.String()))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("concurrent ingest status %d", resp.StatusCode)
				}
			}
		}(s)
	}
	wg.Wait()

	body, r := drainStream(t, srv, id, "flush=1")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", r.StatusCode)
	}
	perSrc := map[string][]float64{}
	dec := json.NewDecoder(strings.NewReader(body))
	total := 0
	for dec.More() {
		var res streamResult
		if err := dec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		perSrc[res.Source] = append(perSrc[res.Source], res.T)
		total++
	}
	if want := sources * chunksPerSrc * rowsPerChunk; total != want {
		t.Fatalf("drained %d events, want %d", total, want)
	}
	for src, times := range perSrc {
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatalf("%s out of order at %d: %v after %v", src, i, times[i], times[i-1])
			}
		}
	}
}

// An idle session must be reclaimed by the janitor sweep and answer
// 404 afterwards, with the eviction visible in metrics and the trace.
func TestStreamIdleTTLEviction(t *testing.T) {
	sink := &obs.MemSink{}
	svc := newTestService(Config{
		Trace:  sink,
		Stream: StreamConfig{IdleTTL: time.Minute},
	})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	fake := time.Now()
	svc.streams.now = func() time.Time { return fake }

	id := openStream(t, srv, "")
	if _, r := ingestChunk(t, srv, id, "veh-0,1,0,0\nveh-0,2,1,0\n"); r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}

	// Not yet idle long enough: sweep must keep it.
	fake = fake.Add(30 * time.Second)
	if n := svc.streams.sweep(fake); n != 0 {
		t.Fatalf("early sweep evicted %d sessions", n)
	}
	// Past the TTL: reclaimed.
	fake = fake.Add(2 * time.Minute)
	if n := svc.streams.sweep(fake); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, r := ingestChunk(t, srv, id, "veh-0,3,2,0\n"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest into evicted session: status %d, want 404", r.StatusCode)
	}
	if _, r := drainStream(t, srv, id, ""); r.StatusCode != http.StatusNotFound {
		t.Fatalf("drain of evicted session: status %d, want 404", r.StatusCode)
	}
	if got := svc.metrics.Counter(mStreamEvicted).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", mStreamEvicted, got)
	}
	if got := svc.metrics.Gauge(mStreamOpen).Value(); got != 0 {
		t.Fatalf("%s = %d, want 0", mStreamOpen, got)
	}
	if sink.CountName(obs.KindSessionEvict, id) != 1 {
		t.Fatalf("no %s trace event for %s: %+v", obs.KindSessionEvict, id, sink.Events())
	}
}

// The session cap sheds opens with 429 + Retry-After instead of
// accumulating unbounded per-session state.
func TestStreamSessionLimitShedding(t *testing.T) {
	sink := &obs.MemSink{}
	svc := newTestService(Config{
		Trace:  sink,
		Stream: StreamConfig{MaxSessions: 2},
	})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	openStream(t, srv, "")
	second := openStream(t, srv, "")
	resp, err := http.Post(srv.URL+"/v1/stream/open", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit open status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := svc.metrics.Counter(mStreamRejected).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", mStreamRejected, got)
	}
	if sink.Count(obs.KindSessionShed) != 1 {
		t.Fatal("no session-shed trace event")
	}

	// Closing a session frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/stream/"+second, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("close: %v %v", err, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	openStream(t, srv, "")
}

// Full lane and result buffers shed the chunk atomically with 429: the
// rejected chunk leaves no partial state behind.
func TestStreamBackpressureShedding(t *testing.T) {
	svc := newTestService(Config{
		Stream: StreamConfig{MaxLanePending: 4, MaxResults: 6},
	})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Huge lateness: nothing releases, the lane buffer fills.
	id := openStream(t, srv, "lateness=1000000&lanes=1")
	ack, r := ingestChunk(t, srv, id, "veh-0,1,0,0\nveh-0,2,1,0\nveh-0,3,2,0\nveh-0,4,3,0\n")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fill status %d", r.StatusCode)
	}
	if ack.PendingReorder != 4 {
		t.Fatalf("pending_reorder = %d, want 4", ack.PendingReorder)
	}
	_, r = ingestChunk(t, srv, id, "veh-0,5,4,0\n")
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-buffer ingest status %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The rejected chunk must not have touched the lane.
	ack2, r := ingestChunk(t, srv, id, "")
	if r.StatusCode != http.StatusOK || ack2.PendingReorder != 4 {
		t.Fatalf("post-shed state: status %d pending %d, want 200/4", r.StatusCode, ack2.PendingReorder)
	}

	// Undrained results hit MaxResults the same way; draining recovers.
	id2 := openStream(t, srv, "lateness=0&maxspeed=0&lanes=1")
	for i := 0; i < 6; i++ {
		if _, r := ingestChunk(t, srv, id2, fmt.Sprintf("veh-0,%d,%d,0\n", i, i)); r.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d status %d", i, r.StatusCode)
		}
	}
	if _, r := ingestChunk(t, srv, id2, "veh-0,10,9,0\n"); r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-results ingest status %d, want 429", r.StatusCode)
	}
	if _, r := drainStream(t, srv, id2, ""); r.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", r.StatusCode)
	}
	if _, r := ingestChunk(t, srv, id2, "veh-0,10,9,0\n"); r.StatusCode != http.StatusOK {
		t.Fatalf("post-drain ingest status %d, want 200", r.StatusCode)
	}
}

// With a road network loaded, released points come out snapped to the
// graph with the matched edge id attached.
func TestStreamOnlineMatching(t *testing.T) {
	g := roadnet.NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(1000, 0))
	g.AddBidirectional(a, b, 15)

	svc := newTestService(Config{Stream: StreamConfig{Network: g}})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	id := openStream(t, srv, "lateness=0&maxspeed=0")
	var chunk strings.Builder
	for i := 0; i < 20; i++ {
		// Points wobbling around the edge y=0.
		fmt.Fprintf(&chunk, "veh-0,%d,%d,%g\n", i, i*10, float64(i%3)-1)
	}
	if _, r := ingestChunk(t, srv, id, chunk.String()); r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}
	body, r := drainStream(t, srv, id, "flush=1")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", r.StatusCode)
	}
	dec := json.NewDecoder(strings.NewReader(body))
	count := 0
	for dec.More() {
		var res streamResult
		if err := dec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.Edge == nil {
			t.Fatalf("matched result without edge id: %+v", res)
		}
		if res.Y != 0 {
			t.Fatalf("point not snapped onto the edge: %+v", res)
		}
		count++
	}
	if count == 0 {
		t.Fatal("matcher emitted nothing")
	}
}

// Closing a session returns its summary and frees the id; operations
// on it afterwards are 404s.
func TestStreamCloseLifecycle(t *testing.T) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	id := openStream(t, srv, "lateness=0&maxspeed=0")
	ingestChunk(t, srv, id, "veh-0,1,0,0\nveh-0,2,1,0\n")

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/stream/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("close: %v %v", err, resp.StatusCode)
	}
	var summary struct {
		Ingested int `json:"ingested"`
		Emitted  int `json:"emitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if summary.Ingested != 2 || summary.Emitted != 2 {
		t.Fatalf("summary = %+v, want 2 ingested / 2 emitted", summary)
	}

	resp, _ = http.DefaultClient.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close status %d, want 404", resp.StatusCode)
	}
	if _, r := ingestChunk(t, srv, id, "veh-0,3,2,0\n"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest after close status %d, want 404", r.StatusCode)
	}
	if got := svc.metrics.Counter(mStreamClosed).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", mStreamClosed, got)
	}
}

// A malformed chunk is rejected whole: no prefix of it may have been
// applied, so retrying the corrected chunk cannot duplicate events.
func TestStreamMalformedChunkAtomic(t *testing.T) {
	svc := newTestService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc)
	defer srv.Close()

	id := openStream(t, srv, "lateness=0&maxspeed=0")
	for _, bad := range []string{
		"veh-0,1,0,0\nveh-0,not-a-number,1,0\n", // bad time after a good row
		"veh-0,1,0,0\nveh-0,2,NaN,0\n",          // non-finite coordinate
		",1,0,0\n",                              // empty source id
		"veh-0,1,0\n",                           // wrong field count
	} {
		if _, r := ingestChunk(t, srv, id, bad); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed chunk %q status %d, want 400", bad, r.StatusCode)
		}
	}
	ack, r := ingestChunk(t, srv, id, "veh-0,1,0,0\n")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("clean ingest status %d", r.StatusCode)
	}
	if ack.PendingResults != 1 {
		t.Fatalf("pending_results = %d, want 1: rejected chunks leaked rows", ack.PendingResults)
	}
}
