package server

// Stream-session durability: every accepted ingest chunk is persisted
// to a segmented WAL (internal/store) BEFORE the ack is written, and
// sessions periodically checkpoint their full processing state
// (reorder buffers, watermarks, matcher lattices) as snapshot records.
// A restarted server replays the log through the same state machine
// the live path uses, so a kill -9 mid-ingest resumes the sessions
// exactly where the durable log ends: no accepted row is lost, no row
// is applied twice (chunks carry a per-session index; client retries
// dedup on an optional ?seq=), and drains are logged so replay
// re-emits and discards what was already delivered.
//
// WAL record types (payloads are gob; the WAL is an internal file
// format versioned with the binary):
//
//	recSessionOpen   a session was created
//	recChunk         one accepted ingest chunk, in apply order
//	recDrain         a results drain was delivered (replay discards)
//	recSessionClose  the session was closed or evicted
//	recSnapshot      full session state; supersedes earlier records
//
// Per-session records are appended while holding the session mutex,
// so per-session WAL order is exactly apply order — replay is a pure
// fold. History range queries (history.go) are served from the same
// chunk records through a chunk-extent R-tree.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"sidq/internal/geo"
	"sidq/internal/obs"
	"sidq/internal/store"
	"sidq/internal/stream"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

// WAL record types.
const (
	recSessionOpen  byte = 1
	recChunk        byte = 2
	recDrain        byte = 3
	recSessionClose byte = 4
	recSnapshot     byte = 5
)

// DurabilityConfig enables the durable trajectory store. Zero Dir
// leaves the server memory-only (the pre-durability behavior).
type DurabilityConfig struct {
	Dir           string          // WAL directory; "" disables durability
	Fsync         store.FsyncMode // when chunks become durable (zero value FsyncAlways; the CLI flag defaults to batch)
	SnapshotEvery int             // chunks between session snapshots (default 16)
	SegmentBytes  int64           // segment roll size, for tests (default store's)
	FS            store.FS        // filesystem, injectable for crash tests (default OS)

	// Retention (retention.go). Retain bounds the WAL on disk: records
	// older than Retain are dropped once no live session still needs
	// them for recovery (sessions are compacted — force-snapshotted —
	// first, so a long-lived session cannot pin old segments forever).
	// 0 keeps everything (the pre-retention behavior).
	Retain      time.Duration
	RetainEvery time.Duration // retention pass period (default Retain/4, clamped to [1s, 30s])
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 16
	}
	if c.Retain > 0 && c.RetainEvery <= 0 {
		c.RetainEvery = c.Retain / 4
		if c.RetainEvery < time.Second {
			c.RetainEvery = time.Second
		}
		if c.RetainEvery > 30*time.Second {
			c.RetainEvery = 30 * time.Second
		}
	}
	return c
}

// errDurability marks WAL failures on the serving path: the ack MUST
// fail rather than claim durability the log cannot provide (503).
var errDurability = errors.New("durable log unavailable")

// WAL payload DTOs. Exported fields only — gob.
type walOpen struct {
	Session  string
	Lateness float64
	MaxSpeed float64
	Lanes    int
}

type walEvent struct {
	Src     string
	T, X, Y float64
}

type walChunk struct {
	Session   string
	ChunkIdx  uint64 // 1-based per-session apply index
	ClientSeq uint64 // client-supplied ?seq= (0 = none)
	Events    []walEvent
}

type walDrain struct {
	Session string
	Flush   bool
}

type walClose struct {
	Session string
	Evicted bool
}

type walSource struct {
	Src     string
	Re      stream.ReordererState[trajectory.Point]
	HasLast bool
	Last    trajectory.Point
	Matcher *uncertain.MatcherState // nil when the source has no matcher
}

type walSnapshot struct {
	Session   string
	Lateness  float64
	MaxSpeed  float64
	Lanes     int
	ChunkIdx  uint64
	ClientSeq uint64
	SrcIDs    []string
	Results   []streamResult
	Ingested  int
	Emitted   int
	Late      int
	Outliers  int
	Sources   []walSource
}

func encodeRec(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRec(payload []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// persist appends one typed record; failures are wrapped in
// errDurability so handlers map them to 503.
func (reg *sessionRegistry) persist(typ byte, v interface{}) (uint64, error) {
	payload, err := encodeRec(v)
	if err != nil {
		return 0, fmt.Errorf("%w: encode: %v", errDurability, err)
	}
	seq, err := reg.wal.Append(typ, payload)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errDurability, err)
	}
	return seq, nil
}

func toWalEvents(events []stream.Event[srcPoint]) []walEvent {
	out := make([]walEvent, len(events))
	for i, e := range events {
		out[i] = walEvent{Src: e.Value.src, T: e.Value.pt.T, X: e.Value.pt.Pos.X, Y: e.Value.pt.Pos.Y}
	}
	return out
}

func fromWalEvents(evs []walEvent) []stream.Event[srcPoint] {
	out := make([]stream.Event[srcPoint], len(evs))
	for i, e := range evs {
		out[i] = stream.Event[srcPoint]{
			Time:  e.T,
			Value: srcPoint{src: e.Src, pt: trajectory.Point{T: e.T, Pos: geo.Pt(e.X, e.Y)}},
		}
	}
	return out
}

// persistChunkLocked writes the chunk record and indexes its extent
// for history queries. Caller holds ss.mu.
func (ss *streamSession) persistChunkLocked(events []stream.Event[srcPoint], clientSeq uint64) error {
	reg := ss.reg
	evs := toWalEvents(events)
	seq, err := reg.persist(recChunk, walChunk{
		Session: ss.id, ChunkIdx: ss.chunkIdx + 1, ClientSeq: clientSeq, Events: evs,
	})
	if err != nil {
		return err
	}
	reg.hist.add(seq, evs)
	return nil
}

// snapshotStateLocked captures the session's complete processing
// state. Caller holds ss.mu.
func (ss *streamSession) snapshotStateLocked() walSnapshot {
	snap := walSnapshot{
		Session:   ss.id,
		Lateness:  ss.lateness,
		MaxSpeed:  ss.maxSpeed,
		Lanes:     len(ss.lanes),
		ChunkIdx:  ss.chunkIdx,
		ClientSeq: ss.clientSeq,
		SrcIDs:    append([]string(nil), ss.srcIDs...),
		Results:   append([]streamResult(nil), ss.results...),
		Ingested:  ss.ingested,
		Emitted:   ss.emitted,
		Late:      ss.late,
		Outliers:  ss.outliers,
	}
	// Sources in first-appearance order keeps snapshot bytes stable for
	// identical histories.
	for _, src := range ss.srcIDs {
		st := ss.lanes[stream.LaneFor(src, len(ss.lanes))].sources[src]
		if st == nil {
			continue
		}
		ws := walSource{Src: src, Re: st.re.State(), HasLast: st.hasLast, Last: st.last}
		if st.matcher != nil {
			ms := st.matcher.State()
			ws.Matcher = &ms
		}
		snap.Sources = append(snap.Sources, ws)
	}
	return snap
}

// snapshotLocked checkpoints the session into the WAL. A failure is
// logged, not returned: the records the snapshot would summarize are
// already durable, so the session stays correct — only recovery gets
// slower (and the poisoned log fails the next ingest anyway).
func (ss *streamSession) snapshotLocked() {
	reg := ss.reg
	seq, err := reg.persist(recSnapshot, ss.snapshotStateLocked())
	if err != nil {
		reg.svc.logf("stream session %s: snapshot failed: %v", ss.id, err)
		return
	}
	ss.sinceSnap = 0
	ss.snapSeq = seq // everything below seq is now superseded for this session
	reg.m.snapshots.Inc()
	reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionSnapshot, N: ss.pendingReorderLocked()})
}

// persistCloseLocked logs the session close; best-effort (the session
// is going away regardless — a replay resurrecting it only costs the
// idle janitor one eviction).
func (ss *streamSession) persistCloseLocked(evicted bool) {
	if _, err := ss.reg.persist(recSessionClose, walClose{Session: ss.id, Evicted: evicted}); err != nil {
		ss.reg.svc.logf("stream session %s: close record failed: %v", ss.id, err)
	}
}

// --- recovery ------------------------------------------------------

// sessionSeq extracts the numeric suffix of a session id ("st-000042"
// -> 42, 0 if unparsable) so restored registries keep ids unique.
func sessionSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "st-%d", &n); err != nil {
		return 0
	}
	return n
}

// recoverFrom replays the WAL through the live apply path, rebuilding
// sessions and the history index, then adopts l as the registry's
// durable log. Called once, before the service accepts traffic.
func (reg *sessionRegistry) recoverFrom(l *store.Log) error {
	start := time.Now()
	now := reg.now()
	records := 0
	err := l.Replay(func(r store.Record) error {
		records++
		switch r.Type {
		case recSessionOpen:
			var o walOpen
			if err := decodeRec(r.Payload, &o); err != nil {
				return fmt.Errorf("record %d (open): %w", r.Seq, err)
			}
			reg.restoreOpen(o, now, r.Seq)
		case recChunk:
			var c walChunk
			if err := decodeRec(r.Payload, &c); err != nil {
				return fmt.Errorf("record %d (chunk): %w", r.Seq, err)
			}
			// History outlives sessions: index every chunk, even ones
			// whose session is already closed.
			reg.hist.add(r.Seq, c.Events)
			if ss, ok := reg.sessions[c.Session]; ok {
				ss.replayChunk(c, now)
			}
		case recDrain:
			var d walDrain
			if err := decodeRec(r.Payload, &d); err != nil {
				return fmt.Errorf("record %d (drain): %w", r.Seq, err)
			}
			if ss, ok := reg.sessions[d.Session]; ok {
				// Re-run and discard: these results were already
				// delivered to the client before the crash.
				ss.mu.Lock()
				ss.drainLocked(d.Flush)
				ss.mu.Unlock()
			}
		case recSessionClose:
			var c walClose
			if err := decodeRec(r.Payload, &c); err != nil {
				return fmt.Errorf("record %d (close): %w", r.Seq, err)
			}
			if ss, ok := reg.sessions[c.Session]; ok {
				delete(reg.sessions, c.Session)
				ss.closed = true
				reg.m.open.Dec()
			}
		case recSnapshot:
			var snap walSnapshot
			if err := decodeRec(r.Payload, &snap); err != nil {
				return fmt.Errorf("record %d (snapshot): %w", r.Seq, err)
			}
			reg.restoreSnapshot(snap, now, r.Seq)
		default:
			return fmt.Errorf("record %d: unknown type %d", r.Seq, r.Type)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal replay: %w", err)
	}
	reg.m.replayed.Add(uint64(records))
	reg.wal = l
	reg.trace(obs.TraceEvent{Name: "wal", Kind: obs.KindWALReplay, Dur: time.Since(start), N: records})
	if records > 0 {
		reg.svc.logf("wal: replayed %d records, %d sessions live, in %s",
			records, len(reg.sessions), time.Since(start).Round(time.Millisecond))
	}
	// The janitor normally starts on the first live open(); restored
	// sessions must not wait for one — a registry restored at
	// MaxSessions would otherwise 429 every open and the janitor could
	// never start.
	if len(reg.sessions) > 0 {
		reg.startJanitor()
	}
	return nil
}

// restoreOpen rebuilds an empty session during replay. Runs before the
// service serves traffic, so reg.mu is not needed.
func (reg *sessionRegistry) restoreOpen(o walOpen, now time.Time, seq uint64) {
	if _, ok := reg.sessions[o.Session]; ok {
		return
	}
	ss := &streamSession{
		id:         o.Session,
		reg:        reg,
		lateness:   o.Lateness,
		maxSpeed:   o.MaxSpeed,
		srcOrder:   map[string]int{},
		lastActive: now,
		openSeq:    seq,
	}
	for i := 0; i < o.Lanes; i++ {
		ss.lanes = append(ss.lanes, &streamLane{sources: map[string]*sourceState{}})
	}
	reg.sessions[ss.id] = ss
	if n := sessionSeq(ss.id); n > reg.seq {
		reg.seq = n
	}
	reg.m.open.Inc()
}

// restoreSnapshot replaces a session's state wholesale with a
// checkpoint; chunk records at or before ChunkIdx are already folded
// into it and replayChunk skips them.
func (reg *sessionRegistry) restoreSnapshot(snap walSnapshot, now time.Time, seq uint64) {
	prior, existed := reg.sessions[snap.Session]
	ss := &streamSession{
		id:         snap.Session,
		reg:        reg,
		lateness:   snap.Lateness,
		maxSpeed:   snap.MaxSpeed,
		srcOrder:   map[string]int{},
		results:    append([]streamResult(nil), snap.Results...),
		lastActive: now,
		ingested:   snap.Ingested,
		emitted:    snap.Emitted,
		late:       snap.Late,
		outliers:   snap.Outliers,
		chunkIdx:   snap.ChunkIdx,
		clientSeq:  snap.ClientSeq,
		snapSeq:    seq,
	}
	if existed {
		ss.openSeq = prior.openSeq
	}
	for i := 0; i < snap.Lanes; i++ {
		ss.lanes = append(ss.lanes, &streamLane{sources: map[string]*sourceState{}})
	}
	for _, src := range snap.SrcIDs {
		ss.srcOrder[src] = len(ss.srcIDs)
		ss.srcIDs = append(ss.srcIDs, src)
	}
	for _, ws := range snap.Sources {
		st := &sourceState{
			re:      stream.NewReordererFromState(ws.Re),
			hasLast: ws.HasLast,
			last:    ws.Last,
		}
		if ws.Matcher != nil && reg.snapper != nil {
			st.matcher = uncertain.NewOnlineMatcherFromState(
				reg.cfg.Network, reg.snapper, uncertain.MatchOptions{}, reg.cfg.MatchLag, *ws.Matcher)
		}
		ss.lanes[stream.LaneFor(ws.Src, len(ss.lanes))].sources[ws.Src] = st
	}
	reg.sessions[ss.id] = ss
	if n := sessionSeq(ss.id); n > reg.seq {
		reg.seq = n
	}
	if !existed {
		reg.m.open.Inc()
	}
	reg.m.restored.Inc()
	reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionRestore, N: int(snap.ChunkIdx)})
}

// replayChunk re-applies one logged chunk. Backpressure is not
// re-checked: the chunk was accepted (and acked durable) before the
// crash, so replay must take it.
func (ss *streamSession) replayChunk(c walChunk, now time.Time) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if c.ChunkIdx <= ss.chunkIdx { // already folded into a snapshot
		return
	}
	events := fromWalEvents(c.Events)
	ss.lastActive = now
	lanes := stream.FanOut(events, len(ss.lanes), func(e stream.Event[srcPoint]) string { return e.Value.src })
	ss.applyLocked(events, lanes)
	ss.chunkIdx = c.ChunkIdx
	if c.ClientSeq > ss.clientSeq {
		ss.clientSeq = c.ClientSeq
	}
}

// Close stops the janitor, checkpoints every live session, and closes
// the WAL: a graceful shutdown restarts from snapshots alone.
func (reg *sessionRegistry) Close() error {
	reg.stopJanitor()
	if reg.wal == nil {
		return nil
	}
	reg.mu.Lock()
	sessions := make([]*streamSession, 0, len(reg.sessions))
	for _, ss := range reg.sessions {
		sessions = append(sessions, ss)
	}
	reg.mu.Unlock()
	for _, ss := range sessions {
		ss.mu.Lock()
		if !ss.closed {
			ss.snapshotLocked()
		}
		ss.mu.Unlock()
	}
	return reg.wal.Close()
}
